"""E7 — communication cost vs accuracy (distributed execution).

Reconstructed claim: the Bayesian method pays per-round broadcast traffic
that one-shot schemes avoid, but most of its accuracy arrives in the first
few rounds, so truncating the schedule buys a favorable cost/accuracy
trade-off.  Both the error curve and the message counts are read from one
traced solver run (:class:`repro.obs.Tracer` — per-round ``messages_cum``
records), replacing the separate mailbox-simulator pass this benchmark
used to make; the simulator's equivalence to the centralized solver is
covered by ``tests/test_parallel.py``.  DV-Hop's flooding cost is included
as the classic reference.
"""

import numpy as np
from conftest import report

from repro.core import GridBPConfig, GridBPLocalizer
from repro.experiments import ScenarioConfig, build_scenario
from repro.metrics import error_per_iteration
from repro.obs import Tracer
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_table

CFG = ScenarioConfig(n_nodes=80, anchor_ratio=0.1, radio_range=0.2, noise_ratio=0.1)
N_ROUNDS = 10
N_TRIALS = 3
BP_CFG = GridBPConfig(
    grid_size=16, max_iterations=N_ROUNDS, tol=1e-12, record_trace=True
)


def run_experiment():
    per_round_err = []
    per_round_msgs = []
    per_round_bytes = []
    dvhop_msgs = []
    for seed in spawn_seeds(70, N_TRIALS):
        net, ms, prior = build_scenario(CFG, seed)
        unknown = ~net.anchor_mask
        tracer = Tracer()
        result = GridBPLocalizer(
            prior=prior, config=BP_CFG, tracer=tracer
        ).localize(ms)
        curve = error_per_iteration(result, net.positions, unknown)
        per_round_err.append(curve / net.radio_range)
        # Round 0 has spent nothing.  Anchors broadcast their position
        # (2 float64 = 16 B each) once, before round 1; after that each
        # later round's cumulative unknown-unknown spend comes straight
        # off the solver's iteration records.
        anchor_msgs = sum(
            1
            for i, j in ms.edges()
            if bool(ms.anchor_mask[i]) != bool(ms.anchor_mask[j])
        )
        anchor_bytes = anchor_msgs * 2 * 8
        per_round_msgs.append(
            [0]
            + [
                anchor_msgs + rec["messages_cum"]
                for rec in result.telemetry["iterations"]
            ]
        )
        per_round_bytes.append(
            [0]
            + [
                anchor_bytes + rec["bytes_cum"]
                for rec in result.telemetry["iterations"]
            ]
        )
        # DV-Hop flooding reference: each anchor's beacon and each anchor's
        # hop-size packet are rebroadcast once by every node.
        dvhop_msgs.append(2 * net.n_nodes * net.n_anchors)
    err = np.mean(np.stack(per_round_err), axis=0)
    msgs = np.mean(np.stack(per_round_msgs).astype(float), axis=0)
    nbytes = np.mean(np.stack(per_round_bytes).astype(float), axis=0)
    return err, msgs, nbytes, float(np.mean(dvhop_msgs))


def test_e7_comm_cost(benchmark):
    err, msgs, nbytes, dvhop_ref = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    rows = [
        [r, int(msgs[r]), nbytes[r] / 1024.0, err[r]] for r in range(N_ROUNDS + 1)
    ]
    table = format_table(
        ["round", "cum_messages", "cum_kbytes", "mean_err/r"],
        rows,
        title=f"E7: measured messages vs accuracy ({N_TRIALS} trials; "
        f"DV-Hop flood reference ≈ {int(dvhop_ref)} msgs)",
    )
    table += (
        "\nAccounting: anchors broadcast their position once before round 1 "
        "(2 float64 = 16 B per message); unknown-unknown messages carry a "
        "K-vector (grid 16^2 -> 2048 B per message).\n"
    )
    report("e7_comm_cost", table)
    # accuracy improves with spent communication overall
    assert err[-1] < err[0]
    # most of the gain arrives early: ≥60% of total improvement by round 4
    total_gain = err[0] - err.min()
    assert (err[0] - err[4]) >= 0.6 * total_gain
    # BP spends more messages than the DV-Hop flood — the honest trade-off
    assert msgs[-1] > dvhop_ref
