"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one table/figure of the (reconstructed)
evaluation — see DESIGN.md for the experiment index and EXPERIMENTS.md for
recorded outcomes.  Tables are printed to stdout *and* written under
``benchmarks/results/`` so they survive pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def report(name: str, text: str) -> None:
    """Print an experiment table and persist it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
