"""E12 — scalability: runtime and traffic vs network size.

Reconstructed claim (the ICPP angle): per-trial runtime of the grid-BP
solver grows roughly linearly in the number of links (nodes × degree) —
message passing is local — and the distributed traffic per node stays
flat, so the scheme scales to large networks.  The Monte-Carlo trial
executor is also exercised to show trials parallelize without changing
results.

The A/B lane times the largest configuration twice — reference kernels
with a cold potential cache per trial, versus the vectorized hot path
with the process-wide registry kept warm — asserts the optimized path
is at least 2x faster, and writes the timings to ``BENCH_e12.json`` at
the repository root (both paths produce bit-identical estimates, which
is also asserted).

The batched lane stacks the same trials through ``localize_batch`` with
the ``batched`` kernel backend and records two regimes: *cold* (registry
cleared once, mirroring the optimized lane's protocol — the first trial
pays full potential construction) and *warm* (a second stacked call with
the registry hot — the steady state of a sweep, whose later batches
reuse the process-wide registry).  The issue targets >=10x over the cold
reference for this lane; the measured multiple and whether the target is
met are both recorded in ``BENCH_e12.json``.  On single-core hosts the
bit-identity constraint caps the achievable multiple well below the
target (every reference arithmetic pass must still happen, so the win is
bounded by Python/dispatch overhead removed, not by arithmetic avoided)
— the gate therefore asserts a conservative floor on the warm regime
rather than the aspirational target.
"""

import dataclasses
import json
import time
from pathlib import Path

import numpy as np
from conftest import report

from repro.core import GridBPConfig, GridBPLocalizer
from repro.core.bnloc import localize_batch
from repro.core.potentials import shared_registry
from repro.experiments import ScenarioConfig, build_scenario
from repro.parallel import run_trials
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_table

SIZES = [50, 100, 200, 350]
BP_CFG = GridBPConfig(grid_size=16, max_iterations=8)
N_TRIALS = 3


def _one_size(n: int) -> list:
    # Shrink the radio range as density grows so the mean degree stays
    # constant — the standard scalability protocol (otherwise the graph
    # densifies quadratically and per-node work grows with it).
    cfg = ScenarioConfig(
        n_nodes=n,
        anchor_ratio=0.1,
        radio_range=0.2 * np.sqrt(100.0 / n),
        require_connected=False,
    )
    times, msgs, edges = [], [], []
    for seed in spawn_seeds(120 + n, N_TRIALS):
        net, ms, prior = build_scenario(cfg, seed)
        t0 = time.perf_counter()
        res = GridBPLocalizer(prior=prior, config=BP_CFG).localize(ms)
        times.append(time.perf_counter() - t0)
        msgs.append(res.messages_sent)
        edges.append(len(ms.edges()))
    return [
        n,
        float(np.mean(edges)),
        float(np.mean(times)),
        float(np.mean(msgs)),
        float(np.mean(msgs)) / n,
    ]


def run_experiment():
    return [_one_size(n) for n in SIZES]


def run_ab_comparison() -> dict:
    """Time the largest configuration with and without the fast path.

    Baseline: reference (unoptimized) kernels, registry cleared before
    every trial so each pays full potential construction.  Optimized:
    vectorized kernels with the shared registry warm across trials
    (cleared once, so trial 1 is the cold miss and the rest hit).
    """
    n = SIZES[-1]
    cfg = ScenarioConfig(
        n_nodes=n,
        anchor_ratio=0.1,
        radio_range=0.2 * np.sqrt(100.0 / n),
        require_connected=False,
    )
    scenarios = [build_scenario(cfg, s) for s in spawn_seeds(620, N_TRIALS)]

    base_cfg = dataclasses.replace(BP_CFG, optimized=False, shared_cache=False)
    t0 = time.perf_counter()
    base = []
    for _net, ms, prior in scenarios:
        shared_registry().clear()
        base.append(GridBPLocalizer(prior=prior, config=base_cfg).localize(ms))
    t_base = time.perf_counter() - t0

    shared_registry().clear()
    t0 = time.perf_counter()
    opt = [
        GridBPLocalizer(prior=prior, config=BP_CFG).localize(ms)
        for _net, ms, prior in scenarios
    ]
    t_opt = time.perf_counter() - t0

    identical = all(
        np.array_equal(b.estimates, o.estimates) for b, o in zip(base, opt)
    )
    stats = shared_registry().stats()

    # Batched kernel lane: the same trials stacked into one (T, N, K)
    # tensor pass per BP round.  Cold mirrors the optimized lane's
    # clear-once protocol; warm is the sweep steady state (registry hot).
    bat_cfg = dataclasses.replace(BP_CFG, backend="batched")
    pairs = [
        (GridBPLocalizer(prior=prior, config=bat_cfg), ms)
        for _net, ms, prior in scenarios
    ]
    shared_registry().clear()
    t0 = time.perf_counter()
    bat_cold = localize_batch(pairs)
    t_bat_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    bat_warm = localize_batch(pairs)
    t_bat_warm = time.perf_counter() - t0
    bat_identical = all(
        np.array_equal(b.estimates, w.estimates)
        and np.array_equal(b.estimates, c.estimates)
        for b, c, w in zip(base, bat_cold, bat_warm)
    )
    speedup_warm = t_base / t_bat_warm
    return {
        "n_nodes": n,
        "grid_size": BP_CFG.grid_size,
        "max_iterations": BP_CFG.max_iterations,
        "n_trials": N_TRIALS,
        "baseline_seconds": t_base,
        "optimized_seconds": t_opt,
        "speedup": t_base / t_opt,
        "bit_identical_estimates": identical,
        "batched_cold_seconds": t_bat_cold,
        "batched_warm_seconds": t_bat_warm,
        "speedup_batched_cold": t_base / t_bat_cold,
        "speedup_batched_warm": speedup_warm,
        "batched_target_speedup": 10.0,
        "batched_meets_target": speedup_warm >= 10.0,
        "bit_identical_batched": bat_identical,
        "cache_stats": stats,
    }


def _executor_trial(seed: int) -> float:
    cfg = ScenarioConfig(n_nodes=40, anchor_ratio=0.15, radio_range=0.25)
    net, ms, prior = build_scenario(cfg, seed)
    res = GridBPLocalizer(
        prior=prior, config=GridBPConfig(grid_size=12, max_iterations=5)
    ).localize(ms)
    return float(np.nanmean(res.errors(net.positions)[~net.anchor_mask]))


def test_e12_scalability(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    ab = run_ab_comparison()
    text = format_table(
        ["n_nodes", "links", "runtime_s", "messages", "msgs/node"],
        rows,
        title=f"E12: grid-BP scaling with network size ({N_TRIALS} trials)",
    )
    text += (
        f"\nA/B on n={ab['n_nodes']} (grid {ab['grid_size']}^2, "
        f"{ab['max_iterations']} iters, {ab['n_trials']} trials): "
        f"baseline {ab['baseline_seconds']:.3f}s, "
        f"optimized {ab['optimized_seconds']:.3f}s, "
        f"speedup {ab['speedup']:.2f}x "
        f"(bit-identical estimates: {ab['bit_identical_estimates']})\n"
        f"batched lane: cold {ab['batched_cold_seconds']:.3f}s "
        f"({ab['speedup_batched_cold']:.2f}x), "
        f"warm {ab['batched_warm_seconds']:.3f}s "
        f"({ab['speedup_batched_warm']:.2f}x, "
        f"target {ab['batched_target_speedup']:.0f}x met: "
        f"{ab['batched_meets_target']}; "
        f"bit-identical: {ab['bit_identical_batched']})\n"
    )
    report("e12_scalability", text)
    bench_path = Path(__file__).resolve().parent.parent / "BENCH_e12.json"
    bench_path.write_text(json.dumps(ab, indent=2) + "\n")

    # the fast path must not change answers, and must actually be fast
    assert ab["bit_identical_estimates"]
    assert ab["speedup"] >= 2.0
    # the batched kernel must not change answers either, and its warm
    # steady state must beat the per-trial optimized path (conservative
    # floor — see the module docstring for why the 10x target is out of
    # reach under the bit-identity constraint on single-core hosts)
    assert ab["bit_identical_batched"]
    assert ab["speedup_batched_warm"] >= 2.2
    # runtime grows sublinearly in n² — i.e. roughly with the link count:
    # time per link at the largest size is within 4x of the smallest
    per_link = [r[2] / r[1] for r in rows]
    assert per_link[-1] < 4 * per_link[0]
    # per-node traffic stays flat (within 2.5x across a 7x size range)
    per_node = [r[4] for r in rows]
    assert max(per_node) < 2.5 * min(per_node)

    # the trial executor parallelizes without changing results
    serial = run_trials(_executor_trial, 4, seed=9, n_workers=1)
    parallel = run_trials(_executor_trial, 4, seed=9, n_workers=2)
    assert serial == parallel
