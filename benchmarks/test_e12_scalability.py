"""E12 — scalability: runtime and traffic vs network size.

Reconstructed claim (the ICPP angle): per-trial runtime of the grid-BP
solver grows roughly linearly in the number of links (nodes × degree) —
message passing is local — and the distributed traffic per node stays
flat, so the scheme scales to large networks.  The Monte-Carlo trial
executor is also exercised to show trials parallelize without changing
results.
"""

import time

import numpy as np
from conftest import report

from repro.core import GridBPConfig, GridBPLocalizer
from repro.experiments import ScenarioConfig, build_scenario
from repro.parallel import run_trials
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_table

SIZES = [50, 100, 200, 350]
BP_CFG = GridBPConfig(grid_size=16, max_iterations=8)
N_TRIALS = 3


def _one_size(n: int) -> list:
    # Shrink the radio range as density grows so the mean degree stays
    # constant — the standard scalability protocol (otherwise the graph
    # densifies quadratically and per-node work grows with it).
    cfg = ScenarioConfig(
        n_nodes=n,
        anchor_ratio=0.1,
        radio_range=0.2 * np.sqrt(100.0 / n),
        require_connected=False,
    )
    times, msgs, edges = [], [], []
    for seed in spawn_seeds(120 + n, N_TRIALS):
        net, ms, prior = build_scenario(cfg, seed)
        t0 = time.perf_counter()
        res = GridBPLocalizer(prior=prior, config=BP_CFG).localize(ms)
        times.append(time.perf_counter() - t0)
        msgs.append(res.messages_sent)
        edges.append(len(ms.edges()))
    return [
        n,
        float(np.mean(edges)),
        float(np.mean(times)),
        float(np.mean(msgs)),
        float(np.mean(msgs)) / n,
    ]


def run_experiment():
    return [_one_size(n) for n in SIZES]


def _executor_trial(seed: int) -> float:
    cfg = ScenarioConfig(n_nodes=40, anchor_ratio=0.15, radio_range=0.25)
    net, ms, prior = build_scenario(cfg, seed)
    res = GridBPLocalizer(
        prior=prior, config=GridBPConfig(grid_size=12, max_iterations=5)
    ).localize(ms)
    return float(np.nanmean(res.errors(net.positions)[~net.anchor_mask]))


def test_e12_scalability(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(
        "e12_scalability",
        format_table(
            ["n_nodes", "links", "runtime_s", "messages", "msgs/node"],
            rows,
            title=f"E12: grid-BP scaling with network size ({N_TRIALS} trials)",
        ),
    )
    # runtime grows sublinearly in n² — i.e. roughly with the link count:
    # time per link at the largest size is within 4x of the smallest
    per_link = [r[2] / r[1] for r in rows]
    assert per_link[-1] < 4 * per_link[0]
    # per-node traffic stays flat (within 2.5x across a 7x size range)
    per_node = [r[4] for r in rows]
    assert max(per_node) < 2.5 * min(per_node)

    # the trial executor parallelizes without changing results
    serial = run_trials(_executor_trial, 4, seed=9, n_workers=1)
    parallel = run_trials(_executor_trial, 4, seed=9, n_workers=2)
    assert serial == parallel
