"""E14 — robustness to NLOS contamination (extension experiment).

A fraction of range measurements arrives with a large positive bias
(reflected paths).  Reconstructed claim: quadratic-loss methods (MLE)
collapse as contamination grows; the Bayesian localizer degrades
gracefully even *unaware* of the contamination (its truncated potentials
and belief averaging are inherently robust), and swapping in the
NLOS-aware mixture likelihood — a model change only, no algorithm change
— recovers a further margin at heavy contamination.
"""

import dataclasses

import numpy as np
from conftest import report

from repro.baselines import MDSMAPLocalizer, MLELocalizer
from repro.core import GridBPConfig, GridBPLocalizer
from repro.experiments import ScenarioConfig, build_scenario
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_series

FRACTIONS = [0.0, 0.1, 0.25, 0.5]
BASE = ScenarioConfig(
    n_nodes=80,
    anchor_ratio=0.12,
    radio_range=0.22,
    noise_ratio=0.1,
    nlos_bias_ratio=0.75,
    pk_error=None,
)
BP_CFG = GridBPConfig(grid_size=16, max_iterations=10)
N_TRIALS = 4


def run_experiment():
    curves = {m: [] for m in ("bn-unaware", "bn-robust", "mds-map", "mle")}
    for frac in FRACTIONS:
        cfg = BASE.replace(nlos_fraction=frac)
        errs = {m: [] for m in curves}
        for seed in spawn_seeds(140, N_TRIALS):
            net, ms, _ = build_scenario(cfg, seed)
            unknown = ~net.anchor_mask

            def err_of(result):
                e = result.errors(net.positions)[unknown] / net.radio_range
                return float(np.nanmean(e))

            errs["bn-unaware"].append(
                err_of(GridBPLocalizer(config=BP_CFG).localize(ms))
            )
            ms_aware = dataclasses.replace(ms, ranging=cfg.make_robust_ranging())
            errs["bn-robust"].append(
                err_of(GridBPLocalizer(config=BP_CFG).localize(ms_aware))
            )
            errs["mds-map"].append(err_of(MDSMAPLocalizer().localize(ms)))
            errs["mle"].append(err_of(MLELocalizer().localize(ms, rng=0)))
        for m in curves:
            curves[m].append(float(np.mean(errs[m])))
    return curves


def test_e14_nlos_robustness(benchmark):
    curves = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(
        "e14_nlos_robustness",
        format_series(
            "nlos_frac",
            FRACTIONS,
            curves,
            title="E14: mean error / r vs NLOS contamination "
            f"(bias ≈ 0.75 r, {N_TRIALS} trials)",
        ),
    )
    # MLE collapses with contamination
    assert curves["mle"][-1] > 2 * curves["mle"][0]
    # the Bayesian localizer degrades gracefully even when unaware
    assert curves["bn-unaware"][-1] < 2 * curves["bn-unaware"][0] + 0.1
    # at heavy contamination both Bayesian arms beat the classic methods
    for m in ("mds-map", "mle"):
        assert curves["bn-robust"][-1] < curves[m][-1]
        assert curves["bn-unaware"][-1] < curves[m][-1]
    # the aware likelihood never hurts
    assert all(
        r <= u + 0.03 for r, u in zip(curves["bn-robust"], curves["bn-unaware"])
    )
