"""E5 — per-node error CDF at the canonical operating point.

Reconstructed claim: the bn-pk error distribution stochastically dominates
(its CDF lies left of / above the others at the thresholds papers quote,
e.g. "fraction of nodes within 0.5 r").
"""

import numpy as np
from conftest import report

from repro.experiments import ScenarioConfig, build_scenario, standard_methods
from repro.metrics import cdf_at
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_series

CFG = ScenarioConfig(n_nodes=80, anchor_ratio=0.1, radio_range=0.2, noise_ratio=0.1)
METHODS = standard_methods(
    grid_size=16, max_iterations=10, include=["bn-pk", "bn", "dv-hop", "mds-map"]
)
N_TRIALS = 5
THRESHOLDS_R = np.array([0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0])


def run_experiment():
    pooled = {name: [] for name in METHODS}
    for seed in spawn_seeds(50, N_TRIALS):
        net, ms, prior = build_scenario(CFG, seed)
        unknown = ~net.anchor_mask
        for name, factory in METHODS.items():
            res = factory(prior).localize(ms, rng=0)
            pooled[name].extend(res.errors(net.positions)[unknown].tolist())
    return {
        name: cdf_at(np.array(errs), THRESHOLDS_R * CFG.radio_range)
        for name, errs in pooled.items()
    }


def test_e5_error_cdf(benchmark):
    cdfs = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(
        "e5_error_cdf",
        format_series(
            "err<=x*r",
            [f"{t:.2f}" for t in THRESHOLDS_R],
            {name: list(vals) for name, vals in cdfs.items()},
            title=f"E5: error CDF, fraction of nodes within x*r ({N_TRIALS} trials pooled)",
        ),
    )
    # stochastic dominance of bn-pk at the quoted thresholds
    for other in ("bn", "dv-hop", "mds-map"):
        assert all(
            pk >= o - 0.03 for pk, o in zip(cdfs["bn-pk"], cdfs[other])
        ), other
    # the classic headline row: nodes within 0.5 r
    i = list(THRESHOLDS_R).index(0.5)
    assert cdfs["bn-pk"][i] > 0.8
