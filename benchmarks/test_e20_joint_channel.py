"""E20 — joint channel/position inference vs fixed-exponent miscalibration.

The deployment's true path-loss exponent η sweeps across [2, 4] while the
radio's compiled-in inversion exponent stays at η̂₀ = 3.  Reconstructed
claim: a fixed-η likelihood is only as good as its calibration — at the
sweep's ends the ±1 exponent error turns RSSI ranging into a power-law
distortion and the fixed arm degrades ≥2× against the matched oracle —
while joint inference (``bn-pk-joint``: discrete-η EM around batched
grid-BP, NLOS indicators marginalized) tracks the oracle across the whole
axis without being told η.

Also writes the machine-readable per-arm curves to ``BENCH_e20.json`` at
the repo root so the RMSE-ratio acceptance gates are inspectable.
"""

import dataclasses
import json
from pathlib import Path

import numpy as np
from conftest import report

from repro.baselines import MLELocalizer
from repro.core import (
    GridBPConfig,
    GridBPLocalizer,
    JointChannelConfig,
    JointChannelLocalizer,
)
from repro.experiments import ChannelConfig, ScenarioConfig, build_scenario
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_series

TRUE_ETAS = [2.0, 3.0, 4.0]
ASSUMED = 3.0
BASE = ScenarioConfig(
    n_nodes=60,
    anchor_ratio=0.12,
    radio_range=0.25,
    ranging="rssi",
    pk_error=None,
)
BP_CFG = GridBPConfig(grid_size=14, max_iterations=10, backend="batched")
JOINT_CFG = JointChannelConfig(grid=BP_CFG, em_iterations=2)
N_TRIALS = 2


def run_experiment():
    curves = {m: [] for m in ("bn-pk-joint", "bn-oracle", "bn-miscal", "mle")}
    for eta in TRUE_ETAS:
        cfg = BASE.replace(
            channel=ChannelConfig(
                path_loss_exponent=eta,
                assumed_exponent=ASSUMED,
                shadowing_db=2.0,
            )
        )
        errs = {m: [] for m in curves}
        for seed in spawn_seeds(200, N_TRIALS):
            net, ms, prior = build_scenario(cfg, seed)
            unknown = ~net.anchor_mask

            def err_of(result):
                e = result.errors(net.positions)[unknown] / net.radio_range
                return float(np.nanmean(e))

            # the scenario's own ranging IS the matched fixed-η likelihood
            errs["bn-oracle"].append(
                err_of(GridBPLocalizer(prior=prior, config=BP_CFG).localize(ms))
            )
            # a receiver that trusts its compiled-in η̂₀ as the channel η
            ms_mis = dataclasses.replace(
                ms, ranging=ms.ranging.with_exponent(ASSUMED)
            )
            errs["bn-miscal"].append(
                err_of(
                    GridBPLocalizer(prior=prior, config=BP_CFG).localize(ms_mis)
                )
            )
            errs["bn-pk-joint"].append(
                err_of(
                    JointChannelLocalizer(
                        prior=prior, config=JOINT_CFG
                    ).localize(ms_mis)
                )
            )
            errs["mle"].append(err_of(MLELocalizer().localize(ms_mis, rng=0)))
        for m in curves:
            curves[m].append(float(np.mean(errs[m])))
    return curves


def test_e20_joint_channel(benchmark):
    curves = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(
        "e20_joint_channel",
        format_series(
            "true_eta",
            TRUE_ETAS,
            curves,
            title="E20: mean error / r vs true path-loss exponent "
            f"(inversion eta0 = {ASSUMED}, {N_TRIALS} trials)",
        ),
    )
    bench = {
        "true_etas": TRUE_ETAS,
        "assumed_exponent": ASSUMED,
        "n_trials": N_TRIALS,
        "curves": curves,
        "joint_vs_oracle_ratio": [
            j / o for j, o in zip(curves["bn-pk-joint"], curves["bn-oracle"])
        ],
        "miscal_vs_oracle_ratio": [
            m / o for m, o in zip(curves["bn-miscal"], curves["bn-oracle"])
        ],
    }
    bench_path = Path(__file__).resolve().parent.parent / "BENCH_e20.json"
    bench_path.write_text(json.dumps(bench, indent=2) + "\n")

    # joint inference stays within 15% of the matched oracle everywhere,
    # despite starting from the miscalibrated receiver's observations
    for ratio in bench["joint_vs_oracle_ratio"]:
        assert ratio <= 1.15
    # the fixed miscalibrated likelihood pays for its wrong exponent:
    # at least one end of the sweep degrades >= 2x against the oracle
    assert max(bench["miscal_vs_oracle_ratio"]) >= 2.0
    # at the matched point (true eta == eta0) miscal IS the oracle
    i = TRUE_ETAS.index(ASSUMED)
    assert bench["miscal_vs_oracle_ratio"][i] < 1.1
    # joint beats the miscalibrated fixed arm where it matters most
    worst = int(np.argmax(bench["miscal_vs_oracle_ratio"]))
    assert curves["bn-pk-joint"][worst] < curves["bn-miscal"][worst]
