"""E1 — localization error vs anchor ratio (the headline figure).

Reconstructed claim: the Bayesian-network localizer with pre-knowledge
(bn-pk) dominates the same inference without it (bn) and the classic
baselines, with the largest margin at *low* anchor density; all methods
improve and the gap narrows as anchors become plentiful.
"""

from conftest import report

from repro.experiments import ScenarioConfig, run_sweep, standard_methods, sweep_table

RATIOS = [0.05, 0.10, 0.15, 0.20, 0.30]
BASE = ScenarioConfig(n_nodes=80, radio_range=0.2, noise_ratio=0.1, pk_error=0.1)
METHODS = standard_methods(
    grid_size=16,
    max_iterations=10,
    include=["bn-pk", "bn", "dv-hop", "mds-map", "centroid"],
)
N_TRIALS = 5


def run_experiment():
    return run_sweep(BASE, "anchor_ratio", RATIOS, METHODS, N_TRIALS, seed=10)


def test_e1_anchor_ratio(benchmark):
    sweep = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(
        "e1_anchor_ratio",
        sweep_table(
            sweep,
            title="E1: mean error / r vs anchor ratio "
            f"(n={BASE.n_nodes}, sigma=0.1r, {N_TRIALS} trials)",
        ),
    )
    s = sweep.series("mean_error_norm")
    # pre-knowledge helps at every operating point
    assert all(pk <= no + 0.02 for pk, no in zip(s["bn-pk"], s["bn"]))
    # headline: bn-pk wins at the lowest anchor density
    others = ["bn", "dv-hop", "mds-map", "centroid"]
    assert s["bn-pk"][0] == min(s[m][0] for m in ["bn-pk", *others])
    # every method improves from scarce to plentiful anchors
    for m in ("bn-pk", "bn", "dv-hop", "centroid"):
        assert s[m][-1] < s[m][0]
    # the pre-knowledge margin shrinks as anchors grow
    assert (s["bn"][0] - s["bn-pk"][0]) >= (s["bn"][-1] - s["bn-pk"][-1]) - 0.02
