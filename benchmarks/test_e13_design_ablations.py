"""E13 — ablations of the solver's design choices (DESIGN.md call-outs).

One scenario, paired trials, one row per variant of the grid-BP solver:

* full — the default configuration,
* no hop bounds — drop multi-hop anchor reachability from the unaries,
* no negative evidence — ignore silent anchors,
* no quantization blur — raw (aliasing-prone) likelihoods,
* no damping / heavy damping — message update step size,
* serial schedule — Gauss–Seidel instead of flooding,
* +refine — continuous Gauss–Seidel polish of the estimates,
* multires — coarse-to-fine ladder instead of single resolution.

Expected shape: negative evidence is the dominant safeguard at this
operating point (silent anchors carve away the wrong joint modes); hop
bounds are largely redundant *given* negative evidence (they matter when
it is unavailable — e.g. asymmetric-detection radios); blur matters at
this noise level only mildly; refine strictly helps; the rest are
second-order.
"""

import time
from dataclasses import replace

import numpy as np
from conftest import report

from repro.core import (
    GridBPConfig,
    GridBPLocalizer,
    MultiResolutionLocalizer,
    refine_estimates,
)
from repro.experiments import ScenarioConfig, build_scenario
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_table

# No pre-knowledge here: the engine's own design choices show most clearly
# without a strong prior masking them (E8/E1 cover the prior's role).
CFG = ScenarioConfig(
    n_nodes=80, anchor_ratio=0.1, radio_range=0.2, noise_ratio=0.1, pk_error=None
)
BASE = GridBPConfig(grid_size=16, max_iterations=10)
N_TRIALS = 5

VARIANTS = {
    "full (default)": BASE,
    "no hop bounds": replace(BASE, use_hop_bounds=False),
    "no negative evidence": replace(BASE, use_negative_evidence=False),
    "no quantization blur": replace(BASE, cell_blur_fraction=0.0),
    "no damping": replace(BASE, damping=0.0),
    "heavy damping (0.5)": replace(BASE, damping=0.5),
    "serial schedule": replace(BASE, schedule="serial"),
}


def run_experiment():
    rows = {name: {"mean": [], "p90": [], "time": []} for name in VARIANTS}
    rows["+refine"] = {"mean": [], "p90": [], "time": []}
    rows["multires 8/16"] = {"mean": [], "p90": [], "time": []}
    for seed in spawn_seeds(130, N_TRIALS):
        net, ms, _ = build_scenario(CFG, seed)
        unknown = ~net.anchor_mask

        def record(name, result, elapsed):
            err = result.errors(net.positions)[unknown] / net.radio_range
            rows[name]["mean"].append(np.nanmean(err))
            rows[name]["p90"].append(np.nanpercentile(err, 90))
            rows[name]["time"].append(elapsed)

        base_result = None
        for name, cfg in VARIANTS.items():
            t0 = time.perf_counter()
            res = GridBPLocalizer(config=cfg).localize(ms)
            record(name, res, time.perf_counter() - t0)
            if name == "full (default)":
                base_result = res
                base_time = rows[name]["time"][-1]
        t0 = time.perf_counter()
        refined = refine_estimates(ms, base_result)
        record("+refine", refined, base_time + time.perf_counter() - t0)
        t0 = time.perf_counter()
        multi = MultiResolutionLocalizer(levels=(8, 16), config=BASE).localize(ms)
        record("multires 8/16", multi, time.perf_counter() - t0)
    return {
        name: (
            float(np.mean(v["mean"])),
            float(np.mean(v["p90"])),
            float(np.mean(v["time"])),
        )
        for name, v in rows.items()
    }


def test_e13_design_ablations(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table_rows = [[name, m, p, t] for name, (m, p, t) in out.items()]
    report(
        "e13_design_ablations",
        format_table(
            ["variant", "mean_err/r", "p90_err/r", "runtime_s"],
            table_rows,
            title=f"E13: grid-BP design ablations (paired {N_TRIALS} trials)",
        ),
    )
    full_mean, full_p90, _ = out["full (default)"]
    # negative evidence is the dominant safeguard: removing it blows up
    # both the mean and the tail
    assert out["no negative evidence"][0] > full_mean + 0.1
    assert out["no negative evidence"][1] > full_p90
    # hop bounds are redundant given negative evidence: within noise
    assert abs(out["no hop bounds"][0] - full_mean) < 0.1
    # refinement strictly improves the point estimate
    assert out["+refine"][0] < full_mean
    # remaining knobs are second-order: within a noise band of the default
    for name in ("no quantization blur", "no damping", "heavy damping (0.5)",
                 "serial schedule"):
        assert abs(out[name][0] - full_mean) < 0.1, name
    # multires stays in the same accuracy class as single-resolution
    assert out["multires 8/16"][0] < full_mean + 0.05
