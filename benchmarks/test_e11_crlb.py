"""E11 — distance to the Cramér–Rao lower bound.

Reconstructed claim: the Bayesian estimator's error tracks the CRLB's
*shape* across noise levels and respects the bound.  Two care points make
this comparison honest:

* the bound counts ranging (+ optional prior) information only, so the
  estimator is run *information-matched* — negative evidence, hop bounds
  and link-detection side-information disabled — otherwise it can
  legitimately dip under the ranging-only bound;
* per-node bounds are aggregated by median: poorly-constrained nodes
  (near-collinear link geometry) have enormous finite bounds that would
  swamp a mean.
"""

import numpy as np
from conftest import report

from repro.core import GridBPConfig, GridBPLocalizer, MCMCConfig, MCMCLocalizer
from repro.experiments import ScenarioConfig, build_scenario
from repro.metrics import cooperative_crlb
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_table

NOISE = [0.05, 0.10, 0.20]
BASE = ScenarioConfig(n_nodes=60, anchor_ratio=0.15, radio_range=0.22, pk_error=0.08)
# Information-matched estimator: exactly the ranging (+ prior) data the
# bound accounts for.
BP_CFG = GridBPConfig(
    grid_size=20,
    max_iterations=10,
    use_negative_evidence=False,
    use_hop_bounds=False,
    use_connectivity_in_ranging=False,
)
# The continuous sampler's lane, information-matched the same way.  Unlike
# the grid its error carries no quantization floor, so it can sit closer
# to the bound at low noise.
MCMC_CFG = MCMCConfig(
    n_samples=200,
    burn_in=120,
    step_scale=0.25,
    use_negative_evidence=False,
    use_connectivity_in_ranging=False,
)
N_TRIALS = 4


def run_experiment():
    rows = []
    for nr in NOISE:
        cfg = BASE.replace(noise_ratio=nr)
        bound_c, bound_b, err_bn, err_pk, err_mc = [], [], [], [], []
        for seed in spawn_seeds(110, N_TRIALS):
            net, ms, prior = build_scenario(cfg, seed)
            unknown = ~net.anchor_mask
            ranging = cfg.make_ranging()
            b = cooperative_crlb(net, ranging)[unknown]
            bound_c.append(np.median(b[np.isfinite(b)]))
            bb = cooperative_crlb(net, ranging, prior_sigma=cfg.pk_error)[unknown]
            bound_b.append(np.median(bb))
            for err_list, p in ((err_bn, None), (err_pk, prior)):
                res = GridBPLocalizer(prior=p, config=BP_CFG).localize(ms)
                err = res.errors(net.positions)[unknown]
                err_list.append(np.nanmedian(err))
            res = MCMCLocalizer(prior=prior, config=MCMC_CFG).localize(
                ms, np.random.default_rng(seed)
            )
            err_mc.append(np.nanmedian(res.errors(net.positions)[unknown]))
        rows.append(
            [
                nr,
                float(np.mean(bound_c)),
                float(np.mean(err_bn)),
                float(np.mean(bound_b)),
                float(np.mean(err_pk)),
                float(np.mean(err_mc)),
            ]
        )
    return rows


def test_e11_crlb(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(
        "e11_crlb",
        format_table(
            [
                "sigma/r",
                "CRLB med",
                "bn med err",
                "CRLB+prior med",
                "bn-pk med err",
                "mcmc-pk med err",
            ],
            rows,
            title="E11: information-matched estimator error vs Cramér–Rao "
            f"bounds, median-aggregated ({N_TRIALS} trials)",
            precision=4,
        ),
    )
    for nr, crlb, bn, bcrlb, pk, mc in rows:
        # estimators respect their information bounds (0.9 = trial noise slack)
        assert bn > 0.9 * crlb, (nr, bn, crlb)
        assert pk > 0.9 * bcrlb, (nr, pk, bcrlb)
        assert mc > 0.9 * bcrlb, (nr, mc, bcrlb)
    for nr, crlb, bn, bcrlb, pk, mc in rows:
        # the prior-augmented bound is tighter than the classical one
        assert bcrlb <= crlb + 1e-9
    # both bound and estimator grow with noise (shape tracking)
    assert rows[-1][1] > rows[0][1]
    assert rows[-1][2] > rows[0][2]
