"""E9 — irregular (C-shaped) deployment.

Reconstructed claim: hop-count and shortest-path methods (DV-Hop, MDS-MAP)
degrade badly on concave topologies because paths detour around the void;
the Bayesian localizer, which only uses local link geometry, degrades
least.  The free region prior ("nodes are on the C") helps in the median;
its mean can be moved by rare joint mode flips of anchor-free clusters —
an honest multi-modality effect reported rather than hidden.
"""

import numpy as np
from conftest import report

from repro.core import GridBPConfig, GridBPLocalizer
from repro.baselines import DVHopLocalizer, MDSMAPLocalizer
from repro.experiments import ScenarioConfig, build_scenario
from repro.network.deployment import CShapeDeployment
from repro.priors import RegionPrior
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_table

N_TRIALS = 5
BP_CFG = GridBPConfig(grid_size=16, max_iterations=10)
SHAPES = {"uniform": None, "cshape": CShapeDeployment()}
METHOD_NAMES = ("bn-region", "bn", "dv-hop", "mds-map")


def run_experiment():
    out = {}
    for shape_name, shape in SHAPES.items():
        cfg = ScenarioConfig(
            n_nodes=100,
            anchor_ratio=0.12,
            radio_range=0.2,
            noise_ratio=0.1,
            deployment=shape_name if shape else "uniform",
            pk_error=None,  # isolate topology effects; PK via region prior
        )
        pooled = {m: [] for m in METHOD_NAMES}
        for seed in spawn_seeds(90, N_TRIALS):
            net, ms, _ = build_scenario(cfg, seed)
            unknown = ~net.anchor_mask
            region = RegionPrior(shape.contains) if shape else None
            methods = {
                "bn-region": GridBPLocalizer(prior=region, config=BP_CFG),
                "bn": GridBPLocalizer(config=BP_CFG),
                "dv-hop": DVHopLocalizer(),
                "mds-map": MDSMAPLocalizer(),
            }
            for name, loc in methods.items():
                res = loc.localize(ms, rng=0)
                err = res.errors(net.positions)[unknown] / net.radio_range
                pooled[name].extend(err[np.isfinite(err)].tolist())
        out[shape_name] = {
            m: (float(np.mean(v)), float(np.median(v))) for m, v in pooled.items()
        }
    return out


def test_e9_cshape(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for m in METHOD_NAMES:
        u_mean, u_med = out["uniform"][m]
        c_mean, c_med = out["cshape"][m]
        rows.append([m, u_mean, c_mean, c_mean / u_mean, u_med, c_med])
    report(
        "e9_cshape",
        format_table(
            [
                "method",
                "uniform mean/r",
                "cshape mean/r",
                "mean degr x",
                "uniform med/r",
                "cshape med/r",
            ],
            rows,
            title=f"E9: concave-topology robustness ({N_TRIALS} trials, pooled nodes; "
            "bn-region = plain bn on the uniform field)",
        ),
    )
    mean = {m: out["cshape"][m][0] / out["uniform"][m][0] for m in METHOD_NAMES}
    # hop/path methods degrade much more than the BN on the C-shape
    assert mean["dv-hop"] > mean["bn"]
    assert mean["mds-map"] > mean["bn"]
    # the BN stays the best absolute (mean) method on the C-shape
    assert out["cshape"]["bn"][0] < out["cshape"]["dv-hop"][0]
    assert out["cshape"]["bn"][0] < out["cshape"]["mds-map"][0]
    # the free region pre-knowledge helps the typical node (median)
    assert out["cshape"]["bn-region"][1] <= out["cshape"]["bn"][1] + 0.02
