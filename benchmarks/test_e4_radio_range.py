"""E4 — localization error vs radio range.

Reconstructed claim: a longer radio range buys connectivity (more
constraints per node, better coverage) at fixed node count, so errors and
coverage improve with range; sparse-connectivity points favor bn-pk most.
Networks are *not* forced connected here — coverage is part of the story.
"""

from conftest import report

from repro.experiments import ScenarioConfig, run_sweep, standard_methods, sweep_table

RANGES = [0.15, 0.20, 0.25, 0.30]
BASE = ScenarioConfig(
    n_nodes=80, anchor_ratio=0.1, noise_ratio=0.1, require_connected=False
)
METHODS = standard_methods(
    grid_size=16, max_iterations=10, include=["bn-pk", "bn", "dv-hop"]
)
N_TRIALS = 4


def run_experiment():
    return run_sweep(BASE, "radio_range", RANGES, METHODS, N_TRIALS, seed=40)


def test_e4_radio_range(benchmark):
    sweep = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    err = sweep_table(
        sweep,
        title="E4: mean error / r vs radio range "
        f"(n={BASE.n_nodes}, 10% anchors, {N_TRIALS} trials)",
    )
    cov = sweep_table(sweep, stat="coverage", title="E4b: coverage vs radio range")
    report("e4_radio_range", err + "\n\n" + cov)
    s = sweep.series("mean_error_norm")
    c = sweep.series("coverage")
    # normalized error improves (or coverage does) as range grows
    assert s["bn-pk"][-1] < s["bn-pk"][0]
    for m in ("bn-pk", "bn", "dv-hop"):
        assert c[m][-1] >= c[m][0] - 0.02
    assert all(pk <= no + 0.02 for pk, no in zip(s["bn-pk"], s["bn"]))
