"""E15 — sensor fusion: ranges, bearings, and both (extension experiment).

Angle-of-arrival hardware gives each link a bearing; the Bayesian network
fuses it with ranging by simply multiplying the corresponding potentials.
Reconstructed claim: bearings alone localize (rays triangulate), fusion
beats either modality, and the fusion benefit grows as the *range*
information degrades (high σ) — the classic complementary-sensors story.
"""

import numpy as np
from conftest import report

from repro.core import GridBPConfig, GridBPLocalizer
from repro.experiments import ScenarioConfig, build_scenario
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_series

NOISE = [0.05, 0.15, 0.30]
BEARING_SIGMA = 0.15  # ~8.6 degrees
BASE = ScenarioConfig(
    n_nodes=70, anchor_ratio=0.1, radio_range=0.22, pk_error=None
)
BP_CFG = GridBPConfig(grid_size=16, max_iterations=8)
N_TRIALS = 4


def run_experiment():
    curves = {"range-only": [], "aoa-only": [], "range+aoa": []}
    for nr in NOISE:
        errs = {m: [] for m in curves}
        variants = {
            "range-only": BASE.replace(noise_ratio=nr),
            "aoa-only": BASE.replace(ranging="none", bearing_sigma=BEARING_SIGMA),
            "range+aoa": BASE.replace(noise_ratio=nr, bearing_sigma=BEARING_SIGMA),
        }
        for seed in spawn_seeds(150, N_TRIALS):
            for name, cfg in variants.items():
                net, ms, _ = build_scenario(cfg, seed)
                unknown = ~net.anchor_mask
                res = GridBPLocalizer(config=BP_CFG).localize(ms)
                e = res.errors(net.positions)[unknown] / net.radio_range
                errs[name].append(float(np.nanmean(e)))
        for m in curves:
            curves[m].append(float(np.mean(errs[m])))
    return curves


def test_e15_sensor_fusion(benchmark):
    curves = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(
        "e15_sensor_fusion",
        format_series(
            "range_sigma/r",
            NOISE,
            curves,
            title="E15: mean error / r — ranging vs AoA vs fused "
            f"(bearing sigma {BEARING_SIGMA} rad, {N_TRIALS} trials)",
        ),
    )
    for i in range(len(NOISE)):
        # fusion beats both single modalities at every noise level
        assert curves["range+aoa"][i] <= curves["range-only"][i] + 0.01
        assert curves["range+aoa"][i] <= curves["aoa-only"][i] + 0.01
    # AoA-only is range-noise independent (same at every x by construction)
    assert max(curves["aoa-only"]) - min(curves["aoa-only"]) < 0.05
    # the fusion margin over range-only grows with range noise
    margin = [r - f for r, f in zip(curves["range-only"], curves["range+aoa"])]
    assert margin[-1] > margin[0]
