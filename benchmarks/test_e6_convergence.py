"""E6 — convergence: error vs BP iteration, with and without pre-knowledge.

Reconstructed claim: error drops sharply in the first few cooperative
rounds and plateaus within ~10 iterations; pre-knowledge both *starts*
lower (iteration 0 = prior + anchor evidence only) and *converges* lower.

Both the error curve (per-iteration estimate snapshots) and the message
residual curve are read off the solver's own instrumentation
(``record_trace`` + an attached :class:`repro.obs.Tracer`), not recomputed
here.
"""

import numpy as np
from conftest import report

from repro.core import GridBPConfig, GridBPLocalizer
from repro.experiments import ScenarioConfig, build_scenario
from repro.metrics import error_per_iteration
from repro.obs import Tracer
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_series

CFG = ScenarioConfig(n_nodes=80, anchor_ratio=0.1, radio_range=0.2, noise_ratio=0.1)
N_ITER = 12
N_TRIALS = 5
BP_CFG = GridBPConfig(
    grid_size=16, max_iterations=N_ITER, tol=1e-12, record_trace=True
)


def run_experiment():
    curves = {"bn-pk": [], "bn": []}
    residuals = []
    for seed in spawn_seeds(60, N_TRIALS):
        net, ms, prior = build_scenario(CFG, seed)
        unknown = ~net.anchor_mask
        for name, p in (("bn-pk", prior), ("bn", None)):
            tracer = Tracer()
            res = GridBPLocalizer(prior=p, config=BP_CFG, tracer=tracer).localize(ms)
            curve = error_per_iteration(res, net.positions, unknown)
            curves[name].append(curve / net.radio_range)
            if name == "bn-pk":
                residuals.append(
                    [rec["residual"] for rec in res.telemetry["iterations"]]
                )
    mean_curves = {name: np.mean(np.stack(cs), axis=0) for name, cs in curves.items()}
    mean_residuals = np.mean(np.stack(residuals), axis=0)
    return mean_curves, mean_residuals


def test_e6_convergence(benchmark):
    curves, residuals = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    series = {k: list(v) for k, v in curves.items()}
    # residual has no iteration-0 entry (no messages yet): pad for the table
    series["bp-pk residual"] = [float("nan")] + list(residuals)
    report(
        "e6_convergence",
        format_series(
            "iteration",
            list(range(N_ITER + 1)),
            series,
            title=f"E6: mean error / r vs BP iteration ({N_TRIALS} trials)",
        ),
    )
    for name, curve in curves.items():
        # cooperation improves on the unary-only estimate...
        assert curve[-1] < curve[0]
        # ...and has essentially plateaued by iteration 10
        assert abs(curve[10] - curve[-1]) < 0.05
    # pre-knowledge starts lower and ends lower
    assert curves["bn-pk"][0] < curves["bn"][0]
    assert curves["bn-pk"][-1] < curves["bn"][-1] + 0.02
    # the traced residual curve covers every executed iteration and ends
    # below where it started (messages settle as estimates do)
    assert len(residuals) == N_ITER
    assert np.all(residuals >= 0)
    assert residuals[-1] < residuals[0]
