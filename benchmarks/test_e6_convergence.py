"""E6 — convergence: error vs BP iteration, with and without pre-knowledge.

Reconstructed claim: error drops sharply in the first few cooperative
rounds and plateaus within ~10 iterations; pre-knowledge both *starts*
lower (iteration 0 = prior + anchor evidence only) and *converges* lower.
"""

import numpy as np
from conftest import report

from repro.core import GridBPConfig, GridBPLocalizer
from repro.experiments import ScenarioConfig, build_scenario
from repro.metrics import error_per_iteration
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_series

CFG = ScenarioConfig(n_nodes=80, anchor_ratio=0.1, radio_range=0.2, noise_ratio=0.1)
N_ITER = 12
N_TRIALS = 5
BP_CFG = GridBPConfig(
    grid_size=16, max_iterations=N_ITER, tol=1e-12, record_trace=True
)


def run_experiment():
    curves = {"bn-pk": [], "bn": []}
    for seed in spawn_seeds(60, N_TRIALS):
        net, ms, prior = build_scenario(CFG, seed)
        unknown = ~net.anchor_mask
        for name, p in (("bn-pk", prior), ("bn", None)):
            res = GridBPLocalizer(prior=p, config=BP_CFG).localize(ms)
            curve = error_per_iteration(res, net.positions, unknown)
            curves[name].append(curve / net.radio_range)
    return {name: np.mean(np.stack(cs), axis=0) for name, cs in curves.items()}


def test_e6_convergence(benchmark):
    curves = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(
        "e6_convergence",
        format_series(
            "iteration",
            list(range(N_ITER + 1)),
            {k: list(v) for k, v in curves.items()},
            title=f"E6: mean error / r vs BP iteration ({N_TRIALS} trials)",
        ),
    )
    for name, curve in curves.items():
        # cooperation improves on the unary-only estimate...
        assert curve[-1] < curve[0]
        # ...and has essentially plateaued by iteration 10
        assert abs(curve[10] - curve[-1]) < 0.05
    # pre-knowledge starts lower and ends lower
    assert curves["bn-pk"][0] < curves["bn"][0]
    assert curves["bn-pk"][-1] < curves["bn"][-1] + 0.02
