"""E21 — fleet-scale streaming tracking under chaos (extension experiment).

Two lanes against the :mod:`repro.stream` runtime:

* **throughput** — a clean step-major feed from 100+ concurrent mobile
  networks, solved in-process.  Reports sustained belief updates/sec and
  p99 staleness, and compares the warm-started path (previous posterior,
  motion-diffused, few BP iterations) against two memoryless cold
  baselines at full iterations: the *same grid* (cheaper but far less
  accurate) and the *accuracy-matched grid* — the resolution a cold
  solver needs just to approach the warm path's error.  The warm path
  must be ≥2× faster than the accuracy-matched baseline while being at
  least as accurate as both, with E16-style tracking coverage preserved:
  temporal pre-knowledge buys accuracy-per-compute that memoryless
  re-solving cannot reach by spending more grid.
* **chaos** — a smaller fleet on a 2-worker spawn pool with ≥10% of
  events late/duplicated/dropped, a `FaultPlan` degrading a subset of
  networks, and one worker SIGKILLed mid-run.  Gated on the tentpole
  contract: zero lost networks, the murdered worker replaced, and the
  run's ckpt ledger resuming bit-identically without workers.

Results land in ``BENCH_e21.json`` at the repo root.
"""

import json
import os
import signal
import tempfile
import threading
import time
from pathlib import Path

import numpy as np
import pytest
from conftest import report

from repro.ckpt import Checkpoint
from repro.core.bnloc import GridBPConfig
from repro.faults import FaultPlan
from repro.serve.workers import execute_batch
from repro.stream import (
    FleetConfig,
    InlineExecutor,
    StreamConfig,
    StreamDisruption,
    StreamMetrics,
    StreamRuntime,
    StreamWorkerPool,
    fleet_events,
    run_stream,
    stream_meta,
)

SEED = 21

# --- throughput lane: 100 networks, clean feed, inline ----------------- #
THROUGHPUT_FLEET = FleetConfig(
    n_networks=100,
    n_nodes=12,
    anchor_ratio=0.3,
    n_steps=5,
    radio_range=0.4,
    noise_sigma=0.02,
    step_sigma=0.025,
    seed=SEED,
)
THROUGHPUT_STREAM = StreamConfig(
    grid_size=12,
    warm_iterations=2,
    cold_iterations=10,
    batch_max=32,
    max_ready_burst=8,
)
#: Cold baselines: same grid at full iterations (cheaper but much less
#: accurate), and the grid a memoryless solver needs to *approach* the
#: warm path's accuracy — the honest "matched accuracy" comparison.
COLD_SAME_GRID = 12
COLD_MATCHED_GRID = 20

# --- chaos lane: hostile feed + faults + worker murder ----------------- #
CHAOS_FLEET = FleetConfig(
    n_networks=24,
    n_nodes=12,
    anchor_ratio=0.3,
    n_steps=3,
    radio_range=0.4,
    noise_sigma=0.02,
    step_sigma=0.025,
    seed=SEED,
    fault_plan=FaultPlan(
        anchor_failure_rate=0.4,
        link_loss_rate=0.25,
        outlier_fraction=0.25,
        outlier_bias_ratio=1.5,
        seed=5,
    ),
    faulted_networks=(0, 1, 2),
)
CHAOS_STREAM = StreamConfig(
    grid_size=12,
    warm_iterations=3,
    cold_iterations=10,
    batch_max=32,
    max_ready_burst=8,
    n_workers=2,
)
CHAOS_PLAN = StreamDisruption(
    late_rate=0.1, duplicate_rate=0.05, drop_rate=0.05, max_lag=6, seed=3
)


def _fleet_accuracy_and_coverage(result, events, fleet):
    """Mean final-step error (radio-normalized) over unknowns, plus the
    E16-style coverage: localized-and-not-degraded step fraction."""
    truth = {}
    anchors = {}
    for e in events:
        truth[(e.network_id, e.step)] = e.true_positions
        anchors[e.network_id] = e.measurements.anchor_mask
    errs, covered, total = [], 0, 0
    for nid, tr in result.networks.items():
        unknown = ~anchors[nid]
        t_final = tr.estimates.shape[0] - 1
        pos = truth.get((nid, t_final))
        if pos is not None:
            e = np.linalg.norm(tr.estimates[t_final] - pos, axis=1)[unknown]
            errs.extend(e[np.isfinite(e)] / fleet.radio_range)
        good = tr.localized & ~tr.extras["degraded"][:, None]
        covered += int(good[:, unknown].sum())
        total += int(good[:, unknown].size)
    return float(np.mean(errs)), covered / total


def _cold_baseline(events, fleet, stream, grid_size):
    """Memoryless re-localization: every epoch solved cold at full
    iterations, batched per step exactly like the runtime batches."""
    cfg = GridBPConfig(
        grid_size=grid_size, max_iterations=stream.cold_iterations
    )
    by_step: dict[int, list] = {}
    for e in events:
        by_step.setdefault(e.step, []).append(e)
    t0 = time.perf_counter()
    errs = []
    for step in sorted(by_step):
        epochs = by_step[step]
        for lo in range(0, len(epochs), stream.batch_max):
            chunk = epochs[lo : lo + stream.batch_max]
            items = [
                {"measurements": e.measurements, "config": cfg} for e in chunk
            ]
            payloads = execute_batch(items, None)
            if step == fleet.n_steps:
                for e, p in zip(chunk, payloads):
                    unknown = ~e.measurements.anchor_mask
                    err = np.linalg.norm(
                        np.asarray(p["estimates"]) - e.true_positions, axis=1
                    )[unknown]
                    errs.extend(err[np.isfinite(err)] / fleet.radio_range)
    elapsed = time.perf_counter() - t0
    n_updates = len(events)
    return {
        "grid_size": grid_size,
        "elapsed_s": round(elapsed, 3),
        "updates_per_sec": round(n_updates / elapsed, 1),
        "mean_error_final": round(float(np.mean(errs)), 4),
        "iterations": stream.cold_iterations,
    }


def _throughput_lane():
    events = fleet_events(THROUGHPUT_FLEET)
    result = run_stream(THROUGHPUT_FLEET, THROUGHPUT_STREAM)
    warm_err, coverage = _fleet_accuracy_and_coverage(
        result, events, THROUGHPUT_FLEET
    )
    cold_same = _cold_baseline(
        events, THROUGHPUT_FLEET, THROUGHPUT_STREAM, COLD_SAME_GRID
    )
    cold_matched = _cold_baseline(
        events, THROUGHPUT_FLEET, THROUGHPUT_STREAM, COLD_MATCHED_GRID
    )
    m = result.metrics
    warm = {
        "grid_size": THROUGHPUT_STREAM.grid_size,
        "elapsed_s": round(m["elapsed_s"], 3),
        "updates_per_sec": round(m["updates_per_sec"], 1),
        "staleness_ms": m["staleness_ms"],
        "mean_error_final": round(warm_err, 4),
        "coverage": round(coverage, 4),
        "iterations": THROUGHPUT_STREAM.warm_iterations,
        "counters": m["counters"],
    }
    return {
        "n_networks": THROUGHPUT_FLEET.n_networks,
        "n_updates": len(events),
        "warm": warm,
        "cold_same_grid": cold_same,
        "cold_matched": cold_matched,
        "speedup_vs_matched": round(
            cold_matched["elapsed_s"] / m["elapsed_s"], 2
        ),
        "lost_networks": result.lost_networks,
    }


def _chaos_lane(ledger_path):
    events = fleet_events(CHAOS_FLEET)
    hostile, stats = CHAOS_PLAN.apply(events)
    metrics = StreamMetrics()
    pool = StreamWorkerPool(
        CHAOS_STREAM.n_workers,
        timeout_s=CHAOS_STREAM.worker_timeout_s,
        metrics=metrics,
    )
    ck = Checkpoint(ledger_path).open(
        stream_meta(CHAOS_FLEET, CHAOS_STREAM, CHAOS_PLAN)
    )
    killed = {}

    def murder():
        pid = pool.worker_pids()[0]
        killed["pid"] = pid
        try:
            os.kill(pid, signal.SIGKILL)
        except OSError:  # pragma: no cover - worker already gone
            pass

    timer = threading.Timer(0.75, murder)
    timer.start()
    try:
        runtime = StreamRuntime(
            CHAOS_STREAM,
            executor=pool,
            checkpoint=ck,
            metrics=metrics,
            expected_networks=CHAOS_FLEET.n_networks,
        )
        result = runtime.run(
            hostile,
            final_step=CHAOS_FLEET.n_steps,
            network_ids=range(CHAOS_FLEET.n_networks),
            n_nodes=CHAOS_FLEET.n_nodes,
        )
    finally:
        timer.cancel()
        replacements = pool.replacements
        pool.close()
        ck.close()

    # Resume the chaos ledger without any workers: pure replay, and the
    # replayed fleet must be bit-identical to the live chaos run.
    ck2 = Checkpoint(ledger_path).open(
        stream_meta(CHAOS_FLEET, CHAOS_STREAM, CHAOS_PLAN)
    )
    try:
        resumed = StreamRuntime(
            CHAOS_STREAM,
            executor=InlineExecutor(),
            checkpoint=ck2,
            expected_networks=CHAOS_FLEET.n_networks,
        ).run(
            hostile,
            final_step=CHAOS_FLEET.n_steps,
            network_ids=range(CHAOS_FLEET.n_networks),
            n_nodes=CHAOS_FLEET.n_nodes,
        )
    finally:
        ck2.close()
    identical = all(
        np.array_equal(
            result.networks[nid].estimates, resumed.networks[nid].estimates
        )
        and np.array_equal(
            result.networks[nid].extras["degraded"],
            resumed.networks[nid].extras["degraded"],
        )
        for nid in result.networks
    )
    total_cells = CHAOS_FLEET.n_networks * (CHAOS_FLEET.n_steps + 1)
    m = result.metrics
    return {
        "n_networks": CHAOS_FLEET.n_networks,
        "faulted_networks": list(CHAOS_FLEET.faulted_networks),
        "disruption": {
            "n_events": stats.n_events,
            "n_delayed": stats.n_delayed,
            "n_duplicated": stats.n_duplicated,
            "n_dropped": stats.n_dropped,
            "disrupted_fraction": round(stats.disrupted_fraction, 3),
        },
        "killed_worker_pid": killed.get("pid"),
        "worker_replacements": replacements,
        "counters": m["counters"],
        "updates_per_sec": round(m["updates_per_sec"], 1),
        "staleness_ms": m["staleness_ms"],
        "lost_networks": result.lost_networks,
        "resume_replayed_all": resumed.metrics["counters"].get("replayed", 0)
        == total_cells,
        "resume_bit_identical": identical,
    }


def run_experiment():
    with tempfile.TemporaryDirectory() as tmp:
        return {
            "throughput_lane": _throughput_lane(),
            "chaos_lane": _chaos_lane(Path(tmp) / "chaos.jsonl"),
        }


@pytest.mark.perf
@pytest.mark.slow
@pytest.mark.stream
def test_e21_streaming(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    tp, chaos = out["throughput_lane"], out["chaos_lane"]
    warm = tp["warm"]
    cold_same, cold_matched = tp["cold_same_grid"], tp["cold_matched"]
    text = (
        f"E21: streaming tracking at {tp['n_networks']} concurrent networks "
        f"({tp['n_updates']} belief updates)\n"
        f"    warm: {warm['updates_per_sec']} updates/s "
        f"(grid {warm['grid_size']}, {warm['iterations']} BP iters, "
        f"warm-started), "
        f"staleness p50 {warm['staleness_ms']['p50']:.1f} ms "
        f"p99 {warm['staleness_ms']['p99']:.1f} ms, "
        f"final err {warm['mean_error_final']} r, "
        f"coverage {warm['coverage']}\n"
        f"    cold: same grid {cold_same['updates_per_sec']} updates/s at "
        f"err {cold_same['mean_error_final']} r; accuracy-matched "
        f"(grid {cold_matched['grid_size']}) "
        f"{cold_matched['updates_per_sec']} updates/s at "
        f"err {cold_matched['mean_error_final']} r "
        f"-> warm speedup {tp['speedup_vs_matched']}x\n"
        f"   chaos: {chaos['n_networks']} networks, "
        f"{chaos['disruption']['disrupted_fraction']:.0%} of events "
        f"late/dup/dropped, faults on {chaos['faulted_networks']}, "
        f"worker {chaos['killed_worker_pid']} SIGKILLed "
        f"({chaos['worker_replacements']} replacement(s)); "
        f"lost networks: {chaos['lost_networks']}; "
        f"ledger resume bit-identical: {chaos['resume_bit_identical']}"
    )
    report("e21_streaming", text)
    bench_path = Path(__file__).resolve().parent.parent / "BENCH_e21.json"
    bench_path.write_text(json.dumps(out, indent=2) + "\n")

    # --- throughput lane gates ---------------------------------------- #
    assert tp["n_networks"] >= 100
    assert tp["lost_networks"] == []
    assert warm["counters"]["solved"] == tp["n_updates"]
    # warm-started streaming is ≥2× faster than the cold re-solve that
    # comes closest to its accuracy (pre-knowledge buys compute) ...
    assert tp["speedup_vs_matched"] >= 2.0
    # ... at matched-or-better accuracy, not by corner-cutting: the warm
    # path is at least as accurate as BOTH cold baselines
    assert warm["mean_error_final"] <= cold_matched["mean_error_final"] + 0.01
    assert warm["mean_error_final"] <= cold_same["mean_error_final"] + 0.01
    # ... with E16-style tracking coverage preserved on a clean feed
    assert warm["coverage"] >= 0.99
    assert warm["staleness_ms"]["p99"] > 0

    # --- chaos lane gates: the tentpole contract ----------------------- #
    assert chaos["disruption"]["disrupted_fraction"] >= 0.10
    assert chaos["killed_worker_pid"] is not None
    assert chaos["worker_replacements"] >= 1
    assert chaos["lost_networks"] == []
    assert chaos["resume_replayed_all"]
    assert chaos["resume_bit_identical"]
