"""E18 — localization-as-a-service under fire: the robustness envelope.

Replays two request lanes against a live :mod:`repro.serve` server
(JSON lines over TCP, warm process-pool workers, micro-batching):

* **healthy + murdered worker** — clean synthetic scenarios; halfway
  through the run one worker process is SIGKILLed mid-traffic.  The
  pool must detect the crash, retry the in-flight batch on a surviving
  worker, and spawn a warm replacement — with **zero lost requests**.
* **fault-injected** — every request's measurements are first degraded
  through a seeded :class:`~repro.faults.FaultPlan` (anchor failures,
  link loss, outlier bursts) and carry a latency budget, exercising the
  degradation ladder (partial-BP answers, fallback estimates) under the
  same zero-lost contract.

The acceptance gate is the service's core invariant: every admitted
request gets a full answer or a flagged degraded/shed response — never
silence.  Throughput, latency percentiles, and shed/degraded counts for
both lanes are written to ``BENCH_e18.json`` at the repo root.
"""

import asyncio
import json
import os
import signal
from pathlib import Path

import pytest
from conftest import report

from repro.faults.plan import FaultPlan
from repro.serve import (
    LoadSpec,
    LocalizationServer,
    LocalizationService,
    ServeConfig,
    run_load,
)

SEED = 0
N_REQUESTS = 32
SERVE = ServeConfig(
    n_workers=2,
    queue_limit=24,
    max_batch=6,
    batch_window_s=0.01,
    probe_interval_s=0.2,
    exec_timeout_s=60.0,
)
HEALTHY = LoadSpec(
    n_requests=N_REQUESTS,
    concurrency=8,
    n_nodes=25,
    anchor_ratio=0.24,
    radio_range=0.35,
    grid_size=12,
    max_iterations=10,
    seed=SEED,
)
FAULTED = LoadSpec(
    n_requests=N_REQUESTS,
    concurrency=8,
    n_nodes=25,
    anchor_ratio=0.24,
    radio_range=0.35,
    grid_size=12,
    max_iterations=10,
    seed=SEED,
    deadline_s=10.0,
    fault_plan=FaultPlan(
        seed=7,
        anchor_failure_rate=0.25,
        link_loss_rate=0.15,
        outlier_fraction=0.1,
        outlier_bias_ratio=1.0,
    ),
)


def run_experiment():
    async def main():
        service = LocalizationService(SERVE)
        server = LocalizationServer(service)
        host, port = await server.start()

        killed = {}

        async def murder_worker():
            victim = next(iter(service.pool._workers.values()))
            killed["pid"] = victim.pid
            os.kill(victim.pid, signal.SIGKILL)

        healthy = await run_load(
            host, port, HEALTHY, mid_run_hook=murder_worker
        )
        replacements_after_kill = service.pool.replacements
        faulted = await run_load(host, port, FAULTED)
        metrics = service.metrics_snapshot()
        await server.stop()
        return {
            "healthy_lane": healthy.to_dict(),
            "faulted_lane": faulted.to_dict(),
            "killed_worker_pid": killed.get("pid"),
            "worker_replacements": replacements_after_kill,
            "server_metrics": {
                "counters": metrics["counters"],
                "batch": metrics["batch"],
                "latency_ms": metrics["latency_ms"],
            },
            "serve_config": {
                "n_workers": SERVE.n_workers,
                "queue_limit": SERVE.queue_limit,
                "max_batch": SERVE.max_batch,
                "batch_window_ms": SERVE.batch_window_s * 1e3,
            },
        }

    return asyncio.run(main())


def _lane_line(name, lane):
    lat = lane["latency_ms"] or {}
    return (
        f"{name:>8}: {lane['answered']}/{lane['n_requests']} answered "
        f"(ok {lane['statuses'].get('ok', 0)}, "
        f"degraded {lane['statuses'].get('degraded', 0)}, "
        f"final-shed {lane['statuses'].get('shed', 0)}), "
        f"lost {lane['lost']}, shed-retries {lane['shed_retries']}, "
        f"{lane['throughput_rps']} req/s, "
        f"p50 {lat.get('p50')} ms, p99 {lat.get('p99')} ms, "
        f"mean err {lane['mean_error_ok']}"
    )


@pytest.mark.perf
@pytest.mark.slow
def test_e18_serving(benchmark):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    healthy = out["healthy_lane"]
    faulted = out["faulted_lane"]
    text = (
        "E18: localization service under worker murder and fault "
        f"injection ({N_REQUESTS} requests/lane, {SERVE.n_workers} workers, "
        f"max batch {SERVE.max_batch})\n"
        + _lane_line("healthy", healthy)
        + "\n"
        + _lane_line("faulted", faulted)
        + f"\nSIGKILLed worker {out['killed_worker_pid']} mid-run; "
        f"{out['worker_replacements']} replacement(s) spawned; "
        f"degraded reasons (faulted lane): {faulted['degraded_reasons']}"
    )
    report("e18_serving", text)
    bench_path = Path(__file__).resolve().parent.parent / "BENCH_e18.json"
    bench_path.write_text(json.dumps(out, indent=2) + "\n")

    # --- the acceptance gate: zero lost requests in BOTH lanes --------- #
    assert healthy["lost"] == 0
    assert faulted["lost"] == 0
    # every request reached a terminal outcome
    for lane in (healthy, faulted):
        assert sum(lane["statuses"].values()) == lane["n_requests"]

    # the worker was really murdered and really replaced
    assert out["killed_worker_pid"] is not None
    assert out["worker_replacements"] >= 1

    # healthy lane answered everything (sheds are transient, retried)
    assert healthy["answered"] == healthy["n_requests"]
    assert healthy["statuses"].get("error", 0) == 0

    # faulted lane: every request answered (full or flagged degraded) —
    # measurement-level faults degrade accuracy, not availability
    assert faulted["answered"] == faulted["n_requests"]

    # the service actually micro-batched under concurrent load
    assert out["server_metrics"]["batch"]["max_size"] > 1

    # faults cost accuracy, visibly but not catastrophically
    assert faulted["mean_error_ok"] is None or (
        faulted["mean_error_ok"] > healthy["mean_error_ok"]
    )

    # latency telemetry is present and sane
    assert healthy["latency_ms"]["p50"] > 0
    assert healthy["latency_ms"]["p99"] >= healthy["latency_ms"]["p50"]
