"""E16 — mobile-network tracking (extension experiment).

Nodes move by a bounded random walk; anchors stay known.  Reconstructed
claim: carrying the posterior forward through a motion model (the temporal
form of pre-knowledge) beats both memoryless re-localization and the
classic range-free MCL baseline, and the advantage accumulates over the
first few steps then saturates.
"""

import numpy as np
from conftest import report

from repro.core import GridBPConfig, GridBPLocalizer
from repro.measurement import GaussianRanging, observe
from repro.mobility import MCLTracker, RandomWalkMobility, SequentialGridTracker
from repro.network import NetworkConfig, UnitDiskRadio, WSNetwork, generate_network
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_series

N_STEPS = 8
STEP_SIGMA = 0.025
RADIO = UnitDiskRadio(0.25)
BP_CFG = GridBPConfig(grid_size=16, max_iterations=6)
N_TRIALS = 3


def _memoryless(traj, anchor_mask, ranging, gen):
    errs = []
    for t in range(len(traj)):
        snap = WSNetwork(
            positions=traj[t],
            anchor_mask=anchor_mask,
            adjacency=RADIO.adjacency(traj[t], gen),
            radio_range=RADIO.range_,
        )
        ms = observe(snap, ranging, gen)
        res = GridBPLocalizer(config=BP_CFG).localize(ms, gen)
        e = res.errors(traj[t])[~anchor_mask]
        errs.append(float(np.nanmean(e)) / RADIO.range_)
    return np.array(errs)


def run_experiment():
    curves = {"bayes-tracker": [], "memoryless": [], "mcl": []}
    mcl_coverage = []
    ranging = GaussianRanging(0.02)
    for gen in spawn_generators(160, N_TRIALS):
        net = generate_network(
            NetworkConfig(
                n_nodes=50, anchor_ratio=0.15, radio=RADIO, require_connected=True
            ),
            gen,
        )
        traj = RandomWalkMobility(step_sigma=STEP_SIGMA).trajectory(
            net.positions, N_STEPS, gen
        )
        unknown = ~net.anchor_mask

        tracker = SequentialGridTracker(
            RADIO, ranging, motion_sigma=1.5 * STEP_SIGMA, config=BP_CFG
        )
        bayes = tracker.track(traj, net.anchor_mask, rng=gen)
        curves["bayes-tracker"].append(
            bayes.mean_error_per_step(traj, unknown) / RADIO.range_
        )

        curves["memoryless"].append(_memoryless(traj, net.anchor_mask, ranging, gen))

        mcl = MCLTracker(RADIO, v_max=4 * STEP_SIGMA, n_particles=100)
        mres = mcl.track(traj, net.anchor_mask, rng=gen)
        curves["mcl"].append(mres.mean_error_per_step(traj, unknown) / RADIO.range_)
        # Coverage counts only steps whose constraint filter succeeded:
        # degraded steps report an unfiltered fallback cloud, not a fix.
        good = mres.localized & ~mres.extras["degraded"]
        mcl_coverage.append(float(good[:, unknown].mean()))
    out = {m: np.mean(np.stack(v), axis=0) for m, v in curves.items()}
    out["mcl-coverage"] = float(np.mean(mcl_coverage))
    return out


def test_e16_mobile_tracking(benchmark):
    curves = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    mcl_coverage = curves.pop("mcl-coverage")
    report(
        "e16_mobile_tracking",
        format_series(
            "step",
            list(range(N_STEPS + 1)),
            {m: list(v) for m, v in curves.items()},
            title=f"E16: tracking error / r per step ({N_TRIALS} trials, "
            f"random walk sigma={STEP_SIGMA})",
        )
        + f"\nmcl coverage (degraded steps excluded): {mcl_coverage:.3f}",
    )
    steady = slice(3, None)
    bayes = curves["bayes-tracker"][steady].mean()
    memoryless = curves["memoryless"][steady].mean()
    mcl = curves["mcl"][steady].mean()
    # memory helps: the Bayesian tracker beats re-localizing from scratch
    assert bayes < memoryless + 0.02
    # range-free MCL is the weakest (it has no ranging at all)
    assert bayes < mcl
    # the tracker improves from its first step as history accumulates
    assert bayes < curves["bayes-tracker"][0]
