"""E8 — sensitivity to pre-knowledge quality.

Reconstructed claim: a calibrated prior helps; as the deployment record
acquires a systematic bias the benefit erodes gracefully, and a badly
wrong *confident* prior is worse than no prior at all — the classic
Bayesian failure mode the paper's "pre-knowledge" framing must own.

All offsets are evaluated on the *same* networks/measurements (paired
trials), so the no-PK reference is a single flat number and differences
are pure prior effects.
"""

import numpy as np
from conftest import report

from repro.core import GridBPConfig, GridBPLocalizer
from repro.experiments import ScenarioConfig, build_scenario
from repro.priors import PerNodePrior
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_table

OFFSETS = [0.0, 0.1, 0.2, 0.3, 0.4]
PK_SIGMA = 0.08  # the prior stays confident while the record drifts
CFG = ScenarioConfig(
    n_nodes=80, anchor_ratio=0.1, radio_range=0.2, noise_ratio=0.1, pk_error=PK_SIGMA
)
BP_CFG = GridBPConfig(grid_size=16, max_iterations=10)
N_TRIALS = 4


def run_experiment():
    pk_err = {o: [] for o in OFFSETS}
    no_pk = []
    for seed in spawn_seeds(80, N_TRIALS):
        net, ms, prior = build_scenario(CFG, seed)
        unknown = ~net.anchor_mask
        base = GridBPLocalizer(config=BP_CFG).localize(ms)
        no_pk.append(
            np.nanmean(base.errors(net.positions)[unknown]) / CFG.radio_range
        )
        for o in OFFSETS:
            shifted = PerNodePrior(
                prior._intended, sigma=PK_SIGMA, offset=(o, 0.0)
            )
            res = GridBPLocalizer(prior=shifted, config=BP_CFG).localize(ms)
            pk_err[o].append(
                np.nanmean(res.errors(net.positions)[unknown]) / CFG.radio_range
            )
    return {o: float(np.mean(v)) for o, v in pk_err.items()}, float(np.mean(no_pk))


def test_e8_prior_quality(benchmark):
    pk, no_pk = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [[o, pk[o], no_pk] for o in OFFSETS]
    report(
        "e8_prior_quality",
        format_table(
            ["pk_offset", "bn-pk err/r", "bn (no PK) err/r"],
            rows,
            title="E8: pre-knowledge bias sensitivity "
            f"(prior sigma fixed at {PK_SIGMA}, paired {N_TRIALS} trials)",
        ),
    )
    # calibrated pre-knowledge helps
    assert pk[0.0] < no_pk
    # degradation grows with the bias
    assert pk[0.4] > pk[0.2] > pk[0.0]
    # a badly biased confident prior is WORSE than no pre-knowledge
    assert pk[0.4] > no_pk
