"""E2 — localization error vs node density (connectivity).

Reconstructed claim: denser networks give every cooperative method more
constraints, so error falls with n; the Bayesian methods exploit the extra
links best, and pre-knowledge matters most in sparse networks.
"""

from conftest import report

from repro.experiments import ScenarioConfig, run_sweep, standard_methods, sweep_table

SIZES = [50, 80, 120, 180]
BASE = ScenarioConfig(anchor_ratio=0.1, radio_range=0.2, noise_ratio=0.1)
METHODS = standard_methods(
    grid_size=16, max_iterations=10, include=["bn-pk", "bn", "dv-hop"]
)
N_TRIALS = 4


def run_experiment():
    return run_sweep(BASE, "n_nodes", SIZES, METHODS, N_TRIALS, seed=20)


def test_e2_density(benchmark):
    sweep = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(
        "e2_density",
        sweep_table(
            sweep,
            title="E2: mean error / r vs node count "
            f"(10% anchors, sigma=0.1r, {N_TRIALS} trials)",
        ),
    )
    s = sweep.series("mean_error_norm")
    # density helps every cooperative method end-to-end
    for m in ("bn-pk", "bn", "dv-hop"):
        assert s[m][-1] < s[m][0]
    # pre-knowledge never hurts, and bn-pk leads in the sparsest setting
    assert all(pk <= no + 0.02 for pk, no in zip(s["bn-pk"], s["bn"]))
    assert s["bn-pk"][0] <= min(s["bn"][0], s["dv-hop"][0])
