"""E3 — localization error vs ranging-noise level.

Reconstructed claim: all range-based methods degrade as σ grows; the
Bayesian methods degrade gracefully because the potentials widen with the
modeled noise, and pre-knowledge provides a floor that keeps bn-pk ahead
at high noise (the prior carries information the measurements lose).
"""

from conftest import report

from repro.experiments import ScenarioConfig, run_sweep, standard_methods, sweep_table

NOISE = [0.02, 0.05, 0.10, 0.20, 0.30]
BASE = ScenarioConfig(n_nodes=80, anchor_ratio=0.1, radio_range=0.2)
METHODS = standard_methods(
    grid_size=16, max_iterations=10, include=["bn-pk", "bn", "mds-map", "mle"]
)
N_TRIALS = 4


def run_experiment():
    return run_sweep(BASE, "noise_ratio", NOISE, METHODS, N_TRIALS, seed=30)


def test_e3_noise(benchmark):
    sweep = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(
        "e3_noise",
        sweep_table(
            sweep,
            title="E3: mean error / r vs ranging noise sigma/r "
            f"(n={BASE.n_nodes}, 10% anchors, {N_TRIALS} trials)",
        ),
    )
    s = sweep.series("mean_error_norm")
    # noise hurts: the noisiest point is worse than the cleanest for the
    # measurement-driven methods
    for m in ("bn", "mds-map"):
        assert s[m][-1] > s[m][0]
    # pre-knowledge floor: bn-pk stays ahead of bn everywhere, most at the end
    assert all(pk <= no + 0.02 for pk, no in zip(s["bn-pk"], s["bn"]))
    assert s["bn-pk"][-1] < s["bn"][-1]
