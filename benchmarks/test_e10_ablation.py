"""E10 — resolution/particle ablations of the two core solvers.

Reconstructed claim: grid-BP error falls with grid resolution until the
ranging noise (not quantization) dominates, with quadratically growing
cost; NBP error falls with particle count with linearly growing cost.
These are the design-choice ablations DESIGN.md calls out.
"""

import time

import numpy as np
from conftest import report

from repro.core import GridBPConfig, GridBPLocalizer, NBPConfig, NBPLocalizer
from repro.experiments import ScenarioConfig, build_scenario
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_table

CFG = ScenarioConfig(n_nodes=60, anchor_ratio=0.15, radio_range=0.22, noise_ratio=0.1)
GRID_SIZES = [8, 12, 16, 24]
PARTICLES = [50, 100, 200, 400]
N_TRIALS = 3


def run_experiment():
    grid_rows = []
    for g in GRID_SIZES:
        errs, times = [], []
        for seed in spawn_seeds(100 + g, N_TRIALS):
            net, ms, prior = build_scenario(CFG, seed)
            unknown = ~net.anchor_mask
            t0 = time.perf_counter()
            res = GridBPLocalizer(
                prior=prior, config=GridBPConfig(grid_size=g, max_iterations=10)
            ).localize(ms)
            times.append(time.perf_counter() - t0)
            errs.append(np.nanmean(res.errors(net.positions)[unknown]) / CFG.radio_range)
        grid_rows.append([g, float(np.mean(errs)), float(np.mean(times))])

    nbp_rows = []
    for n_p in PARTICLES:
        errs, times = [], []
        for seed in spawn_seeds(200 + n_p, N_TRIALS):
            net, ms, prior = build_scenario(CFG, seed)
            unknown = ~net.anchor_mask
            t0 = time.perf_counter()
            res = NBPLocalizer(
                prior=prior, config=NBPConfig(n_particles=n_p, n_iterations=5)
            ).localize(ms, rng=0)
            times.append(time.perf_counter() - t0)
            errs.append(np.nanmean(res.errors(net.positions)[unknown]) / CFG.radio_range)
        nbp_rows.append([n_p, float(np.mean(errs)), float(np.mean(times))])
    return grid_rows, nbp_rows


def test_e10_ablation(benchmark):
    grid_rows, nbp_rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    t1 = format_table(
        ["grid_size", "mean_err/r", "runtime_s"],
        grid_rows,
        title=f"E10a: grid-BP resolution ablation ({N_TRIALS} trials)",
    )
    t2 = format_table(
        ["particles", "mean_err/r", "runtime_s"],
        nbp_rows,
        title=f"E10b: NBP particle-count ablation ({N_TRIALS} trials)",
    )
    report("e10_ablation", t1 + "\n\n" + t2)
    # finer grid is more accurate than the coarsest grid
    assert grid_rows[-1][1] < grid_rows[0][1]
    # runtime grows with resolution
    assert grid_rows[-1][2] > grid_rows[0][2]
    # more particles help NBP
    assert nbp_rows[-1][1] < nbp_rows[0][1] + 0.02
    assert nbp_rows[-1][2] > nbp_rows[0][2]
