"""E17 — fault tolerance: localization error vs message-loss rate.

The distributed Bayesian-network localizer runs under seeded message-loss
fault plans (per-round drops, stale mailboxes) while the classic one-shot
baselines face the equivalent Bernoulli link loss.  Reconstructed claim:
BP with pre-knowledge priors degrades gracefully — a dropped message only
delays information that redundant links and later rounds re-deliver, and
the prior floors the posterior of starved nodes — whereas the baselines
lose accuracy steadily and, at severe loss, fall off a coverage cliff
(DV-Hop cannot localize nodes whose anchor floods never arrive).
"""

import numpy as np
import pytest
from conftest import report

from repro.experiments import ScenarioConfig
from repro.faults.sweep import robustness_table, run_robustness_sweep

LOSS_RATES = [0.0, 0.2, 0.5, 0.8]
METHODS = ("bn-pk", "centroid", "dv-hop")
BASE = ScenarioConfig(n_nodes=60, anchor_ratio=0.12, radio_range=0.25)
N_TRIALS = 3
SEED = 0


def run_experiment():
    points = run_robustness_sweep(
        BASE,
        LOSS_RATES,
        methods=METHODS,
        n_trials=N_TRIALS,
        seed=SEED,
        grid_size=12,
        max_iterations=12,
    )
    return {(p.loss_rate, p.method): p for p in points}


@pytest.mark.slow
def test_e17_fault_tolerance(benchmark):
    cells = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(
        "e17_fault_tolerance",
        robustness_table(
            list(cells.values()),
            title="E17: median error / r vs message-loss rate "
            f"({BASE.n_nodes} nodes, {N_TRIALS} trials, seed {SEED})",
        ),
    )

    def err(rate, method):
        return cells[(rate, method)].median_error

    # Faults were actually injected, and in growing volume.
    bn_events = [cells[(r, "bn-pk")].fault_events for r in LOSS_RATES]
    assert bn_events[0] == 0
    assert all(a < b for a, b in zip(bn_events[1:], bn_events[2:]))
    assert bn_events[1] > 0

    # Graceful degradation: the BN error grows smoothly — at 20% loss it
    # stays within 25% of the fault-free error, and even at 80% loss it
    # never blows up, with every node still localized (the prior floors
    # starved beliefs instead of dropping nodes).
    assert err(0.2, "bn-pk") < 1.25 * err(0.0, "bn-pk")
    assert max(err(r, "bn-pk") for r in LOSS_RATES) < 2 * err(0.0, "bn-pk")
    assert all(cells[(r, "bn-pk")].coverage == 1.0 for r in LOSS_RATES)

    # The baselines degrade for real: by 50% loss both have lost accuracy,
    # and at severe loss DV-Hop's error has at least doubled while its
    # coverage falls off a cliff (unreachable anchor floods).
    assert err(0.5, "dv-hop") > 1.2 * err(0.0, "dv-hop")
    assert err(0.8, "dv-hop") > 1.8 * err(0.0, "dv-hop")
    assert cells[(0.8, "dv-hop")].coverage < 0.7
    assert cells[(0.0, "dv-hop")].coverage == 1.0

    # The paper's method beats both baselines at every loss rate.
    for r in LOSS_RATES:
        for m in ("centroid", "dv-hop"):
            assert err(r, "bn-pk") < err(r, m)
