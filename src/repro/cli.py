"""Command-line interface.

Runs complete localization experiments without writing Python::

    python -m repro info
    python -m repro run   --nodes 100 --anchor-ratio 0.1 --trials 5 \
                          --methods bn-pk,bn,dv-hop
    python -m repro sweep --param anchor_ratio --values 0.05,0.1,0.2 \
                          --methods bn-pk,bn --trials 3
    python -m repro trace --nodes 60 --method grid-bp --seed 0
    python -m repro faults --nodes 60 --loss-rates 0,0.2,0.5
    python -m repro audit --corpus smoke
    python -m repro sweep --param noise_ratio --values 0.05,0.1,0.2 \
                          --methods bn-pk --trials 3 --checkpoint run.jsonl
    python -m repro resume run.jsonl
    python -m repro demo

Output is the same plain-text tables the benchmark suite produces.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments import (
    ScenarioConfig,
    evaluate_methods,
    methods_table,
    run_sweep,
    standard_methods,
    sweep_table,
)

__all__ = ["main", "build_parser"]

_SWEEPABLE = {
    "n_nodes": int,
    "anchor_ratio": float,
    "radio_range": float,
    "noise_ratio": float,
    "nlos_fraction": float,
    "pk_error": float,
}


def _add_scenario_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--nodes", type=int, default=100, help="total node count")
    p.add_argument(
        "--anchor-ratio", type=float, default=0.1, help="fraction of anchors"
    )
    p.add_argument("--radio-range", type=float, default=0.2, help="radio range")
    p.add_argument(
        "--noise", type=float, default=0.1, help="ranging noise as sigma/range"
    )
    p.add_argument(
        "--deployment",
        choices=["uniform", "grid", "cshape", "clusters"],
        default="uniform",
    )
    p.add_argument("--radio", choices=["disk", "qudg", "lognormal"], default="disk")
    p.add_argument(
        "--ranging",
        choices=["gaussian", "proportional", "rssi", "toa", "none"],
        default="gaussian",
    )
    p.add_argument(
        "--pk-error",
        type=float,
        default=0.1,
        help="std of the pre-knowledge deployment record (0 disables)",
    )
    p.add_argument("--nlos-fraction", type=float, default=0.0)
    p.add_argument(
        "--path-loss-exponent",
        type=float,
        default=None,
        metavar="ETA",
        help="true path-loss exponent of the RSSI channel (rssi ranging "
        "only; enables the explicit channel model)",
    )
    p.add_argument(
        "--assumed-exponent",
        type=float,
        default=None,
        metavar="ETA0",
        help="exponent the receiver inverts RSSI with; differing from "
        "--path-loss-exponent models a miscalibrated deployment",
    )
    p.add_argument(
        "--channel-joint",
        action="store_true",
        help="add the bn-pk-joint method (joint position + latent "
        "LOS/NLOS + path-loss-exponent inference) to the lineup",
    )
    p.add_argument(
        "--bearing-sigma",
        type=float,
        default=0.0,
        help="AoA bearing noise in radians (0 disables AoA)",
    )
    p.add_argument("--seed", type=int, default=0, help="master seed")
    p.add_argument("--grid-size", type=int, default=20, help="BN grid resolution")


def _add_run_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trials", type=int, default=5, help="Monte-Carlo trials")
    p.add_argument(
        "--methods",
        default="bn-pk,bn,centroid,dv-hop,mds-map",
        help="comma-separated method names (see `info`)",
    )
    p.add_argument(
        "--backend",
        choices=["reference", "batched"],
        default="reference",
        help="grid-BP kernel backend (repro.kernels); bit-identical "
        "results, the batched backend stacks compatible trials into one "
        "tensor pass per BP round when combined with --batch-trials",
    )
    p.add_argument(
        "--batch-trials",
        type=int,
        default=None,
        metavar="N",
        help="run trials in blocks of N, batching the grid-BP methods "
        "across each block (bit-identical, checkpoint-compatible)",
    )
    p.add_argument(
        "--checkpoint",
        default=None,
        metavar="LEDGER",
        help="durable write-ahead ledger: every finished trial is fsync'd "
        "to this file, and rerunning (or `repro resume LEDGER`) continues "
        "a killed run bit-identically instead of starting over",
    )


def _channel_from_args(args: argparse.Namespace):
    true_eta = getattr(args, "path_loss_exponent", None)
    assumed = getattr(args, "assumed_exponent", None)
    if true_eta is None and assumed is None:
        return None
    if args.ranging != "rssi":
        raise SystemExit(
            "error: --path-loss-exponent/--assumed-exponent need "
            "--ranging rssi"
        )
    from repro.experiments.config import ChannelConfig

    if true_eta is None:
        true_eta = ChannelConfig.path_loss_exponent
    return ChannelConfig(path_loss_exponent=true_eta, assumed_exponent=assumed)


def _scenario_from_args(args: argparse.Namespace) -> ScenarioConfig:
    return ScenarioConfig(
        n_nodes=args.nodes,
        anchor_ratio=args.anchor_ratio,
        radio_range=args.radio_range,
        deployment=args.deployment,
        radio=args.radio,
        ranging=args.ranging,
        noise_ratio=args.noise,
        nlos_fraction=args.nlos_fraction,
        bearing_sigma=args.bearing_sigma if args.bearing_sigma > 0 else None,
        pk_error=args.pk_error if args.pk_error > 0 else None,
        channel=_channel_from_args(args),
    )


def _methods_from_args(args: argparse.Namespace) -> dict:
    names = [m.strip() for m in args.methods.split(",") if m.strip()]
    if getattr(args, "channel_joint", False) and "bn-pk-joint" not in names:
        names.append("bn-pk-joint")
    if not names:
        raise SystemExit("error: --methods must name at least one method")
    try:
        return standard_methods(
            grid_size=args.grid_size,
            include=names,
            backend=getattr(args, "backend", "reference"),
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")


def _checkpoint_meta(args: argparse.Namespace) -> dict | None:
    """Extra ledger-header keys that let `repro resume` rebuild the run."""
    if not getattr(args, "checkpoint", None):
        return None
    meta = {"method_kwargs": {"grid_size": args.grid_size}}
    backend = getattr(args, "backend", "reference")
    if backend != "reference":
        # kernel backends are bit-identical, so an old reference ledger
        # resumed with --backend batched (or vice versa) is still exact;
        # record the choice anyway so `repro resume` replays it.
        meta["method_kwargs"]["backend"] = backend
    return meta


def _reraise_unless_checkpoint_error(exc: Exception) -> None:
    """Turn unusable-ledger errors into clean CLI exits; re-raise the rest."""
    from repro.ckpt import CheckpointMismatch, LedgerError

    if isinstance(exc, (CheckpointMismatch, LedgerError)):
        raise SystemExit(f"error: {exc}") from exc
    raise exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cooperative WSN localization with pre-knowledge "
        "(Bayesian networks) — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="version, methods, scenario knobs")
    p_info.set_defaults(func=cmd_info)

    p_run = sub.add_parser("run", help="evaluate methods at one operating point")
    _add_scenario_args(p_run)
    _add_run_args(p_run)
    p_run.add_argument(
        "--map",
        action="store_true",
        help="also print an ASCII map of the first trial's network and "
        "the first method's estimates",
    )
    p_run.set_defaults(func=cmd_run)

    p_sweep = sub.add_parser("sweep", help="sweep one scenario parameter")
    _add_scenario_args(p_sweep)
    _add_run_args(p_sweep)
    p_sweep.add_argument(
        "--param", required=True, choices=sorted(_SWEEPABLE), help="swept field"
    )
    p_sweep.add_argument(
        "--values", required=True, help="comma-separated values for --param"
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_trace = sub.add_parser(
        "trace",
        help="run one traced solver trial; print its convergence trace",
    )
    _add_scenario_args(p_trace)
    p_trace.add_argument(
        "--method",
        choices=["grid-bp", "nbp", "mcmc"],
        default="grid-bp",
        help="traced solver (the scenario's pre-knowledge prior is used)",
    )
    p_trace.add_argument(
        "--iterations", type=int, default=15, help="max BP iterations"
    )
    p_trace.add_argument(
        "--json",
        action="store_true",
        help="print the raw trace JSON instead of the table",
    )
    p_trace.add_argument(
        "--output", default=None, help="also write the trace JSON to this path"
    )
    p_trace.set_defaults(func=cmd_trace)

    p_faults = sub.add_parser(
        "faults",
        help="robustness sweep: localization error vs message-loss rate",
    )
    _add_scenario_args(p_faults)
    p_faults.add_argument(
        "--loss-rates",
        default="0,0.2,0.5,0.8",
        help="comma-separated message-loss probabilities in [0, 1]",
    )
    p_faults.add_argument("--trials", type=int, default=3, help="Monte-Carlo trials")
    p_faults.add_argument(
        "--methods",
        default="bn-pk,centroid,dv-hop",
        help="bn-pk (distributed BP under message loss) and/or baselines "
        "(centroid, w-centroid, dv-hop, mds-map — run on the equivalent "
        "link-loss degradation)",
    )
    p_faults.add_argument(
        "--iterations", type=int, default=12, help="max BP rounds per trial"
    )
    p_faults.set_defaults(func=cmd_faults)

    p_audit = sub.add_parser(
        "audit",
        help="cross-solver differential audit over a seeded scenario corpus",
    )
    p_audit.add_argument(
        "--corpus",
        choices=["smoke", "full"],
        default="smoke",
        help="scenario corpus: 'smoke' is the fast tier-1 set",
    )
    p_audit.add_argument(
        "--slow",
        action="store_true",
        help="include slow cases (process-pool worker equivalence)",
    )
    p_audit.add_argument(
        "--manifest",
        default=None,
        help="write the corpus seed manifest JSON to this path and exit",
    )
    p_audit.set_defaults(func=cmd_audit)

    p_resume = sub.add_parser(
        "resume",
        help="report a checkpoint ledger's progress and continue the run",
    )
    p_resume.add_argument(
        "ledger", help="ledger file written by run/sweep --checkpoint"
    )
    p_resume.add_argument(
        "--status",
        action="store_true",
        help="only report progress; run nothing",
    )
    p_resume.set_defaults(func=cmd_resume)

    p_serve = sub.add_parser(
        "serve",
        help="run the localization service (JSON lines over TCP)",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=8790, help="TCP port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="warm worker processes (0 = solve in-process)",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="admission bound; requests beyond it are shed",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=8, help="micro-batch size cap"
    )
    p_serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=10.0,
        help="how long to hold a partial batch for co-batchable arrivals",
    )
    p_serve.add_argument(
        "--deadline-s",
        type=float,
        default=None,
        help="default per-request latency budget (BP stops cooperatively "
        "between rounds when it expires; partial answers come back "
        "flagged degraded)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_stream = sub.add_parser(
        "stream",
        help="track a fleet of mobile networks over a (hostile) event stream",
    )
    p_stream.add_argument(
        "--networks", type=int, default=20, help="concurrent mobile networks"
    )
    p_stream.add_argument("--nodes", type=int, default=16, help="nodes per network")
    p_stream.add_argument(
        "--anchor-ratio", type=float, default=0.3, help="anchor fraction"
    )
    p_stream.add_argument("--steps", type=int, default=8, help="tracking steps")
    p_stream.add_argument(
        "--radio-range", type=float, default=0.35, help="radio range"
    )
    p_stream.add_argument(
        "--noise", type=float, default=0.02, help="ranging noise sigma"
    )
    p_stream.add_argument(
        "--step-sigma", type=float, default=0.025, help="per-step motion sigma"
    )
    p_stream.add_argument("--seed", type=int, default=0, help="fleet seed")
    p_stream.add_argument(
        "--workers",
        type=int,
        default=0,
        help="warm worker processes (0 = solve in-process)",
    )
    p_stream.add_argument(
        "--grid", type=int, default=16, help="grid resolution per axis"
    )
    p_stream.add_argument(
        "--late",
        type=float,
        default=0.0,
        help="fraction of epochs delivered late/out-of-order",
    )
    p_stream.add_argument(
        "--duplicates", type=float, default=0.0, help="fraction of epochs echoed"
    )
    p_stream.add_argument(
        "--drops", type=float, default=0.0, help="fraction of epochs dropped"
    )
    p_stream.add_argument(
        "--faulted",
        type=int,
        default=0,
        help="networks degraded by a measurement fault plan",
    )
    p_stream.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="write-ahead ledger; `repro resume` continues a killed stream",
    )
    p_stream.set_defaults(func=cmd_stream)

    p_demo = sub.add_parser("demo", help="small quick demonstration run")
    p_demo.set_defaults(func=cmd_demo)
    return parser


def cmd_info(args: argparse.Namespace) -> int:
    import repro

    print(f"repro {repro.__version__} — Lo, Wu & Chung (ICPP 2007) reproduction")
    print("\nmethods:")
    for name in standard_methods():
        print(f"  {name}")
    print("\nsweepable parameters:", ", ".join(sorted(_SWEEPABLE)))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    cfg = _scenario_from_args(args)
    methods = _methods_from_args(args)
    if getattr(args, "map", False):
        from repro.experiments import build_scenario
        from repro.utils.rng import spawn_seeds
        from repro.viz import render_network

        trial_seed = spawn_seeds(args.seed, 1)[0]
        s_build, s_run = trial_seed.spawn(2)
        network, measurements, prior = build_scenario(cfg, s_build)
        first = next(iter(methods.values()))(prior)
        import numpy as np

        result = first.localize(measurements, np.random.default_rng(s_run))
        print(render_network(network, result))
        print()
    try:
        results = evaluate_methods(
            cfg,
            methods,
            n_trials=args.trials,
            seed=args.seed,
            checkpoint=args.checkpoint,
            checkpoint_meta=_checkpoint_meta(args),
            batch_trials=args.batch_trials,
        )
    except Exception as exc:
        _reraise_unless_checkpoint_error(exc)
    print(
        methods_table(
            results,
            title=(
                f"{cfg.n_nodes} nodes, {cfg.anchor_ratio:.0%} anchors, "
                f"r={cfg.radio_range}, sigma={cfg.noise_ratio}r, "
                f"{args.trials} trials (seed {args.seed})"
            ),
        )
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    cfg = _scenario_from_args(args)
    methods = _methods_from_args(args)
    cast = _SWEEPABLE[args.param]
    try:
        values = [cast(v) for v in args.values.split(",") if v.strip()]
    except ValueError as exc:
        raise SystemExit(f"error: bad --values: {exc}")
    if not values:
        raise SystemExit("error: --values must contain at least one value")
    if args.param == "pk_error":
        values = [v if v > 0 else None for v in values]
    try:
        sweep = run_sweep(
            cfg,
            args.param,
            values,
            methods,
            n_trials=args.trials,
            seed=args.seed,
            checkpoint=args.checkpoint,
            checkpoint_meta=_checkpoint_meta(args),
            batch_trials=args.batch_trials,
        )
    except Exception as exc:
        _reraise_unless_checkpoint_error(exc)
    print(
        sweep_table(
            sweep,
            title=f"mean error / r vs {args.param} "
            f"({args.trials} trials, seed {args.seed})",
        )
    )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    import json

    import numpy as np

    from repro.core import GridBPConfig, GridBPLocalizer, NBPConfig, NBPLocalizer
    from repro.experiments import build_scenario
    from repro.obs import Tracer, format_trace_table, trace_summary
    from repro.utils.rng import spawn_seeds

    cfg = _scenario_from_args(args)
    trial_seed = spawn_seeds(args.seed, 1)[0]
    s_build, s_run = trial_seed.spawn(2)
    network, measurements, prior = build_scenario(cfg, s_build)

    tracer = Tracer()
    try:
        if args.method == "grid-bp":
            loc = GridBPLocalizer(
                prior=prior,
                config=GridBPConfig(
                    grid_size=args.grid_size, max_iterations=args.iterations
                ),
                tracer=tracer,
            )
        elif args.method == "mcmc":
            from repro.core import MCMCConfig, MCMCLocalizer

            loc = MCMCLocalizer(
                prior=prior,
                config=MCMCConfig(step_scale=0.25),
                tracer=tracer,
            )
        else:
            loc = NBPLocalizer(
                prior=prior,
                config=NBPConfig(n_iterations=min(args.iterations, 10)),
                tracer=tracer,
            )
        result = loc.localize(measurements, np.random.default_rng(s_run))
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    trace = result.telemetry

    if args.output:
        from repro.io import save_trace_json

        try:
            save_trace_json(trace, args.output)
        except OSError as exc:
            raise SystemExit(f"error: cannot write {args.output}: {exc}")
    if args.json:
        print(json.dumps(trace, sort_keys=True, indent=2))
        return 0
    errors = result.errors(network.positions)[~network.anchor_mask]
    print(format_trace_table(trace))
    print()
    print(trace_summary(trace))
    print(
        f"\nfinal mean error / r = "
        f"{float(np.nanmean(errors)) / network.radio_range:.4f} "
        f"(seed {args.seed}, 1 trial)"
    )
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults.sweep import robustness_table, run_robustness_sweep

    cfg = _scenario_from_args(args)
    try:
        rates = [float(v) for v in args.loss_rates.split(",") if v.strip()]
    except ValueError as exc:
        raise SystemExit(f"error: bad --loss-rates: {exc}")
    if not rates:
        raise SystemExit("error: --loss-rates must contain at least one rate")
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    if not methods:
        raise SystemExit("error: --methods must name at least one method")
    try:
        points = run_robustness_sweep(
            cfg,
            rates,
            methods=methods,
            n_trials=args.trials,
            seed=args.seed,
            grid_size=args.grid_size,
            max_iterations=args.iterations,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    print(
        robustness_table(
            points,
            title=(
                f"median error / r vs message loss — {cfg.n_nodes} nodes, "
                f"{cfg.anchor_ratio:.0%} anchors, {args.trials} trials "
                f"(seed {args.seed})"
            ),
        )
    )
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.audit import make_corpus, run_corpus, save_manifest, summarize

    if args.manifest:
        try:
            save_manifest(make_corpus(args.corpus), args.corpus, args.manifest)
        except OSError as exc:
            raise SystemExit(f"error: cannot write {args.manifest}: {exc}")
        print(f"wrote {args.corpus} corpus manifest to {args.manifest}")
        return 0
    reports = run_corpus(args.corpus, include_slow=args.slow)
    print(summarize(reports))
    return 0 if all(r.passed for r in reports) else 1


def cmd_resume(args: argparse.Namespace) -> int:
    from repro.ckpt import LedgerError, format_progress, ledger_progress

    try:
        progress = ledger_progress(args.ledger)
    except LedgerError as exc:
        raise SystemExit(f"error: {exc}")
    print(format_progress(progress))
    if args.status:
        return 0

    meta = progress.meta or {}
    kind = meta.get("kind")
    if kind == "stream":
        return _resume_stream(args, meta)
    if kind not in ("evaluate", "sweep"):
        raise SystemExit(
            f"error: cannot resume a {kind!r} ledger from the CLI — only "
            "'evaluate', 'sweep', and 'stream' runs started with "
            "--checkpoint are reconstructable here (resume API runs via "
            "their entry points)"
        )
    seed_fp = meta.get("seed") or {}
    if seed_fp.get("type") != "int":
        raise SystemExit(
            "error: the ledger's master seed is not a plain integer; resume "
            "it from Python with the original SeedSequence"
        )
    seed = int(seed_fp["value"])
    try:
        cfg = ScenarioConfig.from_dict(meta["config"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"error: ledger config cannot be reconstructed: {exc}")
    try:
        methods = standard_methods(
            include=meta.get("methods"), **(meta.get("method_kwargs") or {})
        )
    except (TypeError, ValueError) as exc:
        raise SystemExit(
            f"error: ledger methods cannot be reconstructed: {exc} (only "
            "standard_methods lineups started from this CLI are supported)"
        )
    n_trials = int(meta.get("n_trials") or 0)
    if n_trials < 1:
        raise SystemExit("error: ledger header has no usable trial count")

    print()
    try:
        if kind == "sweep":
            sweep = run_sweep(
                cfg,
                meta["param"],
                meta["values"],
                methods,
                n_trials=n_trials,
                seed=seed,
                checkpoint=args.ledger,
            )
            print(
                sweep_table(
                    sweep,
                    title=f"resumed sweep of {meta['param']} "
                    f"({n_trials} trials, seed {seed})",
                )
            )
        else:
            results = evaluate_methods(
                cfg,
                methods,
                n_trials=n_trials,
                seed=seed,
                checkpoint=args.ledger,
            )
            print(
                methods_table(
                    results,
                    title=f"resumed evaluation ({n_trials} trials, seed {seed})",
                )
            )
    except Exception as exc:
        _reraise_unless_checkpoint_error(exc)
    return 0


def _resume_stream(args: argparse.Namespace, meta: dict) -> int:
    """Reconstruct a killed stream run from its ledger header and
    continue it: finished epochs replay, the rest solve live —
    bit-identical to a run that never died."""
    from repro.stream import (
        FleetConfig,
        StreamConfig,
        StreamDisruption,
        run_stream,
    )

    config = meta.get("config") or {}
    try:
        fleet = FleetConfig.from_dict(config["fleet"])
        stream = StreamConfig.from_dict(config["stream"])
        disruption = (
            StreamDisruption.from_dict(config["disruption"])
            if config.get("disruption") is not None
            else None
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"error: stream ledger cannot be reconstructed: {exc}")
    print()
    try:
        result = run_stream(fleet, stream, disruption, checkpoint=args.ledger)
    except Exception as exc:
        _reraise_unless_checkpoint_error(exc)
        return 1
    _print_stream_summary(
        result,
        f"resumed stream: {fleet.n_networks} networks × "
        f"{fleet.n_steps + 1} steps (seed {fleet.seed})",
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import LocalizationServer, LocalizationService, ServeConfig

    config = ServeConfig(
        n_workers=args.workers,
        queue_limit=args.queue_limit,
        max_batch=args.max_batch,
        batch_window_s=args.batch_window_ms / 1e3,
        default_deadline_s=args.deadline_s,
    )

    async def _serve() -> None:
        server = LocalizationServer(
            LocalizationService(config), host=args.host, port=args.port
        )
        host, port = await server.start()
        workers = "in-process" if args.workers == 0 else f"{args.workers} workers"
        print(f"localization service on {host}:{port} ({workers})")
        print(
            'protocol: one JSON object per line, e.g. '
            '{"op": "health"} or {"op": "localize", "scenario": '
            '{"n_nodes": 25}, "seed": 1}'
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


def _print_stream_summary(result, title: str) -> None:
    counters = result.metrics.get("counters", {})
    staleness = result.metrics.get("staleness_ms", {})
    print(title)
    print(f"  networks tracked: {len(result.networks)}")
    lost = result.lost_networks
    print(f"  lost networks: {len(lost)}" + (f" {lost}" if lost else ""))
    for name in (
        "ingested",
        "out_of_order",
        "duplicates",
        "stale_discarded",
        "solved",
        "replayed",
        "coasted",
        "shed",
        "failed",
        "guard_trips",
        "cold_resolves",
        "worker_replacements",
    ):
        if counters.get(name):
            print(f"  {name}: {counters[name]}")
    ups = result.metrics.get("updates_per_sec")
    if ups:
        print(f"  updates/sec: {ups:.1f}")
    if staleness.get("n"):
        print(
            f"  staleness ms: p50 {staleness['p50']:.1f}  "
            f"p99 {staleness['p99']:.1f}"
        )
    degraded_networks = sum(
        1
        for tr in result.networks.values()
        if tr.extras.get("degraded") is not None
        and bool(tr.extras["degraded"].any())
    )
    print(f"  networks with degraded steps: {degraded_networks}")


def cmd_stream(args: argparse.Namespace) -> int:
    from repro.faults import FaultPlan
    from repro.stream import (
        FleetConfig,
        StreamConfig,
        StreamDisruption,
        run_stream,
    )

    plan = None
    faulted: tuple[int, ...] = ()
    if args.faulted > 0:
        plan = FaultPlan(
            anchor_failure_rate=0.5,
            link_loss_rate=0.3,
            outlier_fraction=0.3,
            outlier_bias_ratio=1.5,
            seed=args.seed,
        )
        faulted = tuple(range(min(args.faulted, args.networks)))
    fleet = FleetConfig(
        n_networks=args.networks,
        n_nodes=args.nodes,
        anchor_ratio=args.anchor_ratio,
        n_steps=args.steps,
        radio_range=args.radio_range,
        noise_sigma=args.noise,
        step_sigma=args.step_sigma,
        seed=args.seed,
        fault_plan=plan,
        faulted_networks=faulted,
    )
    stream = StreamConfig(grid_size=args.grid, n_workers=args.workers)
    disruption = None
    if args.late or args.duplicates or args.drops:
        disruption = StreamDisruption(
            late_rate=args.late,
            duplicate_rate=args.duplicates,
            drop_rate=args.drops,
            seed=args.seed,
        )
    try:
        result = run_stream(
            fleet, stream, disruption, checkpoint=args.checkpoint
        )
    except Exception as exc:
        _reraise_unless_checkpoint_error(exc)
        return 1
    _print_stream_summary(
        result,
        f"streamed {args.networks} networks × {args.steps + 1} steps "
        f"(seed {args.seed})",
    )
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    cfg = ScenarioConfig(n_nodes=60, anchor_ratio=0.12, radio_range=0.25)
    methods = standard_methods(
        grid_size=16, max_iterations=10, include=["bn-pk", "bn", "dv-hop"]
    )
    results = evaluate_methods(cfg, methods, n_trials=2, seed=0)
    print(methods_table(results, title="demo: 60 nodes, 12% anchors, 2 trials"))
    print(
        "\nbn-pk = Bayesian network with pre-knowledge (the paper's method);"
        "\nsee `python -m repro run --help` for the full knob set."
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
