"""The fault-tolerant streaming tracking runtime.

Measurement epochs for many concurrent mobile networks arrive as one
event stream; each network's belief updates incrementally — grid BP
warm-started from the previous step's motion-diffused posterior
(:class:`~repro.priors.GridBeliefPrior`) instead of a cold re-solve.
Robustness is the headline contract:

* **Hostile stream.**  Per-network watermarks with bounded reordering
  buffers absorb out-of-order and duplicate epochs; epochs arriving
  behind the watermark are discarded (counted), and a *gap* (dropped
  epoch) is eventually coasted over — the prior diffuses through the
  motion model and the step is flagged ``degraded`` — so one lost
  packet never stalls a network forever.
* **Warm-start divergence guard.**  A warm solve whose beliefs come
  back broken (:func:`repro.core.health.healthy_belief_rows` /
  fallback-flagged) or whose estimates jump implausibly far is treated
  as a poisoned-prior symptom: the epoch is re-solved cold (uniform
  prior, full iterations) and flagged ``degraded`` instead of letting
  garbage become the next step's pre-knowledge.
* **Per-network failure isolation.**  A solver error degrades one
  epoch of one network to health-fallback estimates; batch-mates and
  the rest of the fleet are untouched (``execute_batch`` isolates
  per-item failures, the pool executor survives worker death).
* **Bounded admission.**  When ingest outruns solve, a network's ready
  backlog beyond ``max_ready_burst`` is shed: oldest epochs coast
  (flagged) rather than queue without bound — staleness is bounded by
  construction.
* **Mid-flight resumability.**  With a checkpoint, every completed
  epoch (solved, coasted, shed, or failed) is a durable CRC-framed
  ledger record.  Re-running the same stream replays finished epochs
  bit-identically and continues live from the kill point — the event
  feed and every admission decision are deterministic, so a killed and
  resumed run is indistinguishable from an uninterrupted one.

Same-shape epochs across networks batch onto the batched kernel backend
(``localize_batch`` groups by compatibility key), and the executor layer
(:mod:`repro.stream.pool`) shards batches across warm workers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.ckpt import decode_value, encode_value, resolve_checkpoint, seed_fingerprint
from repro.core.bnloc import GridBPConfig
from repro.core.grid import Grid2D
from repro.core.health import fallback_position, healthy_belief_rows
from repro.mobility.tracking import TrackingResult
from repro.priors.belief import GridBeliefPrior
from repro.stream.events import Epoch, StreamDisruption
from repro.stream.metrics import StreamMetrics
from repro.stream.pool import InlineExecutor, StreamWorkerPool
from repro.stream.scenario import FleetConfig, fleet_events

__all__ = [
    "StreamConfig",
    "StreamResult",
    "StreamRuntime",
    "run_stream",
    "stream_meta",
]

STREAM_METHOD = "stream-grid-bp"


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of the streaming runtime (all resume-identity relevant)."""

    grid_size: int = 16
    warm_iterations: int = 4
    cold_iterations: int = 10
    motion_sigma: float = 0.03
    reorder_window: int = 16
    max_gap_events: int | None = None
    max_ready_burst: int = 4
    jump_guard_radii: float = 1.5
    batch_max: int = 32
    n_workers: int = 0
    worker_timeout_s: float = 120.0
    width: float = 1.0
    height: float = 1.0

    def __post_init__(self) -> None:
        if self.warm_iterations < 1 or self.cold_iterations < 1:
            raise ValueError("iteration budgets must be >= 1")
        if self.motion_sigma <= 0:
            raise ValueError("motion_sigma must be positive")
        if self.reorder_window < 1:
            raise ValueError("reorder_window must be >= 1")
        if self.max_gap_events is not None and self.max_gap_events < 1:
            raise ValueError("max_gap_events must be >= 1 (or None for auto)")
        if self.max_ready_burst < 1:
            raise ValueError("max_ready_burst must be >= 1")
        if self.jump_guard_radii <= 0:
            raise ValueError("jump_guard_radii must be positive")
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if self.n_workers < 0:
            raise ValueError("n_workers must be >= 0")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "StreamConfig":
        return cls(**data)

    def resolved_gap(self, n_networks: int) -> int:
        """Auto gap budget: a dropped epoch shows up as a hole roughly
        ``n_networks`` events wide in a step-major feed, so wait ~3
        fleet-rounds before coasting over it."""
        if self.max_gap_events is not None:
            return self.max_gap_events
        return max(64, 3 * n_networks)


class NetworkState:
    """Watermark, reorder buffer, and warm-start state of one network."""

    def __init__(self, network_id: int) -> None:
        self.network_id = network_id
        self.next_step = 0
        self.buffer: dict[int, Epoch] = {}
        self.arrival_t: dict[int, float] = {}
        self.prior: GridBeliefPrior | None = None
        self.last_estimates: np.ndarray | None = None
        self.last_solved_step: int | None = None
        self.last_progress_event = 0
        self.n_nodes: int | None = None
        self.anchor_mask: np.ndarray | None = None
        self.last_anchor_full: np.ndarray | None = None
        self.consecutive_failures = 0
        #: step -> {"kind", "degraded", "reason", "estimates", "localized"}
        self.steps: dict[int, dict] = {}


@dataclass
class StreamResult:
    """Everything a stream run produced."""

    networks: dict[int, TrackingResult]
    metrics: dict
    executor: dict = field(default_factory=dict)

    @property
    def lost_networks(self) -> list[int]:
        """Networks with no estimates at their final step (must be empty
        — the zero-lost contract)."""
        lost = []
        for nid, tr in sorted(self.networks.items()):
            if tr.estimates.size == 0 or not np.isfinite(tr.estimates[-1]).any():
                lost.append(nid)
        return lost


class StreamRuntime:
    """One streaming run over one event feed.  See the module docstring
    for the robustness contract; :func:`run_stream` is the assembled
    driver (scenario → disruption → executor → runtime → result)."""

    def __init__(
        self,
        config: StreamConfig | None = None,
        executor=None,
        checkpoint=None,
        metrics: StreamMetrics | None = None,
        expected_networks: int | None = None,
    ) -> None:
        self.config = config if config is not None else StreamConfig()
        self.executor = executor if executor is not None else InlineExecutor()
        self.checkpoint = checkpoint
        self.metrics = metrics if metrics is not None else StreamMetrics()
        self._grid = Grid2D(
            self.config.grid_size,
            self.config.grid_size,
            self.config.width,
            self.config.height,
        )
        self._warm_cfg = GridBPConfig(
            grid_size=self.config.grid_size,
            max_iterations=self.config.warm_iterations,
        )
        self._cold_cfg = GridBPConfig(
            grid_size=self.config.grid_size,
            max_iterations=self.config.cold_iterations,
        )
        self._states: dict[int, NetworkState] = {}
        self._events_ingested = 0
        self._default_n_nodes: int | None = None
        self._gap_budget = self.config.resolved_gap(
            expected_networks if expected_networks else 1
        )

    # ------------------------------------------------------------------ #
    # state plumbing
    # ------------------------------------------------------------------ #
    def _state(self, network_id: int) -> NetworkState:
        state = self._states.get(network_id)
        if state is None:
            state = NetworkState(network_id)
            self._states[network_id] = state
        return state

    def _diffuse(self, beliefs) -> GridBeliefPrior:
        return GridBeliefPrior(
            self._grid, beliefs, diffusion_sigma=self.config.motion_sigma
        )

    def _coast_prior(self, state: NetworkState) -> None:
        """Advance the prior through the motion model with no evidence."""
        if state.prior is not None:
            state.prior = self._diffuse(state.prior.weights)

    def _wire_prior(self, prior: GridBeliefPrior | None):
        """Pipe-light copy of a prior: fresh grid (no cached (K, K)
        pairwise matrix rides the pickle), diffusion already applied."""
        if prior is None:
            return None
        light = Grid2D(
            self.config.grid_size,
            self.config.grid_size,
            self.config.width,
            self.config.height,
        )
        return GridBeliefPrior(light, prior.weights, diffusion_sigma=0.0, floor=0.0)

    def _key(self, network_id: int, step: int) -> str:
        return f"{network_id}:{step}"

    # ------------------------------------------------------------------ #
    # ingest: watermark + reorder buffer
    # ------------------------------------------------------------------ #
    def ingest(self, epoch: Epoch) -> None:
        self._events_ingested += 1
        self.metrics.count("ingested")
        state = self._state(epoch.network_id)
        if epoch.step < state.next_step:
            done = state.steps.get(epoch.step)
            if done is not None and done["kind"] in ("coasted", "shed"):
                # The real epoch finally showed up — after we moved on.
                self.metrics.count("stale_discarded")
            else:
                self.metrics.count("duplicates")
            return
        if epoch.step in state.buffer:
            self.metrics.count("duplicates")
            return
        if epoch.step > state.next_step:
            self.metrics.count("out_of_order")
        state.buffer[epoch.step] = epoch
        state.arrival_t[epoch.step] = self.metrics.now()

    # ------------------------------------------------------------------ #
    # watermark advancement: gap coasting + staleness shedding
    # ------------------------------------------------------------------ #
    def _maybe_advance(self, state: NetworkState, force: bool) -> None:
        if state.buffer and state.next_step not in state.buffer:
            gap_age = self._events_ingested - state.last_progress_event
            overflow = len(state.buffer) >= self.config.reorder_window
            if force or overflow or gap_age > self._gap_budget:
                target = min(state.buffer)
                while state.next_step < target:
                    self._coast(state, "coasted")
        # Staleness shedding: a backlog longer than the burst budget
        # means ingest outran solve for this network — coast the oldest
        # ready epochs instead of queueing them without bound.
        run = 0
        while state.next_step + run in state.buffer:
            run += 1
        for _ in range(max(0, run - self.config.max_ready_burst)):
            state.buffer.pop(state.next_step)
            self._coast(state, "shed")

    def _coast(self, state: NetworkState, kind: str) -> None:
        step = state.next_step
        key = self._key(state.network_id, step)
        record = self.checkpoint.get(key) if self.checkpoint is not None else None
        if record is not None:
            self.metrics.count("replayed")
            decoded = decode_value(record)
        else:
            estimates, localized = self._coast_estimates(state)
            decoded = {
                "kind": kind,
                "degraded": True,
                "reason": kind,
                "estimates": estimates,
                "localized": localized,
            }
            if self.checkpoint is not None:
                self.checkpoint.record(key, encode_value(decoded))
        state.steps[step] = decoded
        state.arrival_t.pop(step, None)
        state.next_step = step + 1
        state.last_progress_event = self._events_ingested
        if decoded["kind"] == "solved":
            # Replay of a run that solved this step live (the admission
            # decisions are deterministic, so this only happens when the
            # ledger is ahead of us) — restore the warm-start state.
            beliefs = decoded.get("beliefs") or {}
            if beliefs:
                state.prior = self._diffuse(beliefs)
            state.last_estimates = np.asarray(decoded["estimates"])
            state.last_solved_step = step
        else:
            self._coast_prior(state)
        self.metrics.count(decoded["kind"])

    def _coast_estimates(self, state: NetworkState) -> tuple[np.ndarray, np.ndarray]:
        n = state.n_nodes if state.n_nodes is not None else self._default_n_nodes
        if n is None:
            raise ValueError(
                f"cannot coast network {state.network_id}: node count unknown "
                "(pass n_nodes to run())"
            )
        estimates = np.full((n, 2), np.nan)
        localized = np.zeros(n, dtype=bool)
        center = np.array([self.config.width / 2.0, self.config.height / 2.0])
        if state.anchor_mask is not None and state.last_anchor_full is not None:
            anchors = state.anchor_mask
            estimates[anchors] = state.last_anchor_full[anchors]
            localized[anchors] = True
            unknown_ids = np.flatnonzero(~anchors)
        else:
            unknown_ids = np.arange(n)
        for node in unknown_ids:
            w = state.prior.weights.get(int(node)) if state.prior is not None else None
            if w is not None:
                estimates[node] = self._grid.expectation(w)
            elif state.last_estimates is not None and np.isfinite(
                state.last_estimates[node]
            ).all():
                estimates[node] = state.last_estimates[node]
            else:
                estimates[node] = center
            localized[node] = True
        return estimates, localized

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #
    def _item(self, state: NetworkState, epoch: Epoch, warm: bool) -> dict:
        return {
            "measurements": epoch.measurements,
            "prior": self._wire_prior(state.prior) if warm else None,
            "config": self._warm_cfg if warm and state.prior is not None
            else self._cold_cfg,
            "include_beliefs": True,
        }

    def _assess(self, state: NetworkState, epoch: Epoch, payload: dict) -> str:
        """'ok' | 'guard' (poisoned-prior symptom) | 'failed'."""
        if not payload.get("ok"):
            return "failed"
        if state.prior is None:
            return "ok"  # cold solve: nothing to guard against
        if np.asarray(payload["fallback_mask"]).any():
            return "guard"
        beliefs = payload.get("beliefs") or {}
        if beliefs:
            stacked = np.stack([np.asarray(b) for b in beliefs.values()])
            if not healthy_belief_rows(stacked).all():
                return "guard"
        if state.last_estimates is not None and state.last_solved_step is not None:
            ms = epoch.measurements
            unknown = ~ms.anchor_mask
            est = np.asarray(payload["estimates"])
            prev = state.last_estimates
            both = (
                unknown
                & np.isfinite(est).all(axis=1)
                & np.isfinite(prev).all(axis=1)
            )
            if both.any():
                jumps = np.linalg.norm(est[both] - prev[both], axis=1)
                gap = max(epoch.step - state.last_solved_step, 1)
                limit = self.config.jump_guard_radii * ms.radio_range * gap
                if float(np.median(jumps)) > limit:
                    return "guard"
        return "ok"

    def _commit(
        self,
        state: NetworkState,
        epoch: Epoch,
        payload: dict,
        degraded: bool,
        reason: str | None,
    ) -> None:
        step = epoch.step
        ms = epoch.measurements
        estimates = np.asarray(payload["estimates"], dtype=np.float64)
        localized = np.asarray(payload["localized_mask"], dtype=bool)
        beliefs = {int(k): np.asarray(v) for k, v in (payload.get("beliefs") or {}).items()}
        decoded = {
            "kind": "solved",
            "degraded": bool(degraded),
            "reason": reason,
            "estimates": estimates,
            "localized": localized,
            "beliefs": beliefs,
        }
        if self.checkpoint is not None:
            self.checkpoint.record(
                self._key(state.network_id, step), encode_value(decoded)
            )
        self._apply_solved(state, epoch, decoded)
        arrived = state.arrival_t.pop(step, None)
        if arrived is not None:
            self.metrics.observe_staleness(self.metrics.now() - arrived)
        self.metrics.count("solved")
        if degraded:
            self.metrics.count("degraded_steps")
        state.consecutive_failures = 0
        self._note_epoch_shape(state, ms)

    def _commit_failed(
        self, state: NetworkState, epoch: Epoch, payload: dict
    ) -> None:
        step = epoch.step
        ms = epoch.measurements
        n = ms.n_nodes
        estimates = np.full((n, 2), np.nan)
        localized = np.zeros(n, dtype=bool)
        estimates[ms.anchor_mask] = ms.anchor_positions_full[ms.anchor_mask]
        localized[ms.anchor_mask] = True
        for node in np.flatnonzero(~ms.anchor_mask):
            estimates[node] = fallback_position(
                ms, int(node), state.prior, self._grid
            )
            localized[node] = True
        decoded = {
            "kind": "failed",
            "degraded": True,
            "reason": payload.get("error", "solver error"),
            "estimates": estimates,
            "localized": localized,
        }
        if self.checkpoint is not None:
            self.checkpoint.record(
                self._key(state.network_id, step), encode_value(decoded)
            )
        state.steps[step] = decoded
        state.arrival_t.pop(step, None)
        state.next_step = step + 1
        state.last_progress_event = self._events_ingested
        self._coast_prior(state)
        state.consecutive_failures += 1
        self.metrics.count("failed")
        self._note_epoch_shape(state, ms)

    def _apply_solved(self, state: NetworkState, epoch: Epoch, decoded: dict) -> None:
        step = epoch.step
        state.steps[step] = decoded
        state.next_step = step + 1
        state.last_progress_event = self._events_ingested
        beliefs = decoded.get("beliefs") or {}
        if beliefs:
            state.prior = self._diffuse(beliefs)
        else:  # pragma: no cover - solved epochs always carry beliefs
            self._coast_prior(state)
        state.last_estimates = np.asarray(decoded["estimates"])
        state.last_solved_step = step

    def _note_epoch_shape(self, state: NetworkState, ms) -> None:
        state.n_nodes = ms.n_nodes
        state.anchor_mask = np.asarray(ms.anchor_mask, dtype=bool)
        state.last_anchor_full = np.asarray(ms.anchor_positions_full)

    def _replay(self, state: NetworkState, epoch: Epoch, record: dict) -> None:
        decoded = decode_value(record)
        self.metrics.count("replayed")
        if decoded["kind"] == "solved":
            self._apply_solved(state, epoch, decoded)
            state.consecutive_failures = 0
        else:
            state.steps[epoch.step] = decoded
            state.next_step = epoch.step + 1
            state.last_progress_event = self._events_ingested
            self._coast_prior(state)
        state.arrival_t.pop(epoch.step, None)
        self._note_epoch_shape(state, epoch.measurements)

    def _solve_batch(self, batch: list[tuple[NetworkState, Epoch]]) -> None:
        live: list[tuple[NetworkState, Epoch]] = []
        for state, epoch in batch:
            record = (
                self.checkpoint.get(self._key(state.network_id, epoch.step))
                if self.checkpoint is not None
                else None
            )
            if record is not None:
                self._replay(state, epoch, record)
            else:
                live.append((state, epoch))
        if not live:
            return
        items = [
            self._item(state, epoch, warm=state.prior is not None)
            for state, epoch in live
        ]
        payloads = self.executor.solve(items)
        retry: list[tuple[NetworkState, Epoch]] = []
        for (state, epoch), payload in zip(live, payloads):
            verdict = self._assess(state, epoch, payload)
            if verdict == "failed":
                self._commit_failed(state, epoch, payload)
            elif verdict == "guard":
                self.metrics.count("guard_trips")
                retry.append((state, epoch))
            else:
                self._commit(state, epoch, payload, degraded=False, reason=None)
        if not retry:
            return
        # Poisoned-prior fallback: cold re-solve at full iterations.
        self.metrics.count("cold_resolves", len(retry))
        cold_items = [self._item(state, epoch, warm=False) for state, epoch in retry]
        cold_payloads = self.executor.solve(cold_items)
        for (state, epoch), payload in zip(retry, cold_payloads):
            if not payload.get("ok"):
                self._commit_failed(state, epoch, payload)
            else:
                self._commit(
                    state, epoch, payload, degraded=True, reason="warm-divergence"
                )

    # ------------------------------------------------------------------ #
    # drain loop
    # ------------------------------------------------------------------ #
    def _collect_ready(self, force: bool) -> list[tuple[NetworkState, Epoch]]:
        batch: list[tuple[NetworkState, Epoch]] = []
        for nid in sorted(self._states):
            state = self._states[nid]
            self._maybe_advance(state, force)
            if state.next_step in state.buffer:
                batch.append((state, state.buffer.pop(state.next_step)))
                if len(batch) >= self.config.batch_max:
                    break
        return batch

    def _drain_once(self, force: bool = False) -> bool:
        batch = self._collect_ready(force)
        if not batch:
            return False
        self._solve_batch(batch)
        return True

    def _drain(self, force: bool = False) -> None:
        while self._drain_once(force):
            pass

    def _should_drain(self) -> bool:
        ready = 0
        overdue = False
        for state in self._states.values():
            if state.next_step in state.buffer:
                ready += 1
                if ready >= min(self.config.batch_max, len(self._states)):
                    return True
            elif state.buffer:
                gap_age = self._events_ingested - state.last_progress_event
                if (
                    gap_age > self._gap_budget
                    or len(state.buffer) >= self.config.reorder_window
                ):
                    overdue = True
        return overdue

    # ------------------------------------------------------------------ #
    def run(
        self,
        events,
        final_step: int | None = None,
        network_ids=None,
        n_nodes: int | None = None,
    ) -> StreamResult:
        """Consume *events*, flush, and assemble per-network results.

        ``network_ids`` pre-registers the fleet so a network whose every
        epoch was dropped still coasts to *final_step* (zero lost
        networks); ``n_nodes`` sizes those pure-coast estimates.
        """
        self.metrics.start()
        self._default_n_nodes = n_nodes
        if network_ids is not None:
            for nid in network_ids:
                self._state(int(nid))
        for epoch in events:
            self.ingest(epoch)
            if self._should_drain():
                self._drain_once()
        self._drain(force=True)
        if final_step is not None:
            for nid in sorted(self._states):
                state = self._states[nid]
                while state.next_step <= final_step:
                    self._coast(state, "coasted")
        self.metrics.finish()
        return self._result(final_step)

    # ------------------------------------------------------------------ #
    def _result(self, final_step: int | None) -> StreamResult:
        networks: dict[int, TrackingResult] = {}
        for nid in sorted(self._states):
            state = self._states[nid]
            if not state.steps:
                continue
            t_max = max(state.steps) if final_step is None else final_step
            n = state.n_nodes if state.n_nodes is not None else (
                self._default_n_nodes or 0
            )
            if n == 0:
                sizes = [rec["estimates"].shape[0] for rec in state.steps.values()]
                n = sizes[0] if sizes else 0
            estimates = np.full((t_max + 1, n, 2), np.nan)
            localized = np.zeros((t_max + 1, n), dtype=bool)
            degraded = np.zeros(t_max + 1, dtype=bool)
            reasons: list[str | None] = [None] * (t_max + 1)
            for step, rec in state.steps.items():
                if step > t_max:
                    continue
                estimates[step] = rec["estimates"]
                localized[step] = rec["localized"]
                degraded[step] = bool(rec["degraded"])
                reasons[step] = rec.get("reason")
            networks[nid] = TrackingResult(
                estimates,
                localized,
                STREAM_METHOD,
                extras={"degraded": degraded, "reasons": reasons},
            )
        return StreamResult(
            networks=networks,
            metrics=self.metrics.snapshot(),
            executor=self.executor.snapshot(),
        )


# ---------------------------------------------------------------------- #
# assembled driver
# ---------------------------------------------------------------------- #
def stream_meta(
    fleet: FleetConfig,
    stream: StreamConfig,
    disruption: StreamDisruption | None,
) -> dict:
    """Ledger-header identity of a stream run (what resume validates)."""
    return {
        "kind": "stream",
        "config": {
            "fleet": fleet.to_dict(),
            "stream": stream.to_dict(),
            "disruption": disruption.to_dict() if disruption is not None else None,
        },
        "seed": seed_fingerprint(fleet.seed),
        "total_cells": fleet.n_networks * (fleet.n_steps + 1),
    }


def run_stream(
    fleet: FleetConfig,
    stream: StreamConfig | None = None,
    disruption: StreamDisruption | None = None,
    checkpoint=None,
    metrics: StreamMetrics | None = None,
) -> StreamResult:
    """Generate the fleet's event feed, disrupt it, and run the runtime.

    Every piece is seeded, so the same arguments always produce the same
    feed — which is what lets ``checkpoint=`` resume a killed run
    bit-identically: replayed epochs come off the ledger, the rest solve
    on the identical warm-start state.
    """
    stream = stream if stream is not None else StreamConfig()
    events = fleet_events(fleet)
    if disruption is not None:
        events, _ = disruption.apply(events)
    ck, own_ck = (None, False)
    if checkpoint is not None:
        ck, own_ck = resolve_checkpoint(
            checkpoint, lambda: stream_meta(fleet, stream, disruption)
        )
    executor = (
        StreamWorkerPool(
            stream.n_workers, timeout_s=stream.worker_timeout_s, metrics=metrics
        )
        if stream.n_workers > 0
        else InlineExecutor()
    )
    runtime = StreamRuntime(
        stream,
        executor=executor,
        checkpoint=ck,
        metrics=metrics,
        expected_networks=fleet.n_networks,
    )
    try:
        return runtime.run(
            events,
            final_step=fleet.n_steps,
            network_ids=range(fleet.n_networks),
            n_nodes=fleet.n_nodes,
        )
    finally:
        executor.close()
        if own_ck and ck is not None:
            ck.close()
