"""Fault-tolerant fleet-scale streaming tracking runtime.

Measurement epochs for many concurrent mobile networks arrive as one
time-ordered (but hostile: late, duplicated, dropped) event stream;
per-network beliefs update incrementally via warm-started grid BP —
yesterday's posterior, motion-diffused, is today's pre-knowledge — with
per-network watermarks, a warm-start divergence guard, staleness-based
shedding, per-network failure isolation, and ckpt-ledger resumability.
See :mod:`repro.stream.runtime` for the full contract; ``repro stream``
is the CLI entry point and E21 the benchmark.
"""

from repro.stream.events import DisruptionStats, Epoch, StreamDisruption
from repro.stream.metrics import StreamMetrics
from repro.stream.pool import InlineExecutor, StreamWorkerPool
from repro.stream.runtime import (
    StreamConfig,
    StreamResult,
    StreamRuntime,
    run_stream,
    stream_meta,
)
from repro.stream.scenario import (
    FleetConfig,
    FleetNetwork,
    build_fleet,
    fleet_events,
)

__all__ = [
    "Epoch",
    "DisruptionStats",
    "StreamDisruption",
    "StreamMetrics",
    "InlineExecutor",
    "StreamWorkerPool",
    "StreamConfig",
    "StreamResult",
    "StreamRuntime",
    "run_stream",
    "stream_meta",
    "FleetConfig",
    "FleetNetwork",
    "build_fleet",
    "fleet_events",
]
