"""Solve executors for the streaming runtime.

Two interchangeable backends behind the same two-method protocol
(``solve(items) -> payloads``, ``close()``):

* :class:`InlineExecutor` — in-process :func:`repro.serve.execute_batch`;
  no pipes, no crash surface, deterministic.  The fast-test default.
* :class:`StreamWorkerPool` — the warm spawn workers of
  :mod:`repro.serve.workers` driven synchronously.  Items shard
  round-robin across workers (a thread per worker keeps them genuinely
  concurrent); a worker that crashes, hangs, or is SIGKILL'd raises
  :class:`~repro.serve.workers.WorkerCrash` inside its shard thread,
  which kills it, spawns a warm replacement, and retries — with an
  in-process execution as the last resort, so a batch is *never* lost
  to worker mortality.

Both return the same payloads for the same items (``localize_batch`` is
bit-identical across batch compositions), so ``n_workers`` is a pure
throughput knob: results do not depend on it.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.serve.workers import (
    BatchExecutionError,
    WorkerCrash,
    WorkerHandle,
    execute_batch,
)

__all__ = ["InlineExecutor", "StreamWorkerPool"]


class InlineExecutor:
    """In-process executor: no pipes, no crash surface."""

    n_workers = 0

    def solve(self, items: list[dict]) -> list[dict]:
        return execute_batch(items, None)

    def close(self) -> None:
        pass

    def snapshot(self) -> dict:
        return {"inline": True, "n_workers": 0, "replacements": 0}


class StreamWorkerPool:
    """Synchronous fan-out over warm spawn workers with crash supervision."""

    def __init__(
        self,
        n_workers: int,
        timeout_s: float = 120.0,
        max_retries: int = 2,
        metrics=None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("StreamWorkerPool needs n_workers >= 1")
        self.n_workers = n_workers
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.metrics = metrics
        self.replacements = 0
        self._ctx = mp.get_context("spawn")
        self._lock = threading.Lock()
        self._handles: list[WorkerHandle] = [
            WorkerHandle(self._ctx) for _ in range(n_workers)
        ]
        self._threads = ThreadPoolExecutor(
            max_workers=n_workers, thread_name_prefix="repro-stream"
        )

    # ------------------------------------------------------------------ #
    def solve(self, items: list[dict]) -> list[dict]:
        """Execute *items* across the pool, preserving item order."""
        if not items:
            return []
        shards: list[list[int]] = [[] for _ in range(self.n_workers)]
        for i in range(len(items)):
            shards[i % self.n_workers].append(i)
        futures = {}
        for slot, idxs in enumerate(shards):
            if idxs:
                shard_items = [items[i] for i in idxs]
                futures[slot] = self._threads.submit(
                    self._solve_shard, slot, shard_items
                )
        out: list[dict | None] = [None] * len(items)
        for slot, idxs in enumerate(shards):
            if not idxs:
                continue
            payloads = futures[slot].result()
            for i, payload in zip(idxs, payloads):
                out[i] = payload
        return out  # type: ignore[return-value]

    def _solve_shard(self, slot: int, shard: list[dict]) -> list[dict]:
        for _ in range(self.max_retries + 1):
            handle = self._handles[slot]
            try:
                if not handle.alive:
                    raise WorkerCrash(
                        f"worker {handle.id} found dead "
                        f"(exit code {handle.process.exitcode})"
                    )
                reply = handle.call_sync(("batch", shard, None), self.timeout_s)
                if reply[0] == "ok":
                    return reply[1]
                raise BatchExecutionError(str(reply[1]))
            except WorkerCrash:
                self._replace(slot)
            except BatchExecutionError:
                break
        # Last resort: run the shard in-process.  Slower, but the batch
        # survives any worker mortality — the zero-lost contract.
        return execute_batch(shard, None)

    def _replace(self, slot: int) -> None:
        old = self._handles[slot]
        old.kill()
        self._handles[slot] = WorkerHandle(self._ctx)
        with self._lock:
            self.replacements += 1
        if self.metrics is not None:
            self.metrics.count("worker_replacements")

    # ------------------------------------------------------------------ #
    def worker_pids(self) -> list[int | None]:
        return [h.pid for h in self._handles]

    def close(self) -> None:
        for handle in self._handles:
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for handle in self._handles:
            handle.kill()
        self._threads.shutdown(wait=True)

    def snapshot(self) -> dict:
        return {
            "inline": False,
            "n_workers": self.n_workers,
            "alive": sum(1 for h in self._handles if h.alive),
            "replacements": self.replacements,
        }
