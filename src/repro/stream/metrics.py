"""Stream-runtime metrics: ingest hygiene, solve outcomes, staleness.

Counter names (all on the underlying :class:`repro.obs.Tracer`):

``ingested / duplicates / stale_discarded / out_of_order`` — ingest
hygiene; ``solved / replayed / coasted / shed / failed`` — per-epoch
outcomes; ``guard_trips / cold_resolves`` — the warm-start divergence
guard; ``worker_replacements`` — pool supervision.

Staleness (seconds between an epoch's arrival and its belief update
landing) feeds a bounded sliding reservoir; :meth:`snapshot` exports
p50/p99 via :func:`repro.obs.reservoir_summary` plus sustained
updates/sec over the run — the two headline numbers of E21.
"""

from __future__ import annotations

import time
from collections import deque

from repro.obs import Tracer
from repro.obs.report import reservoir_summary

__all__ = ["StreamMetrics"]


class StreamMetrics:
    """Counters plus a staleness reservoir for one stream run."""

    def __init__(self, window: int = 4096, clock=time.perf_counter) -> None:
        self.tracer = Tracer()
        self._staleness = deque(maxlen=window)
        self._clock = clock
        self._started: float | None = None
        self._finished: float | None = None

    # ------------------------------------------------------------------ #
    def now(self) -> float:
        return self._clock()

    def start(self) -> None:
        if self._started is None:
            self._started = self._clock()

    def finish(self) -> None:
        self._finished = self._clock()

    def count(self, name: str, n: int = 1) -> None:
        if n:
            self.tracer.count(name, n)

    def observe_staleness(self, seconds: float) -> None:
        self._staleness.append(float(seconds) * 1e3)

    # ------------------------------------------------------------------ #
    @property
    def elapsed_s(self) -> float | None:
        if self._started is None:
            return None
        end = self._finished if self._finished is not None else self._clock()
        return max(end - self._started, 1e-9)

    def snapshot(self) -> dict:
        counters = dict(self.tracer.counters)
        updates = counters.get("solved", 0) + counters.get("coasted", 0)
        elapsed = self.elapsed_s
        return {
            "counters": counters,
            "staleness_ms": reservoir_summary(self._staleness),
            "elapsed_s": elapsed,
            "updates_per_sec": (updates / elapsed) if elapsed else None,
        }
