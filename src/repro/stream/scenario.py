"""Fleet scenarios: many concurrent mobile networks as one event feed.

:func:`build_fleet` generates ``n_networks`` independent mobile WSNs
(each its own topology, anchors, and random-walk trajectory) and
:func:`fleet_events` turns them into the canonical step-major event feed
(step 0 of every network, then step 1, …) the streaming runtime ingests.

Every random draw derives from per-``(network, step)`` spawned
``SeedSequence`` children of the fleet seed, so any epoch can be
regenerated independently of generation order — the property that makes
a killed-and-resumed stream regenerate the *identical* feed and continue
bit-identically.

Networks listed in ``faulted_networks`` get their epochs degraded
through :func:`repro.faults.degrade_measurements` (dead anchors, lost
links, outlier ranges) with a per-epoch reseeded plan — the chaos lane's
crashing-network injection.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.faults import FaultPlan, degrade_measurements
from repro.measurement.measurements import observe
from repro.measurement.ranging import GaussianRanging
from repro.mobility.models import RandomWalkMobility
from repro.network.generator import NetworkConfig, generate_network
from repro.network.radio import UnitDiskRadio
from repro.network.topology import WSNetwork
from repro.stream.events import Epoch

__all__ = ["FleetConfig", "FleetNetwork", "build_fleet", "fleet_events"]


@dataclass(frozen=True)
class FleetConfig:
    """One fleet of concurrent mobile networks (all knobs seeded)."""

    n_networks: int = 8
    n_nodes: int = 16
    anchor_ratio: float = 0.3
    n_steps: int = 5
    radio_range: float = 0.35
    noise_sigma: float = 0.02
    step_sigma: float = 0.025
    seed: int = 0
    fault_plan: FaultPlan | None = None
    faulted_networks: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.n_networks < 1:
            raise ValueError("n_networks must be >= 1")
        if self.n_steps < 0:
            raise ValueError("n_steps must be >= 0")
        bad = [i for i in self.faulted_networks if not 0 <= i < self.n_networks]
        if bad:
            raise ValueError(f"faulted_networks out of range: {bad}")
        if self.faulted_networks and self.fault_plan is None:
            raise ValueError("faulted_networks requires a fault_plan")

    def to_dict(self) -> dict:
        """JSON-safe form for the ckpt ledger header (resume identity)."""
        out = dataclasses.asdict(self)
        out["faulted_networks"] = list(self.faulted_networks)
        if self.fault_plan is not None:
            plan = dataclasses.asdict(self.fault_plan)
            plan["node_outages"] = [dict(o) for o in plan["node_outages"]]
            out["fault_plan"] = plan
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FleetConfig":
        from repro.faults.plan import NodeOutage

        plan = data.get("fault_plan")
        if plan is not None:
            plan = dict(plan)
            plan["node_outages"] = tuple(
                NodeOutage(**o) for o in plan.get("node_outages", [])
            )
            plan["failed_anchors"] = tuple(plan.get("failed_anchors", ()))
            plan = FaultPlan(**plan)
        return cls(
            n_networks=int(data["n_networks"]),
            n_nodes=int(data["n_nodes"]),
            anchor_ratio=float(data["anchor_ratio"]),
            n_steps=int(data["n_steps"]),
            radio_range=float(data["radio_range"]),
            noise_sigma=float(data["noise_sigma"]),
            step_sigma=float(data["step_sigma"]),
            seed=int(data["seed"]),
            fault_plan=plan,
            faulted_networks=tuple(int(i) for i in data.get("faulted_networks", ())),
        )


@dataclass
class FleetNetwork:
    """One fleet member: its static identity plus its full trajectory."""

    network_id: int
    anchor_mask: np.ndarray
    trajectory: np.ndarray  # (n_steps + 1, n, 2)


def _network_rng(config: FleetConfig, network_id: int, step: int | None = None):
    """Generator for one network's structure (step=None) or one epoch."""
    key = (network_id,) if step is None else (network_id, 1 + step)
    return np.random.default_rng(
        np.random.SeedSequence(config.seed, spawn_key=key)
    )


def build_fleet(config: FleetConfig) -> list[FleetNetwork]:
    """Generate every network's topology and trajectory."""
    radio = UnitDiskRadio(config.radio_range)
    mobility = RandomWalkMobility(step_sigma=config.step_sigma)
    fleet = []
    for nid in range(config.n_networks):
        gen = _network_rng(config, nid)
        net = generate_network(
            NetworkConfig(
                n_nodes=config.n_nodes,
                anchor_ratio=config.anchor_ratio,
                radio=radio,
            ),
            rng=gen,
        )
        traj = mobility.trajectory(net.positions, config.n_steps, rng=gen)
        fleet.append(FleetNetwork(nid, net.anchor_mask, traj))
    return fleet


def _epoch_plan(config: FleetConfig, network_id: int, step: int) -> FaultPlan:
    """The fault plan reseeded for one epoch (independent degradation)."""
    assert config.fault_plan is not None
    return dataclasses.replace(
        config.fault_plan,
        seed=config.fault_plan.seed + 7919 * (network_id + 1) + step,
    )


def make_epoch(
    config: FleetConfig, member: FleetNetwork, step: int
) -> Epoch:
    """Regenerate one epoch, independent of every other epoch."""
    radio = UnitDiskRadio(config.radio_range)
    ranging = GaussianRanging(config.noise_sigma)
    gen = _network_rng(config, member.network_id, step)
    positions = member.trajectory[step]
    net = WSNetwork(
        positions=positions,
        anchor_mask=member.anchor_mask,
        adjacency=radio.adjacency(positions, gen),
        width=1.0,
        height=1.0,
        radio_range=radio.range_,
    )
    ms = observe(net, ranging, gen)
    if config.fault_plan is not None and member.network_id in config.faulted_networks:
        ms, _ = degrade_measurements(
            ms, _epoch_plan(config, member.network_id, step)
        )
    return Epoch(
        network_id=member.network_id,
        step=step,
        measurements=ms,
        true_positions=positions,
    )


def fleet_events(
    config: FleetConfig, fleet: list[FleetNetwork] | None = None
) -> list[Epoch]:
    """The canonical ordered feed: step-major over the whole fleet."""
    if fleet is None:
        fleet = build_fleet(config)
    return [
        make_epoch(config, member, step)
        for step in range(config.n_steps + 1)
        for member in fleet
    ]
