"""Measurement-epoch events and hostile-stream disruption.

The streaming runtime consumes :class:`Epoch` events: one network's
measurement snapshot at one time step.  A well-behaved feed delivers
them in time order; real feeds do not.  :class:`StreamDisruption` is the
seeded adversary — it reorders (late delivery), duplicates, and drops
events from an ordered feed, deterministically, so the hostile-stream
tests and the E21 chaos lane replay bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.measurement.measurements import MeasurementSet

__all__ = ["Epoch", "DisruptionStats", "StreamDisruption"]


@dataclass(frozen=True)
class Epoch:
    """One network's measurement snapshot at one tracking step.

    Attributes
    ----------
    network_id, step:
        Which network, which time step (steps are per-network and
        contiguous from 0 in a clean feed).
    measurements:
        The observable slice the localizer consumes.
    true_positions:
        Ground truth ``(n, 2)`` when the feed is simulated — used only
        for accuracy gating, never by the runtime's inference path.
    """

    network_id: int
    step: int
    measurements: MeasurementSet
    true_positions: np.ndarray | None = None


@dataclass
class DisruptionStats:
    """What the adversary actually did to the feed."""

    n_events: int = 0
    n_delayed: int = 0
    n_duplicated: int = 0
    n_dropped: int = 0

    @property
    def disrupted_fraction(self) -> float:
        if self.n_events == 0:
            return 0.0
        return (self.n_delayed + self.n_duplicated + self.n_dropped) / self.n_events


@dataclass(frozen=True)
class StreamDisruption:
    """Seeded late/duplicate/drop adversary over an ordered event feed.

    Each event independently: dropped with ``drop_rate``; delayed by a
    uniform lag in ``[1, max_lag]`` slots with ``late_rate`` (delivered
    out of order past everything it overtakes); and echoed once with
    ``duplicate_rate`` (the echo lands a uniform lag later).  All draws
    come from one seeded stream over the events in feed order, so the
    same plan applied to the same feed is bit-identical — resuming a
    killed run regenerates the exact same hostile arrival order.
    """

    late_rate: float = 0.0
    duplicate_rate: float = 0.0
    drop_rate: float = 0.0
    max_lag: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("late_rate", "duplicate_rate", "drop_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"{name} must lie in [0, 1], got {rate}")
        if self.max_lag < 1:
            raise ValueError("max_lag must be >= 1")

    def apply(self, events: list[Epoch]) -> tuple[list[Epoch], DisruptionStats]:
        """The disrupted arrival order of *events* plus what was done."""
        gen = np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(0xD157,))
        )
        stats = DisruptionStats(n_events=len(events))
        keyed: list[tuple[float, int, Epoch]] = []
        for i, epoch in enumerate(events):
            # Fixed draw order per event keeps the stream deterministic
            # whatever the rates are.
            u_drop, u_late, u_dup = gen.random(3)
            lag = int(gen.integers(1, self.max_lag + 1))
            dup_lag = int(gen.integers(1, self.max_lag + 1))
            if u_drop < self.drop_rate:
                stats.n_dropped += 1
                continue
            if u_late < self.late_rate:
                stats.n_delayed += 1
                # +0.5 lands the late event *after* the on-time event at
                # the destination slot.
                keyed.append((i + lag + 0.5, i, epoch))
            else:
                keyed.append((float(i), i, epoch))
            if u_dup < self.duplicate_rate:
                stats.n_duplicated += 1
                keyed.append((i + dup_lag + 0.75, i, epoch))
        keyed.sort(key=lambda t: (t[0], t[1]))
        return [epoch for _, _, epoch in keyed], stats

    def to_dict(self) -> dict:
        return {
            "late_rate": self.late_rate,
            "duplicate_rate": self.duplicate_rate,
            "drop_rate": self.drop_rate,
            "max_lag": self.max_lag,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamDisruption":
        return cls(
            late_rate=float(data.get("late_rate", 0.0)),
            duplicate_rate=float(data.get("duplicate_rate", 0.0)),
            drop_rate=float(data.get("drop_rate", 0.0)),
            max_lag=int(data.get("max_lag", 8)),
            seed=int(data.get("seed", 0)),
        )
