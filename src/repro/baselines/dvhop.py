"""DV-Hop localization (Niculescu & Nath, 2001/2003).

Three phases, exactly as published:

1. every node learns its hop count to every anchor (distance-vector flood);
2. each anchor computes an *average hop size* from its true distances to
   the other anchors divided by their hop counts; a node adopts the hop
   size of its nearest anchor;
3. each node converts hop counts to distance estimates and laterates.

DV-Hop is the canonical range-free multi-hop baseline; it degrades badly
on concave (C-shaped) deployments because shortest paths detour around
voids — the E9 experiment.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from repro.baselines.multilateration import lateration
from repro.core.result import LocalizationResult, Localizer
from repro.measurement.measurements import MeasurementSet
from repro.utils.geometry import pairwise_distances
from repro.utils.rng import RNGLike

__all__ = ["DVHopLocalizer"]


class DVHopLocalizer(Localizer):
    """Range-free DV-Hop with least-squares lateration.

    Parameters
    ----------
    min_anchors:
        Anchors needed to laterate a node (≥ 3).
    refine:
        Nonlinear polish of the lateration solution.
    """

    name = "dv-hop"

    def __init__(self, min_anchors: int = 3, refine: bool = True) -> None:
        if min_anchors < 3:
            raise ValueError("min_anchors must be >= 3 in 2-D")
        self.min_anchors = int(min_anchors)
        self.refine = bool(refine)

    def localize(
        self, measurements: MeasurementSet, rng: RNGLike = None
    ) -> LocalizationResult:
        ms = measurements
        estimates, mask = self._result_skeleton(ms)

        graph = csr_matrix(ms.adjacency.astype(np.int8))
        hops = shortest_path(graph, method="D", unweighted=True, directed=False)
        anchor_ids = ms.anchor_ids
        hop_to_anchor = hops[:, anchor_ids]  # (n, m)

        # Phase 2: per-anchor average hop size from anchor-anchor geometry.
        apos = ms.anchor_positions
        true_aa = pairwise_distances(apos)
        hop_aa = hop_to_anchor[anchor_ids]  # (m, m)
        m = len(anchor_ids)
        hop_size = np.zeros(m)
        for ai in range(m):
            others = np.arange(m) != ai
            usable = others & np.isfinite(hop_aa[ai]) & (hop_aa[ai] > 0)
            if usable.any():
                hop_size[ai] = true_aa[ai, usable].sum() / hop_aa[ai, usable].sum()
            else:
                hop_size[ai] = ms.radio_range  # isolated anchor: fall back
        if m < 2:
            raise ValueError("DV-Hop needs at least 2 anchors to calibrate hop size")

        # Phase 3: distances from hop counts (using the nearest anchor's hop
        # size, as in the original protocol) and lateration.
        for u in ms.unknown_ids:
            u = int(u)
            h = hop_to_anchor[u]
            reachable = np.isfinite(h) & (h > 0)
            if reachable.sum() < self.min_anchors:
                continue
            nearest = int(np.argmin(np.where(reachable, h, np.inf)))
            size = hop_size[nearest]
            dists = h[reachable] * size
            refs = apos[reachable]
            # Closer anchors give relatively better hop-distance estimates.
            w = 1.0 / np.maximum(h[reachable], 1.0)
            try:
                estimates[u] = lateration(refs, dists, w, refine=self.refine)
            except ValueError:
                continue
            mask[u] = True
        return LocalizationResult(estimates, mask, self.name)
