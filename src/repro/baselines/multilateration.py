"""Least-squares (multi)lateration.

:func:`lateration` solves one node's position from reference points and
distance estimates — the linearized closed form followed by an optional
Levenberg–Marquardt refinement (:func:`scipy.optimize.least_squares`).

:class:`MultilaterationLocalizer` applies it network-wide, iteratively: a
node that hears ≥ 3 references (anchors, then already-solved neighbors
acting as pseudo-anchors) is solved and promoted, until a fixed point.
This is the classic "iterative multilateration" of Savvides et al., and it
exhibits the error *accumulation* over hops that motivates probabilistic
cooperation.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import least_squares

from repro.core.result import LocalizationResult, Localizer
from repro.measurement.measurements import MeasurementSet
from repro.utils.rng import RNGLike

__all__ = ["lateration", "MultilaterationLocalizer"]


def lateration(
    references: np.ndarray,
    distances: np.ndarray,
    weights: np.ndarray | None = None,
    refine: bool = True,
) -> np.ndarray:
    """Solve a single 2-D position from ≥ 3 reference/distance pairs.

    Parameters
    ----------
    references:
        ``(m, 2)`` known positions, m ≥ 3, not all collinear.
    distances:
        ``(m,)`` distance estimates to each reference.
    weights:
        Optional per-measurement weights (1/σ²-style).
    refine:
        Polish the linear solution with nonlinear least squares.

    Returns
    -------
    numpy.ndarray
        The ``(2,)`` estimate.

    Raises
    ------
    ValueError
        On malformed input or a degenerate (collinear) geometry.
    """
    refs = np.asarray(references, dtype=np.float64)
    d = np.asarray(distances, dtype=np.float64)
    if refs.ndim != 2 or refs.shape[1] != 2 or len(refs) < 3:
        raise ValueError("need at least 3 references of shape (m, 2)")
    if d.shape != (len(refs),):
        raise ValueError("distances must match references")
    if np.any(d < 0) or not np.all(np.isfinite(d)):
        raise ValueError("distances must be finite and non-negative")
    if weights is None:
        w = np.ones(len(refs))
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (len(refs),) or np.any(w <= 0):
            raise ValueError("weights must be positive, matching references")

    # Linearize by subtracting the last reference's circle equation.
    xn, yn = refs[-1]
    dn = d[-1]
    A = 2.0 * (refs[:-1] - refs[-1])
    b = (
        d[-1] ** 2
        - d[:-1] ** 2
        + np.sum(refs[:-1] ** 2, axis=1)
        - (xn**2 + yn**2)
    )
    wa = w[:-1]
    Aw = A * wa[:, None]
    try:
        sol, *_ = np.linalg.lstsq(Aw, b * wa, rcond=None)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - rare
        raise ValueError("lateration system is singular") from exc
    # Collinearity check: rank of the design matrix.
    if np.linalg.matrix_rank(A) < 2:
        raise ValueError("references are collinear; position is ambiguous")
    est = sol

    if refine:
        def residuals(p):
            return (np.linalg.norm(refs - p, axis=1) - d) * np.sqrt(w)

        fit = least_squares(residuals, est, method="lm", max_nfev=100)
        est = fit.x
    return est


class MultilaterationLocalizer(Localizer):
    """Iterative weighted least-squares lateration.

    Parameters
    ----------
    min_references:
        References needed to solve a node (≥ 3 for 2-D).
    max_rounds:
        Promotion rounds (each round may turn solved nodes into
        pseudo-anchors for their neighbors).
    refine:
        Nonlinear polish per node (slower, more accurate).
    """

    name = "multilateration"

    def __init__(
        self,
        min_references: int = 3,
        max_rounds: int = 10,
        refine: bool = True,
    ) -> None:
        if min_references < 3:
            raise ValueError("min_references must be >= 3 in 2-D")
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.min_references = int(min_references)
        self.max_rounds = int(max_rounds)
        self.refine = bool(refine)

    def localize(
        self, measurements: MeasurementSet, rng: RNGLike = None
    ) -> LocalizationResult:
        ms = measurements
        if not ms.has_ranging:
            raise ValueError(
                "multilateration requires ranged measurements; use a "
                "range-free baseline (centroid, DV-Hop) otherwise"
            )
        estimates, mask = self._result_skeleton(ms)
        sigma = ms.ranging.sigma_at(
            np.where(np.isfinite(ms.observed_distances), ms.observed_distances, 1.0)
        )
        n_rounds = 0
        for n_rounds in range(1, self.max_rounds + 1):
            progressed = False
            for u in ms.unknown_ids:
                u = int(u)
                if mask[u]:
                    continue
                neigh = ms.neighbors(u)
                refs = [v for v in neigh if mask[v]]
                if len(refs) < self.min_references:
                    continue
                ref_pos = estimates[refs]
                dists = ms.observed_distances[u, refs]
                w = 1.0 / np.maximum(sigma[u, refs], 1e-9) ** 2
                try:
                    estimates[u] = lateration(ref_pos, dists, w, refine=self.refine)
                except ValueError:
                    continue  # degenerate geometry this round; retry later
                mask[u] = True
                progressed = True
            if not progressed:
                break
        return LocalizationResult(
            estimates, mask, self.name, n_iterations=n_rounds
        )
