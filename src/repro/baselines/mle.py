"""Centralized cooperative maximum-likelihood localization.

Minimizes the weighted ranging stress

``Σ_links  (d_obs_ij − ‖x_i − x_j‖)² / σ_ij²``

over all unknown coordinates jointly (scipy L-BFGS-B), starting from a
cheap initializer (weighted centroid by default).  This is the classic
non-Bayesian "gold standard" when the noise model is Gaussian: with a good
start it is very accurate, but it is non-convex — poor initialization lands
in fold-over local minima, which is precisely the failure mode priors and
probabilistic message passing avoid.

An optional Gaussian prior turns it into MAP estimation, giving the
pre-knowledge comparison a non-BP reference point.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.baselines.centroid import WeightedCentroidLocalizer
from repro.core.result import LocalizationResult, Localizer
from repro.measurement.measurements import MeasurementSet
from repro.priors.deployment import PerNodePrior
from repro.utils.rng import RNGLike, as_generator

__all__ = ["MLELocalizer"]


class MLELocalizer(Localizer):
    """Joint nonlinear least-squares ("stress") minimization.

    Parameters
    ----------
    initializer:
        Any :class:`Localizer` producing the starting point; nodes it
        fails to place start at a random position.  Default: weighted
        centroid.
    prior:
        Optional :class:`~repro.priors.deployment.PerNodePrior`; adds the
        Gaussian penalty ``‖x_i − μ_i‖²/σ²`` (MAP estimation).
    max_iterations:
        L-BFGS iteration cap.
    """

    name = "mle"

    def __init__(
        self,
        initializer: Localizer | None = None,
        prior: PerNodePrior | None = None,
        max_iterations: int = 500,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.initializer = (
            initializer if initializer is not None else WeightedCentroidLocalizer()
        )
        if prior is not None and not isinstance(prior, PerNodePrior):
            raise TypeError("MLELocalizer supports PerNodePrior pre-knowledge only")
        self.prior = prior
        self.max_iterations = int(max_iterations)

    def localize(
        self, measurements: MeasurementSet, rng: RNGLike = None
    ) -> LocalizationResult:
        ms = measurements
        if not ms.has_ranging:
            raise ValueError("MLE requires ranged measurements")
        gen = as_generator(rng)
        estimates, mask = self._result_skeleton(ms)

        init = self.initializer.localize(ms, gen)
        unknowns = [int(u) for u in ms.unknown_ids]
        x0 = np.empty((len(unknowns), 2))
        for k, u in enumerate(unknowns):
            if init.localized_mask[u]:
                x0[k] = init.estimates[u]
            else:
                x0[k] = gen.uniform(0, 1, size=2) * [ms.width, ms.height]
        index = {u: k for k, u in enumerate(unknowns)}

        # Precompute link lists.
        uu_edges = []  # (ki, kj, d_obs, w)
        ua_edges = []  # (ki, anchor_pos, d_obs, w)
        for i, j in ms.edges():
            i, j = int(i), int(j)
            d = float(ms.observed_distances[i, j])
            s = float(ms.ranging.sigma_at(np.array([max(d, 1e-6)]))[0])
            w = 1.0 / max(s, 1e-9) ** 2
            ai, aj = ms.anchor_mask[i], ms.anchor_mask[j]
            if ai and aj:
                continue
            if ai or aj:
                u, a = (j, i) if ai else (i, j)
                ua_edges.append((index[u], ms.anchor_positions_full[a], d, w))
            else:
                uu_edges.append((index[i], index[j], d, w))

        ii = np.array([e[0] for e in uu_edges], dtype=int)
        jj = np.array([e[1] for e in uu_edges], dtype=int)
        d_uu = np.array([e[2] for e in uu_edges])
        w_uu = np.array([e[3] for e in uu_edges])
        ku = np.array([e[0] for e in ua_edges], dtype=int)
        apos = (
            np.array([e[1] for e in ua_edges])
            if ua_edges
            else np.zeros((0, 2))
        )
        d_ua = np.array([e[2] for e in ua_edges])
        w_ua = np.array([e[3] for e in ua_edges])

        prior_mu = None
        if self.prior is not None:
            prior_mu = np.array(
                [
                    self.prior._intended.get(u, np.array([np.nan, np.nan]))
                    + self.prior.offset
                    for u in unknowns
                ]
            )
            prior_w = 1.0 / self.prior.sigma**2
            prior_mask = np.isfinite(prior_mu).all(axis=1)

        def objective(flat: np.ndarray) -> tuple[float, np.ndarray]:
            X = flat.reshape(-1, 2)
            grad = np.zeros_like(X)
            total = 0.0
            if len(ii):
                diff = X[ii] - X[jj]
                dist = np.maximum(np.linalg.norm(diff, axis=1), 1e-12)
                r = dist - d_uu
                total += float((w_uu * r**2).sum())
                g = (2 * w_uu * r / dist)[:, None] * diff
                np.add.at(grad, ii, g)
                np.add.at(grad, jj, -g)
            if len(ku):
                diff = X[ku] - apos
                dist = np.maximum(np.linalg.norm(diff, axis=1), 1e-12)
                r = dist - d_ua
                total += float((w_ua * r**2).sum())
                g = (2 * w_ua * r / dist)[:, None] * diff
                np.add.at(grad, ku, g)
            if prior_mu is not None and prior_mask.any():
                diff = X[prior_mask] - prior_mu[prior_mask]
                total += float(prior_w * (diff**2).sum())
                grad[prior_mask] += 2 * prior_w * diff
            return total, grad.ravel()

        fit = minimize(
            objective,
            x0.ravel(),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iterations},
        )
        X = fit.x.reshape(-1, 2)
        for k, u in enumerate(unknowns):
            estimates[u] = X[k]
            mask[u] = True
        return LocalizationResult(
            estimates,
            mask,
            self.name,
            n_iterations=int(fit.nit),
            converged=bool(fit.success),
            extras={"stress": float(fit.fun)},
        )
