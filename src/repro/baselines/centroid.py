"""Centroid-family range-free baselines (Bulusu, Heidemann & Estrin 2000).

A node estimates its position as the (possibly weighted) centroid of the
anchors it can hear.  To extend coverage beyond one hop, anchors are used
at their hop distance with rapidly decaying weight — the common "multi-hop
centroid" variant; nodes with no reachable anchor stay unlocalized.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from repro.core.result import LocalizationResult, Localizer
from repro.measurement.measurements import MeasurementSet
from repro.utils.rng import RNGLike

__all__ = ["CentroidLocalizer", "WeightedCentroidLocalizer"]


def _hops_to_anchors(ms: MeasurementSet) -> np.ndarray:
    graph = csr_matrix(ms.adjacency.astype(np.int8))
    hops = shortest_path(graph, method="D", unweighted=True, directed=False)
    return hops[:, ms.anchor_mask]


class CentroidLocalizer(Localizer):
    """Unweighted centroid of one-hop anchors (multi-hop fallback).

    Parameters
    ----------
    max_hops:
        Anchors up to this hop distance participate; one-hop anchors are
        always preferred when available (the classic scheme).
    """

    name = "centroid"

    def __init__(self, max_hops: int = 3) -> None:
        if max_hops < 1:
            raise ValueError("max_hops must be >= 1")
        self.max_hops = int(max_hops)

    def localize(
        self, measurements: MeasurementSet, rng: RNGLike = None
    ) -> LocalizationResult:
        ms = measurements
        estimates, mask = self._result_skeleton(ms)
        hops = _hops_to_anchors(ms)
        apos = ms.anchor_positions
        for u in ms.unknown_ids:
            u = int(u)
            h = hops[u]
            # Prefer the nearest hop ring that contains anchors.
            for ring in range(1, self.max_hops + 1):
                sel = h <= ring
                if sel.any():
                    estimates[u] = apos[sel].mean(axis=0)
                    mask[u] = True
                    break
        return LocalizationResult(estimates, mask, self.name)


class WeightedCentroidLocalizer(Localizer):
    """Centroid weighted by proximity.

    With ranging, weights are ``1 / (d_obs + ε)``; range-free, weights are
    ``1 / hops``.  Anchors within *max_hops* participate (measured
    distances only exist for one-hop anchors, so farther anchors fall back
    to hop-count weights).
    """

    name = "weighted-centroid"

    def __init__(self, max_hops: int = 3, epsilon: float = 1e-3) -> None:
        if max_hops < 1:
            raise ValueError("max_hops must be >= 1")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.max_hops = int(max_hops)
        self.epsilon = float(epsilon)

    def localize(
        self, measurements: MeasurementSet, rng: RNGLike = None
    ) -> LocalizationResult:
        ms = measurements
        estimates, mask = self._result_skeleton(ms)
        hops = _hops_to_anchors(ms)
        apos = ms.anchor_positions
        anchor_ids = ms.anchor_ids
        for u in ms.unknown_ids:
            u = int(u)
            h = hops[u]
            sel = np.isfinite(h) & (h <= self.max_hops) & (h >= 1)
            if not sel.any():
                continue
            w = np.empty(sel.sum())
            pos = apos[sel]
            for k, ai in enumerate(np.flatnonzero(sel)):
                a = int(anchor_ids[ai])
                if ms.has_ranging and ms.adjacency[u, a]:
                    w[k] = 1.0 / (ms.observed_distances[u, a] + self.epsilon)
                else:
                    w[k] = 1.0 / h[ai]
            estimates[u] = (w[:, None] * pos).sum(axis=0) / w.sum()
            mask[u] = True
        return LocalizationResult(estimates, mask, self.name)
