"""MDS-MAP localization (Shang, Ruml, Zhang & Fromherz, 2003).

1. Build the all-pairs shortest-path distance matrix over the connectivity
   graph (edge weights = observed ranges when available, else the nominal
   radio range).
2. Classical (Torgerson) multidimensional scaling of the squared-distance
   matrix → a relative 2-D map.
3. Align the relative map onto the anchors with a similarity Procrustes
   transform (rotation/reflection + scale + translation).

Like DV-Hop, MDS-MAP relies on shortest paths approximating Euclidean
distances, so concave topologies (E9) distort the relative map globally.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components, shortest_path

from repro.core.result import LocalizationResult, Localizer
from repro.measurement.measurements import MeasurementSet
from repro.utils.rng import RNGLike

__all__ = ["MDSMAPLocalizer", "classical_mds", "procrustes_align"]


def classical_mds(dist: np.ndarray, dim: int = 2) -> np.ndarray:
    """Torgerson classical MDS: coordinates from a distance matrix.

    Double-centers the squared distances and takes the top-*dim*
    eigenvectors of the Gram matrix.  Eigenvalues are clipped at zero
    (shortest-path matrices are not exactly Euclidean).
    """
    D = np.asarray(dist, dtype=np.float64)
    if D.ndim != 2 or D.shape[0] != D.shape[1]:
        raise ValueError("dist must be square")
    if not np.all(np.isfinite(D)):
        raise ValueError("dist must be finite (restrict to one component)")
    n = len(D)
    if n <= dim:
        raise ValueError(f"need more than {dim} points")
    J = np.eye(n) - np.full((n, n), 1.0 / n)
    B = -0.5 * J @ (D**2) @ J
    vals, vecs = np.linalg.eigh(B)
    top = np.argsort(vals)[::-1][:dim]
    lam = np.clip(vals[top], 0.0, None)
    return vecs[:, top] * np.sqrt(lam)[None, :]


def procrustes_align(
    source: np.ndarray, target: np.ndarray, allow_scale: bool = True
) -> tuple[np.ndarray, float, np.ndarray]:
    """Similarity transform mapping *source* points onto *target*.

    Returns ``(R, s, t)`` with ``aligned = s · source @ R + t`` minimizing
    the squared alignment error (orthogonal Procrustes; reflections are
    allowed, as a relative MDS map has arbitrary chirality).
    """
    src = np.asarray(source, dtype=np.float64)
    tgt = np.asarray(target, dtype=np.float64)
    if src.shape != tgt.shape or src.ndim != 2:
        raise ValueError("source and target must be equal-shape (m, d)")
    if len(src) < 3:
        raise ValueError("need at least 3 correspondence points")
    mu_s = src.mean(axis=0)
    mu_t = tgt.mean(axis=0)
    A = (src - mu_s).T @ (tgt - mu_t)
    U, S, Vt = np.linalg.svd(A)
    R = U @ Vt
    if allow_scale:
        denom = ((src - mu_s) ** 2).sum()
        if denom <= 0:
            raise ValueError("degenerate source configuration")
        s = S.sum() / denom
    else:
        s = 1.0
    t = mu_t - s * mu_s @ R
    return R, float(s), t


class MDSMAPLocalizer(Localizer):
    """Centralized MDS-MAP with anchor-based Procrustes alignment.

    Nodes outside the anchors' connected component (or in components with
    fewer than 3 anchors) remain unlocalized.
    """

    name = "mds-map"

    def localize(
        self, measurements: MeasurementSet, rng: RNGLike = None
    ) -> LocalizationResult:
        ms = measurements
        estimates, mask = self._result_skeleton(ms)

        weights = np.where(
            ms.adjacency,
            ms.observed_distances if ms.has_ranging else ms.radio_range,
            0.0,
        )
        np.nan_to_num(weights, copy=False, nan=ms.radio_range)
        weights = weights * ms.adjacency  # zero means "no edge" for csgraph
        graph = csr_matrix(weights)
        n_comp, labels = connected_components(
            csr_matrix(ms.adjacency.astype(np.int8)), directed=False
        )
        spd = shortest_path(graph, method="D", directed=False)

        for comp in range(n_comp):
            nodes = np.flatnonzero(labels == comp)
            anchors_here = [int(v) for v in nodes if ms.anchor_mask[v]]
            if len(nodes) < 3 or len(anchors_here) < 3:
                continue
            sub = spd[np.ix_(nodes, nodes)]
            try:
                rel = classical_mds(sub, dim=2)
            except ValueError:
                continue
            local_idx = {int(v): k for k, v in enumerate(nodes)}
            src = rel[[local_idx[a] for a in anchors_here]]
            tgt = ms.anchor_positions_full[anchors_here]
            try:
                R, s, t = procrustes_align(src, tgt)
            except ValueError:
                continue
            aligned = s * rel @ R + t
            for v in nodes:
                v = int(v)
                if not ms.anchor_mask[v]:
                    estimates[v] = aligned[local_idx[v]]
                    mask[v] = True
        return LocalizationResult(estimates, mask, self.name)
