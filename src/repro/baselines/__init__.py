"""Classic localization baselines the Bayesian method is compared against.

All implement the same :class:`~repro.core.result.Localizer` interface:

* :class:`CentroidLocalizer` / :class:`WeightedCentroidLocalizer` —
  range-free one-shot anchor averaging (Bulusu et al.).
* :class:`DVHopLocalizer` — hop-count distance estimation + lateration
  (Niculescu & Nath).
* :class:`MDSMAPLocalizer` — classical multidimensional scaling on the
  shortest-path distance matrix, anchored by Procrustes (Shang et al.).
* :class:`MultilaterationLocalizer` — per-node (iterative) least-squares
  lateration against anchors and already-localized neighbors.
* :class:`MLELocalizer` — centralized cooperative maximum-likelihood via
  nonlinear optimization of the ranging stress.
"""

from repro.baselines.centroid import CentroidLocalizer, WeightedCentroidLocalizer
from repro.baselines.dvhop import DVHopLocalizer
from repro.baselines.mds import MDSMAPLocalizer
from repro.baselines.multilateration import MultilaterationLocalizer, lateration
from repro.baselines.mle import MLELocalizer

__all__ = [
    "CentroidLocalizer",
    "WeightedCentroidLocalizer",
    "DVHopLocalizer",
    "MDSMAPLocalizer",
    "MultilaterationLocalizer",
    "MLELocalizer",
    "lateration",
]
