"""Radio propagation / link models.

A radio model decides which node pairs can communicate ("hear" each other)
given true positions.  Three standard models from the WSN literature:

* :class:`UnitDiskRadio` — deterministic disk of radius *r*.
* :class:`QuasiUnitDiskRadio` — links certain below ``alpha·r``, impossible
  beyond ``r``, random in between (models antenna irregularity).
* :class:`LogNormalShadowingRadio` — connectivity follows received power
  under the log-distance path-loss model with log-normal shadowing; the
  same shadowing draw drives RSSI ranging, so connectivity and range noise
  are consistent.

All models produce a symmetric boolean adjacency matrix and (optionally)
expose per-link detection probabilities ``p_detect(d)``, which the Bayesian
localizer uses for *negative evidence*: not hearing a node is itself
information about distance.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.geometry import pairwise_distances
from repro.utils.rng import RNGLike, as_generator
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "RadioModel",
    "UnitDiskRadio",
    "QuasiUnitDiskRadio",
    "LogNormalShadowingRadio",
    "IrregularRadio",
]


def _symmetrize_upper(mat: np.ndarray) -> np.ndarray:
    """Mirror the strict upper triangle onto the lower; zero the diagonal."""
    out = np.triu(mat, k=1)
    return out | out.T


class RadioModel(ABC):
    """Base class for link models with a nominal range ``range_``."""

    def __init__(self, range_: float) -> None:
        self.range_ = check_positive(range_, "range_")

    @abstractmethod
    def p_detect(self, distances: np.ndarray) -> np.ndarray:
        """Probability that a link exists at each given distance."""

    def adjacency(
        self, positions: np.ndarray, rng: RNGLike = None
    ) -> np.ndarray:
        """Symmetric boolean adjacency matrix for ``(n, 2)`` positions."""
        dist = pairwise_distances(positions)
        return self.adjacency_from_distances(dist, rng)

    def adjacency_from_distances(
        self, dist: np.ndarray, rng: RNGLike = None
    ) -> np.ndarray:
        """Adjacency from a precomputed symmetric distance matrix."""
        dist = np.asarray(dist, dtype=np.float64)
        if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
            raise ValueError("dist must be a square matrix")
        gen = as_generator(rng)
        p = self.p_detect(dist)
        # One uniform draw per unordered pair keeps links symmetric.
        u = gen.uniform(size=dist.shape)
        u = np.triu(u, k=1)
        u = u + u.T
        link = u < p
        return _symmetrize_upper(link)


class UnitDiskRadio(RadioModel):
    """Deterministic disk model: connected iff ``d <= r``."""

    def p_detect(self, distances: np.ndarray) -> np.ndarray:
        d = np.asarray(distances, dtype=np.float64)
        return (d <= self.range_).astype(np.float64)


class QuasiUnitDiskRadio(RadioModel):
    """Quasi unit-disk graph (QUDG).

    Links are certain for ``d <= alpha*r``, impossible for ``d > r``, and
    exist with probability linearly falling from 1 to 0 in between.
    """

    def __init__(self, range_: float, alpha: float = 0.75) -> None:
        super().__init__(range_)
        self.alpha = check_probability(alpha, "alpha")

    def p_detect(self, distances: np.ndarray) -> np.ndarray:
        d = np.asarray(distances, dtype=np.float64)
        r_in = self.alpha * self.range_
        span = max(self.range_ - r_in, 1e-12)
        p = np.clip((self.range_ - d) / span, 0.0, 1.0)
        p[d <= r_in] = 1.0
        p[d > self.range_] = 0.0
        return p


class LogNormalShadowingRadio(RadioModel):
    """Log-distance path loss with log-normal shadowing.

    Received power at distance *d* (dB, relative to power at ``d0``):

    ``P(d) = P0 - 10·η·log10(d/d0) + X``,  ``X ~ N(0, σ_dB²)``.

    A link exists when ``P(d)`` exceeds the receiver sensitivity threshold.
    The threshold is calibrated so that the *median* connectivity distance
    equals ``range_`` — i.e. ``p_detect(range_) = 0.5`` — which keeps the
    nominal range comparable across radio models.

    Parameters
    ----------
    range_:
        Median connectivity distance.
    path_loss_exponent:
        η, typically 2 (free space) to 4 (indoor obstructed).
    shadowing_db:
        σ of the shadowing term in dB; 0 degenerates to a unit disk.
    d0:
        Reference distance for the path-loss law.
    """

    def __init__(
        self,
        range_: float,
        path_loss_exponent: float = 3.0,
        shadowing_db: float = 4.0,
        d0: float = 0.01,
    ) -> None:
        super().__init__(range_)
        self.path_loss_exponent = check_positive(
            path_loss_exponent, "path_loss_exponent"
        )
        if shadowing_db < 0:
            raise ValueError("shadowing_db must be non-negative")
        self.shadowing_db = float(shadowing_db)
        self.d0 = check_positive(d0, "d0")

    def mean_power_db(self, distances: np.ndarray) -> np.ndarray:
        """Mean received power (dB, relative) at given distances."""
        d = np.maximum(np.asarray(distances, dtype=np.float64), self.d0)
        return -10.0 * self.path_loss_exponent * np.log10(d / self.d0)

    @property
    def threshold_db(self) -> float:
        """Sensitivity threshold making ``p_detect(range_) = 0.5``."""
        return float(self.mean_power_db(np.array(self.range_)))

    def p_detect(self, distances: np.ndarray) -> np.ndarray:
        d = np.asarray(distances, dtype=np.float64)
        mean = self.mean_power_db(d)
        if self.shadowing_db == 0.0:
            return (mean >= self.threshold_db).astype(np.float64)
        from scipy.stats import norm

        return norm.sf((self.threshold_db - mean) / self.shadowing_db)

    def sample_power_db(
        self, distances: np.ndarray, rng: RNGLike = None
    ) -> np.ndarray:
        """Draw shadowed received powers (symmetric over unordered pairs)."""
        gen = as_generator(rng)
        d = np.asarray(distances, dtype=np.float64)
        mean = self.mean_power_db(d)
        if d.ndim == 2:
            x = gen.normal(0.0, self.shadowing_db or 0.0, size=d.shape)
            x = np.triu(x, k=1)
            x = x + x.T
        else:
            x = gen.normal(0.0, self.shadowing_db or 0.0, size=d.shape)
        return mean + x

    def adjacency_from_powers(self, power_db: np.ndarray) -> np.ndarray:
        """Adjacency implied by sampled received powers."""
        link = np.asarray(power_db, dtype=np.float64) >= self.threshold_db
        return _symmetrize_upper(link)


class IrregularRadio(RadioModel):
    """Direction-dependent range (the DOI model of He et al. / Zhou et al.).

    Each node's effective range varies smoothly with bearing:

    ``r_i(θ) = r · (1 + DOI · f_i(θ))``,

    where ``f_i`` is a smooth zero-mean random function of the bearing
    (a low-order random Fourier series, continuous at θ = 2π) drawn
    independently per node per :meth:`adjacency` call, and *doi* scales
    the irregularity (0 = perfect disk).  A link exists iff **both**
    directed receptions succeed: ``d ≤ min(r_i(θ_ij), r_j(θ_ji))``,
    keeping the adjacency symmetric the way real MAC layers require
    bidirectional links.

    For inference, :meth:`p_detect` returns the disk *approximation*
    marginalized over the irregularity — the localizer does not know each
    node's actual pattern, only its statistics, which is exactly the
    model-mismatch situation DOI experiments probe.
    """

    def __init__(self, range_: float, doi: float = 0.2, n_harmonics: int = 4) -> None:
        super().__init__(range_)
        if not (0.0 <= doi < 1.0):
            raise ValueError(f"doi must lie in [0, 1), got {doi}")
        if n_harmonics < 1:
            raise ValueError("n_harmonics must be >= 1")
        self.doi = float(doi)
        self.n_harmonics = int(n_harmonics)

    def _pattern(self, gen: np.random.Generator, n: int, theta: np.ndarray) -> np.ndarray:
        """Per-node smooth bearing perturbations f_i(θ) in [-1, 1]."""
        # Random Fourier series per node, normalized to unit max amplitude.
        k = np.arange(1, self.n_harmonics + 1)
        a = gen.normal(size=(n, self.n_harmonics))
        b = gen.normal(size=(n, self.n_harmonics))
        norm = np.sqrt((a**2 + b**2).sum(axis=1, keepdims=True))
        norm = np.maximum(norm, 1e-12)
        a, b = a / norm, b / norm
        # theta has shape (n, n): bearing from node i to node j.
        f = np.zeros_like(theta)
        for h in range(self.n_harmonics):
            f += (
                a[:, h][:, None] * np.cos(k[h] * theta)
                + b[:, h][:, None] * np.sin(k[h] * theta)
            )
        return np.clip(f, -1.0, 1.0)

    def p_detect(self, distances: np.ndarray) -> np.ndarray:
        # Marginal detection probability over the (unknown) pattern: the
        # perturbed range is r·(1 + DOI·f) with f roughly uniform-ish in
        # [-1, 1]; approximate with a linear ramp between the extremes.
        d = np.asarray(distances, dtype=np.float64)
        r_lo = self.range_ * (1.0 - self.doi)
        r_hi = self.range_ * (1.0 + self.doi)
        if self.doi == 0.0:
            return (d <= self.range_).astype(np.float64)
        p = np.clip((r_hi - d) / (r_hi - r_lo), 0.0, 1.0)
        return p

    def adjacency(self, positions: np.ndarray, rng: RNGLike = None) -> np.ndarray:
        pts = np.asarray(positions, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError("positions must have shape (n, 2)")
        gen = as_generator(rng)
        n = len(pts)
        diff = pts[None, :, :] - pts[:, None, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        theta = np.arctan2(diff[..., 1], diff[..., 0])  # bearing i -> j
        f = self._pattern(gen, n, theta)
        range_out = self.range_ * (1.0 + self.doi * f)  # r_i(θ_ij)
        link_dir = dist <= range_out
        link = link_dir & link_dir.T  # bidirectional requirement
        np.fill_diagonal(link, False)
        return link

    def adjacency_from_distances(self, dist: np.ndarray, rng: RNGLike = None) -> np.ndarray:
        raise NotImplementedError(
            "IrregularRadio needs positions (bearings), not just distances; "
            "call adjacency(positions) instead"
        )
