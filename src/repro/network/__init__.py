"""Wireless-sensor-network simulation substrate.

Provides node deployment models, radio propagation/link models, and the
:class:`~repro.network.topology.WSNetwork` connectivity structure that all
localizers consume.
"""

from repro.network.deployment import (
    DeploymentModel,
    UniformDeployment,
    GridDeployment,
    GaussianClusterDeployment,
    CShapeDeployment,
    deploy,
)
from repro.network.radio import (
    RadioModel,
    UnitDiskRadio,
    QuasiUnitDiskRadio,
    LogNormalShadowingRadio,
    IrregularRadio,
)
from repro.network.topology import WSNetwork
from repro.network.generator import NetworkConfig, generate_network

__all__ = [
    "DeploymentModel",
    "UniformDeployment",
    "GridDeployment",
    "GaussianClusterDeployment",
    "CShapeDeployment",
    "deploy",
    "RadioModel",
    "UnitDiskRadio",
    "QuasiUnitDiskRadio",
    "LogNormalShadowingRadio",
    "IrregularRadio",
    "WSNetwork",
    "NetworkConfig",
    "generate_network",
]
