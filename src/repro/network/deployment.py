"""Node deployment models.

A deployment model places *n* sensor nodes inside the rectangular field
``[0, width] × [0, height]``.  Besides drawing positions, each model can
report its own density over a grid (:meth:`DeploymentModel.density_map`),
which is exactly the "pre-knowledge" the Bayesian localizer consumes as a
deployment prior: if the operator knows nodes were dropped along a flight
line or around cluster points, that knowledge becomes a prior distribution
over positions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.rng import RNGLike, as_generator
from repro.utils.validation import check_positive

__all__ = [
    "DeploymentModel",
    "UniformDeployment",
    "GridDeployment",
    "GaussianClusterDeployment",
    "CShapeDeployment",
    "deploy",
]


class DeploymentModel(ABC):
    """Base class: a distribution over node positions in a rectangle."""

    def __init__(self, width: float = 1.0, height: float = 1.0) -> None:
        self.width = check_positive(width, "width")
        self.height = check_positive(height, "height")

    @abstractmethod
    def sample(self, n: int, rng: RNGLike = None) -> np.ndarray:
        """Draw ``(n, 2)`` node positions."""

    @abstractmethod
    def log_density(self, points: np.ndarray) -> np.ndarray:
        """Unnormalized log-density of the deployment at ``(m, 2)`` points.

        Used to build the matching deployment prior (pre-knowledge).  May
        return ``-inf`` for points outside the support.
        """

    def density_map(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Normalized density over the grid ``xs × ys`` (shape ``(len(ys), len(xs))``)."""
        gx, gy = np.meshgrid(np.asarray(xs), np.asarray(ys))
        pts = np.column_stack([gx.ravel(), gy.ravel()])
        logd = self.log_density(pts).reshape(gy.shape)
        # Shift for numerical stability before exponentiating.
        finite = np.isfinite(logd)
        if not finite.any():
            raise ValueError("deployment density is zero everywhere on grid")
        out = np.zeros_like(logd)
        out[finite] = np.exp(logd[finite] - logd[finite].max())
        total = out.sum()
        return out / total

    def _check_n(self, n: int) -> int:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        return int(n)


class UniformDeployment(DeploymentModel):
    """Independent uniform placement over the whole field."""

    def sample(self, n: int, rng: RNGLike = None) -> np.ndarray:
        n = self._check_n(n)
        gen = as_generator(rng)
        pts = gen.uniform(0.0, 1.0, size=(n, 2))
        pts[:, 0] *= self.width
        pts[:, 1] *= self.height
        return pts

    def log_density(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        inside = (
            (pts[:, 0] >= 0)
            & (pts[:, 0] <= self.width)
            & (pts[:, 1] >= 0)
            & (pts[:, 1] <= self.height)
        )
        return np.where(inside, 0.0, -np.inf)


class GridDeployment(DeploymentModel):
    """Planned grid placement with Gaussian placement jitter.

    Models the common "nodes were *meant* to be on a grid but landed nearby"
    scenario (e.g. aerial drops at waypoints): strong pre-knowledge, because
    the intended grid is known to the operator.
    """

    def __init__(
        self,
        width: float = 1.0,
        height: float = 1.0,
        jitter: float = 0.03,
    ) -> None:
        super().__init__(width, height)
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        self.jitter = float(jitter)

    def grid_points(self, n: int) -> np.ndarray:
        """The intended (pre-jitter) grid positions for *n* nodes."""
        n = self._check_n(n)
        cols = int(np.ceil(np.sqrt(n * self.width / self.height)))
        cols = max(cols, 1)
        rows = int(np.ceil(n / cols))
        xs = (np.arange(cols) + 0.5) * self.width / cols
        ys = (np.arange(rows) + 0.5) * self.height / rows
        gx, gy = np.meshgrid(xs, ys)
        pts = np.column_stack([gx.ravel(), gy.ravel()])
        return pts[:n]

    def sample(self, n: int, rng: RNGLike = None) -> np.ndarray:
        gen = as_generator(rng)
        pts = self.grid_points(n)
        if self.jitter > 0:
            pts = pts + gen.normal(0.0, self.jitter, size=pts.shape)
        np.clip(pts[:, 0], 0.0, self.width, out=pts[:, 0])
        np.clip(pts[:, 1], 0.0, self.height, out=pts[:, 1])
        return pts

    def log_density(self, points: np.ndarray) -> np.ndarray:
        # Marginal over which grid point a node belongs to: a mixture of
        # isotropic Gaussians centred at the full grid.  Uses a generous
        # default of 100 grid points, matching a typical network size.
        pts = np.asarray(points, dtype=np.float64)
        centers = self.grid_points(100)
        sigma = max(self.jitter, 1e-3)
        d2 = (
            (pts[:, None, 0] - centers[None, :, 0]) ** 2
            + (pts[:, None, 1] - centers[None, :, 1]) ** 2
        )
        # log-sum-exp over mixture components
        z = -d2 / (2 * sigma**2)
        m = z.max(axis=1, keepdims=True)
        logd = m[:, 0] + np.log(np.exp(z - m).sum(axis=1))
        inside = (
            (pts[:, 0] >= 0)
            & (pts[:, 0] <= self.width)
            & (pts[:, 1] >= 0)
            & (pts[:, 1] <= self.height)
        )
        return np.where(inside, logd, -np.inf)


class GaussianClusterDeployment(DeploymentModel):
    """Mixture-of-Gaussians placement around known drop points.

    ``centers`` are the drop/cluster coordinates; ``sigma`` the spread per
    cluster; ``weights`` optional mixture weights.  Samples falling outside
    the field are re-drawn (truncated mixture).
    """

    def __init__(
        self,
        centers: np.ndarray,
        sigma: float = 0.1,
        weights: np.ndarray | None = None,
        width: float = 1.0,
        height: float = 1.0,
    ) -> None:
        super().__init__(width, height)
        self.centers = np.asarray(centers, dtype=np.float64)
        if self.centers.ndim != 2 or self.centers.shape[1] != 2:
            raise ValueError("centers must have shape (k, 2)")
        if len(self.centers) == 0:
            raise ValueError("need at least one cluster center")
        self.sigma = check_positive(sigma, "sigma")
        if weights is None:
            weights = np.full(len(self.centers), 1.0 / len(self.centers))
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (len(self.centers),):
            raise ValueError("weights must match number of centers")
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ValueError("weights must be non-negative and sum > 0")
        self.weights = weights / weights.sum()

    def sample(self, n: int, rng: RNGLike = None) -> np.ndarray:
        n = self._check_n(n)
        gen = as_generator(rng)
        out = np.empty((n, 2))
        filled = 0
        # Rejection-sample the truncation; each round fills most slots.
        while filled < n:
            need = n - filled
            comp = gen.choice(len(self.centers), size=need, p=self.weights)
            cand = self.centers[comp] + gen.normal(0, self.sigma, size=(need, 2))
            ok = (
                (cand[:, 0] >= 0)
                & (cand[:, 0] <= self.width)
                & (cand[:, 1] >= 0)
                & (cand[:, 1] <= self.height)
            )
            kept = cand[ok]
            out[filled : filled + len(kept)] = kept
            filled += len(kept)
        return out

    def log_density(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        d2 = (
            (pts[:, None, 0] - self.centers[None, :, 0]) ** 2
            + (pts[:, None, 1] - self.centers[None, :, 1]) ** 2
        )
        z = np.log(self.weights)[None, :] - d2 / (2 * self.sigma**2)
        m = z.max(axis=1, keepdims=True)
        logd = m[:, 0] + np.log(np.exp(z - m).sum(axis=1))
        inside = (
            (pts[:, 0] >= 0)
            & (pts[:, 0] <= self.width)
            & (pts[:, 1] >= 0)
            & (pts[:, 1] <= self.height)
        )
        return np.where(inside, logd, -np.inf)


class CShapeDeployment(DeploymentModel):
    """Uniform placement over a C-shaped (concave) region.

    The classic stress test for hop-count and MDS localizers: shortest paths
    bend around the void, so hop distance badly over-estimates Euclidean
    distance.  The C is the field minus a rectangular notch cut from the
    right edge at mid-height.

    Parameters
    ----------
    notch_width, notch_height:
        Fractions (of field width/height) of the removed rectangle.
    """

    def __init__(
        self,
        width: float = 1.0,
        height: float = 1.0,
        notch_width: float = 0.6,
        notch_height: float = 0.4,
    ) -> None:
        super().__init__(width, height)
        if not (0 < notch_width < 1) or not (0 < notch_height < 1):
            raise ValueError("notch fractions must lie strictly in (0, 1)")
        self.notch_width = float(notch_width)
        self.notch_height = float(notch_height)

    def _in_notch(self, pts: np.ndarray) -> np.ndarray:
        x0 = self.width * (1.0 - self.notch_width)
        y0 = self.height * (0.5 - self.notch_height / 2)
        y1 = self.height * (0.5 + self.notch_height / 2)
        return (pts[:, 0] >= x0) & (pts[:, 1] >= y0) & (pts[:, 1] <= y1)

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Mask of points inside the C-shaped support."""
        pts = np.asarray(points, dtype=np.float64)
        inside_box = (
            (pts[:, 0] >= 0)
            & (pts[:, 0] <= self.width)
            & (pts[:, 1] >= 0)
            & (pts[:, 1] <= self.height)
        )
        return inside_box & ~self._in_notch(pts)

    def sample(self, n: int, rng: RNGLike = None) -> np.ndarray:
        n = self._check_n(n)
        gen = as_generator(rng)
        out = np.empty((n, 2))
        filled = 0
        while filled < n:
            need = n - filled
            # Oversample to amortize rejection of the notch area.
            cand = gen.uniform(0, 1, size=(2 * need, 2))
            cand[:, 0] *= self.width
            cand[:, 1] *= self.height
            kept = cand[self.contains(cand)][:need]
            out[filled : filled + len(kept)] = kept
            filled += len(kept)
        return out

    def log_density(self, points: np.ndarray) -> np.ndarray:
        return np.where(self.contains(np.asarray(points, dtype=np.float64)), 0.0, -np.inf)


def deploy(model: DeploymentModel, n: int, rng: RNGLike = None) -> np.ndarray:
    """Convenience wrapper: draw *n* positions from *model*."""
    if not isinstance(model, DeploymentModel):
        raise TypeError("model must be a DeploymentModel")
    return model.sample(n, rng)
