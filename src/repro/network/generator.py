"""One-call network generation from a declarative config.

:func:`generate_network` wires together a deployment model, a radio model,
and an anchor-selection policy into a ready-to-localize
:class:`~repro.network.topology.WSNetwork`.  This is the entry point the
experiment harness and the examples use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.deployment import DeploymentModel, UniformDeployment
from repro.network.radio import RadioModel, UnitDiskRadio
from repro.network.topology import WSNetwork
from repro.utils.rng import RNGLike, as_generator

__all__ = ["NetworkConfig", "generate_network", "select_anchors"]


@dataclass
class NetworkConfig:
    """Declarative description of a random network draw.

    Attributes
    ----------
    n_nodes:
        Total node count (anchors included).
    anchor_ratio:
        Fraction of nodes that are anchors (at least 3 anchors enforced,
        since 2-D localization is ambiguous below that).
    deployment:
        Deployment model; default uniform over the unit square.
    radio:
        Radio/link model; default unit disk with range 0.2.
    anchor_placement:
        ``"random"`` — uniform choice among nodes;
        ``"perimeter"`` — prefer nodes near the field boundary (common in
        practice: anchors placed along accessible edges);
        ``"spread"`` — greedy max-min dispersion (well-separated anchors).
    require_connected:
        If ``True``, redraw until the connectivity graph is a single
        component (up to ``max_redraws`` attempts).
    """

    n_nodes: int = 100
    anchor_ratio: float = 0.1
    deployment: DeploymentModel = field(default_factory=UniformDeployment)
    radio: RadioModel = field(default_factory=lambda: UnitDiskRadio(0.2))
    anchor_placement: str = "random"
    require_connected: bool = False
    max_redraws: int = 50

    def __post_init__(self) -> None:
        if self.n_nodes < 4:
            raise ValueError("need at least 4 nodes (3 anchors + 1 unknown)")
        if not (0.0 < self.anchor_ratio < 1.0):
            raise ValueError("anchor_ratio must lie in (0, 1)")
        if self.anchor_placement not in ("random", "perimeter", "spread"):
            raise ValueError(
                f"unknown anchor_placement {self.anchor_placement!r}"
            )

    @property
    def n_anchors(self) -> int:
        return max(3, int(round(self.anchor_ratio * self.n_nodes)))


def select_anchors(
    positions: np.ndarray,
    n_anchors: int,
    placement: str = "random",
    rng: RNGLike = None,
    width: float = 1.0,
    height: float = 1.0,
) -> np.ndarray:
    """Choose anchor indices among deployed nodes.

    Returns a boolean mask of length ``len(positions)``.
    """
    n = len(positions)
    if not (0 < n_anchors < n):
        raise ValueError(
            f"n_anchors must lie in (0, {n}), got {n_anchors}"
        )
    gen = as_generator(rng)
    mask = np.zeros(n, dtype=bool)
    if placement == "random":
        mask[gen.choice(n, size=n_anchors, replace=False)] = True
    elif placement == "perimeter":
        # Distance to the nearest field edge; pick the most peripheral, with
        # small random jitter to break ties between equally-edgy nodes.
        edge_dist = np.minimum.reduce(
            [
                positions[:, 0],
                width - positions[:, 0],
                positions[:, 1],
                height - positions[:, 1],
            ]
        )
        noisy = edge_dist + gen.uniform(0, 1e-9, size=n)
        mask[np.argsort(noisy)[:n_anchors]] = True
    elif placement == "spread":
        # Greedy max-min dispersion starting from a random node.
        chosen = [int(gen.integers(n))]
        d = np.linalg.norm(positions - positions[chosen[0]], axis=1)
        while len(chosen) < n_anchors:
            nxt = int(np.argmax(d))
            chosen.append(nxt)
            d = np.minimum(d, np.linalg.norm(positions - positions[nxt], axis=1))
        mask[chosen] = True
    else:
        raise ValueError(f"unknown placement {placement!r}")
    return mask


def generate_network(config: NetworkConfig, rng: RNGLike = None) -> WSNetwork:
    """Draw a :class:`WSNetwork` according to *config*.

    Raises
    ------
    RuntimeError
        If ``require_connected`` and no connected draw is found within
        ``max_redraws`` attempts (a sign the density/range is too low).
    """
    gen = as_generator(rng)
    attempts = config.max_redraws if config.require_connected else 1
    last = None
    for _ in range(attempts):
        positions = config.deployment.sample(config.n_nodes, gen)
        adjacency = config.radio.adjacency(positions, gen)
        anchor_mask = select_anchors(
            positions,
            config.n_anchors,
            config.anchor_placement,
            gen,
            config.deployment.width,
            config.deployment.height,
        )
        net = WSNetwork(
            positions=positions,
            anchor_mask=anchor_mask,
            adjacency=adjacency,
            width=config.deployment.width,
            height=config.deployment.height,
            radio_range=config.radio.range_,
        )
        if not config.require_connected or net.is_connected():
            return net
        last = net
    raise RuntimeError(
        f"no connected network in {attempts} draws "
        f"(mean degree of last draw: {last.mean_degree():.2f}); "
        "increase radio range or node density"
    )
