"""The :class:`WSNetwork` structure: positions, anchors, connectivity.

``WSNetwork`` is the single object every localizer consumes.  It stores the
*true* positions (ground truth for evaluation), which nodes are anchors
(known positions), and the boolean adjacency produced by a radio model.
Hop-count computations use a BFS over the sparse adjacency (scipy), shared
by DV-Hop and by multi-hop anchor priors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components, shortest_path

from repro.utils.validation import check_positions

__all__ = ["WSNetwork"]


@dataclass
class WSNetwork:
    """A snapshot of a deployed sensor network.

    Attributes
    ----------
    positions:
        ``(n, 2)`` true node coordinates (evaluation ground truth; the
        localizers only see anchor rows).
    anchor_mask:
        Boolean length-*n* mask; ``True`` entries are anchors whose position
        is known to the algorithms.
    adjacency:
        ``(n, n)`` symmetric boolean connectivity matrix.
    width, height:
        Field dimensions (the prior support).
    radio_range:
        Nominal communication range of the radio model that produced
        ``adjacency`` (used to build ranging potentials and to normalize
        error metrics).
    """

    positions: np.ndarray
    anchor_mask: np.ndarray
    adjacency: np.ndarray
    width: float = 1.0
    height: float = 1.0
    radio_range: float = 0.2
    _hops: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.positions = check_positions(self.positions)
        n = len(self.positions)
        self.anchor_mask = np.asarray(self.anchor_mask, dtype=bool)
        if self.anchor_mask.shape != (n,):
            raise ValueError(
                f"anchor_mask must have shape ({n},), got {self.anchor_mask.shape}"
            )
        adj = np.asarray(self.adjacency)
        if adj.shape != (n, n):
            raise ValueError(f"adjacency must have shape ({n}, {n})")
        adj = adj.astype(bool)
        if adj.diagonal().any():
            raise ValueError("adjacency must have a zero diagonal")
        if not np.array_equal(adj, adj.T):
            raise ValueError("adjacency must be symmetric")
        self.adjacency = adj
        if self.width <= 0 or self.height <= 0:
            raise ValueError("field dimensions must be positive")
        if self.radio_range <= 0:
            raise ValueError("radio_range must be positive")

    # ------------------------------------------------------------------ #
    # basic views
    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        return len(self.positions)

    @property
    def n_anchors(self) -> int:
        return int(self.anchor_mask.sum())

    @property
    def anchor_ids(self) -> np.ndarray:
        return np.flatnonzero(self.anchor_mask)

    @property
    def unknown_ids(self) -> np.ndarray:
        return np.flatnonzero(~self.anchor_mask)

    @property
    def anchor_positions(self) -> np.ndarray:
        return self.positions[self.anchor_mask]

    def neighbors(self, i: int) -> np.ndarray:
        """Indices of nodes directly connected to node *i*."""
        return np.flatnonzero(self.adjacency[i])

    def degree(self) -> np.ndarray:
        """Per-node degree vector."""
        return self.adjacency.sum(axis=1)

    def mean_degree(self) -> float:
        """Average connectivity — the standard density summary in WSN papers."""
        return float(self.degree().mean())

    # ------------------------------------------------------------------ #
    # graph algorithms
    # ------------------------------------------------------------------ #
    def hop_counts(self) -> np.ndarray:
        """All-pairs hop-count matrix (``inf`` for disconnected pairs).

        Cached after the first call; the adjacency is immutable by
        convention once the network is built.
        """
        if self._hops is None:
            graph = csr_matrix(self.adjacency.astype(np.int8))
            self._hops = shortest_path(
                graph, method="D", unweighted=True, directed=False
            )
        return self._hops

    def hops_to_anchors(self) -> np.ndarray:
        """``(n, n_anchors)`` hop distances from every node to each anchor."""
        return self.hop_counts()[:, self.anchor_mask]

    def is_connected(self) -> bool:
        """True if the connectivity graph is a single component."""
        n_comp, _ = connected_components(
            csr_matrix(self.adjacency.astype(np.int8)), directed=False
        )
        return bool(n_comp == 1)

    def largest_component_mask(self) -> np.ndarray:
        """Mask of nodes in the largest connected component."""
        n_comp, labels = connected_components(
            csr_matrix(self.adjacency.astype(np.int8)), directed=False
        )
        if n_comp == 1:
            return np.ones(self.n_nodes, dtype=bool)
        counts = np.bincount(labels)
        return labels == counts.argmax()

    def edges(self) -> np.ndarray:
        """``(m, 2)`` array of unordered connected pairs (i < j)."""
        iu, ju = np.nonzero(np.triu(self.adjacency, k=1))
        return np.column_stack([iu, ju])

    def localizable_mask(self) -> np.ndarray:
        """Unknown nodes connected (multi-hop) to at least one anchor."""
        hops = self.hops_to_anchors()
        reachable = np.isfinite(hops).any(axis=1)
        return reachable & ~self.anchor_mask

    def subnetwork(self, mask: np.ndarray) -> "WSNetwork":
        """Restrict the network to the nodes selected by a boolean mask."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_nodes,):
            raise ValueError("mask shape mismatch")
        idx = np.flatnonzero(mask)
        return WSNetwork(
            positions=self.positions[idx].copy(),
            anchor_mask=self.anchor_mask[idx].copy(),
            adjacency=self.adjacency[np.ix_(idx, idx)].copy(),
            width=self.width,
            height=self.height,
            radio_range=self.radio_range,
        )
