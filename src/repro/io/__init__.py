"""Serialization of networks and results (JSON and NPZ)."""

from repro.io.serialize import (
    atomic_write_text,
    network_to_dict,
    network_from_dict,
    measurements_to_dict,
    measurements_from_dict,
    save_network_json,
    load_network_json,
    save_network_npz,
    load_network_npz,
    result_to_dict,
    save_result_json,
    save_trace_json,
    load_trace_json,
)

__all__ = [
    "atomic_write_text",
    "network_to_dict",
    "network_from_dict",
    "measurements_to_dict",
    "measurements_from_dict",
    "save_network_json",
    "load_network_json",
    "save_network_npz",
    "load_network_npz",
    "result_to_dict",
    "save_result_json",
    "save_trace_json",
    "load_trace_json",
]
