"""Saving and loading networks and localization results.

Two formats:

* JSON — human-readable, good for small fixtures and cross-tool exchange.
* NPZ — compact binary for large Monte-Carlo batches.

Only the *data* is serialized (positions, masks, adjacency, estimates);
model objects (radios, ranging, priors) are reconstructed from experiment
configs, which are plain dataclasses the caller owns.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.core.result import LocalizationResult
from repro.network.topology import WSNetwork

__all__ = [
    "atomic_write_text",
    "network_to_dict",
    "network_from_dict",
    "measurements_to_dict",
    "measurements_from_dict",
    "save_network_json",
    "load_network_json",
    "save_network_npz",
    "load_network_npz",
    "result_to_dict",
    "tracking_result_to_dict",
    "tracking_result_from_dict",
    "save_result_json",
    "save_trace_json",
    "load_trace_json",
]


def atomic_write_text(path: str | Path, text: str) -> None:
    """Crash-safe replacement for ``Path.write_text``.

    Writes to ``<name>.tmp`` in the same directory, flushes and fsyncs,
    then ``os.replace``s over the target — so a reader never observes a
    torn file: either the old content or the complete new content exists,
    even if the process dies mid-write (the write-ahead ledger of
    :mod:`repro.ckpt` relies on the same discipline for its appends).
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def network_to_dict(network: WSNetwork) -> dict:
    """JSON-safe dict representation of a network snapshot."""
    return {
        "positions": network.positions.tolist(),
        "anchor_mask": network.anchor_mask.astype(int).tolist(),
        # adjacency as an edge list — much smaller than the dense matrix
        "edges": network.edges().tolist(),
        "width": network.width,
        "height": network.height,
        "radio_range": network.radio_range,
    }


def network_from_dict(data: dict) -> WSNetwork:
    """Inverse of :func:`network_to_dict`."""
    try:
        positions = np.asarray(data["positions"], dtype=np.float64)
        anchor_mask = np.asarray(data["anchor_mask"], dtype=bool)
        edges = np.asarray(data["edges"], dtype=int)
    except KeyError as exc:
        raise ValueError(f"network dict missing key {exc}") from exc
    n = len(positions)
    adjacency = np.zeros((n, n), dtype=bool)
    if len(edges):
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must have shape (m, 2)")
        if edges.min() < 0 or edges.max() >= n:
            raise ValueError("edge endpoint out of range")
        adjacency[edges[:, 0], edges[:, 1]] = True
        adjacency[edges[:, 1], edges[:, 0]] = True
    return WSNetwork(
        positions=positions,
        anchor_mask=anchor_mask,
        adjacency=adjacency,
        width=float(data.get("width", 1.0)),
        height=float(data.get("height", 1.0)),
        radio_range=float(data.get("radio_range", 0.2)),
    )


def save_network_json(network: WSNetwork, path: str | Path) -> None:
    atomic_write_text(path, json.dumps(network_to_dict(network)))


def load_network_json(path: str | Path) -> WSNetwork:
    return network_from_dict(json.loads(Path(path).read_text()))


def save_network_npz(network: WSNetwork, path: str | Path) -> None:
    np.savez_compressed(
        Path(path),
        positions=network.positions,
        anchor_mask=network.anchor_mask,
        adjacency=np.packbits(network.adjacency, axis=None),
        n_nodes=np.array(network.n_nodes),
        scalars=np.array([network.width, network.height, network.radio_range]),
    )


def load_network_npz(path: str | Path) -> WSNetwork:
    with np.load(Path(path)) as data:
        n = int(data["n_nodes"])
        adjacency = (
            np.unpackbits(data["adjacency"], count=n * n)
            .reshape(n, n)
            .astype(bool)
        )
        width, height, radio_range = data["scalars"]
        return WSNetwork(
            positions=data["positions"],
            anchor_mask=data["anchor_mask"].astype(bool),
            adjacency=adjacency,
            width=float(width),
            height=float(height),
            radio_range=float(radio_range),
        )


def _path_loss_to_dict(path_loss) -> dict:
    return {
        "tx_power_dbm": float(path_loss.tx_power_dbm),
        "path_loss_exponent": float(path_loss.path_loss_exponent),
        "shadowing_db": float(path_loss.shadowing_db),
        "d0": float(path_loss.d0),
    }


def _path_loss_from_dict(data: dict):
    from repro.measurement.rssi import PathLossModel

    return PathLossModel(
        tx_power_dbm=float(data["tx_power_dbm"]),
        path_loss_exponent=float(data["path_loss_exponent"]),
        shadowing_db=float(data["shadowing_db"]),
        d0=float(data["d0"]),
    )


def _ranging_to_dict(ranging) -> dict:
    """Tagged wire form of a parameter-closed ranging model.

    Every model the scenario configs can build is covered: constant-σ
    Gaussian, proportional Gaussian, connectivity-only, TOA, RSSI
    path-loss, the channel-aware RSSI (explicit inversion exponent), and
    the NLOS wrappers (contamination, robust mixture, latent-indicator
    mixture) — the wrappers recurse into their base model, so the full
    composition round-trips.  Anything else raises: requests using an
    unsupported model must go through in-process submission, where the
    model object itself travels.
    """
    from repro.measurement.channel import ChannelRSSIRanging, LatentNLOSRanging
    from repro.measurement.nlos import NLOSRanging, RobustRanging
    from repro.measurement.ranging import (
        ConnectivityOnly,
        GaussianRanging,
        ProportionalGaussianRanging,
        RSSIRanging,
        TOARanging,
    )

    if isinstance(ranging, GaussianRanging):
        return {"type": "gaussian", "sigma": float(ranging.sigma)}
    if isinstance(ranging, ProportionalGaussianRanging):
        return {
            "type": "proportional",
            "ratio": float(ranging.ratio),
            "floor": float(ranging.floor),
        }
    if isinstance(ranging, ConnectivityOnly):
        return {"type": "none"}
    if isinstance(ranging, TOARanging):
        return {
            "type": "toa",
            "sigma_time": float(ranging.sigma_time),
            "mean_delay": float(ranging.mean_delay),
            "speed": float(ranging.speed),
        }
    # order matters: the channel model subclasses nothing, but the NLOS
    # family is a hierarchy (LatentNLOSRanging < RobustRanging,
    # NLOSRanging separate) — match the most derived tag first
    if isinstance(ranging, ChannelRSSIRanging):
        return {
            "type": "channel-rssi",
            "path_loss": _path_loss_to_dict(ranging.path_loss),
            "inversion_exponent": float(ranging.inversion_exponent),
        }
    if isinstance(ranging, RSSIRanging):
        return {"type": "rssi", "path_loss": _path_loss_to_dict(ranging.path_loss)}
    if isinstance(ranging, (NLOSRanging, RobustRanging)):
        tag = {
            LatentNLOSRanging: "latent-nlos",
            RobustRanging: "robust",
            NLOSRanging: "nlos",
        }[type(ranging)]
        return {
            "type": tag,
            "base": _ranging_to_dict(ranging.base),
            "nlos_fraction": float(ranging.nlos_fraction),
            "bias_mean": float(ranging.bias_mean),
        }
    raise ValueError(
        f"ranging model {type(ranging).__name__} has no wire form; "
        "supported: gaussian, proportional, none, toa, rssi, channel-rssi, "
        "nlos, robust, latent-nlos (submit in-process for other models)"
    )


def _ranging_from_dict(data: dict):
    from repro.measurement.channel import ChannelRSSIRanging, LatentNLOSRanging
    from repro.measurement.nlos import NLOSRanging, RobustRanging
    from repro.measurement.ranging import (
        ConnectivityOnly,
        GaussianRanging,
        ProportionalGaussianRanging,
        RSSIRanging,
        TOARanging,
    )

    kind = data.get("type")
    if kind == "gaussian":
        return GaussianRanging(float(data["sigma"]))
    if kind == "proportional":
        return ProportionalGaussianRanging(
            float(data["ratio"]), floor=float(data.get("floor", 1e-4))
        )
    if kind == "none":
        return ConnectivityOnly()
    if kind == "toa":
        return TOARanging(
            float(data["sigma_time"]),
            mean_delay=float(data.get("mean_delay", 0.0)),
            speed=float(data.get("speed", 1.0)),
        )
    if kind == "rssi":
        return RSSIRanging(_path_loss_from_dict(data["path_loss"]))
    if kind == "channel-rssi":
        return ChannelRSSIRanging(
            _path_loss_from_dict(data["path_loss"]),
            inversion_exponent=float(data["inversion_exponent"]),
        )
    if kind in ("nlos", "robust", "latent-nlos"):
        cls = {
            "nlos": NLOSRanging,
            "robust": RobustRanging,
            "latent-nlos": LatentNLOSRanging,
        }[kind]
        return cls(
            _ranging_from_dict(data["base"]),
            nlos_fraction=float(data["nlos_fraction"]),
            bias_mean=float(data["bias_mean"]),
        )
    raise ValueError(f"unknown ranging wire type {kind!r}")


def measurements_to_dict(ms) -> dict:
    """JSON-safe wire form of a :class:`~repro.measurement.MeasurementSet`.

    The observable slice only — anchors, links, observed distances, the
    (simple) ranging model, and the field constants.  Distances are
    shipped as a link-indexed list (NaN off-link entries are implicit), so
    the payload grows with edges, not ``n²``.  Bearing measurements have
    no wire form yet and raise.
    """
    if ms.observed_bearings is not None:
        raise ValueError("bearing measurements have no wire form yet")
    edges = ms.edges().tolist()
    distances = None
    if ms.has_ranging:
        distances = [float(ms.observed_distances[i, j]) for i, j in edges]
    anchors = [int(a) for a in ms.anchor_ids]
    return {
        "n_nodes": int(ms.n_nodes),
        "anchors": anchors,
        "anchor_positions": ms.anchor_positions_full[anchors].tolist(),
        "edges": edges,
        "distances": distances,
        "ranging": _ranging_to_dict(ms.ranging),
        "radio_range": float(ms.radio_range),
        "width": float(ms.width),
        "height": float(ms.height),
    }


def measurements_from_dict(data: dict):
    """Inverse of :func:`measurements_to_dict`."""
    from repro.measurement.measurements import MeasurementSet

    try:
        n = int(data["n_nodes"])
        anchors = list(data["anchors"])
        anchor_positions = np.asarray(data["anchor_positions"], dtype=np.float64)
        edges = np.asarray(data["edges"], dtype=int)
    except KeyError as exc:
        raise ValueError(f"measurements dict missing key {exc}") from exc
    if len(anchors) != len(anchor_positions):
        raise ValueError("anchors and anchor_positions length mismatch")
    anchor_mask = np.zeros(n, dtype=bool)
    full = np.full((n, 2), np.nan)
    for a, pos in zip(anchors, anchor_positions):
        a = int(a)
        if not (0 <= a < n):
            raise ValueError(f"anchor id {a} out of range")
        anchor_mask[a] = True
        full[a] = pos
    adjacency = np.zeros((n, n), dtype=bool)
    observed = np.full((n, n), np.nan)
    if len(edges):
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must have shape (m, 2)")
        if edges.min() < 0 or edges.max() >= n:
            raise ValueError("edge endpoint out of range")
        adjacency[edges[:, 0], edges[:, 1]] = True
        adjacency[edges[:, 1], edges[:, 0]] = True
    distances = data.get("distances")
    if distances is not None:
        if len(distances) != len(edges):
            raise ValueError("distances must align with edges")
        for (i, j), d in zip(edges, distances):
            observed[i, j] = observed[j, i] = float(d)
    return MeasurementSet(
        anchor_mask=anchor_mask,
        anchor_positions_full=full,
        adjacency=adjacency,
        observed_distances=observed,
        ranging=_ranging_from_dict(data["ranging"]),
        radio_range=float(data["radio_range"]),
        width=float(data.get("width", 1.0)),
        height=float(data.get("height", 1.0)),
    )


def result_to_dict(result: LocalizationResult) -> dict:
    """JSON-safe summary of a localization result (no bulky extras).

    Includes the instrumentation export under ``"telemetry"`` when the
    solver ran with a :class:`~repro.obs.Tracer` attached.
    """
    out = {
        "method": result.method,
        "estimates": np.where(
            np.isfinite(result.estimates), result.estimates, None
        ).tolist(),
        "localized_mask": result.localized_mask.astype(int).tolist(),
        "n_iterations": result.n_iterations,
        "converged": result.converged,
        "messages_sent": result.messages_sent,
        "bytes_sent": result.bytes_sent,
    }
    if result.telemetry is not None:
        out["telemetry"] = result.telemetry
    return out


def tracking_result_to_dict(result) -> dict:
    """Tagged, bit-exact wire form of a mobility ``TrackingResult``.

    Unlike :func:`result_to_dict` (a lossy human-facing summary), this
    codec must survive the worker pipe and the ckpt ledger and
    round-trip *exactly* — estimates contain NaNs (unlocalized steps)
    and the extras carry boolean masks — so arrays ride the ckpt value
    codec (base64 of the raw buffer) rather than ``tolist``.
    """
    from repro.ckpt.snapshot import encode_value

    return {
        "kind": "tracking-result",
        "method": str(result.method),
        "estimates": encode_value(result.estimates),
        "localized": encode_value(result.localized),
        "extras": {str(k): encode_value(v) for k, v in result.extras.items()},
    }


def tracking_result_from_dict(data: dict):
    """Inverse of :func:`tracking_result_to_dict`."""
    from repro.ckpt.snapshot import decode_value
    from repro.mobility.tracking import TrackingResult

    if data.get("kind") != "tracking-result":
        raise ValueError(
            f"not a tracking-result payload (kind={data.get('kind')!r})"
        )
    try:
        estimates = decode_value(data["estimates"])
        localized = decode_value(data["localized"])
        method = data["method"]
    except KeyError as exc:
        raise ValueError(f"tracking-result dict missing key {exc}") from exc
    extras = {k: decode_value(v) for k, v in data.get("extras", {}).items()}
    return TrackingResult(
        np.asarray(estimates), np.asarray(localized), method, extras
    )


def save_result_json(result: LocalizationResult, path: str | Path) -> None:
    atomic_write_text(path, json.dumps(result_to_dict(result)))


def save_trace_json(trace: dict, path: str | Path) -> None:
    """Write a :meth:`~repro.obs.Tracer.snapshot` dict to *path*.

    Keys are sorted and floats round-trip exactly (``repr``-based JSON),
    so traces written with the same seed are byte-identical files.
    """
    if not isinstance(trace, dict):
        raise TypeError(
            "trace must be a Tracer.snapshot() dict "
            f"(got {type(trace).__name__}; a NullTracer exports None)"
        )
    atomic_write_text(path, json.dumps(trace, sort_keys=True, indent=2) + "\n")


def load_trace_json(path: str | Path) -> dict:
    """Inverse of :func:`save_trace_json`."""
    trace = json.loads(Path(path).read_text())
    if not isinstance(trace, dict):
        raise ValueError(f"{path} does not contain a trace object")
    return trace
