"""Plain-text table rendering for experiment reports and benchmark output.

The benchmark harness prints paper-style tables/series with these helpers so
results are readable straight from ``pytest benchmarks/ --benchmark-only``
output without any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series"]


def _fmt_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    Floats are formatted with *precision* decimals; all other values via
    ``str``.  Raises if any row length differs from the header length.
    """
    rows = [list(r) for r in rows]
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    cells = [[_fmt_cell(v, precision) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[j]) for r in cells)) if cells else len(str(h))
        for j, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_name: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render one x-axis column plus one column per named series.

    This mirrors how a paper figure's data would appear as a table: one row
    per x value, one column per curve.
    """
    n = len(x_values)
    for name, values in series.items():
        if len(values) != n:
            raise ValueError(
                f"series {name!r} has {len(values)} values, expected {n}"
            )
    headers = [x_name, *series.keys()]
    rows = [
        [x_values[i], *(series[name][i] for name in series)] for i in range(n)
    ]
    return format_table(headers, rows, precision=precision, title=title)
