"""Numerically stable log-domain primitives.

Every solver that mixes likelihoods works in log space and eventually has
to exponentiate: log-sum-exp for mixture densities, softmax for discrete
resampling, a floor before ``log`` of belief weights.  Hand-rolling these
per call site invites the classic tail bugs — ``max() = -inf`` turning a
legitimate zero-mass result into NaN, or an unfloored ``log(0)`` — and a
continuous sampler (``repro.core.mcmc``) evaluates exactly those tails on
every Metropolis proposal.  This module is the single shared
implementation; the edge cases are pinned by ``tests/test_stablemath.py``
so they cannot regress one call site at a time.

The op order inside :func:`logsumexp` / :func:`softmax_from_log` is kept
identical to the hand-rolled code it replaced (max-shift, exp, sum) so
routing existing solvers through it is bit-identical for finite inputs —
only the previously-NaN all-``-inf`` corner changes, to the correct
``-inf`` / zero-mass error.
"""

from __future__ import annotations

import numpy as np

__all__ = ["logsumexp", "softmax_from_log", "safe_log"]

#: smallest positive normal-ish floor used across the grid solvers before
#: taking logs of belief weights; exp(log(LOG_FLOOR)) round-trips exactly.
LOG_FLOOR = 1e-300


def logsumexp(a: np.ndarray, axis: int | None = None) -> np.ndarray:
    """``log(sum(exp(a)))`` along *axis*, safe in both tails.

    Unlike the naive ``m + log(sum(exp(a - m)))`` with ``m = a.max()``,
    an all-``-inf`` slice (zero total mass) returns ``-inf`` instead of
    NaN: the max-shift is skipped when the max is not finite.  ``+inf``
    entries propagate to ``+inf`` as expected.
    """
    a = np.asarray(a, dtype=np.float64)
    m = np.max(a, axis=axis, keepdims=True) if a.ndim else np.max(a)
    shift = np.where(np.isfinite(m), m, 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = shift + np.log(np.exp(a - shift).sum(axis=axis, keepdims=True))
    # +inf max: exp(inf - inf) = NaN above; the true sum is +inf.
    out = np.where(m == np.inf, np.inf, out)
    if axis is not None:
        out = np.squeeze(out, axis=axis)
    elif out.ndim:
        out = out.reshape(())
    return out if out.ndim else float(out)


def softmax_from_log(logp: np.ndarray) -> np.ndarray:
    """Normalized probabilities from unnormalized log-weights.

    Max-shift then exponentiate — the same op order every discrete
    resampler previously hand-rolled, so existing call sites stay
    bit-identical.  Zero total mass (all ``-inf``) raises ``ValueError``
    rather than dividing 0/0 into NaNs.
    """
    a = np.asarray(logp, dtype=np.float64)
    if a.ndim != 1:
        raise ValueError("softmax_from_log expects a 1-D array")
    if np.isnan(a).any():
        raise ValueError("log-weights contain NaN")
    m = a.max() if len(a) else -np.inf
    if not np.isfinite(m):
        raise ValueError("log-weights have zero total mass (all -inf)")
    p = np.exp(a - m)
    p /= p.sum()
    return p


def safe_log(w: np.ndarray, floor: float = LOG_FLOOR) -> np.ndarray:
    """``log(max(w, floor))`` — the grid solvers' standard guarded log.

    The floor keeps zero-probability cells representable (log ≈ −690.8)
    so downstream max-shifts stay finite; it is *not* a smoothing prior.
    """
    return np.log(np.maximum(w, floor))
