"""Deterministic random-number plumbing.

Every stochastic component in :mod:`repro` accepts either an integer seed, a
:class:`numpy.random.Generator`, a :class:`numpy.random.SeedSequence`, or
``None``.  Monte-Carlo sweeps derive independent child streams with
:func:`spawn_seeds` / :func:`spawn_generators`, which use NumPy's
``SeedSequence.spawn`` so trials are statistically independent *and*
reproducible regardless of execution order or process placement — the
property the parallel trial executor relies on.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

RNGLike = Union[None, int, np.random.SeedSequence, np.random.Generator]

__all__ = ["RNGLike", "as_generator", "spawn_seeds", "spawn_generators"]


def as_generator(rng: RNGLike = None) -> np.random.Generator:
    """Coerce *rng* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh OS-entropy stream), an ``int`` seed, a
        ``SeedSequence``, or an existing ``Generator`` (returned as-is).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer)):
        if rng < 0:
            raise ValueError(f"seed must be non-negative, got {rng}")
        return np.random.default_rng(int(rng))
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    raise TypeError(
        "rng must be None, int, SeedSequence or Generator, "
        f"got {type(rng).__name__}"
    )


def spawn_seeds(seed: RNGLike, n: int) -> list[np.random.SeedSequence]:
    """Derive *n* independent child :class:`~numpy.random.SeedSequence`\\ s.

    A ``Generator`` input contributes its own fresh entropy (children are
    independent but no longer reproducible from the original seed); prefer
    passing the integer master seed for reproducible sweeps.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    elif isinstance(seed, np.random.Generator):
        ss = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    elif seed is None:
        ss = np.random.SeedSequence()
    elif isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        ss = np.random.SeedSequence(int(seed))
    else:
        raise TypeError(f"unsupported seed type {type(seed).__name__}")
    return ss.spawn(n)


def spawn_generators(seed: RNGLike, n: int) -> list[np.random.Generator]:
    """Derive *n* independent ``Generator`` streams from one master seed."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, n)]


def child_seed_ints(seed: RNGLike, n: int) -> list[int]:
    """Derive *n* independent 63-bit integer seeds (picklable, for workers)."""
    return [
        int(s.generate_state(1, dtype=np.uint64)[0] & 0x7FFF_FFFF_FFFF_FFFF)
        for s in spawn_seeds(seed, n)
    ]
