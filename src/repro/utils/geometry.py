"""Vectorized 2-D geometry kernels.

All functions operate on ``(n, 2)`` float arrays of point coordinates and are
pure NumPy — no Python-level loops over points (see the HPC guide: vectorize,
avoid copies, keep arrays contiguous).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pairwise_distances",
    "distances_to",
    "distance",
    "clip_to_box",
    "points_in_box",
    "polygon_contains",
    "bounding_box",
]


def _as_points(points: np.ndarray, name: str = "points") -> np.ndarray:
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"{name} must have shape (n, 2), got {pts.shape}")
    return pts


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Dense symmetric Euclidean distance matrix for ``(n, 2)`` points.

    O(n²) memory; fine for the network sizes this simulator targets
    (n ≲ a few thousand).
    """
    pts = _as_points(points)
    diff = pts[:, None, :] - pts[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def distances_to(points: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Distances from each of ``(n, 2)`` *points* to a single 2-D *target*."""
    pts = _as_points(points)
    tgt = np.asarray(target, dtype=np.float64)
    if tgt.shape != (2,):
        raise ValueError(f"target must have shape (2,), got {tgt.shape}")
    diff = pts - tgt
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two 2-D points."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != (2,) or b.shape != (2,):
        raise ValueError("distance expects two points of shape (2,)")
    return float(np.hypot(a[0] - b[0], a[1] - b[1]))


def clip_to_box(points: np.ndarray, width: float, height: float) -> np.ndarray:
    """Clamp points into the axis-aligned box ``[0, width] × [0, height]``."""
    pts = _as_points(points).copy()
    np.clip(pts[:, 0], 0.0, float(width), out=pts[:, 0])
    np.clip(pts[:, 1], 0.0, float(height), out=pts[:, 1])
    return pts


def points_in_box(points: np.ndarray, width: float, height: float) -> np.ndarray:
    """Boolean mask of points inside (inclusive) ``[0, width] × [0, height]``."""
    pts = _as_points(points)
    return (
        (pts[:, 0] >= 0.0)
        & (pts[:, 0] <= width)
        & (pts[:, 1] >= 0.0)
        & (pts[:, 1] <= height)
    )


def polygon_contains(vertices: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Vectorized even-odd (ray casting) point-in-polygon test.

    Parameters
    ----------
    vertices:
        ``(m, 2)`` polygon vertices in order (closed implicitly).
    points:
        ``(n, 2)`` query points.

    Returns
    -------
    numpy.ndarray
        Boolean mask of length *n*.  Points exactly on an edge may land on
        either side; callers that care should buffer the polygon.
    """
    verts = _as_points(vertices, "vertices")
    if len(verts) < 3:
        raise ValueError("polygon needs at least 3 vertices")
    pts = _as_points(points)
    x, y = pts[:, 0], pts[:, 1]
    inside = np.zeros(len(pts), dtype=bool)
    x1, y1 = verts[:, 0], verts[:, 1]
    x2, y2 = np.roll(x1, -1), np.roll(y1, -1)
    for xa, ya, xb, yb in zip(x1, y1, x2, y2):  # loop over edges, not points
        crosses = (ya > y) != (yb > y)
        with np.errstate(divide="ignore", invalid="ignore"):
            xint = xa + (y - ya) * (xb - xa) / (yb - ya)
        inside ^= crosses & (x < xint)
    return inside


def bounding_box(points: np.ndarray) -> tuple[float, float, float, float]:
    """Return ``(xmin, ymin, xmax, ymax)`` of a non-empty point set."""
    pts = _as_points(points)
    if len(pts) == 0:
        raise ValueError("bounding_box of empty point set")
    mins = pts.min(axis=0)
    maxs = pts.max(axis=0)
    return float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1])
