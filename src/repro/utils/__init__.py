"""Shared utilities: deterministic RNG handling, 2-D geometry kernels,
argument validation, and plain-text table rendering.

These helpers are deliberately dependency-light; every other subpackage in
:mod:`repro` builds on them.
"""

from repro.utils.rng import as_generator, spawn_generators, spawn_seeds
from repro.utils.geometry import (
    pairwise_distances,
    distances_to,
    distance,
    clip_to_box,
    points_in_box,
    polygon_contains,
)
from repro.utils.validation import (
    check_positive,
    check_probability,
    check_positions,
    check_in_range,
)
from repro.utils.tables import format_table, format_series
from repro.utils.stablemath import logsumexp, softmax_from_log, safe_log

__all__ = [
    "logsumexp",
    "softmax_from_log",
    "safe_log",
    "as_generator",
    "spawn_generators",
    "spawn_seeds",
    "pairwise_distances",
    "distances_to",
    "distance",
    "clip_to_box",
    "points_in_box",
    "polygon_contains",
    "check_positive",
    "check_probability",
    "check_positions",
    "check_in_range",
    "format_table",
    "format_series",
]
