"""Small argument-validation helpers used across the library.

They raise early with actionable messages so errors surface at API
boundaries rather than deep inside vectorized kernels.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "check_in_range",
    "check_positions",
]


def check_positive(value: float, name: str) -> float:
    """Validate ``value > 0`` and return it as ``float``."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Validate ``value >= 0`` and return it as ``float``."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be non-negative and finite, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate ``0 <= value <= 1`` and return it as ``float``."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_in_range(value: float, lo: float, hi: float, name: str) -> float:
    """Validate ``lo <= value <= hi`` and return it as ``float``."""
    value = float(value)
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must lie in [{lo}, {hi}], got {value}")
    return value


def check_positions(positions: np.ndarray, name: str = "positions") -> np.ndarray:
    """Validate an ``(n, 2)`` finite float position array and return it."""
    pos = np.asarray(positions, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 2:
        raise ValueError(f"{name} must have shape (n, 2), got {pos.shape}")
    if not np.all(np.isfinite(pos)):
        raise ValueError(f"{name} contains non-finite coordinates")
    return pos
