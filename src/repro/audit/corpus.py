"""Seeded scenario corpus for the differential audit harness.

A :class:`ScenarioSpec` is everything one differential case needs to
replay a run exactly: a :class:`~repro.experiments.ScenarioConfig`, the
trial seed, and an optional :class:`~repro.faults.FaultPlan`.  Corpora are
built deterministically by :func:`make_corpus` — the ``smoke`` corpus
spans densities × anchor ratios × priors × ranging/connectivity/bearings
× one fault plan while staying small enough for the tier-1 suite — and a
JSON manifest of every spec is checked into ``tests/data`` so any failure
replays bit-for-bit from the pinned file (:func:`save_manifest` /
:func:`load_manifest`).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

from repro.experiments.config import ChannelConfig, ScenarioConfig
from repro.faults import FaultPlan

__all__ = [
    "ScenarioSpec",
    "make_corpus",
    "CORPUS_NAMES",
    "save_manifest",
    "load_manifest",
    "manifest_dict",
]

#: bumped when the manifest layout changes incompatibly
MANIFEST_SCHEMA_VERSION = 1

CORPUS_NAMES = ("smoke", "full")


@dataclass(frozen=True)
class ScenarioSpec:
    """One replayable scenario of the audit corpus."""

    scenario_id: str
    config: ScenarioConfig
    seed: int
    faults: FaultPlan | None = None

    def build(self):
        """``(network, measurements, prior)`` — deterministic in the spec."""
        from repro.experiments import build_scenario

        return build_scenario(self.config, self.seed)

    def to_dict(self) -> dict:
        d = {
            "scenario_id": self.scenario_id,
            "seed": int(self.seed),
            "config": self.config.to_dict(),
        }
        if self.faults is not None:
            f = dataclasses.asdict(self.faults)
            f["node_outages"] = [dataclasses.asdict(o) for o in self.faults.node_outages]
            f["failed_anchors"] = list(f["failed_anchors"])
            d["faults"] = f
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ScenarioSpec":
        from repro.faults import NodeOutage

        faults = None
        if d.get("faults") is not None:
            f = dict(d["faults"])
            f["node_outages"] = tuple(NodeOutage(**o) for o in f["node_outages"])
            f["failed_anchors"] = tuple(f["failed_anchors"])
            faults = FaultPlan(**f)
        return cls(
            scenario_id=str(d["scenario_id"]),
            config=ScenarioConfig.from_dict(d["config"]),
            seed=int(d["seed"]),
            faults=faults,
        )


def _smoke_corpus() -> list[ScenarioSpec]:
    """Small, fast, but deliberately diverse: every measurement modality,
    dense and sparse connectivity, with/without pre-knowledge, one faulted
    plan.  Node counts stay small so the whole corpus runs in the tier-1
    suite."""
    base = ScenarioConfig(
        n_nodes=25,
        anchor_ratio=0.2,
        radio_range=0.35,
        noise_ratio=0.1,
        pk_error=0.1,
    )
    specs = [
        ScenarioSpec("smoke-ranging-pk", base, seed=101),
        ScenarioSpec(
            "smoke-ranging-nopk", base.replace(pk_error=None), seed=102
        ),
        ScenarioSpec(
            "smoke-dense-anchors",
            base.replace(n_nodes=36, anchor_ratio=0.3, radio_range=0.3),
            seed=103,
        ),
        ScenarioSpec(
            "smoke-rangefree",
            base.replace(ranging="none", radio_range=0.4),
            seed=104,
        ),
        ScenarioSpec(
            "smoke-bearings",
            base.replace(bearing_sigma=0.15, n_nodes=20, radio_range=0.4),
            seed=105,
        ),
        ScenarioSpec(
            "smoke-faulted",
            base,
            seed=106,
            faults=FaultPlan(seed=7, message_drop_rate=0.3),
        ),
        ScenarioSpec(
            "smoke-rssi-channel",
            base.replace(
                ranging="rssi",
                radio_range=0.4,
                channel=ChannelConfig(
                    path_loss_exponent=3.5,
                    assumed_exponent=3.0,
                    shadowing_db=2.0,
                ),
            ),
            seed=107,
        ),
    ]
    return specs


def _full_corpus() -> list[ScenarioSpec]:
    """The nightly-lane grid: densities × anchor ratios × modalities ×
    priors, plus a richer fault mix.  Superset of the smoke corpus."""
    specs = list(_smoke_corpus())
    seed = 200
    base = ScenarioConfig(radio_range=0.3, noise_ratio=0.1)
    for n_nodes in (40, 70):
        for anchor_ratio in (0.1, 0.25):
            for ranging in ("gaussian", "none"):
                for pk_error in (None, 0.1):
                    seed += 1
                    specs.append(
                        ScenarioSpec(
                            f"full-n{n_nodes}-a{int(anchor_ratio * 100)}"
                            f"-{ranging}-{'pk' if pk_error else 'nopk'}",
                            base.replace(
                                n_nodes=n_nodes,
                                anchor_ratio=anchor_ratio,
                                ranging=ranging,
                                pk_error=pk_error,
                            ),
                            seed=seed,
                        )
                    )
    specs.append(
        ScenarioSpec(
            "full-corrupt",
            base.replace(n_nodes=40, anchor_ratio=0.2),
            seed=990,
            faults=FaultPlan(seed=11, message_corrupt_rate=0.2, corrupt_sigma=2.0),
        )
    )
    specs.append(
        ScenarioSpec(
            "full-crash-churn",
            base.replace(n_nodes=40, anchor_ratio=0.2),
            seed=991,
            faults=FaultPlan(seed=12, message_drop_rate=0.2, node_crash_rate=0.1),
        )
    )
    return specs


def make_corpus(name: str = "smoke") -> list[ScenarioSpec]:
    """Build the named corpus (deterministic: same name → same specs)."""
    if name == "smoke":
        return _smoke_corpus()
    if name == "full":
        return _full_corpus()
    raise ValueError(f"unknown corpus {name!r} (choose from {CORPUS_NAMES})")


# --------------------------------------------------------------------- #
# manifest round-trip
# --------------------------------------------------------------------- #
def manifest_dict(corpus: list[ScenarioSpec], name: str) -> dict:
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "corpus": name,
        "scenarios": [spec.to_dict() for spec in corpus],
    }


def save_manifest(corpus: list[ScenarioSpec], name: str, path) -> None:
    """Write the corpus as a pinned JSON manifest (sorted keys, stable)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest_dict(corpus, name), fh, sort_keys=True, indent=2)
        fh.write("\n")


def load_manifest(path) -> list[ScenarioSpec]:
    """Reconstruct the exact corpus pinned by :func:`save_manifest`."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("schema_version") != MANIFEST_SCHEMA_VERSION:
        raise ValueError(
            f"manifest schema {data.get('schema_version')!r} unsupported "
            f"(expected {MANIFEST_SCHEMA_VERSION})"
        )
    return [ScenarioSpec.from_dict(d) for d in data["scenarios"]]
