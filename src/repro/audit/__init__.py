"""Cross-solver correctness tooling: runtime invariants + differential audit.

Two halves, one discipline:

* :mod:`repro.audit.invariants` — composable invariant checkers (beliefs
  normalized/finite/non-negative, messages above the floor, symmetric
  potentials, conserved message/byte accounting, in-field estimates,
  ``localized_mask ⊇ anchor_mask``) that solvers run behind
  ``GridBPConfig(audit="warn"|"raise")`` or the ``REPRO_AUDIT`` env
  toggle, at zero cost when off.
* :mod:`repro.audit.harness` + :mod:`repro.audit.corpus` — a seeded
  scenario corpus and a differential runner that executes solver pairs
  and asserts the declared equivalence tier: ``bit`` (byte-identical),
  ``statistical`` (tolerance bands), or ``invariant`` (faulted runs).

Run it from the command line with ``python -m repro audit --corpus smoke``
or from pytest via the ``audit`` marker lane.
"""

from repro.audit.corpus import (
    CORPUS_NAMES,
    ScenarioSpec,
    load_manifest,
    make_corpus,
    manifest_dict,
    save_manifest,
)
from repro.audit.harness import (
    DiffCase,
    DiffReport,
    ScenarioContext,
    default_cases,
    run_case,
    run_corpus,
    summarize,
)
from repro.audit.invariants import (
    AuditError,
    AuditViolation,
    Auditor,
    audit_localization_result,
    check_belief_dict,
    check_belief_matrix,
    check_delay_conservation,
    check_message_floor,
    check_result_geometry,
    check_round_accounting,
    check_symmetric_ops,
    resolve_audit_mode,
)

__all__ = [
    "AuditError",
    "AuditViolation",
    "Auditor",
    "resolve_audit_mode",
    "audit_localization_result",
    "check_belief_matrix",
    "check_belief_dict",
    "check_delay_conservation",
    "check_message_floor",
    "check_symmetric_ops",
    "check_result_geometry",
    "check_round_accounting",
    "ScenarioSpec",
    "make_corpus",
    "CORPUS_NAMES",
    "save_manifest",
    "load_manifest",
    "manifest_dict",
    "ScenarioContext",
    "DiffCase",
    "DiffReport",
    "default_cases",
    "run_case",
    "run_corpus",
    "summarize",
]
