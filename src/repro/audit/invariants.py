"""Runtime invariant guards shared by every solver.

Each checker is a pure function mapping solver state to a list of
:class:`AuditViolation` — empty on healthy state.  Solvers invoke them
through :func:`audit_localization_result` (and friends) behind
``GridBPConfig(audit=...)`` or the ``REPRO_AUDIT`` environment toggle, so
the default path pays exactly one ``None`` check per run.  Violations are
reported through the solver's :class:`~repro.obs.Tracer` (counter
``audit_violations`` + per-violation annotations) and then either warned
(``"warn"``) or raised (``"raise"``) via :class:`AuditError`.

The invariants encode what *must* hold for any correct run, independent of
scenario or schedule:

* beliefs are finite, non-negative, and sum to 1;
* committed messages sit on or above the message floor;
* pairwise potentials claimed symmetric actually are;
* message/byte accounting is conserved between per-round stats and the
  result totals (and follows the shared anchor-broadcast convention);
* every estimate of a localized node is finite and inside the field;
* ``localized_mask`` is a superset of ``anchor_mask``.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "AuditError",
    "AuditViolation",
    "Auditor",
    "resolve_audit_mode",
    "check_belief_matrix",
    "check_belief_dict",
    "check_message_floor",
    "check_symmetric_ops",
    "check_result_geometry",
    "check_round_accounting",
    "check_delay_conservation",
    "audit_localization_result",
]

#: environment toggle: "" / "0" / "off" → disabled, "warn" → warn,
#: anything else ("1", "raise", …) → raise
_ENV_VAR = "REPRO_AUDIT"

_MODES = (None, "off", "warn", "raise")


class AuditError(AssertionError):
    """An invariant violation escalated by ``audit="raise"``."""

    def __init__(self, violations: list["AuditViolation"]) -> None:
        self.violations = list(violations)
        lines = [f"{len(self.violations)} audit violation(s):"]
        lines += [f"  - {v}" for v in self.violations]
        super().__init__("\n".join(lines))


@dataclass(frozen=True)
class AuditViolation:
    """One failed invariant.

    ``name`` identifies the invariant (stable, test-friendly), ``message``
    is human-readable, ``context`` carries scalar diagnostics (offending
    node id, max deviation, …).
    """

    name: str
    message: str
    context: dict = field(default_factory=dict)

    def __str__(self) -> str:
        ctx = ""
        if self.context:
            ctx = " (" + ", ".join(f"{k}={v}" for k, v in sorted(self.context.items())) + ")"
        return f"[{self.name}] {self.message}{ctx}"


def resolve_audit_mode(config_mode: str | None = None) -> str | None:
    """Effective audit mode: the config field, else the env toggle.

    Returns ``"warn"``, ``"raise"``, or ``None`` (off).  A config value of
    ``"off"`` disables auditing even when the environment enables it.
    """
    if config_mode is not None:
        if config_mode not in _MODES:
            raise ValueError(
                f"audit must be one of {_MODES}, got {config_mode!r}"
            )
        return None if config_mode == "off" else config_mode
    env = os.environ.get(_ENV_VAR, "").strip().lower()
    if env in ("", "0", "off", "false"):
        return None
    return "warn" if env == "warn" else "raise"


class Auditor:
    """Collects violations during one solver run and reports them once.

    Parameters
    ----------
    mode:
        ``"warn"`` or ``"raise"`` (construct only when auditing is on).
    tracer:
        The solver's tracer; violations increment the
        ``audit_violations`` counter so traced sweeps surface them.
    solver:
        Name prefixed to warning text.
    """

    def __init__(self, mode: str, tracer=None, solver: str = "") -> None:
        if mode not in ("warn", "raise"):
            raise ValueError(f"Auditor mode must be 'warn' or 'raise', got {mode!r}")
        self.mode = mode
        self.tracer = tracer
        self.solver = solver
        self.violations: list[AuditViolation] = []

    def extend(self, violations: list[AuditViolation]) -> None:
        self.violations.extend(violations)

    def finish(self) -> None:
        """Report everything collected; raises under ``"raise"`` mode."""
        if not self.violations:
            return
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.count("audit_violations", len(self.violations))
            self.tracer.annotate(
                "audit_first_violation", str(self.violations[0])
            )
        if self.mode == "raise":
            raise AuditError(self.violations)
        prefix = f"{self.solver}: " if self.solver else ""
        warnings.warn(
            f"{prefix}{AuditError(self.violations)}", RuntimeWarning, stacklevel=3
        )


# --------------------------------------------------------------------- #
# checkers
# --------------------------------------------------------------------- #
def check_belief_matrix(
    beliefs: np.ndarray, atol: float = 1e-8, what: str = "belief"
) -> list[AuditViolation]:
    """Rows must be finite, non-negative, and sum to 1 (within *atol*)."""
    out: list[AuditViolation] = []
    beliefs = np.asarray(beliefs, dtype=np.float64)
    if beliefs.ndim == 1:
        beliefs = beliefs[None, :]
    finite = np.isfinite(beliefs).all(axis=1)
    if not finite.all():
        rows = np.flatnonzero(~finite)
        out.append(
            AuditViolation(
                "belief-finite",
                f"{what} rows contain NaN/Inf",
                {"rows": int(rows[0]), "n_bad": int(len(rows))},
            )
        )
    neg = (beliefs < 0).any(axis=1) & finite
    if neg.any():
        rows = np.flatnonzero(neg)
        out.append(
            AuditViolation(
                "belief-nonnegative",
                f"{what} rows contain negative mass",
                {"rows": int(rows[0]), "n_bad": int(len(rows))},
            )
        )
    sums = beliefs[finite].sum(axis=1) if finite.any() else np.empty(0)
    if len(sums) and np.abs(sums - 1.0).max() > atol:
        dev = float(np.abs(sums - 1.0).max())
        out.append(
            AuditViolation(
                "belief-normalized",
                f"{what} rows deviate from unit mass",
                {"max_deviation": dev},
            )
        )
    return out


def check_belief_dict(
    beliefs: dict, atol: float = 1e-8, what: str = "belief"
) -> list[AuditViolation]:
    """Dict-of-vectors variant (solver ``extras['beliefs']`` payloads)."""
    if not beliefs:
        return []
    mat = np.stack([np.asarray(beliefs[k], dtype=np.float64) for k in sorted(beliefs)])
    return check_belief_matrix(mat, atol=atol, what=what)


def check_message_floor(
    messages, floor: float, what: str = "message"
) -> list[AuditViolation]:
    """Committed messages must sit on or above the solver's floor.

    Accepts an ``(n, K)`` array or an iterable of vectors.
    """
    if isinstance(messages, np.ndarray):
        stacked = messages
    else:
        vecs = [np.asarray(m, dtype=np.float64) for m in messages]
        if not vecs:
            return []
        stacked = np.stack(vecs)
    with np.errstate(invalid="ignore"):
        below = stacked < floor
    bad = ~np.isfinite(stacked)
    if bad.any():
        return [
            AuditViolation(
                "message-finite",
                f"{what}s contain NaN/Inf",
                {"n_bad": int(bad.sum())},
            )
        ]
    if below.any():
        return [
            AuditViolation(
                "message-floor",
                f"{what}s fall below the floor {floor:g}",
                {"min": float(stacked.min()), "n_below": int(below.sum())},
            )
        ]
    return []


def check_symmetric_ops(ops, edges=None) -> list[AuditViolation]:
    """Edge operators claimed symmetric must satisfy ``fwd == bwdᵀ``.

    *ops* is the solver's list of ``(fwd, bwd)`` pairs.  When fwd *is*
    bwd (the pure-ranging case) the operator itself must be symmetric;
    oriented pairs (bearings) must be exact transposes of each other.
    """
    from scipy import sparse

    out: list[AuditViolation] = []
    for e, (fwd, bwd) in enumerate(ops):
        if sparse.issparse(fwd):
            delta = (fwd - sparse.csr_matrix(bwd).T)
            dev = float(np.abs(delta.data).max()) if delta.nnz else 0.0
        else:
            dev = float(np.abs(np.asarray(fwd) - np.asarray(bwd).T).max())
        if dev > 0.0:
            ctx = {"edge_index": e, "max_deviation": dev}
            if edges is not None:
                ctx["edge"] = str(tuple(edges[e]))
            out.append(
                AuditViolation(
                    "potential-symmetric",
                    "edge operator pair is not a transpose pair",
                    ctx,
                )
            )
    return out


def check_result_geometry(
    result, width: float, height: float, anchor_mask: np.ndarray | None = None
) -> list[AuditViolation]:
    """Estimates of localized nodes must be finite and inside the field;
    ``localized_mask`` must cover every anchor."""
    out: list[AuditViolation] = []
    est = result.estimates
    mask = result.localized_mask
    loc = est[mask]
    if len(loc) and not np.isfinite(loc).all():
        out.append(
            AuditViolation(
                "estimate-finite",
                "localized nodes carry non-finite estimates",
                {"n_bad": int((~np.isfinite(loc).all(axis=1)).sum())},
            )
        )
    else:
        inside = (
            (loc[:, 0] >= 0.0)
            & (loc[:, 0] <= width)
            & (loc[:, 1] >= 0.0)
            & (loc[:, 1] <= height)
        ) if len(loc) else np.ones(0, dtype=bool)
        if len(loc) and not inside.all():
            worst = loc[~inside][0]
            out.append(
                AuditViolation(
                    "estimate-in-field",
                    f"estimates leave the [0, {width}] × [0, {height}] field",
                    {
                        "n_outside": int((~inside).sum()),
                        "example": f"({worst[0]:.4f}, {worst[1]:.4f})",
                    },
                )
            )
    if anchor_mask is not None:
        anchor_mask = np.asarray(anchor_mask, dtype=bool)
        missing = anchor_mask & ~mask
        if missing.any():
            out.append(
                AuditViolation(
                    "localized-superset-anchors",
                    "anchors missing from localized_mask",
                    {"n_missing": int(missing.sum())},
                )
            )
    return out


def check_round_accounting(
    result,
    round_stats,
    anchor_broadcasts: int,
    anchor_broadcast_bytes: int,
    msg_bytes: int,
) -> list[AuditViolation]:
    """Byte/message conservation between ``RoundStats`` and the result.

    The per-round ledger must internally follow the shared convention
    (``bytes == messages × msg_bytes``) and must sum — together with the
    anchor broadcasts — to exactly the totals the result reports.
    """
    out: list[AuditViolation] = []
    for s in round_stats:
        if s.bytes != s.messages * msg_bytes:
            out.append(
                AuditViolation(
                    "round-bytes-convention",
                    "round bytes disagree with messages × message size",
                    {"round": s.round_index, "messages": s.messages, "bytes": s.bytes},
                )
            )
    total_msgs = anchor_broadcasts + sum(s.messages for s in round_stats)
    total_bytes = anchor_broadcasts * anchor_broadcast_bytes + sum(
        s.bytes for s in round_stats
    )
    if result.messages_sent != total_msgs:
        out.append(
            AuditViolation(
                "accounting-messages-conserved",
                "result message total disagrees with the round ledger",
                {"result": int(result.messages_sent), "ledger": int(total_msgs)},
            )
        )
    if result.bytes_sent != total_bytes:
        out.append(
            AuditViolation(
                "accounting-bytes-conserved",
                "result byte total disagrees with the round ledger",
                {"result": int(result.bytes_sent), "ledger": int(total_bytes)},
            )
        )
    return out


def check_delay_conservation(counters: dict) -> list[AuditViolation]:
    """Every delayed message must be accounted for at end of run.

    The injector's ledger: ``messages_delayed`` enter the delay queue and
    leave it exactly one way — delivered late, expired against a downed
    receiver, or still in flight when the run ends
    (:meth:`~repro.faults.MessageFaultInjector.finalize`).  A gap means
    messages silently vanished from the accounting.
    """
    delayed = int(counters.get("messages_delayed", 0))
    late = int(counters.get("messages_arrived_late", 0))
    expired = int(counters.get("messages_delayed_expired", 0))
    in_flight = int(counters.get("messages_in_flight_at_end", 0))
    if delayed != late + expired + in_flight:
        return [
            AuditViolation(
                "delay-conservation",
                "delayed messages are not conserved "
                "(delayed != arrived_late + expired + in_flight_at_end)",
                {
                    "delayed": delayed,
                    "arrived_late": late,
                    "expired": expired,
                    "in_flight_at_end": in_flight,
                },
            )
        ]
    return []


def audit_localization_result(
    result, width: float, height: float, anchor_mask=None, belief_atol: float = 1e-8
) -> list[AuditViolation]:
    """The result-level invariant bundle every localizer can run as-is."""
    out = check_result_geometry(result, width, height, anchor_mask)
    beliefs = result.extras.get("beliefs") if isinstance(result.extras, dict) else None
    if isinstance(beliefs, dict):
        out += check_belief_dict(beliefs, atol=belief_atol)
    elif isinstance(beliefs, np.ndarray):
        out += check_belief_matrix(beliefs, atol=belief_atol)
    return out
