"""Cross-solver differential testing over the audit corpus.

Every :class:`DiffCase` names two runners (or one, for invariant-only
cases) and the *equivalence tier* the pair must satisfy on each corpus
scenario:

``bit``
    Byte-identical outputs — estimates, masks, beliefs, iteration count,
    and the message/byte ledger.  Holds for pairs that execute the same
    arithmetic in a different organization: centralized vs distributed
    (fault-free), optimized vs reference kernels, batched vs per-trial
    kernel backends, shared-cache warm vs cold, worker counts 1 vs N.
``statistical``
    Same accuracy within a tolerance band, full coverage on both sides —
    for pairs that approximate the same posterior differently (multi-res
    or NBP vs single-grid BP).
``invariant``
    No cross-solver claim (faulted runs): only the runtime invariant set
    of :mod:`repro.audit.invariants` must hold.

Regardless of tier, every :class:`~repro.core.result.LocalizationResult` a
runner produces is additionally passed through the invariant bundle, so a
"bit-equal but both broken" pair still fails.

:func:`run_corpus` executes the case matrix over a corpus and returns one
:class:`DiffReport` per (case, scenario); :func:`summarize` renders the
table the ``repro audit`` CLI prints.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.audit.corpus import ScenarioSpec, make_corpus
from repro.audit.invariants import (
    AuditViolation,
    audit_localization_result,
    check_delay_conservation,
    check_round_accounting,
)
from repro.core.bnloc import GridBPConfig, GridBPLocalizer
from repro.core.result import LocalizationResult

__all__ = [
    "ScenarioContext",
    "DiffCase",
    "DiffReport",
    "default_cases",
    "run_case",
    "run_corpus",
    "summarize",
]

TIERS = ("bit", "statistical", "invariant")


class ScenarioContext:
    """One built corpus scenario, shared by every case that runs on it."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self.network, self.measurements, self.prior = spec.build()

    @property
    def radio_range(self) -> float:
        return self.network.radio_range


@dataclass(frozen=True)
class DiffCase:
    """One solver pair (or single solver) and its declared equivalence tier.

    ``run_ref`` / ``run_alt`` map a :class:`ScenarioContext` to a payload —
    a :class:`LocalizationResult`, a ``(result, round_stats)`` tuple, or
    (for executor cases) a plain nested list.  ``applies`` gates the case
    per scenario (e.g. NBP needs ranging); ``slow`` marks cases excluded
    from the default lane (process-spawning pairs).
    """

    name: str
    tier: str
    run_ref: Callable[[ScenarioContext], object]
    run_alt: Callable[[ScenarioContext], object] | None = None
    tol: float = 0.35
    applies: Callable[[ScenarioSpec], bool] = lambda spec: True
    slow: bool = False

    def __post_init__(self) -> None:
        if self.tier not in TIERS:
            raise ValueError(f"tier must be one of {TIERS}, got {self.tier!r}")
        if self.tier != "invariant" and self.run_alt is None:
            raise ValueError(f"case {self.name!r}: tier {self.tier!r} needs run_alt")


@dataclass
class DiffReport:
    """Outcome of one case on one scenario."""

    case: str
    scenario_id: str
    tier: str
    passed: bool
    detail: dict = field(default_factory=dict)
    violations: list[AuditViolation] = field(default_factory=list)

    @property
    def status(self) -> str:
        return "ok" if self.passed else "FAIL"


# --------------------------------------------------------------------- #
# payload plumbing
# --------------------------------------------------------------------- #
def _result_of(payload):
    """The LocalizationResult inside a payload, or None."""
    if isinstance(payload, LocalizationResult):
        return payload
    if (
        isinstance(payload, tuple)
        and payload
        and isinstance(payload[0], LocalizationResult)
    ):
        return payload[0]
    return None


def _payload_invariants(payload, ctx: ScenarioContext) -> list[AuditViolation]:
    result = _result_of(payload)
    if result is None:
        return []
    ms = ctx.measurements
    out = audit_localization_result(
        result, ms.width, ms.height, anchor_mask=ms.anchor_mask
    )
    fault_log = (
        result.extras.get("fault_log") if isinstance(result.extras, dict) else None
    )
    if fault_log and fault_log.get("messages"):
        out += check_delay_conservation(fault_log["messages"]["counters"])
    if isinstance(payload, tuple) and len(payload) == 2:
        from repro.core.bnloc import _ANCHOR_BROADCAST_BYTES

        result, stats = payload
        anchor_broadcasts = result.messages_sent - sum(s.messages for s in stats)
        K = result.extras["grid"].n_cells if "grid" in result.extras else None
        if K is not None:
            out += check_round_accounting(
                result,
                stats,
                anchor_broadcasts,
                _ANCHOR_BROADCAST_BYTES,
                msg_bytes=K * 8,
            )
    return out


# --------------------------------------------------------------------- #
# tier comparisons
# --------------------------------------------------------------------- #
def _bit_equal_results(
    ref: LocalizationResult, alt: LocalizationResult
) -> tuple[bool, dict]:
    detail: dict = {}
    if not np.array_equal(ref.localized_mask, alt.localized_mask):
        detail["mismatch"] = "localized_mask"
        return False, detail
    m = ref.localized_mask
    if not np.array_equal(ref.estimates[m], alt.estimates[m]):
        detail["mismatch"] = "estimates"
        detail["max_deviation"] = float(
            np.abs(ref.estimates[m] - alt.estimates[m]).max()
        )
        return False, detail
    for fld in ("n_iterations", "converged", "messages_sent", "bytes_sent"):
        if getattr(ref, fld) != getattr(alt, fld):
            detail["mismatch"] = fld
            detail["ref"] = getattr(ref, fld)
            detail["alt"] = getattr(alt, fld)
            return False, detail
    b_ref = ref.extras.get("beliefs")
    b_alt = alt.extras.get("beliefs")
    if isinstance(b_ref, dict) and isinstance(b_alt, dict):
        if sorted(b_ref) != sorted(b_alt):
            detail["mismatch"] = "belief keys"
            return False, detail
        for u in b_ref:
            if not np.array_equal(b_ref[u], b_alt[u]):
                detail["mismatch"] = "beliefs"
                detail["node"] = int(u)
                detail["max_deviation"] = float(np.abs(b_ref[u] - b_alt[u]).max())
                return False, detail
    detail["max_deviation"] = 0.0
    return True, detail


def _compare_bit(ref, alt) -> tuple[bool, dict]:
    r_ref, r_alt = _result_of(ref), _result_of(alt)
    if r_ref is not None and r_alt is not None:
        return _bit_equal_results(r_ref, r_alt)
    # executor payloads: nested lists / arrays — exact equality
    a = np.asarray(ref, dtype=np.float64)
    b = np.asarray(alt, dtype=np.float64)
    if a.shape != b.shape:
        return False, {"mismatch": "shape", "ref": str(a.shape), "alt": str(b.shape)}
    eq = np.array_equal(a, b, equal_nan=True)
    detail = {"max_deviation": 0.0 if eq else float(np.nanmax(np.abs(a - b)))}
    if not eq:
        detail["mismatch"] = "payload"
    return eq, detail


def _compare_statistical(
    ref, alt, ctx: ScenarioContext, tol: float
) -> tuple[bool, dict]:
    r_ref, r_alt = _result_of(ref), _result_of(alt)
    truth = ctx.network.positions
    unknown = ~ctx.network.anchor_mask
    r = ctx.radio_range

    def mean_err(res: LocalizationResult) -> float:
        with np.errstate(invalid="ignore"):
            return float(np.nanmean(res.errors(truth)[unknown])) / r

    def coverage(res: LocalizationResult) -> float:
        return float(res.localized_mask[unknown].mean())

    e_ref, e_alt = mean_err(r_ref), mean_err(r_alt)
    gap = abs(e_ref - e_alt)
    cov_gap = abs(coverage(r_ref) - coverage(r_alt))
    detail = {
        "ref_error": round(e_ref, 4),
        "alt_error": round(e_alt, 4),
        "error_gap": round(gap, 4),
        "coverage_gap": round(cov_gap, 4),
        "tol": tol,
    }
    passed = bool(np.isfinite(gap)) and gap <= tol and cov_gap <= 1e-12
    if not passed:
        detail["mismatch"] = "accuracy band" if cov_gap <= 1e-12 else "coverage"
    return passed, detail


# --------------------------------------------------------------------- #
# the standard case matrix
# --------------------------------------------------------------------- #
def _audit_bp_config(**overrides) -> GridBPConfig:
    """The harness's compact solver settings (small grid, pinned rounds)."""
    base = dict(grid_size=10, max_iterations=6, tol=1e-9)
    base.update(overrides)
    return GridBPConfig(**base)


def _run_grid(ctx: ScenarioContext, **overrides) -> LocalizationResult:
    cfg = _audit_bp_config(**overrides)
    return GridBPLocalizer(prior=ctx.prior, config=cfg).localize(ctx.measurements)


def _run_distributed(ctx: ScenarioContext, with_stats: bool = False, **overrides):
    from repro.parallel.messaging import DistributedBPSimulator

    cfg = _audit_bp_config(**overrides)
    sim = DistributedBPSimulator(
        prior=ctx.prior, config=cfg, faults=ctx.spec.faults
    )
    result, stats = sim.run(ctx.measurements)
    return (result, stats) if with_stats else result


def _run_grid_warm(ctx: ScenarioContext, **overrides) -> LocalizationResult:
    """Guaranteed-warm shared-cache run (prime once, then measure)."""
    _run_grid(ctx, shared_cache=True, **overrides)
    return _run_grid(ctx, shared_cache=True, **overrides)


def _flatten_results(results: Sequence[LocalizationResult]) -> list:
    """Nested-list view of a result batch for exact payload comparison."""
    rows = []
    for res in results:
        rows.append(
            [float(v) for v in res.estimates.ravel()]
            + [
                float(res.n_iterations),
                float(res.converged),
                float(res.messages_sent),
                float(res.bytes_sent),
            ]
        )
    return rows


def _run_localize_batch(ctx: ScenarioContext, batched: bool) -> list:
    """Batch-vs-sequential bit case: one stacked ``localize_batch`` call over
    T compatible trials must match T sequential ``localize`` calls."""
    from repro.core.bnloc import localize_batch

    cfg = _audit_bp_config(backend="batched")
    locs = [GridBPLocalizer(prior=ctx.prior, config=cfg) for _ in range(3)]
    if batched:
        results = localize_batch([(loc, ctx.measurements) for loc in locs])
    else:
        results = [loc.localize(ctx.measurements) for loc in locs]
    return _flatten_results(results)


def _run_multires(ctx: ScenarioContext) -> LocalizationResult:
    from repro.core.multires import MultiResolutionLocalizer

    return MultiResolutionLocalizer(
        prior=ctx.prior,
        levels=(8, 12),
        iterations_per_level=(6, 4),
        config=_audit_bp_config(grid_size=12),
    ).localize(ctx.measurements)


def _run_nbp(ctx: ScenarioContext) -> LocalizationResult:
    from repro.core.nbp import NBPConfig, NBPLocalizer

    return NBPLocalizer(
        prior=ctx.prior,
        config=NBPConfig(n_particles=150, n_iterations=4),
    ).localize(ctx.measurements, np.random.default_rng(ctx.spec.seed))


def _run_joint(ctx: ScenarioContext) -> LocalizationResult:
    """bn-pk-joint at the harness's compact settings.

    Compared statistically against the fixed-model grid run: on the
    corpus's RSSI scenario the joint method may pick a different (better
    calibrated) exponent, but must stay in the same accuracy band and
    keep full coverage.
    """
    from repro.core.jointchannel import JointChannelConfig, JointChannelLocalizer

    cfg = JointChannelConfig(
        grid=_audit_bp_config(backend="batched"),
        em_iterations=2,
    )
    return JointChannelLocalizer(prior=ctx.prior, config=cfg).localize(
        ctx.measurements
    )


def _run_mcmc(ctx: ScenarioContext) -> LocalizationResult:
    from repro.core.mcmc import MCMCConfig, MCMCLocalizer

    return MCMCLocalizer(
        prior=ctx.prior,
        config=MCMCConfig(
            n_chains=2, n_samples=100, burn_in=60, step_scale=0.25
        ),
    ).localize(ctx.measurements, np.random.default_rng(ctx.spec.seed))


def _executor_trial(spec: ScenarioSpec, seed: int, backend: str = "reference") -> list:
    """Module-level (picklable) trial for the worker-count bit case."""
    ctx = ScenarioContext(spec)
    return _run_grid(ctx, backend=backend).estimates.tolist()


def _run_trials_with_workers(
    ctx: ScenarioContext, n_workers: int, backend: str = "reference"
) -> list:
    from repro.parallel import run_trials

    return run_trials(
        functools.partial(_executor_trial, ctx.spec, backend=backend),
        n_trials=2,
        seed=ctx.spec.seed,
        n_workers=n_workers,
    )


def _flatten_evaluation(evaluation: dict) -> list:
    """Deterministic nested-list view of an ``evaluate_methods`` result.

    Summaries and message counts only — ``runtimes`` are wall-clock and
    can never be bit-stable across runs.
    """
    rows = []
    for name in sorted(evaluation):
        mr = evaluation[name]
        for summary, messages in zip(mr.summaries, mr.messages):
            rows.append(
                [float(v) for v in dataclasses.astuple(summary)]
                + [float(messages)]
            )
    return rows


def _run_ckpt_evaluation(
    ctx: ScenarioContext,
    interrupt: bool,
    backend: str = "reference",
    batch_trials: int | None = None,
) -> list:
    """The checkpoint/resume bit case: an evaluation that is aborted after
    its first durable record and resumed from the ledger must match the
    uninterrupted evaluation exactly."""
    from repro.experiments.runner import evaluate_methods, standard_methods

    methods = standard_methods(
        grid_size=10, max_iterations=6, include=["bn-pk", "centroid"], backend=backend
    )
    cfg = ctx.spec.config
    eval_kwargs = dict(
        n_trials=2, seed=ctx.spec.seed, batch_trials=batch_trials
    )
    if not interrupt:
        return _flatten_evaluation(evaluate_methods(cfg, methods, **eval_kwargs))
    import os
    import tempfile

    from repro.ckpt import Checkpoint, CheckpointAbort

    with tempfile.TemporaryDirectory() as td:
        path = os.path.join(td, "ledger.jsonl")
        ck = Checkpoint(path, abort_after=1)
        try:
            evaluate_methods(cfg, methods, checkpoint=ck, **eval_kwargs)
            raise RuntimeError(
                "checkpoint abort hook never fired — the case is not "
                "exercising a resume"
            )
        except CheckpointAbort:
            pass
        finally:
            ck.close()
        return _flatten_evaluation(
            evaluate_methods(cfg, methods, checkpoint=path, **eval_kwargs)
        )


def default_cases() -> list[DiffCase]:
    """The standing case matrix (see module docstring for the tiers)."""
    fault_free = lambda spec: spec.faults is None
    faulted = lambda spec: spec.faults is not None
    ranged = lambda spec: spec.faults is None and spec.config.ranging != "none"
    rssi = lambda spec: spec.faults is None and spec.config.ranging == "rssi"
    return [
        DiffCase(
            "central-vs-distributed",
            "bit",
            run_ref=_run_grid,
            run_alt=_run_distributed,
            applies=fault_free,
        ),
        DiffCase(
            "optimized-vs-reference",
            "bit",
            run_ref=functools.partial(_run_grid, optimized=True),
            run_alt=functools.partial(_run_grid, optimized=False),
            applies=fault_free,
        ),
        DiffCase(
            "serial-optimized-vs-reference",
            "bit",
            run_ref=functools.partial(_run_grid, schedule="serial", optimized=True),
            run_alt=functools.partial(_run_grid, schedule="serial", optimized=False),
            applies=fault_free,
        ),
        DiffCase(
            "cache-warm-vs-cold",
            "bit",
            run_ref=functools.partial(_run_grid, shared_cache=False),
            run_alt=_run_grid_warm,
            applies=fault_free,
        ),
        DiffCase(
            "batched-vs-reference",
            "bit",
            run_ref=functools.partial(_run_grid, backend="batched"),
            run_alt=_run_grid,
            applies=fault_free,
        ),
        DiffCase(
            "serial-batched-vs-reference",
            "bit",
            run_ref=functools.partial(_run_grid, schedule="serial", backend="batched"),
            run_alt=functools.partial(_run_grid, schedule="serial"),
            applies=fault_free,
        ),
        DiffCase(
            "batched-cache-warm-vs-cold",
            "bit",
            run_ref=functools.partial(
                _run_grid, shared_cache=False, backend="batched"
            ),
            run_alt=functools.partial(_run_grid_warm, backend="batched"),
            applies=fault_free,
        ),
        DiffCase(
            "batched-batch-vs-sequential",
            "bit",
            run_ref=functools.partial(_run_localize_batch, batched=True),
            run_alt=functools.partial(_run_localize_batch, batched=False),
            applies=fault_free,
        ),
        DiffCase(
            "workers-1-vs-2",
            "bit",
            run_ref=functools.partial(_run_trials_with_workers, n_workers=1),
            run_alt=functools.partial(_run_trials_with_workers, n_workers=2),
            applies=fault_free,
            slow=True,
        ),
        DiffCase(
            "batched-workers-1-vs-2",
            "bit",
            run_ref=functools.partial(
                _run_trials_with_workers, n_workers=1, backend="batched"
            ),
            run_alt=functools.partial(
                _run_trials_with_workers, n_workers=2, backend="batched"
            ),
            applies=fault_free,
            slow=True,
        ),
        DiffCase(
            "ckpt-resume-vs-uninterrupted",
            "bit",
            run_ref=functools.partial(_run_ckpt_evaluation, interrupt=False),
            run_alt=functools.partial(_run_ckpt_evaluation, interrupt=True),
            applies=fault_free,
        ),
        DiffCase(
            "ckpt-resume-vs-uninterrupted-batched",
            "bit",
            run_ref=functools.partial(
                _run_ckpt_evaluation,
                interrupt=False,
                backend="batched",
                batch_trials=2,
            ),
            run_alt=functools.partial(
                _run_ckpt_evaluation,
                interrupt=True,
                backend="batched",
                batch_trials=2,
            ),
            applies=fault_free,
        ),
        DiffCase(
            "multires-vs-grid",
            "statistical",
            run_ref=functools.partial(_run_grid, grid_size=12),
            run_alt=_run_multires,
            tol=0.35,
            applies=fault_free,
        ),
        DiffCase(
            "nbp-vs-grid",
            "statistical",
            run_ref=_run_grid,
            run_alt=_run_nbp,
            tol=0.75,
            applies=ranged,
        ),
        DiffCase(
            "mcmc-vs-grid",
            "statistical",
            run_ref=_run_grid,
            run_alt=_run_mcmc,
            tol=0.75,
            applies=fault_free,
        ),
        DiffCase(
            "joint-vs-fixed",
            "statistical",
            run_ref=functools.partial(_run_grid, backend="batched"),
            run_alt=_run_joint,
            tol=0.35,
            applies=rssi,
        ),
        DiffCase(
            "faulted-distributed-invariants",
            "invariant",
            run_ref=functools.partial(_run_distributed, with_stats=True),
            applies=faulted,
        ),
        DiffCase(
            "grid-invariants",
            "invariant",
            run_ref=_run_grid,
            applies=fault_free,
        ),
    ]


# --------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------- #
def run_case(case: DiffCase, ctx: ScenarioContext) -> DiffReport:
    """Execute one case on one built scenario."""
    ref = case.run_ref(ctx)
    violations = _payload_invariants(ref, ctx)
    detail: dict = {}
    passed = True
    if case.tier == "invariant":
        passed = not violations
    else:
        alt = case.run_alt(ctx)
        violations += _payload_invariants(alt, ctx)
        if case.tier == "bit":
            passed, detail = _compare_bit(ref, alt)
        else:
            passed, detail = _compare_statistical(ref, alt, ctx, case.tol)
        passed = passed and not violations
    return DiffReport(
        case=case.name,
        scenario_id=ctx.spec.scenario_id,
        tier=case.tier,
        passed=passed,
        detail=detail,
        violations=violations,
    )


def run_corpus(
    corpus: str | Sequence[ScenarioSpec] = "smoke",
    cases: Sequence[DiffCase] | None = None,
    include_slow: bool = False,
) -> list[DiffReport]:
    """Run the case matrix over a corpus (name or explicit spec list)."""
    specs = make_corpus(corpus) if isinstance(corpus, str) else list(corpus)
    if cases is None:
        cases = default_cases()
    cases = [c for c in cases if include_slow or not c.slow]
    reports: list[DiffReport] = []
    for spec in specs:
        ctx = ScenarioContext(spec)
        for case in cases:
            if not case.applies(spec):
                continue
            reports.append(run_case(case, ctx))
    return reports


def summarize(reports: Sequence[DiffReport]) -> str:
    """Plain-text table of the reports plus a per-tier pass count."""
    if not reports:
        return "no audit cases ran (empty corpus or nothing applied)"
    rows = []
    for r in reports:
        note = ""
        if r.detail.get("mismatch"):
            note = f"mismatch={r.detail['mismatch']}"
        elif r.tier == "statistical":
            note = f"gap={r.detail.get('error_gap')}"
        if r.violations:
            sep = "; " if note else ""
            note = f"{note}{sep}{len(r.violations)} invariant violation(s)"
        rows.append((r.case, r.scenario_id, r.tier, r.status, note))
    w0 = max(len(r[0]) for r in rows + [("case",)*1])
    w1 = max(len(r[1]) for r in rows)
    w1 = max(w1, len("scenario"))
    lines = [
        f"{'case':<{w0}}  {'scenario':<{w1}}  {'tier':<11}  {'status':<6}  note",
        "-" * (w0 + w1 + 35),
    ]
    for case, scenario, tier, status, note in rows:
        lines.append(f"{case:<{w0}}  {scenario:<{w1}}  {tier:<11}  {status:<6}  {note}")
    by_tier: dict[str, list[DiffReport]] = {}
    for r in reports:
        by_tier.setdefault(r.tier, []).append(r)
    lines.append("")
    for tier in TIERS:
        if tier in by_tier:
            ok = sum(r.passed for r in by_tier[tier])
            lines.append(f"{tier}: {ok}/{len(by_tier[tier])} passed")
    n_fail = sum(not r.passed for r in reports)
    lines.append(
        "all clear" if n_fail == 0 else f"{n_fail}/{len(reports)} case runs FAILED"
    )
    return "\n".join(lines)
