"""Empirical error CDFs (the standard per-node error figure, E5)."""

from __future__ import annotations

import numpy as np

__all__ = ["empirical_cdf", "cdf_at"]


def empirical_cdf(errors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted finite errors and their cumulative probabilities.

    Returns ``(x, F)`` with ``F[k] = (k + 1) / m`` at the k-th smallest
    error; plot as a step function.  Unlocalized (NaN) nodes are excluded,
    so a CDF that tops out early should be read together with coverage.
    """
    e = np.asarray(errors, dtype=np.float64).ravel()
    e = np.sort(e[np.isfinite(e)])
    if len(e) == 0:
        return np.array([]), np.array([])
    return e, np.arange(1, len(e) + 1) / len(e)


def cdf_at(errors: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """Fraction of finite errors ≤ each threshold.

    Useful for "fraction of nodes within 0.5 r" style table rows.
    """
    e = np.asarray(errors, dtype=np.float64).ravel()
    e = e[np.isfinite(e)]
    t = np.asarray(thresholds, dtype=np.float64)
    if len(e) == 0:
        return np.zeros_like(t)
    return (e[None, :] <= t[:, None]).mean(axis=1)
