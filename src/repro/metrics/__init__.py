"""Evaluation metrics for localization results.

* :mod:`repro.metrics.error` — error summaries (mean/median/RMSE,
  normalized by radio range) and coverage.
* :mod:`repro.metrics.cdf` — empirical error CDFs (figure E5).
* :mod:`repro.metrics.crlb` — the Cramér–Rao lower bound for cooperative
  localization, classical and Bayesian (with prior), experiment E11.
* :mod:`repro.metrics.convergence` — error-vs-iteration traces (E6).
"""

from repro.metrics.error import (
    ErrorSummary,
    summarize_errors,
    rmse,
    mean_error,
    median_error,
    coverage,
)
from repro.metrics.cdf import empirical_cdf, cdf_at
from repro.metrics.crlb import cooperative_crlb
from repro.metrics.convergence import error_per_iteration
from repro.metrics.calibration import (
    calibration_ratio,
    coverage_at_sigma,
    predicted_rms,
)

__all__ = [
    "ErrorSummary",
    "summarize_errors",
    "rmse",
    "mean_error",
    "median_error",
    "coverage",
    "empirical_cdf",
    "cdf_at",
    "cooperative_crlb",
    "error_per_iteration",
    "calibration_ratio",
    "coverage_at_sigma",
    "predicted_rms",
]
