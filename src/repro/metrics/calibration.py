"""Uncertainty calibration of posterior beliefs.

A Bayesian localizer returns not just a point estimate but a posterior —
useful only if honest.  Calibration checks whether the posterior's own
uncertainty predicts the actual error:

* :func:`predicted_rms` — per-node predicted RMS error,
  ``sqrt(trace(cov))`` of the belief.
* :func:`calibration_ratio` — actual RMS / predicted RMS (≈ 1 when
  calibrated; > 1 = overconfident, < 1 = underconfident).
* :func:`coverage_at_sigma` — fraction of nodes whose true position falls
  within k predicted standard deviations (compare to the Rayleigh
  quantiles: ~39 % at 1σ, ~86 % at 2σ for a 2-D Gaussian).

Two posterior sources are understood: grid beliefs
(``extras["grid"]``/``extras["beliefs"]``), whose spread folds in the
grid-quantization variance floor ``(w² + h²)/12``, and continuous sample
covariances (``extras["covariances"]``, from :class:`~repro.core.mcmc.
MCMCLocalizer`), which carry **no** quantization floor — the sampler's
uncertainty is resolution-free, so its predicted RMS can honestly drop
below a grid cell.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import LocalizationResult

__all__ = ["predicted_rms", "calibration_ratio", "coverage_at_sigma"]


def _belief_spreads(result: LocalizationResult) -> dict[int, float]:
    grid = result.extras.get("grid")
    beliefs = result.extras.get("beliefs")
    if grid is not None and beliefs is not None:
        # The grid cannot represent sub-cell uncertainty: a belief fully
        # concentrated in one cell still leaves a uniform-in-cell residual,
        # whose variance is (w² + h²)/12.  Folding it in keeps the
        # prediction meaningful at the quantization floor.
        quant_var = (grid.cell_width**2 + grid.cell_height**2) / 12.0
        return {
            int(u): float(
                np.sqrt(max(np.trace(grid.covariance(b)), 0.0) + quant_var)
            )
            for u, b in beliefs.items()
        }
    covariances = result.extras.get("covariances")
    if covariances is not None:
        # Continuous-posterior solvers (MCMC) report per-node sample
        # covariances directly.  No quantization floor applies: the
        # samples live in continuous space, so the covariance already
        # captures arbitrarily small spreads.
        covariances = np.asarray(covariances, dtype=np.float64)
        return {
            int(u): float(np.sqrt(max(np.trace(covariances[u]), 0.0)))
            for u in range(len(covariances))
            if np.isfinite(covariances[u]).all()
        }
    raise ValueError(
        "result lacks belief extras (grid beliefs or sample covariances); "
        "run a grid-BP or MCMC localizer"
    )


def predicted_rms(result: LocalizationResult) -> np.ndarray:
    """Per-node predicted RMS error from the posterior (NaN for anchors).

    Includes the grid-quantization variance floor (see source) so a
    perfectly certain belief still predicts the half-cell residual.
    """
    spreads = _belief_spreads(result)
    out = np.full(result.n_nodes, np.nan)
    for u, s in spreads.items():
        out[u] = s
    return out


def calibration_ratio(
    result: LocalizationResult, true_positions: np.ndarray
) -> float:
    """Actual RMS error divided by predicted RMS error (1 = calibrated)."""
    pred = predicted_rms(result)
    err = result.errors(true_positions)
    mask = np.isfinite(pred) & np.isfinite(err)
    if not mask.any():
        raise ValueError("no nodes with both prediction and error")
    actual = np.sqrt((err[mask] ** 2).mean())
    predicted = np.sqrt((pred[mask] ** 2).mean())
    if predicted <= 0:
        raise ValueError("posterior claims zero uncertainty everywhere")
    return float(actual / predicted)


def coverage_at_sigma(
    result: LocalizationResult,
    true_positions: np.ndarray,
    k: float = 2.0,
) -> float:
    """Fraction of nodes with error ≤ k × their predicted σ.

    The predicted per-axis σ is ``predicted_rms / sqrt(2)`` (isotropic
    approximation); for a calibrated 2-D Gaussian posterior the expected
    coverage is ``1 − exp(−k²/2)`` (Rayleigh), ≈ 86.5 % at k = 2.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    pred = predicted_rms(result) / np.sqrt(2.0)
    err = result.errors(true_positions)
    mask = np.isfinite(pred) & np.isfinite(err)
    if not mask.any():
        raise ValueError("no nodes with both prediction and error")
    return float((err[mask] <= k * pred[mask]).mean())
