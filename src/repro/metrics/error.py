"""Localization error summaries.

WSN papers report error normalized by the radio range ("0.35 r") so
results are comparable across scales; :class:`ErrorSummary` keeps both raw
and normalized values.  Unlocalized nodes are excluded from error
statistics but reported through ``coverage`` — a method must not improve
its error by silently dropping hard nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "rmse",
    "mean_error",
    "median_error",
    "coverage",
    "ErrorSummary",
    "summarize_errors",
]


def _clean(errors: np.ndarray) -> np.ndarray:
    e = np.asarray(errors, dtype=np.float64).ravel()
    return e[np.isfinite(e)]


def rmse(errors: np.ndarray) -> float:
    """Root-mean-square of the finite errors (NaN if none)."""
    e = _clean(errors)
    return float(np.sqrt((e**2).mean())) if len(e) else float("nan")


def mean_error(errors: np.ndarray) -> float:
    """Mean of the finite errors (NaN if none)."""
    e = _clean(errors)
    return float(e.mean()) if len(e) else float("nan")


def median_error(errors: np.ndarray) -> float:
    """Median of the finite errors (NaN if none)."""
    e = _clean(errors)
    return float(np.median(e)) if len(e) else float("nan")


def coverage(errors: np.ndarray) -> float:
    """Fraction of nodes with a finite error (i.e. actually localized)."""
    e = np.asarray(errors, dtype=np.float64).ravel()
    if len(e) == 0:
        return 0.0
    return float(np.isfinite(e).mean())


@dataclass(frozen=True)
class ErrorSummary:
    """One method's error statistics for one scenario.

    ``*_norm`` fields are in units of the radio range.
    """

    mean: float
    median: float
    rmse: float
    p90: float
    coverage: float
    radio_range: float

    @property
    def mean_norm(self) -> float:
        return self.mean / self.radio_range

    @property
    def median_norm(self) -> float:
        return self.median / self.radio_range

    @property
    def rmse_norm(self) -> float:
        return self.rmse / self.radio_range

    @property
    def p90_norm(self) -> float:
        return self.p90 / self.radio_range


def summarize_errors(
    errors: np.ndarray, radio_range: float, unknown_mask: np.ndarray | None = None
) -> ErrorSummary:
    """Summarize per-node errors (optionally restricted to unknown nodes).

    Parameters
    ----------
    errors:
        Per-node errors (NaN = unlocalized), e.g. from
        :meth:`repro.core.result.LocalizationResult.errors`.
    radio_range:
        Normalization constant.
    unknown_mask:
        If given, only these nodes count (anchors have zero error by
        construction and would dilute the statistics).
    """
    if radio_range <= 0:
        raise ValueError("radio_range must be positive")
    e = np.asarray(errors, dtype=np.float64).ravel()
    if unknown_mask is not None:
        mask = np.asarray(unknown_mask, dtype=bool)
        if mask.shape != e.shape:
            raise ValueError("unknown_mask shape mismatch")
        e = e[mask]
    fin = _clean(e)
    p90 = float(np.percentile(fin, 90)) if len(fin) else float("nan")
    return ErrorSummary(
        mean=mean_error(e),
        median=median_error(e),
        rmse=rmse(e),
        p90=p90,
        coverage=coverage(e),
        radio_range=float(radio_range),
    )
