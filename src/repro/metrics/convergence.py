"""Convergence-curve extraction (experiment E6)."""

from __future__ import annotations

import numpy as np

from repro.core.result import LocalizationResult

__all__ = ["error_per_iteration"]


def error_per_iteration(
    result: LocalizationResult,
    true_positions: np.ndarray,
    unknown_mask: np.ndarray,
) -> np.ndarray:
    """Mean unknown-node error at each recorded BP iteration.

    Requires a result produced with ``record_trace=True``; index 0 is the
    unary-only (pre-cooperation) estimate.
    """
    if not result.trace:
        raise ValueError(
            "result has no trace; run the localizer with record_trace=True"
        )
    true = np.asarray(true_positions, dtype=np.float64)
    mask = np.asarray(unknown_mask, dtype=bool)
    out = np.empty(len(result.trace))
    for t, snap in enumerate(result.trace):
        err = np.linalg.norm(snap[mask] - true[mask], axis=1)
        out[t] = float(np.nanmean(err))
    return out
