"""Cramér–Rao lower bound for cooperative localization.

Follows Patwari et al. ("Relative location estimation in wireless sensor
networks", IEEE TSP 2003), extended with a Gaussian prior term (the
*Bayesian* CRLB / posterior bound), so experiment E11 can show both how
far the estimator sits from the classical bound and how much information
the pre-knowledge itself contributes.

For Gaussian ranging with per-link σ_ij, the Fisher information of the
stacked unknown coordinates ``x = (…, x_i, y_i, …)`` is block-structured:

* diagonal block  J_ii = Σ_{j ~ i} (1/σ_ij²) u_ij u_ijᵀ   (anchors and
  unknown neighbors both contribute),
* off-diagonal    J_ij = −(1/σ_ij²) u_ij u_ijᵀ for unknown neighbors,

with ``u_ij`` the unit vector between the *true* positions.  A Gaussian
prior with std σ_p adds ``(1/σ_p²)·I₂`` to each diagonal block.  The bound
on node *i*'s RMS position error is ``sqrt(trace([J⁻¹]_ii))``.
"""

from __future__ import annotations

import numpy as np

from repro.measurement.ranging import RangingModel
from repro.network.topology import WSNetwork
from repro.utils.geometry import pairwise_distances

__all__ = ["cooperative_crlb"]


def cooperative_crlb(
    network: WSNetwork,
    ranging: RangingModel,
    prior_sigma: float | None = None,
) -> np.ndarray:
    """Per-node RMS error lower bounds (NaN for anchors / unbounded nodes).

    Parameters
    ----------
    network:
        Ground-truth network (the bound is evaluated at the true geometry,
        as is standard).
    ranging:
        Provides the per-link ``sigma_at``; range-free models (infinite σ)
        are rejected.
    prior_sigma:
        If given, a per-node isotropic Gaussian prior with this σ is added
        (Bayesian CRLB).  Without it, nodes in under-constrained portions
        of the graph can make the FIM singular, in which case their bound
        is ``inf``.

    Returns
    -------
    numpy.ndarray
        Length-*n* array: ``sqrt(trace(J⁻¹ block))`` per unknown node, NaN
        at anchor indices.
    """
    dist = pairwise_distances(network.positions)
    sigma = ranging.sigma_at(dist)
    if not np.isfinite(sigma[network.adjacency]).all():
        raise ValueError(
            "ranging model has infinite sigma (range-free); CRLB undefined"
        )
    unknowns = [int(u) for u in network.unknown_ids]
    idx = {u: k for k, u in enumerate(unknowns)}
    m = len(unknowns)
    J = np.zeros((2 * m, 2 * m))

    pos = network.positions
    for i, j in network.edges():
        i, j = int(i), int(j)
        ai, aj = network.anchor_mask[i], network.anchor_mask[j]
        if ai and aj:
            continue
        d = dist[i, j]
        if d <= 0:
            continue
        u = (pos[i] - pos[j]) / d
        info = np.outer(u, u) / sigma[i, j] ** 2
        if not ai:
            k = idx[i]
            J[2 * k : 2 * k + 2, 2 * k : 2 * k + 2] += info
        if not aj:
            k = idx[j]
            J[2 * k : 2 * k + 2, 2 * k : 2 * k + 2] += info
        if not ai and not aj:
            ki, kj = idx[i], idx[j]
            J[2 * ki : 2 * ki + 2, 2 * kj : 2 * kj + 2] -= info
            J[2 * kj : 2 * kj + 2, 2 * ki : 2 * ki + 2] -= info

    if prior_sigma is not None:
        if prior_sigma <= 0:
            raise ValueError("prior_sigma must be positive")
        J[np.diag_indices(2 * m)] += 1.0 / prior_sigma**2

    bounds = np.full(network.n_nodes, np.nan)
    try:
        cov = np.linalg.inv(J)
        for u, k in idx.items():
            block = cov[2 * k : 2 * k + 2, 2 * k : 2 * k + 2]
            tr = float(np.trace(block))
            bounds[u] = np.sqrt(tr) if tr > 0 else np.inf
    except np.linalg.LinAlgError:
        # Singular FIM: bound each node via the pseudo-inverse; nodes with
        # a null-space component are unbounded.
        cov = np.linalg.pinv(J)
        null_mask = _null_space_nodes(J, m)
        for u, k in idx.items():
            if null_mask[k]:
                bounds[u] = np.inf
            else:
                block = cov[2 * k : 2 * k + 2, 2 * k : 2 * k + 2]
                bounds[u] = float(np.sqrt(max(np.trace(block), 0.0)))
    return bounds


def _null_space_nodes(J: np.ndarray, m: int, tol: float = 1e-9) -> np.ndarray:
    """Which unknown nodes have support in the FIM's null space."""
    vals, vecs = np.linalg.eigh(J)
    null = vecs[:, vals < tol * max(vals.max(), 1.0)]
    if null.shape[1] == 0:
        return np.zeros(m, dtype=bool)
    comp = (null**2).reshape(m, 2, -1).sum(axis=(1, 2))
    return comp > tol
