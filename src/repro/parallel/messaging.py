"""Distributed execution of the Bayesian-network localizer.

:class:`DistributedBPSimulator` runs the *same* grid-BP computation as
:class:`~repro.core.bnloc.GridBPLocalizer`, but organized the way a real
deployment executes it: every sensor node is an agent with an inbox; in
each synchronous round an agent reads the belief messages its neighbors
sent last round, computes one outgoing message per neighbor, and delivers
them.  Nothing is shared — an agent sees only its own measurements, its
prior, and its mailbox.

This makes the communication cost *measured rather than modeled*
(:class:`RoundStats` counts actual deliveries and payload bytes per round)
and demonstrates that the algorithm is genuinely distributable: the test
suite asserts the final beliefs match the centralized solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bnloc import _MSG_FLOOR, GridBPConfig, GridBPLocalizer
from repro.core.grid import Grid2D
from repro.core.potentials import RangingPotentialCache, connectivity_potential
from repro.core.result import LocalizationResult
from repro.measurement.measurements import MeasurementSet
from repro.network.radio import RadioModel, UnitDiskRadio
from repro.priors.base import PositionPrior
from repro.priors.deployment import UniformPrior

__all__ = ["DistributedBPSimulator", "RoundStats", "SensorNodeAgent"]


@dataclass
class RoundStats:
    """Per-round communication and convergence accounting."""

    round_index: int
    messages: int
    bytes: int
    max_residual: float


class SensorNodeAgent:
    """One unknown node's local state in the distributed execution."""

    def __init__(self, node_id: int, log_phi: np.ndarray) -> None:
        self.node_id = int(node_id)
        self.log_phi = log_phi
        #: incoming message per neighbor id (previous round)
        self.inbox: dict[int, np.ndarray] = {}
        #: pairwise potential per neighbor id (sparse, symmetric)
        self.psi: dict[int, object] = {}

    def add_neighbor(self, other: int, psi, K: int) -> None:
        """*psi* is the oriented operator: outgoing message = psi @ h."""
        self.psi[int(other)] = psi
        self.inbox[int(other)] = np.full(K, 1.0 / K)

    def compute_outgoing(self, damping: float) -> dict[int, np.ndarray]:
        """One message per neighbor, from the current inbox."""
        total = self.log_phi.copy()
        for m in self.inbox.values():
            total += np.log(m)
        out: dict[int, np.ndarray] = {}
        K = len(self.log_phi)
        for other, psi in self.psi.items():
            h = total - np.log(self.inbox[other])
            h -= h.max()
            msg = psi.dot(np.exp(h))
            s = msg.sum()
            msg = msg / s if s > 0 else np.full(K, 1.0 / K)
            if damping > 0:
                # Damp against what *we last sent* to this neighbor; the
                # agent remembers it in _last_sent.
                prev = self._last_sent.get(other)
                if prev is not None:
                    msg = (1 - damping) * msg + damping * prev
                    msg = msg / msg.sum()
            np.maximum(msg, _MSG_FLOOR, out=msg)
            out[other] = msg
        self._last_sent.update(out)
        return out

    _last_sent: dict[int, np.ndarray]

    def reset_memory(self, K: int) -> None:
        self._last_sent = {o: np.full(K, 1.0 / K) for o in self.psi}

    def belief(self) -> np.ndarray:
        acc = self.log_phi.copy()
        for m in self.inbox.values():
            acc += np.log(m)
        acc -= acc.max()
        b = np.exp(acc)
        return b / b.sum()


class DistributedBPSimulator:
    """Synchronous-round distributed grid BP with mailbox accounting.

    Parameters mirror :class:`~repro.core.bnloc.GridBPLocalizer`; the
    computation is identical, only the execution model differs.
    """

    name = "distributed-grid-bp"

    def __init__(
        self,
        prior: PositionPrior | None = None,
        radio: RadioModel | None = None,
        config: GridBPConfig | None = None,
    ) -> None:
        self.prior = prior
        self.radio = radio
        self.config = config if config is not None else GridBPConfig()

    def run(self, measurements: MeasurementSet) -> tuple[LocalizationResult, list[RoundStats]]:
        ms = measurements
        cfg = self.config
        grid = Grid2D(cfg.grid_size, cfg.grid_size, ms.width, ms.height)
        prior = self.prior if self.prior is not None else UniformPrior(ms.width, ms.height)
        radio = self.radio if self.radio is not None else UnitDiskRadio(ms.radio_range)
        K = grid.n_cells

        # Local knowledge phase: each node folds anchor broadcasts and its
        # prior into a unary potential (reuses the centralized code — the
        # math is per-node local either way).
        helper = GridBPLocalizer(prior=prior, radio=radio, config=cfg)
        unknowns = ms.unknown_ids
        log_phi = helper._node_potentials(ms, grid, prior, radio, unknowns)
        agents = {
            int(u): SensorNodeAgent(int(u), log_phi[ui])
            for ui, u in enumerate(unknowns)
        }

        if ms.has_ranging:
            cache = RangingPotentialCache(
                grid,
                ms.ranging,
                radio if cfg.use_connectivity_in_ranging else None,
                blur_sigma=cfg.cell_blur_fraction * grid.cell_diagonal,
            )
        conn_psi = None
        anchor_broadcasts = 0
        for i, j in ms.edges():
            i, j = int(i), int(j)
            if ms.anchor_mask[i] and ms.anchor_mask[j]:
                continue
            if ms.anchor_mask[i] or ms.anchor_mask[j]:
                anchor_broadcasts += 1
                continue
            if ms.has_ranging:
                psi = cache.get(ms.observed_distances[i, j])
            else:
                if conn_psi is None:
                    from scipy import sparse

                    conn_psi = sparse.csr_matrix(
                        connectivity_potential(grid.pairwise_center_distances(), radio)
                    )
                psi = conn_psi
            if ms.has_bearings:
                from scipy import sparse

                from repro.core.potentials import pairwise_bearing_potential

                bpsi = pairwise_bearing_potential(
                    grid,
                    ms.observed_bearings[i, j],
                    ms.observed_bearings[j, i],
                    ms.bearing_model,
                )
                combined = sparse.csr_matrix(psi.multiply(bpsi))
                agents[i].add_neighbor(j, sparse.csr_matrix(combined.T), K)
                agents[j].add_neighbor(i, combined, K)
            else:
                agents[i].add_neighbor(j, psi, K)
                agents[j].add_neighbor(i, psi, K)
        for a in agents.values():
            a.reset_memory(K)

        stats: list[RoundStats] = []
        converged = False
        n_round = 0
        msg_bytes = K * 8
        for n_round in range(1, cfg.max_iterations + 1):
            outboxes = {
                u: agent.compute_outgoing(cfg.damping)
                for u, agent in agents.items()
            }
            max_res = 0.0
            n_msgs = 0
            for u, out in outboxes.items():
                for other, msg in out.items():
                    prev = agents[other].inbox[u]
                    max_res = max(max_res, float(np.abs(msg - prev).max()))
                    agents[other].inbox[u] = msg
                    n_msgs += 1
            stats.append(RoundStats(n_round, n_msgs, n_msgs * msg_bytes, max_res))
            if max_res < cfg.tol:
                converged = True
                break

        estimates = np.full((ms.n_nodes, 2), np.nan)
        estimates[ms.anchor_mask] = ms.anchor_positions
        mask = ms.anchor_mask.copy()
        beliefs = {}
        for u, agent in agents.items():
            b = agent.belief()
            beliefs[u] = b
            estimates[u] = (
                grid.expectation(b) if cfg.estimator == "mmse" else grid.map_estimate(b)
            )
            mask[u] = True
        total_msgs = anchor_broadcasts + sum(s.messages for s in stats)
        result = LocalizationResult(
            estimates=estimates,
            localized_mask=mask,
            method=self.name,
            n_iterations=n_round,
            converged=converged,
            messages_sent=total_msgs,
            bytes_sent=anchor_broadcasts * 2 * 8 + sum(s.bytes for s in stats),
            extras={"beliefs": beliefs, "grid": grid},
        )
        return result, stats
