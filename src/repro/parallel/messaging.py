"""Distributed execution of the Bayesian-network localizer.

:class:`DistributedBPSimulator` runs the *same* grid-BP computation as
:class:`~repro.core.bnloc.GridBPLocalizer`, but organized the way a real
deployment executes it: every sensor node is an agent with an inbox; in
each synchronous round an agent reads the belief messages its neighbors
sent last round, computes one outgoing message per neighbor, and delivers
them.  Nothing is shared — an agent sees only its own measurements, its
prior, and its mailbox.

This makes the communication cost *measured rather than modeled*
(:class:`RoundStats` counts actual deliveries and payload bytes per round)
and demonstrates that the algorithm is genuinely distributable: the test
suite asserts the final beliefs match the centralized solver.

The simulator is also the natural place to break things: pass a
:class:`~repro.faults.FaultPlan` and every round's messages flow through a
:class:`~repro.faults.MessageFaultInjector` — drops, corruption, delays,
node crashes and churn — while :class:`RoundStats` picks up the per-round
fault counts and the result carries the full fault log.  With no plan (or
``FaultPlan.none()``) the round loop is byte-for-byte the fault-free path,
so all bit-identity guarantees against the centralized solver still hold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bnloc import (
    _ANCHOR_BROADCAST_BYTES,
    _MSG_FLOOR,
    GridBPConfig,
    GridBPLocalizer,
)
from repro.core.grid import Grid2D
from repro.core.health import fallback_position
from repro.core.potentials import (
    RangingPotentialCache,
    connectivity_potential,
    shared_registry,
)
from repro.core.result import LocalizationResult
from repro.faults import FaultPlan, MessageFaultInjector, degrade_measurements
from repro.measurement.measurements import MeasurementSet
from repro.network.radio import RadioModel, UnitDiskRadio
from repro.obs import NULL_TRACER, NullTracer
from repro.priors.base import PositionPrior
from repro.priors.deployment import UniformPrior

__all__ = ["DistributedBPSimulator", "RoundStats", "SensorNodeAgent"]


@dataclass
class RoundStats:
    """Per-round communication and convergence accounting.

    The fault columns are zero on fault-free runs: ``dropped`` counts
    messages lost in transit (including those addressed to a crashed
    node), ``corrupted`` messages delivered with corrupted content, and
    ``delayed`` messages queued for a later round.
    """

    round_index: int
    messages: int
    bytes: int
    max_residual: float
    dropped: int = 0
    corrupted: int = 0
    delayed: int = 0


class SensorNodeAgent:
    """One unknown node's local state in the distributed execution."""

    def __init__(self, node_id: int, log_phi: np.ndarray) -> None:
        self.node_id = int(node_id)
        self.log_phi = log_phi
        #: incoming message per neighbor id (previous round)
        self.inbox: dict[int, np.ndarray] = {}
        #: pairwise potential per neighbor id (sparse, symmetric)
        self.psi: dict[int, object] = {}

    def add_neighbor(self, other: int, psi, K: int) -> None:
        """*psi* is the oriented operator: outgoing message = psi @ h."""
        self.psi[int(other)] = psi
        self.inbox[int(other)] = np.full(K, 1.0 / K)

    def compute_outgoing(self, damping: float) -> dict[int, np.ndarray]:
        """One message per neighbor, from the current inbox."""
        # log(0) = -inf is tolerated here: the degenerate-inbox guard
        # below turns it into the uniform fallback, so silence numpy.
        with np.errstate(divide="ignore", invalid="ignore"):
            total = self.log_phi.copy()
            for m in self.inbox.values():
                total += np.log(m)
        out: dict[int, np.ndarray] = {}
        K = len(self.log_phi)
        for other, psi in self.psi.items():
            with np.errstate(divide="ignore", invalid="ignore"):
                h = total - np.log(self.inbox[other])
            peak = h.max()
            if np.isfinite(peak):
                h -= peak
                msg = psi.dot(np.exp(h))
                s = msg.sum()
            else:
                # Degenerate inbox (summed potential is -inf everywhere,
                # e.g. a zeroed message under fault injection): without
                # this guard ``h - (-inf)`` turns NaN and
                # ``psi.dot(np.exp(h))`` silently propagates it to every
                # neighbor.  Fall back to the uninformative message.
                s = 0.0
            msg = msg / s if s > 0 else np.full(K, 1.0 / K)
            if damping > 0:
                # Damp against what *we last sent* to this neighbor; the
                # agent remembers it in _last_sent.
                prev = self._last_sent.get(other)
                if prev is not None:
                    msg = (1 - damping) * msg + damping * prev
                    msg = msg / msg.sum()
            np.maximum(msg, _MSG_FLOOR, out=msg)
            out[other] = msg
        self._last_sent.update(out)
        return out

    _last_sent: dict[int, np.ndarray]

    def reset_memory(self, K: int) -> None:
        self._last_sent = {o: np.full(K, 1.0 / K) for o in self.psi}

    def belief(self) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            acc = self.log_phi.copy()
            for m in self.inbox.values():
                acc += np.log(m)
        peak = acc.max()
        if not np.isfinite(peak):
            # same degenerate-inbox case as compute_outgoing: an all--inf
            # accumulator would yield an all-NaN belief
            return np.full(len(acc), 1.0 / len(acc))
        acc -= peak
        b = np.exp(acc)
        return b / b.sum()


class DistributedBPSimulator:
    """Synchronous-round distributed grid BP with mailbox accounting.

    Parameters mirror :class:`~repro.core.bnloc.GridBPLocalizer`; the
    computation is identical, only the execution model differs.
    """

    name = "distributed-grid-bp"

    def __init__(
        self,
        prior: PositionPrior | None = None,
        radio: RadioModel | None = None,
        config: GridBPConfig | None = None,
        faults: FaultPlan | None = None,
        tracer: NullTracer | None = None,
    ) -> None:
        if faults is not None and not isinstance(faults, FaultPlan):
            raise TypeError(
                f"faults must be a FaultPlan or None, got {type(faults).__name__}"
            )
        self.prior = prior
        self.radio = radio
        self.config = config if config is not None else GridBPConfig()
        self.faults = faults
        self.tracer = tracer if tracer is not None else NULL_TRACER

    @staticmethod
    def _validate(ms: MeasurementSet) -> None:
        """Reject malformed networks with actionable messages (the config
        side is validated by :class:`GridBPConfig` itself)."""
        if not isinstance(ms, MeasurementSet):
            raise TypeError(
                f"run() expects a MeasurementSet, got {type(ms).__name__}"
            )
        if ms.n_nodes == 0:
            raise ValueError("empty network: the measurement set has no nodes")
        adj = np.asarray(ms.adjacency)
        if adj.shape != (ms.n_nodes, ms.n_nodes):
            raise ValueError(
                f"adjacency must be ({ms.n_nodes}, {ms.n_nodes}) to match the "
                f"node count, got {adj.shape}"
            )
        if not np.array_equal(adj, adj.T):
            bad = np.argwhere(adj != adj.T)
            i, j = (int(v) for v in bad[0])
            raise ValueError(
                "adjacency must be symmetric (radio links are bidirectional); "
                f"first asymmetric pair: ({i}, {j})"
            )
        if len(ms.unknown_ids) == 0:
            raise ValueError(
                "network has no unknown nodes to localize (every node is an "
                "anchor)"
            )

    def run(self, measurements: MeasurementSet) -> tuple[LocalizationResult, list[RoundStats]]:
        self._validate(measurements)
        ms = measurements
        cfg = self.config
        tracer = self.tracer
        plan = self.faults if self.faults is not None and self.faults.enabled else None

        # Measurement-level faults first (dead anchors, lost links, outlier
        # bursts) — crashes are excluded here because this simulator plays
        # them dynamically, round by round, through the message injector.
        meas_log = None
        if plan is not None and plan.affects_measurements:
            ms, meas_log = degrade_measurements(
                ms, plan, tracer, include_crashes=False
            )
            self._validate(ms)
        grid = Grid2D(cfg.grid_size, cfg.grid_size, ms.width, ms.height)
        prior = self.prior if self.prior is not None else UniformPrior(ms.width, ms.height)
        radio = self.radio if self.radio is not None else UnitDiskRadio(ms.radio_range)
        K = grid.n_cells

        # Local knowledge phase: each node folds anchor broadcasts and its
        # prior into a unary potential (reuses the centralized code — the
        # math is per-node local either way).
        helper = GridBPLocalizer(prior=prior, radio=radio, config=cfg)
        unknowns = ms.unknown_ids
        log_phi = helper._node_potentials(ms, grid, prior, radio, unknowns)
        agents = {
            int(u): SensorNodeAgent(int(u), log_phi[ui])
            for ui, u in enumerate(unknowns)
        }

        if ms.has_ranging:
            blur = cfg.cell_blur_fraction * grid.cell_diagonal
            conn_radio = radio if cfg.use_connectivity_in_ranging else None
            if cfg.shared_cache:
                # Same cross-trial kernel reuse as the centralized solver.
                cache = shared_registry().ranging_cache(
                    grid, ms.ranging, conn_radio, blur
                )
            else:
                cache = RangingPotentialCache(
                    grid, ms.ranging, conn_radio, blur_sigma=blur
                )
        conn_psi = None
        anchor_broadcasts = 0
        for i, j in ms.edges():
            i, j = int(i), int(j)
            if ms.anchor_mask[i] and ms.anchor_mask[j]:
                continue
            if ms.anchor_mask[i] or ms.anchor_mask[j]:
                anchor_broadcasts += 1
                continue
            if ms.has_ranging:
                psi = cache.get(ms.observed_distances[i, j])
            else:
                if conn_psi is None:
                    from scipy import sparse

                    if cfg.shared_cache:
                        shared_registry().pairwise_distances(grid)
                    conn_psi = sparse.csr_matrix(
                        connectivity_potential(grid.pairwise_center_distances(), radio)
                    )
                psi = conn_psi
            if ms.has_bearings:
                from scipy import sparse

                from repro.core.potentials import pairwise_bearing_potential

                bpsi = pairwise_bearing_potential(
                    grid,
                    ms.observed_bearings[i, j],
                    ms.observed_bearings[j, i],
                    ms.bearing_model,
                )
                combined = sparse.csr_matrix(psi.multiply(bpsi))
                agents[i].add_neighbor(j, sparse.csr_matrix(combined.T), K)
                agents[j].add_neighbor(i, combined, K)
            else:
                agents[i].add_neighbor(j, psi, K)
                agents[j].add_neighbor(i, psi, K)
        for a in agents.values():
            a.reset_memory(K)

        injector = None
        if plan is not None and plan.affects_messages:
            injector = MessageFaultInjector(plan, tracer)
            injector.resolve_outages(sorted(agents))

        stats: list[RoundStats] = []
        converged = False
        n_round = 0
        msg_bytes = K * 8
        for n_round in range(1, cfg.max_iterations + 1):
            if injector is None:
                # Fault-free fast path: byte-for-byte the original loop, so
                # the bit-identity tests against the centralized solver keep
                # their guarantee.
                outboxes = {
                    u: agent.compute_outgoing(cfg.damping)
                    for u, agent in agents.items()
                }
                max_res = 0.0
                n_msgs = 0
                for u, out in outboxes.items():
                    for other, msg in out.items():
                        prev = agents[other].inbox[u]
                        max_res = max(max_res, float(np.abs(msg - prev).max()))
                        agents[other].inbox[u] = msg
                        n_msgs += 1
                stats.append(RoundStats(n_round, n_msgs, n_msgs * msg_bytes, max_res))
                round_quiet = True
            else:
                down = injector.nodes_down(n_round)
                sent: list[tuple[int, int, np.ndarray]] = []
                for u, agent in agents.items():
                    if u in down:
                        continue  # crashed/off node computes and sends nothing
                    for other, msg in agent.compute_outgoing(cfg.damping).items():
                        sent.append((u, other, msg))
                delivered, record = injector.process_round(n_round, sent)
                max_res = 0.0
                n_msgs = 0
                for src, dst, msg in delivered:
                    prev = agents[dst].inbox[src]
                    max_res = max(max_res, float(np.abs(msg - prev).max()))
                    agents[dst].inbox[src] = msg
                    n_msgs += 1
                stats.append(
                    RoundStats(
                        n_round,
                        n_msgs,
                        n_msgs * msg_bytes,
                        max_res,
                        dropped=record.get("messages_dropped", 0),
                        corrupted=record.get("messages_corrupted", 0),
                        delayed=record.get("messages_delayed", 0),
                    )
                )
                # A residual measured on a partially delivered round is not
                # evidence of a fixed point: require a transiently quiet
                # round (no losses / corruption / late traffic) and an empty
                # delay queue before declaring convergence.
                round_quiet = (
                    injector.n_in_flight == 0
                    and not any(
                        record.get(k)
                        for k in (
                            "messages_dropped",
                            "messages_corrupted",
                            "messages_delayed",
                            "messages_arrived_late",
                        )
                    )
                )
            if tracer.enabled:
                tracer.iteration(residual=max_res, messages=n_msgs)
            if max_res < cfg.tol and round_quiet:
                converged = True
                break
        if injector is not None:
            # Close the delay-queue books before the fault log is exported:
            # messages still in flight would otherwise vanish silently.
            injector.finalize()

        estimates = np.full((ms.n_nodes, 2), np.nan)
        estimates[ms.anchor_mask] = ms.anchor_positions
        mask = ms.anchor_mask.copy()
        fallback = np.zeros(ms.n_nodes, dtype=bool)
        beliefs = {}
        for u, agent in agents.items():
            b = agent.belief()
            if not (np.isfinite(b).all() and b.sum() > 0):
                # Degenerate posterior (possible only under injection):
                # report the graceful-degradation estimate instead.
                b = np.full(K, 1.0 / K)
                estimates[u] = fallback_position(ms, u, prior, grid)
                fallback[u] = True
            else:
                estimates[u] = (
                    grid.expectation(b)
                    if cfg.estimator == "mmse"
                    else grid.map_estimate(b)
                )
            beliefs[u] = b
            mask[u] = True
        extras = {"beliefs": beliefs, "grid": grid}
        if plan is not None:
            extras["fault_log"] = {
                "messages": injector.log.to_dict() if injector is not None else None,
                "measurements": meas_log.to_dict() if meas_log is not None else None,
            }
        # Same accounting convention as GridBPLocalizer: anchor broadcasts
        # carry a position (2 float64), unknowns exchange K-vectors.
        total_msgs = anchor_broadcasts + sum(s.messages for s in stats)
        total_bytes = anchor_broadcasts * _ANCHOR_BROADCAST_BYTES + sum(
            s.bytes for s in stats
        )
        if tracer.enabled:
            tracer.annotate("method", self.name)
            tracer.annotate("converged", bool(converged))
            tracer.count("runs")
            tracer.count("bp_iterations", n_round)
            tracer.count("messages", total_msgs)
            tracer.count("bytes", total_bytes)
            n_fallback = int(fallback.sum())
            if n_fallback:
                tracer.count("fallback_nodes", n_fallback)
        result = LocalizationResult(
            estimates=estimates,
            localized_mask=mask,
            method=self.name,
            n_iterations=n_round,
            converged=converged,
            messages_sent=total_msgs,
            bytes_sent=total_bytes,
            fallback_mask=fallback,
            extras=extras,
        )
        if tracer.enabled:
            result.telemetry = tracer.snapshot()
        self._maybe_audit(result, stats, ms, agents, anchor_broadcasts, K, tracer)
        return result, stats

    def _maybe_audit(
        self, result, stats, ms, agents, anchor_broadcasts: int, K: int, tracer
    ) -> None:
        """Invariant guards (:mod:`repro.audit`) — observation-only, free
        when off.  On top of the shared result-level bundle, the simulator
        checks the per-round ledger against the result totals and every
        agent's inbox against the message floor."""
        from repro.audit.invariants import resolve_audit_mode

        mode = resolve_audit_mode(self.config.audit)
        if mode is None:
            return
        from repro.audit.invariants import (
            Auditor,
            audit_localization_result,
            check_delay_conservation,
            check_message_floor,
            check_round_accounting,
        )

        auditor = Auditor(mode, tracer=tracer, solver=self.name)
        auditor.extend(
            audit_localization_result(
                result, ms.width, ms.height, anchor_mask=ms.anchor_mask
            )
        )
        auditor.extend(
            check_round_accounting(
                result,
                stats,
                anchor_broadcasts,
                _ANCHOR_BROADCAST_BYTES,
                msg_bytes=K * 8,
            )
        )
        fault_log = (
            result.extras.get("fault_log") if isinstance(result.extras, dict) else None
        )
        if fault_log and fault_log.get("messages"):
            auditor.extend(
                check_delay_conservation(fault_log["messages"]["counters"])
            )
        if self.faults is None or not self.faults.enabled:
            # The floor is a *solver* commitment; corrupted in-transit
            # messages are renormalized by the injector and may
            # legitimately dip below it.
            inbox_msgs = [m for a in agents.values() for m in a.inbox.values()]
            auditor.extend(
                check_message_floor(inbox_msgs, _MSG_FLOOR, what="inbox message")
            )
        auditor.finish()
