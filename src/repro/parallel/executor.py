"""Seeded Monte-Carlo trial execution, serial or multiprocess.

The contract: ``run_trials(fn, n, seed)`` calls ``fn(child_seed_i)`` for
*n* statistically independent child seeds derived from one master seed
(``SeedSequence.spawn``) and returns results **in trial order**, no matter
how many workers executed them or in what order they finished.  That makes
experiment sweeps reproducible and trivially parallelizable — the same
discipline mpi4py programs use (independent per-rank streams), realized
here with :mod:`multiprocessing` since no MPI runtime is assumed.

``fn`` must be a picklable module-level callable for process pools; pass
``n_workers=1`` (or leave the default) for closures/lambdas.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
from typing import Callable, Sequence, TypeVar

from repro.obs import NULL_TRACER, NullTracer
from repro.utils.rng import RNGLike, child_seed_ints

T = TypeVar("T")

__all__ = ["run_trials", "TrialExecutor"]


def _require_picklable(fn: Callable) -> None:
    """Fail fast, and clearly, before a pool ever sees an unpicklable fn.

    ``multiprocessing`` otherwise surfaces this as a raw traceback from
    deep inside the pool machinery, long after the workers have spawned.
    """
    try:
        pickle.dumps(fn)
    except Exception as exc:
        raise TypeError(
            f"fn {fn!r} is not picklable, so it cannot be shipped to "
            "worker processes: with n_workers > 1 the trial function must "
            "be a module-level callable (not a lambda, closure, or bound "
            "local); use n_workers=1 for unpicklable functions"
        ) from exc


def run_trials(
    fn: Callable[[int], T],
    n_trials: int,
    seed: RNGLike = None,
    n_workers: int = 1,
    chunksize: int | None = None,
    tracer: NullTracer | None = None,
) -> list[T]:
    """Run ``fn(child_seed)`` for *n_trials* independent seeds.

    Parameters
    ----------
    fn:
        Trial function taking one integer seed.  Must be a picklable
        module-level callable when ``n_workers > 1`` (checked up front; a
        lambda or closure raises :class:`TypeError` with guidance instead
        of a raw :mod:`multiprocessing` traceback).
    n_trials:
        Number of trials.
    seed:
        Master seed; children are spawned from it.
    n_workers:
        1 = serial (default); > 1 = process pool of that size.
    chunksize:
        Pool chunk size (must be >= 1 when given); default balances load
        as ``ceil(n / (4·workers))``.
    tracer:
        Optional :class:`~repro.obs.Tracer`; times the batch under
        ``"run_trials"`` and counts trials.  Workers do not share it —
        aggregate worker-side traces with
        :func:`repro.obs.merge_traces` instead.

    Returns
    -------
    list
        Trial results in seed order (deterministic given *seed*).
    """
    if n_trials < 0:
        raise ValueError("n_trials must be non-negative")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if chunksize is not None and chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    tracer = tracer if tracer is not None else NULL_TRACER
    seeds = child_seed_ints(seed, n_trials)
    if n_trials == 0:
        return []
    with tracer.timer("run_trials"):
        if n_workers == 1:
            out = [fn(s) for s in seeds]
        else:
            _require_picklable(fn)
            if chunksize is None:
                chunksize = max(1, (n_trials + 4 * n_workers - 1) // (4 * n_workers))
            ctx = mp.get_context("spawn")
            with ctx.Pool(processes=n_workers) as pool:
                out = pool.map(fn, seeds, chunksize=chunksize)
    if tracer.enabled:
        tracer.count("trials", n_trials)
        tracer.annotate("n_workers", n_workers)
    return out


class TrialExecutor:
    """Reusable executor with fixed worker settings.

    Convenient when an experiment harness runs many sweeps with the same
    parallel configuration::

        ex = TrialExecutor(n_workers=4)
        results = ex.map(trial_fn, n_trials=100, seed=0)
    """

    def __init__(self, n_workers: int = 1, chunksize: int | None = None) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.n_workers = int(n_workers)
        self.chunksize = chunksize

    def map(
        self, fn: Callable[[int], T], n_trials: int, seed: RNGLike = None
    ) -> list[T]:
        return run_trials(
            fn, n_trials, seed, n_workers=self.n_workers, chunksize=self.chunksize
        )

    def map_over(
        self,
        fn: Callable[[object, int], T],
        params: Sequence,
        trials_per_param: int,
        seed: RNGLike = None,
    ) -> list[list[T]]:
        """For each parameter value, run ``trials_per_param`` trials.

        ``fn(param, child_seed)`` is called with independent seeds; each
        parameter gets its own spawned seed block, so adding parameters
        never perturbs the trials of existing ones.
        """
        blocks = child_seed_ints(seed, len(params))
        out: list[list[T]] = []
        for p, block_seed in zip(params, blocks):
            out.append(
                run_trials(
                    lambda s, _p=p: fn(_p, s),
                    trials_per_param,
                    block_seed,
                    n_workers=1,  # closures are not picklable; stay serial here
                )
                if self.n_workers == 1
                else self._map_param(fn, p, trials_per_param, block_seed)
            )
        return out

    def _map_param(self, fn, param, n_trials: int, seed: int) -> list:
        _require_picklable(fn)
        seeds = child_seed_ints(seed, n_trials)
        ctx = mp.get_context("spawn")
        with ctx.Pool(processes=self.n_workers) as pool:
            return pool.starmap(
                fn, [(param, s) for s in seeds], chunksize=self.chunksize or 1
            )
