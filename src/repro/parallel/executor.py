"""Seeded Monte-Carlo trial execution, serial or multiprocess.

The contract: ``run_trials(fn, n, seed)`` calls ``fn(child_seed_i)`` for
*n* statistically independent child seeds derived from one master seed
(``SeedSequence.spawn``) and returns results **in trial order**, no matter
how many workers executed them or in what order they finished.  That makes
experiment sweeps reproducible and trivially parallelizable — the same
discipline mpi4py programs use (independent per-rank streams), realized
here with :mod:`multiprocessing` since no MPI runtime is assumed.

``fn`` must be a picklable module-level callable for process pools; pass
``n_workers=1`` (or leave the default) for closures/lambdas.
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import pickle
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.ckpt import (
    decode_value,
    encode_value,
    resolve_checkpoint,
    seed_fingerprint,
    trap_signals,
)
from repro.core.potentials import shared_registry
from repro.obs import NULL_TRACER, NullTracer
from repro.utils.rng import RNGLike, child_seed_ints, spawn_seeds

T = TypeVar("T")

__all__ = [
    "run_trials",
    "run_trials_resilient",
    "TrialExecutor",
    "TrialExecutionError",
    "TrialFailure",
    "TrialBatchResult",
]


def pool_map_interruptible(pool, fn, iterable, chunksize=None):
    """``pool.map`` that stays responsive to ``KeyboardInterrupt``.

    A bare ``Pool.map`` blocks in an uninterruptible wait while workers
    run; Ctrl-C (or a trapped SIGTERM) then leaves orphaned worker
    processes behind.  Polling the async result with short timeouts keeps
    the main thread receptive to signals; on any interruption the caller
    must terminate/join the pool (see :func:`run_trials`).
    """
    result = pool.map_async(fn, iterable, chunksize=chunksize)
    while not result.ready():
        result.wait(0.2)
    return result.get()


def _record_cache_stats(tracer: NullTracer, before: dict) -> None:
    """Batch-level potential-cache telemetry: hit/miss deltas over the run
    plus resident bytes.  Reflects this process's registry only — pool
    workers each warm their own copy, which these counters cannot see
    (their effect still shows up as wall-clock speedup).
    """
    after = shared_registry().stats()
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    if hits:
        tracer.count("cache_hits", hits)
    if misses:
        tracer.count("cache_misses", misses)
    tracer.gauge_max("cache_bytes", after["bytes"])


class TrialExecutionError(RuntimeError):
    """A trial raised inside :func:`run_trials`.

    Carries the failing trial's index and child seed so the exact trial
    can be reproduced in isolation (``fn(trial_seed)``) — chained to the
    original exception via ``__cause__``.
    """

    def __init__(self, trial_index: int, trial_seed: int, cause: BaseException) -> None:
        self.trial_index = int(trial_index)
        self.trial_seed = int(trial_seed)
        super().__init__(
            f"trial {trial_index} (seed {trial_seed}) raised "
            f"{type(cause).__name__}: {cause}; reproduce with "
            f"fn({trial_seed}), or use run_trials_resilient for "
            "partial results instead of an abort"
        )


def _batch_fn(fn: Callable, batch_size: int | None):
    """Resolve the batched-execution protocol for *fn*.

    Returns ``fn.run_batch`` when batching was requested and *fn* supports
    it, else ``None``.  The contract: ``fn.run_batch(seeds)`` must return
    one result per seed, in order, equal to ``[fn(s) for s in seeds]`` —
    batching is an execution strategy, never a semantic change (grid-BP
    solvers satisfy this via :func:`repro.core.bnloc.localize_batch`,
    which stacks compatible trials and falls back per-trial otherwise).
    """
    if batch_size is None:
        return None
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if batch_size == 1:
        return None
    run_batch = getattr(fn, "run_batch", None)
    if run_batch is None:
        raise ValueError(
            f"batch_size={batch_size} requires fn to provide a "
            "run_batch(seeds) method returning one result per seed; "
            f"{fn!r} has none (omit batch_size to run per-trial)"
        )
    return run_batch


def _run_batch_block(args):
    """Module-level (picklable) block runner for batched ``run_trials``.

    Runs one block through ``fn.run_batch``; if the batch call fails, each
    trial reruns individually so the error is attributed to the exact
    (trial, seed) that caused it.
    """
    fn, start, seeds_block = args
    try:
        out = list(fn.run_batch(seeds_block))
        if len(out) != len(seeds_block):
            raise RuntimeError(
                f"run_batch returned {len(out)} results for "
                f"{len(seeds_block)} seeds"
            )
        return out
    except Exception:
        out = []
        for k, s in enumerate(seeds_block):
            try:
                out.append(fn(s))
            except Exception as exc:
                raise TrialExecutionError(start + k, s, exc) from exc
        return out


def _require_picklable(fn: Callable) -> None:
    """Fail fast, and clearly, before a pool ever sees an unpicklable fn.

    ``multiprocessing`` otherwise surfaces this as a raw traceback from
    deep inside the pool machinery, long after the workers have spawned.
    """
    try:
        pickle.dumps(fn)
    except Exception as exc:
        raise TypeError(
            f"fn {fn!r} is not picklable, so it cannot be shipped to "
            "worker processes: with n_workers > 1 the trial function must "
            "be a module-level callable (not a lambda, closure, or bound "
            "local); use n_workers=1 for unpicklable functions"
        ) from exc


def run_trials(
    fn: Callable[[int], T],
    n_trials: int,
    seed: RNGLike = None,
    n_workers: int = 1,
    chunksize: int | None = None,
    tracer: NullTracer | None = None,
    batch_size: int | None = None,
) -> list[T]:
    """Run ``fn(child_seed)`` for *n_trials* independent seeds.

    Parameters
    ----------
    fn:
        Trial function taking one integer seed.  Must be a picklable
        module-level callable when ``n_workers > 1`` (checked up front; a
        lambda or closure raises :class:`TypeError` with guidance instead
        of a raw :mod:`multiprocessing` traceback).
    n_trials:
        Number of trials.
    seed:
        Master seed; children are spawned from it.
    n_workers:
        1 = serial (default); > 1 = process pool of that size.
    chunksize:
        Pool chunk size (must be >= 1 when given); default balances load
        as ``ceil(n / (4·workers))``.
    tracer:
        Optional :class:`~repro.obs.Tracer`; times the batch under
        ``"run_trials"`` and counts trials.  Workers do not share it —
        aggregate worker-side traces with
        :func:`repro.obs.merge_traces` instead.
    batch_size:
        Run trials in blocks of up to this many consecutive seeds through
        ``fn.run_batch(seeds)`` (required to exist, to return one result
        per seed in order, and to equal ``[fn(s) for s in seeds]`` — the
        batched kernel backends satisfy this bit-exactly).  Per-trial
        child seeds are unchanged, so results are identical to the
        unbatched run.  If a batch call raises, its trials rerun
        individually so the failure is attributed to the exact trial.
        With ``n_workers > 1`` each pool task is one block.

    Returns
    -------
    list
        Trial results in seed order (deterministic given *seed*).
    """
    if n_trials < 0:
        raise ValueError("n_trials must be non-negative")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if chunksize is not None and chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    run_batch = _batch_fn(fn, batch_size)
    tracer = tracer if tracer is not None else NULL_TRACER
    seeds = child_seed_ints(seed, n_trials)
    if n_trials == 0:
        return []
    blocks = None
    if run_batch is not None:
        blocks = [
            (fn, start, seeds[start : start + batch_size])
            for start in range(0, n_trials, batch_size)
        ]
    cache_before = shared_registry().stats() if tracer.enabled else None
    with tracer.timer("run_trials"):
        if n_workers == 1:
            if blocks is not None:
                out = []
                for blk in blocks:
                    out.extend(_run_batch_block(blk))
            else:
                out = []
                for i, s in enumerate(seeds):
                    try:
                        out.append(fn(s))
                    except Exception as exc:
                        raise TrialExecutionError(i, s, exc) from exc
        else:
            _require_picklable(fn)
            ctx = mp.get_context("spawn")
            pool = ctx.Pool(processes=n_workers)
            try:
                if blocks is not None:
                    nested = pool_map_interruptible(
                        pool, _run_batch_block, blocks, chunksize=chunksize or 1
                    )
                    out = [r for blk in nested for r in blk]
                else:
                    if chunksize is None:
                        chunksize = max(
                            1, (n_trials + 4 * n_workers - 1) // (4 * n_workers)
                        )
                    out = pool_map_interruptible(
                        pool, fn, seeds, chunksize=chunksize
                    )
                pool.close()
                pool.join()
            except BaseException:
                # KeyboardInterrupt (possibly a trapped SIGTERM) or a
                # worker exception: kill the workers instead of orphaning
                # them behind an uninterruptible map().
                pool.terminate()
                pool.join()
                raise
    if tracer.enabled:
        tracer.count("trials", n_trials)
        tracer.annotate("n_workers", n_workers)
        if run_batch is not None:
            tracer.annotate("batch_size", batch_size)
        _record_cache_stats(tracer, cache_before)
    return out


@dataclass
class TrialFailure:
    """One trial that exhausted its retry budget.

    Everything needed to reproduce the failure offline: the trial index,
    the seed of every attempt (the first entry is the original child
    seed), and the final attempt's error with its traceback text.
    """

    trial_index: int
    attempt_seeds: list[int]
    error_type: str
    message: str
    traceback: str = ""

    @property
    def trial_seed(self) -> int:
        return self.attempt_seeds[0]

    @property
    def attempts(self) -> int:
        return len(self.attempt_seeds)

    def to_dict(self) -> dict:
        return {
            "trial_index": self.trial_index,
            "attempt_seeds": list(self.attempt_seeds),
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
        }


@dataclass
class TrialBatchResult:
    """Partial results of a resilient trial batch.

    ``results`` is in trial order with ``None`` at failed indices;
    ``failures`` holds one structured :class:`TrialFailure` per failed
    trial.  The batch never raises for individual trial failures — check
    :attr:`ok` (or ``failures``) explicitly.
    """

    results: list
    failures: list[TrialFailure] = field(default_factory=list)
    retries: int = 0

    @property
    def n_trials(self) -> int:
        return len(self.results)

    @property
    def n_ok(self) -> int:
        return self.n_trials - len(self.failures)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def failed_indices(self) -> list[int]:
        return [f.trial_index for f in self.failures]

    def successes(self) -> list:
        """Results of the successful trials only, in trial order."""
        failed = set(self.failed_indices)
        return [r for i, r in enumerate(self.results) if i not in failed]

    def report(self) -> dict:
        """JSON-safe failure report for logs and trace files."""
        return {
            "n_trials": self.n_trials,
            "n_ok": self.n_ok,
            "retries": self.retries,
            "failures": [f.to_dict() for f in self.failures],
        }

    def summary(self) -> str:
        if self.ok:
            return f"{self.n_ok}/{self.n_trials} trials ok"
        worst = ", ".join(
            f"#{f.trial_index}: {f.error_type}" for f in self.failures[:4]
        )
        more = "" if len(self.failures) <= 4 else f", +{len(self.failures) - 4} more"
        return (
            f"{self.n_ok}/{self.n_trials} trials ok "
            f"({self.retries} retries; failed {worst}{more})"
        )


def _attempt_seed_table(seed: RNGLike, n_trials: int, max_retries: int) -> list[list[int]]:
    """Per-trial attempt seeds.  Attempt 0 equals the seed ``run_trials``
    would use (so a failure-free resilient batch reproduces ``run_trials``
    exactly); retries draw fresh independent child streams."""
    table: list[list[int]] = []
    for ss in spawn_seeds(seed, n_trials):
        first = int(ss.generate_state(1, dtype=np.uint64)[0] & 0x7FFF_FFFF_FFFF_FFFF)
        retries = [
            int(c.generate_state(1, dtype=np.uint64)[0] & 0x7FFF_FFFF_FFFF_FFFF)
            for c in ss.spawn(max_retries)
        ]
        table.append([first, *retries])
    return table


def _subprocess_trial(fn: Callable, seed: int, conn) -> None:
    """Entry point of one spawned trial process: run, ship the outcome
    back over the pipe, never let an exception escape unreported."""
    try:
        result = fn(seed)
        payload = ("ok", result)
    except BaseException as exc:  # noqa: BLE001 - full isolation by design
        payload = ("err", type(exc).__name__, str(exc), traceback.format_exc())
    try:
        conn.send(payload)
    except Exception:
        # Unpicklable result/exception: report what we can.
        try:
            conn.send(("err", "PicklingError",
                       "trial outcome could not be pickled", ""))
        except Exception:
            pass
    finally:
        conn.close()


@dataclass
class _Attempt:
    """Bookkeeping of one in-flight or queued trial attempt."""

    trial_index: int
    attempt: int
    ready_at: float = 0.0
    process: object = None
    conn: object = None
    deadline: float | None = None


def run_trials_resilient(
    fn: Callable[[int], T],
    n_trials: int,
    seed: RNGLike = None,
    n_workers: int = 1,
    max_retries: int = 2,
    backoff_base: float = 0.05,
    backoff_factor: float = 2.0,
    backoff_jitter: float = 0.1,
    timeout: float | None = None,
    tracer: NullTracer | None = None,
    checkpoint=None,
    batch_size: int | None = None,
) -> TrialBatchResult:
    """Fault-tolerant variant of :func:`run_trials`.

    A raising, crashing (e.g. OOM-killed), or timed-out trial no longer
    aborts the batch: it is retried up to *max_retries* times on a fresh
    independent child seed with exponential backoff, and if it still
    fails the batch completes anyway, returning the successes plus a
    structured failure report (:class:`TrialBatchResult`).

    Backoff delays carry seeded, deterministic jitter (*backoff_jitter*
    sets the fractional spread; 0 disables): each retry's delay is
    stretched by a factor in ``[1, 1 + backoff_jitter)`` derived from that
    retry's child seed, so trials that failed together — a correlated
    stall on a shared worker pool — do not retry in a synchronized wave,
    yet identical runs sleep identically.  The jitter stream is
    namespaced away from the trial seed streams, so attempt seeds are
    exactly those of a jitter-free run.

    Execution model
    ---------------
    * ``n_workers == 1`` and ``timeout is None``: trials run in-process
      (closures allowed), exceptions are caught and retried.
    * otherwise: every attempt runs in its own spawned process (at most
      *n_workers* concurrently), so a killed or hung worker is detected —
      nonzero exit status and wall-clock *timeout* respectively — and
      only that trial is affected.  *fn* must then be picklable, as in
      :func:`run_trials`.

    A failure-free batch returns exactly the results ``run_trials`` would
    have produced: attempt-0 seeds are identical, and retry seeds are
    fresh spawned streams that cannot collide with them.

    *batch_size* enables the ``fn.run_batch`` block protocol of
    :func:`run_trials` on the in-process path: pending (trial, attempt)
    entries run in waves of up to *batch_size*, and a retried trial
    re-enters its wave with **its retry seed**, never the wave's original
    seed vector — so retry streams stay exactly those of the unbatched
    resilient run.  A failing wave falls back to per-trial execution for
    precise failure attribution.  On the process-isolated path
    (``n_workers > 1`` or a *timeout*) batching is ignored: each attempt
    already owns a process, which is the isolation the caller asked for.

    Checkpointing
    -------------
    With ``checkpoint=<ledger path>`` (or an open
    :class:`~repro.ckpt.Checkpoint`), every successful trial is durably
    appended to a write-ahead ledger the moment it completes; restarting
    the identical call replays the ledger, skips finished trials, and
    runs only the missing ones on the same attempt seeds — bit-identical
    to an uninterrupted batch.  Trial results must be built from plain
    data (scalars, lists, tuples, dicts, NumPy arrays — see
    :mod:`repro.ckpt.snapshot`), the master seed must be reproducible
    (int or ``SeedSequence``), and only successes are checkpointed:
    previously failed trials get a fresh set of attempts on resume.
    SIGTERM is trapped for the duration so the ledger closes flushed and
    worker processes are torn down rather than orphaned.

    Returns
    -------
    TrialBatchResult
        ``results`` in trial order (``None`` where all attempts failed),
        plus per-failure diagnostics and the total retry count.
    """
    if n_trials < 0:
        raise ValueError("n_trials must be non-negative")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    if backoff_base < 0:
        raise ValueError("backoff_base must be non-negative")
    if backoff_factor < 1.0:
        raise ValueError("backoff_factor must be >= 1")
    if backoff_jitter < 0:
        raise ValueError("backoff_jitter must be non-negative")
    if timeout is not None and timeout <= 0:
        raise ValueError("timeout must be positive (or None)")
    tracer = tracer if tracer is not None else NULL_TRACER
    if n_trials == 0:
        return TrialBatchResult(results=[])

    ck = owned = None
    if checkpoint is not None:
        ck, owned = resolve_checkpoint(
            checkpoint,
            lambda: {
                "kind": "trials",
                "n_trials": int(n_trials),
                "seed": seed_fingerprint(seed),
                "total_cells": int(n_trials),
            },
        )

    seeds = _attempt_seed_table(seed, n_trials, max_retries)
    use_processes = n_workers > 1 or timeout is not None
    if use_processes:
        _require_picklable(fn)
        batch_size = None  # process-per-attempt isolation supersedes batching
    run_batch = _batch_fn(fn, batch_size)

    done: dict[int, object] = {}
    record = None
    if ck is not None:
        for i in range(n_trials):
            payload = ck.get(f"trial:{i}")
            if payload is not None:
                done[i] = decode_value(payload["result"])

        def record(i: int, s: int, result) -> None:
            ck.record(
                f"trial:{i}", {"seed": int(s), "result": encode_value(result)}
            )

    cache_before = shared_registry().stats() if tracer.enabled else None
    trap = trap_signals() if ck is not None else contextlib.nullcontext()
    try:
        with tracer.timer("run_trials_resilient"), trap:
            if use_processes:
                batch = _run_resilient_processes(
                    fn, seeds, n_workers, backoff_base, backoff_factor, timeout,
                    jitter=backoff_jitter, done=done, record=record,
                )
            elif run_batch is not None:
                batch = _run_resilient_serial_batched(
                    fn, seeds, batch_size, backoff_base, backoff_factor,
                    jitter=backoff_jitter, done=done, record=record,
                )
            else:
                batch = _run_resilient_serial(
                    fn, seeds, backoff_base, backoff_factor,
                    jitter=backoff_jitter, done=done, record=record,
                )
    finally:
        if ck is not None:
            ck.emit_counters(tracer)
            if owned:
                ck.close()
    if tracer.enabled:
        tracer.count("trials", n_trials)
        tracer.count("trials_failed", len(batch.failures))
        tracer.count("trial_retries", batch.retries)
        tracer.annotate("n_workers", n_workers)
        _record_cache_stats(tracer, cache_before)
    return batch


#: namespace of the backoff-jitter stream — keeps it disjoint from every
#: trial/retry seed stream no matter what master seed the caller picked
_BACKOFF_JITTER_KEY = 0xB0FF_1E77


def _backoff(
    base: float,
    factor: float,
    attempt: int,
    jitter: float = 0.0,
    token: int | None = None,
) -> float:
    """Exponential backoff with seeded, deterministic jitter.

    The jitter multiplier lies in ``[1, 1 + jitter)`` and is a pure
    function of *token* — callers pass the retry attempt's child seed, so
    the wave of trials retrying after a correlated failure (a shared pool
    stall, a node flap) fans out over distinct delays instead of
    stampeding back in lockstep, while the exact same run replays the
    exact same sleeps.  The trial seed streams themselves are untouched:
    the jitter draw comes from a fresh :class:`~numpy.random.SeedSequence`
    namespaced under :data:`_BACKOFF_JITTER_KEY`, never from the streams
    that produce attempt seeds.
    """
    delay = base * factor**attempt if base > 0 else 0.0
    if delay > 0.0 and jitter > 0.0 and token is not None:
        word = np.random.SeedSequence(
            [_BACKOFF_JITTER_KEY, int(token)]
        ).generate_state(1, dtype=np.uint64)[0]
        delay *= 1.0 + jitter * (float(word) / 2.0**64)
    return delay


def _run_resilient_serial(
    fn,
    seeds: list[list[int]],
    backoff_base: float,
    backoff_factor: float,
    jitter: float = 0.0,
    done: dict | None = None,
    record=None,
) -> TrialBatchResult:
    results: list = [None] * len(seeds)
    failures: list[TrialFailure] = []
    retries = 0
    done = done or {}
    for i, attempt_seeds in enumerate(seeds):
        if i in done:
            results[i] = done[i]
            continue
        last: tuple[str, str, str] | None = None
        for attempt, s in enumerate(attempt_seeds):
            if attempt > 0:
                retries += 1
                time.sleep(
                    _backoff(backoff_base, backoff_factor, attempt - 1, jitter, s)
                )
            try:
                results[i] = fn(s)
                last = None
            except Exception as exc:
                last = (type(exc).__name__, str(exc), traceback.format_exc())
                continue
            # Outside the try: a ledger failure (or the CheckpointAbort
            # test hook) must abort the batch, not look like a trial error.
            if record is not None:
                record(i, s, results[i])
            break
        if last is not None:
            failures.append(
                TrialFailure(i, list(attempt_seeds), last[0], last[1], last[2])
            )
    return TrialBatchResult(results=results, failures=failures, retries=retries)


def _run_resilient_serial_batched(
    fn,
    seeds: list[list[int]],
    batch_size: int,
    backoff_base: float,
    backoff_factor: float,
    jitter: float = 0.0,
    done: dict | None = None,
    record=None,
) -> TrialBatchResult:
    """In-process batched execution with retry waves.

    Pending ``(trial, attempt)`` entries run in waves of up to
    *batch_size* through ``fn.run_batch``.  Each entry contributes **its
    own attempt seed** — a trial retrying after a failure re-enters a
    later wave on its retry seed next to other trials' attempt-0 seeds,
    so every trial consumes exactly the seed stream the unbatched
    resilient path would have given it.  A wave whose batch call fails
    falls back to per-trial execution, which both attributes the error to
    the precise trial and (fn being deterministic) reproduces the results
    the batch would have returned for the healthy trials.
    """
    n = len(seeds)
    results: list = [None] * n
    failed: set[int] = set()
    errors: dict[int, tuple[str, str, str]] = {}
    retries = 0
    done = done or {}
    for i, r in done.items():
        results[i] = r

    pending: deque[tuple[int, int]] = deque(
        (i, 0) for i in range(n) if i not in done
    )
    while pending:
        wave = [pending.popleft() for _ in range(min(batch_size, len(pending)))]
        wave_seeds = [seeds[i][att] for i, att in wave]
        delay = 0.0
        for i, att in wave:
            if att > 0:
                retries += 1
                delay = max(
                    delay,
                    _backoff(
                        backoff_base, backoff_factor, att - 1, jitter, seeds[i][att]
                    ),
                )
        if delay > 0:
            time.sleep(delay)
        block = None
        try:
            out = list(fn.run_batch(wave_seeds))
            if len(out) == len(wave_seeds):
                block = out
        except Exception:
            block = None
        if block is not None:
            for (i, _att), s, r in zip(wave, wave_seeds, block):
                results[i] = r
                errors.pop(i, None)
                # Outside the try above: a ledger failure (or the
                # CheckpointAbort test hook) must abort the batch, not
                # masquerade as a trial error.
                if record is not None:
                    record(i, s, r)
            continue
        for (i, att), s in zip(wave, wave_seeds):
            try:
                r = fn(s)
            except Exception as exc:
                errors[i] = (type(exc).__name__, str(exc), traceback.format_exc())
                if att + 1 < len(seeds[i]):
                    pending.append((i, att + 1))
                else:
                    failed.add(i)
                continue
            results[i] = r
            errors.pop(i, None)
            if record is not None:
                record(i, s, r)
    failures = [
        TrialFailure(i, list(seeds[i]), *errors[i]) for i in sorted(failed)
    ]
    return TrialBatchResult(results=results, failures=failures, retries=retries)


def _run_resilient_processes(
    fn,
    seeds: list[list[int]],
    n_workers: int,
    backoff_base: float,
    backoff_factor: float,
    timeout: float | None,
    jitter: float = 0.0,
    done: dict | None = None,
    record=None,
) -> TrialBatchResult:
    """Process-per-attempt execution: crashes and hangs are contained.

    Unlike a shared pool, a killed worker here takes down exactly one
    attempt (detected by its exit status) and a hung trial is terminated
    at its deadline — the rest of the batch is untouched.
    """
    ctx = mp.get_context("spawn")
    n = len(seeds)
    results: list = [None] * n
    errors: dict[int, tuple[str, str, str]] = {}
    failed: set[int] = set()
    retries = 0
    done = done or {}
    for i, r in done.items():
        results[i] = r

    queue: deque[_Attempt] = deque(
        _Attempt(trial_index=i, attempt=0) for i in range(n) if i not in done
    )
    running: list[_Attempt] = []

    def launch(item: _Attempt) -> None:
        parent, child = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_subprocess_trial,
            args=(fn, seeds[item.trial_index][item.attempt], child),
            daemon=True,
        )
        proc.start()
        child.close()
        item.process, item.conn = proc, parent
        item.deadline = (time.monotonic() + timeout) if timeout else None
        running.append(item)

    def finish(item: _Attempt, outcome: tuple | None, crashed: str | None) -> None:
        nonlocal retries
        i = item.trial_index
        if outcome is not None and outcome[0] == "ok":
            results[i] = outcome[1]
            errors.pop(i, None)
            if record is not None:
                record(i, seeds[i][item.attempt], outcome[1])
            return
        if outcome is not None:
            errors[i] = (outcome[1], outcome[2], outcome[3])
        else:
            errors[i] = (
                "WorkerCrash" if crashed == "crash" else "TrialTimeout",
                (
                    f"worker exited with code {item.process.exitcode}"
                    if crashed == "crash"
                    else f"trial exceeded {timeout}s wall-clock timeout"
                ),
                "",
            )
        if item.attempt + 1 < len(seeds[i]):
            retries += 1
            queue.append(
                _Attempt(
                    trial_index=i,
                    attempt=item.attempt + 1,
                    ready_at=time.monotonic()
                    + _backoff(
                        backoff_base,
                        backoff_factor,
                        item.attempt,
                        jitter,
                        seeds[i][item.attempt + 1],
                    ),
                )
            )
        else:
            failed.add(i)

    try:
        while queue or running:
            now = time.monotonic()
            while queue and len(running) < n_workers:
                # Launch the first queued attempt whose backoff elapsed.
                ready = next((a for a in queue if a.ready_at <= now), None)
                if ready is None:
                    break
                queue.remove(ready)
                launch(ready)
            progressed = False
            for item in list(running):
                outcome = None
                crashed = None
                if item.conn.poll():
                    try:
                        outcome = item.conn.recv()
                    except EOFError:
                        crashed = "crash"
                elif not item.process.is_alive():
                    crashed = "crash"
                elif item.deadline is not None and now > item.deadline:
                    item.process.terminate()
                    crashed = "timeout"
                else:
                    continue
                progressed = True
                running.remove(item)
                item.process.join()
                item.conn.close()
                finish(item, outcome, crashed)
            if not progressed:
                time.sleep(0.005)
    finally:
        for item in running:
            item.process.terminate()
            item.process.join()
            item.conn.close()

    failures = [
        TrialFailure(i, list(seeds[i]), *errors[i]) for i in sorted(failed)
    ]
    return TrialBatchResult(results=results, failures=failures, retries=retries)


class TrialExecutor:
    """Reusable executor with fixed worker settings.

    Convenient when an experiment harness runs many sweeps with the same
    parallel configuration::

        ex = TrialExecutor(n_workers=4)
        results = ex.map(trial_fn, n_trials=100, seed=0)
    """

    def __init__(
        self,
        n_workers: int = 1,
        chunksize: int | None = None,
        batch_size: int | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.n_workers = int(n_workers)
        self.chunksize = chunksize
        self.batch_size = batch_size

    def map(
        self, fn: Callable[[int], T], n_trials: int, seed: RNGLike = None
    ) -> list[T]:
        return run_trials(
            fn,
            n_trials,
            seed,
            n_workers=self.n_workers,
            chunksize=self.chunksize,
            batch_size=self.batch_size,
        )

    def map_resilient(
        self,
        fn: Callable[[int], T],
        n_trials: int,
        seed: RNGLike = None,
        max_retries: int = 2,
        timeout: float | None = None,
    ) -> TrialBatchResult:
        """Fault-tolerant :meth:`map`: see :func:`run_trials_resilient`."""
        return run_trials_resilient(
            fn,
            n_trials,
            seed,
            n_workers=self.n_workers,
            max_retries=max_retries,
            timeout=timeout,
            batch_size=self.batch_size,
        )

    def map_over(
        self,
        fn: Callable[[object, int], T],
        params: Sequence,
        trials_per_param: int,
        seed: RNGLike = None,
    ) -> list[list[T]]:
        """For each parameter value, run ``trials_per_param`` trials.

        ``fn(param, child_seed)`` is called with independent seeds; each
        parameter gets its own spawned seed block, so adding parameters
        never perturbs the trials of existing ones.
        """
        blocks = child_seed_ints(seed, len(params))
        out: list[list[T]] = []
        for p, block_seed in zip(params, blocks):
            out.append(
                run_trials(
                    lambda s, _p=p: fn(_p, s),
                    trials_per_param,
                    block_seed,
                    n_workers=1,  # closures are not picklable; stay serial here
                )
                if self.n_workers == 1
                else self._map_param(fn, p, trials_per_param, block_seed)
            )
        return out

    def _map_param(self, fn, param, n_trials: int, seed: int) -> list:
        _require_picklable(fn)
        seeds = child_seed_ints(seed, n_trials)
        ctx = mp.get_context("spawn")
        with ctx.Pool(processes=self.n_workers) as pool:
            return pool.starmap(
                fn, [(param, s) for s in seeds], chunksize=self.chunksize or 1
            )
