"""Seeded Monte-Carlo trial execution, serial or multiprocess.

The contract: ``run_trials(fn, n, seed)`` calls ``fn(child_seed_i)`` for
*n* statistically independent child seeds derived from one master seed
(``SeedSequence.spawn``) and returns results **in trial order**, no matter
how many workers executed them or in what order they finished.  That makes
experiment sweeps reproducible and trivially parallelizable — the same
discipline mpi4py programs use (independent per-rank streams), realized
here with :mod:`multiprocessing` since no MPI runtime is assumed.

``fn`` must be a picklable module-level callable for process pools; pass
``n_workers=1`` (or leave the default) for closures/lambdas.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Callable, Sequence, TypeVar

from repro.utils.rng import RNGLike, child_seed_ints

T = TypeVar("T")

__all__ = ["run_trials", "TrialExecutor"]


def run_trials(
    fn: Callable[[int], T],
    n_trials: int,
    seed: RNGLike = None,
    n_workers: int = 1,
    chunksize: int | None = None,
) -> list[T]:
    """Run ``fn(child_seed)`` for *n_trials* independent seeds.

    Parameters
    ----------
    fn:
        Trial function taking one integer seed.
    n_trials:
        Number of trials.
    seed:
        Master seed; children are spawned from it.
    n_workers:
        1 = serial (default); > 1 = process pool of that size.
    chunksize:
        Pool chunk size; default balances load as ``ceil(n / (4·workers))``.

    Returns
    -------
    list
        Trial results in seed order (deterministic given *seed*).
    """
    if n_trials < 0:
        raise ValueError("n_trials must be non-negative")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    seeds = child_seed_ints(seed, n_trials)
    if n_trials == 0:
        return []
    if n_workers == 1:
        return [fn(s) for s in seeds]
    if chunksize is None:
        chunksize = max(1, (n_trials + 4 * n_workers - 1) // (4 * n_workers))
    ctx = mp.get_context("spawn")
    with ctx.Pool(processes=n_workers) as pool:
        return pool.map(fn, seeds, chunksize=chunksize)


class TrialExecutor:
    """Reusable executor with fixed worker settings.

    Convenient when an experiment harness runs many sweeps with the same
    parallel configuration::

        ex = TrialExecutor(n_workers=4)
        results = ex.map(trial_fn, n_trials=100, seed=0)
    """

    def __init__(self, n_workers: int = 1, chunksize: int | None = None) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        self.chunksize = chunksize

    def map(
        self, fn: Callable[[int], T], n_trials: int, seed: RNGLike = None
    ) -> list[T]:
        return run_trials(
            fn, n_trials, seed, n_workers=self.n_workers, chunksize=self.chunksize
        )

    def map_over(
        self,
        fn: Callable[[object, int], T],
        params: Sequence,
        trials_per_param: int,
        seed: RNGLike = None,
    ) -> list[list[T]]:
        """For each parameter value, run ``trials_per_param`` trials.

        ``fn(param, child_seed)`` is called with independent seeds; each
        parameter gets its own spawned seed block, so adding parameters
        never perturbs the trials of existing ones.
        """
        blocks = child_seed_ints(seed, len(params))
        out: list[list[T]] = []
        for p, block_seed in zip(params, blocks):
            out.append(
                run_trials(
                    lambda s, _p=p: fn(_p, s),
                    trials_per_param,
                    block_seed,
                    n_workers=1,  # closures are not picklable; stay serial here
                )
                if self.n_workers == 1
                else self._map_param(fn, p, trials_per_param, block_seed)
            )
        return out

    def _map_param(self, fn, param, n_trials: int, seed: int) -> list:
        seeds = child_seed_ints(seed, n_trials)
        ctx = mp.get_context("spawn")
        with ctx.Pool(processes=self.n_workers) as pool:
            return pool.starmap(
                fn, [(param, s) for s in seeds], chunksize=self.chunksize or 1
            )
