"""Parallel and distributed-execution substrate.

* :mod:`repro.parallel.executor` — the Monte-Carlo trial runner: maps a
  trial function over independent child seeds, serially or on a process
  pool, with identical results either way (the mpi4py-style "independent
  streams per worker" discipline from the HPC guides).
* :mod:`repro.parallel.messaging` — a synchronous-round message-passing
  simulator of the *distributed* BP deployment: per-node mailboxes, real
  counted messages/bytes, and bit-identical beliefs to the centralized
  solver (tested).
"""

from repro.parallel.executor import TrialExecutor, run_trials
from repro.parallel.messaging import DistributedBPSimulator, RoundStats

__all__ = ["TrialExecutor", "run_trials", "DistributedBPSimulator", "RoundStats"]
