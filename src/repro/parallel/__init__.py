"""Parallel and distributed-execution substrate.

* :mod:`repro.parallel.executor` — the Monte-Carlo trial runner: maps a
  trial function over independent child seeds, serially or on a process
  pool, with identical results either way (the mpi4py-style "independent
  streams per worker" discipline from the HPC guides).
* :mod:`repro.parallel.messaging` — a synchronous-round message-passing
  simulator of the *distributed* BP deployment: per-node mailboxes, real
  counted messages/bytes, and bit-identical beliefs to the centralized
  solver (tested).  Accepts a :class:`~repro.faults.FaultPlan` for
  robustness experiments.

The executor comes in two flavors: :func:`run_trials` (fail-fast, raises
:class:`TrialExecutionError` with the failing trial's index and seed) and
:func:`run_trials_resilient` (retries with backoff on fresh seeds, detects
crashed/hung workers, and returns partial results plus a structured
failure report instead of dying).
"""

from repro.parallel.executor import (
    TrialBatchResult,
    TrialExecutionError,
    TrialExecutor,
    TrialFailure,
    run_trials,
    run_trials_resilient,
)
from repro.parallel.messaging import DistributedBPSimulator, RoundStats

__all__ = [
    "TrialExecutor",
    "TrialExecutionError",
    "TrialFailure",
    "TrialBatchResult",
    "run_trials",
    "run_trials_resilient",
    "DistributedBPSimulator",
    "RoundStats",
]
