"""Plain-text visualization.

No plotting library is assumed, so the visual tools render to monospace
text: a field map of the network (anchors, nodes, estimates, links), a
belief heat map over the grid, and an error summary sparkline.  Meant for
examples, debugging sessions, and CLI output — each function returns a
string.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import LocalizationResult
from repro.network.topology import WSNetwork

__all__ = ["render_network", "render_belief", "render_error_bars"]

_SHADES = " .:-=+*#%@"


def render_network(
    network: WSNetwork,
    result: LocalizationResult | None = None,
    cols: int = 60,
    rows: int = 24,
) -> str:
    """ASCII map of the field.

    Legend: ``A`` anchor, ``o`` node true position, ``x`` estimate,
    ``8`` estimate on top of its true cell (good), ``?`` unlocalized.
    When both a node and an anchor share a character cell the anchor wins.
    """
    if cols < 10 or rows < 5:
        raise ValueError("canvas too small (min 10×5)")
    canvas = [[" "] * cols for _ in range(rows)]

    def cell(p) -> tuple[int, int] | None:
        cx = int(p[0] / network.width * (cols - 1))
        cy = int(p[1] / network.height * (rows - 1))
        if not (0 <= cx < cols and 0 <= cy < rows):
            return None
        return rows - 1 - cy, cx  # y grows upward on screen

    # Estimates first, truths next, anchors last (priority order).
    if result is not None:
        for u in np.flatnonzero(~network.anchor_mask):
            if not result.localized_mask[u]:
                continue
            pos = cell(result.estimates[u])
            if pos:
                canvas[pos[0]][pos[1]] = "x"
    for u in np.flatnonzero(~network.anchor_mask):
        pos = cell(network.positions[u])
        if pos is None:
            continue
        if result is not None and not result.localized_mask[u]:
            canvas[pos[0]][pos[1]] = "?"
        elif canvas[pos[0]][pos[1]] == "x":
            canvas[pos[0]][pos[1]] = "8"
        else:
            canvas[pos[0]][pos[1]] = "o"
    for a in network.anchor_ids:
        pos = cell(network.positions[int(a)])
        if pos:
            canvas[pos[0]][pos[1]] = "A"

    border = "+" + "-" * cols + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in canvas)
    legend = "A=anchor  o=node  x=estimate  8=estimate-on-node  ?=unlocalized"
    return f"{border}\n{body}\n{border}\n{legend}"


def render_belief(
    grid,
    belief: np.ndarray,
    true_position: np.ndarray | None = None,
) -> str:
    """ASCII heat map of one node's belief over the grid.

    Shades scale with the belief mass per cell; ``T`` marks the true
    position's cell when given.
    """
    b = np.asarray(belief, dtype=np.float64)
    if b.shape != (grid.n_cells,):
        raise ValueError(f"belief must have shape ({grid.n_cells},)")
    if b.max() <= 0:
        raise ValueError("belief has no mass")
    scaled = b / b.max()
    chars = [
        _SHADES[min(int(v * (len(_SHADES) - 1) + 0.5), len(_SHADES) - 1)]
        for v in scaled
    ]
    rows = []
    for r in range(grid.ny - 1, -1, -1):  # y grows upward
        rows.append("".join(chars[r * grid.nx : (r + 1) * grid.nx]))
    if true_position is not None:
        k = int(grid.cell_of(np.asarray(true_position, dtype=np.float64))[0])
        r, c = divmod(k, grid.nx)
        display_row = grid.ny - 1 - r
        line = list(rows[display_row])
        line[c] = "T"
        rows[display_row] = "".join(line)
    border = "+" + "-" * grid.nx + "+"
    return border + "\n" + "\n".join("|" + r + "|" for r in rows) + "\n" + border


def render_error_bars(
    labels: list[str],
    values: list[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per labeled value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return ""
    if any(v < 0 or not np.isfinite(v) for v in values):
        raise ValueError("values must be finite and non-negative")
    peak = max(values) or 1.0
    label_w = max(len(s) for s in labels)
    lines = []
    for label, v in zip(labels, values):
        bar = "#" * max(int(v / peak * width + 0.5), 1 if v > 0 else 0)
        lines.append(f"{label.ljust(label_w)} |{bar} {v:.4g}{unit}")
    return "\n".join(lines)
