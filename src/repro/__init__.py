"""repro — Cooperative Localization with Pre-Knowledge Using Bayesian
Networks for Wireless Sensor Networks.

A from-scratch reproduction of Lo, Wu & Chung (ICPP 2007): sensor nodes
infer posterior distributions over their positions by belief propagation
on a Bayesian network built over the radio-connectivity graph, seeded with
*pre-knowledge* priors (deployment records, region knowledge, motion
models).  The package also contains the full simulation substrate (WSN
deployment, radio, and ranging models), a discrete Bayesian-network
inference engine, the classic baselines the method is compared against,
mobility/tracking support, a distributed-execution simulator with message
accounting, and the experiment harness that regenerates every evaluation
table and figure (see DESIGN.md and EXPERIMENTS.md).

Quickstart::

    from repro import (
        NetworkConfig, generate_network, GaussianRanging,
        CooperativeLocalizer,
    )

    net = generate_network(NetworkConfig(n_nodes=100, anchor_ratio=0.1), rng=0)
    loc = CooperativeLocalizer(method="grid-bp")
    result, errors = loc.evaluate(net, GaussianRanging(0.02), rng=1)
"""

from repro.network import (
    NetworkConfig,
    WSNetwork,
    generate_network,
    UniformDeployment,
    GridDeployment,
    GaussianClusterDeployment,
    CShapeDeployment,
    UnitDiskRadio,
    QuasiUnitDiskRadio,
    LogNormalShadowingRadio,
    IrregularRadio,
)
from repro.measurement import (
    MeasurementSet,
    observe,
    GaussianRanging,
    ProportionalGaussianRanging,
    TOARanging,
    RSSIRanging,
    ConnectivityOnly,
    PathLossModel,
    NLOSRanging,
    RobustRanging,
    BearingModel,
)
from repro.core import (
    CooperativeLocalizer,
    MultiResolutionLocalizer,
    refine_estimates,
    GridBPLocalizer,
    GridBPConfig,
    NBPLocalizer,
    NBPConfig,
    Grid2D,
    LocalizationResult,
    Localizer,
)
from repro.priors import (
    PositionPrior,
    GridBeliefPrior,
    UniformPrior,
    GaussianPrior,
    MixturePrior,
    DeploymentPrior,
    PerNodePrior,
    RegionPrior,
    combine,
)
from repro.baselines import (
    CentroidLocalizer,
    WeightedCentroidLocalizer,
    DVHopLocalizer,
    MDSMAPLocalizer,
    MultilaterationLocalizer,
    MLELocalizer,
)
from repro.faults import FaultPlan, NodeOutage
from repro.metrics import summarize_errors, cooperative_crlb, empirical_cdf
from repro.obs import NullTracer, Tracer, format_trace_table, merge_traces, trace_summary

__version__ = "1.0.0"

__all__ = [
    "NetworkConfig",
    "WSNetwork",
    "generate_network",
    "UniformDeployment",
    "GridDeployment",
    "GaussianClusterDeployment",
    "CShapeDeployment",
    "UnitDiskRadio",
    "QuasiUnitDiskRadio",
    "LogNormalShadowingRadio",
    "IrregularRadio",
    "MeasurementSet",
    "observe",
    "GaussianRanging",
    "ProportionalGaussianRanging",
    "TOARanging",
    "RSSIRanging",
    "ConnectivityOnly",
    "PathLossModel",
    "NLOSRanging",
    "RobustRanging",
    "BearingModel",
    "CooperativeLocalizer",
    "MultiResolutionLocalizer",
    "refine_estimates",
    "GridBPLocalizer",
    "GridBPConfig",
    "NBPLocalizer",
    "NBPConfig",
    "Grid2D",
    "LocalizationResult",
    "Localizer",
    "PositionPrior",
    "GridBeliefPrior",
    "UniformPrior",
    "GaussianPrior",
    "MixturePrior",
    "DeploymentPrior",
    "PerNodePrior",
    "RegionPrior",
    "combine",
    "CentroidLocalizer",
    "WeightedCentroidLocalizer",
    "DVHopLocalizer",
    "MDSMAPLocalizer",
    "MultilaterationLocalizer",
    "MLELocalizer",
    "FaultPlan",
    "NodeOutage",
    "summarize_errors",
    "cooperative_crlb",
    "empirical_cdf",
    "Tracer",
    "NullTracer",
    "format_trace_table",
    "trace_summary",
    "merge_traces",
    "__version__",
]
