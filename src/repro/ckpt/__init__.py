"""Durable checkpoint/resume runtime for sweeps and trial batches.

The experiment entry points (:func:`repro.parallel.run_trials_resilient`,
:func:`repro.experiments.evaluate_methods` /
``evaluate_methods_parallel``, :func:`repro.experiments.run_sweep`) accept
``checkpoint=<path>``: every completed trial is appended to a CRC-framed,
fsync'd JSONL write-ahead ledger, and restarting the same call replays
the ledger, skips finished cells, and continues on the preserved
child-seed streams — so a run killed anywhere (``kill -9`` included)
resumes bit-identical to one that never died.  ``repro resume <ledger>``
reports progress and continues CLI runs; the ``ckpt-resume-vs-
uninterrupted`` case of :mod:`repro.audit` asserts the bit tier.
"""

from repro.ckpt.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerContents,
    LedgerError,
    LedgerWriter,
    read_ledger,
)
from repro.ckpt.resume import (
    Checkpoint,
    CheckpointAbort,
    CheckpointMismatch,
    CheckpointScope,
    LedgerProgress,
    format_progress,
    ledger_progress,
    resolve_checkpoint,
    seed_fingerprint,
    trap_signals,
)
from repro.ckpt.snapshot import decode_value, encode_value

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "LedgerContents",
    "LedgerError",
    "LedgerWriter",
    "read_ledger",
    "Checkpoint",
    "CheckpointAbort",
    "CheckpointMismatch",
    "CheckpointScope",
    "LedgerProgress",
    "format_progress",
    "ledger_progress",
    "resolve_checkpoint",
    "seed_fingerprint",
    "trap_signals",
    "encode_value",
    "decode_value",
]
