"""Bit-exact JSON codec for checkpointed trial payloads.

The resume guarantee is *bit-identity*: a trial replayed from the ledger
must be indistinguishable from one that just ran.  Plain ``json`` almost
delivers that for Python scalars (``repr``-based floats round-trip
float64 exactly), but trial results also carry tuples, NumPy arrays and
scalars, and :class:`~repro.metrics.error.ErrorSummary` dataclasses.
This codec tags those so decoding restores the exact type and bytes:

* NumPy arrays are stored as base64 of their raw buffer plus dtype and
  shape — byte-exact, including NaN payloads, and far more compact than
  digit lists.
* Tuples, non-string-keyed dicts, and ``ErrorSummary`` get explicit
  ``__repro__`` tags.
* Anything else raises :class:`TypeError` with guidance (return plain
  data from checkpointed trial functions).
"""

from __future__ import annotations

import base64
import dataclasses

import numpy as np

from repro.metrics.error import ErrorSummary

__all__ = ["encode_value", "decode_value"]

_TAG = "__repro__"

_SCALARS = (bool, int, float, str, type(None))


def encode_value(value):
    """JSON-safe, type- and bit-preserving encoding of *value*."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        return {_TAG: "npscalar", "dtype": str(value.dtype), "value": value.item()}
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        return {
            _TAG: "ndarray",
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "b64": base64.b64encode(arr.tobytes()).decode("ascii"),
        }
    if isinstance(value, ErrorSummary):
        return {_TAG: "error_summary", **dataclasses.asdict(value)}
    if isinstance(value, tuple):
        return {_TAG: "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value) and _TAG not in value:
            return {k: encode_value(v) for k, v in value.items()}
        return {
            _TAG: "dict",
            "items": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    raise TypeError(
        f"cannot checkpoint a {type(value).__name__}: trial results must be "
        "built from scalars, lists, tuples, dicts, NumPy arrays/scalars, or "
        "ErrorSummary (return plain data from checkpointed trial functions)"
    )


def decode_value(value):
    """Inverse of :func:`encode_value`."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        tag = value.get(_TAG)
        if tag is None:
            return {k: decode_value(v) for k, v in value.items()}
        if tag == "npscalar":
            return np.dtype(value["dtype"]).type(value["value"])
        if tag == "ndarray":
            raw = base64.b64decode(value["b64"])
            arr = np.frombuffer(raw, dtype=np.dtype(value["dtype"]))
            return arr.reshape(value["shape"]).copy()
        if tag == "error_summary":
            fields = {k: v for k, v in value.items() if k != _TAG}
            return ErrorSummary(**fields)
        if tag == "tuple":
            return tuple(decode_value(v) for v in value["items"])
        if tag == "dict":
            return {decode_value(k): decode_value(v) for k, v in value["items"]}
        raise ValueError(f"unknown checkpoint payload tag {tag!r}")
    raise ValueError(
        f"malformed checkpoint payload of type {type(value).__name__}"
    )
