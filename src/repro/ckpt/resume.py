"""Checkpoint/resume runtime over the write-ahead ledger.

A :class:`Checkpoint` wraps one ledger file for one logical run: opening
it replays every durable trial record, recording appends (and fsyncs) a
new one, and the header's ``meta`` dict pins the run identity so a ledger
cannot silently be resumed against a different sweep.  Entry points
(``run_trials_resilient``, ``evaluate_methods[_parallel]``, ``run_sweep``)
consult :meth:`Checkpoint.get` per cell and skip the finished ones; the
missing cells run on the same deterministically derived child seeds they
would have used in an uninterrupted run, which is what makes a resumed
run bit-identical to one that never died.

:func:`trap_signals` converts ``SIGTERM`` (and optionally others) into
``KeyboardInterrupt`` inside a ``with`` block, so the normal
``try/finally`` unwinding flushes the ledger and tears worker pools down
cleanly when a scheduler or operator kills the run politely; ``kill -9``
needs no handler at all — that is what the per-record fsync is for.
"""

from __future__ import annotations

import json
import signal
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.ckpt.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerError,
    LedgerWriter,
    read_ledger,
)

__all__ = [
    "Checkpoint",
    "CheckpointScope",
    "CheckpointAbort",
    "CheckpointMismatch",
    "seed_fingerprint",
    "resolve_checkpoint",
    "trap_signals",
    "LedgerProgress",
    "ledger_progress",
    "format_progress",
]

#: header-meta keys that must match between the ledger and a resuming
#: call — everything that changes which trials exist or what they compute
_CORE_META_KEYS = (
    "kind",
    "config",
    "methods",
    "n_trials",
    "seed",
    "param",
    "values",
)


class CheckpointAbort(RuntimeError):
    """Deterministic crash injection for tests: raised by
    :meth:`Checkpoint.record` once ``abort_after`` records have been
    durably appended, simulating a process death at an exact, replayable
    point in the run."""


class CheckpointMismatch(ValueError):
    """The ledger header belongs to a different run than the resuming
    call (different config, seed, methods, …)."""


def seed_fingerprint(seed) -> dict:
    """JSON-safe identity of a master seed, for the ledger header.

    Checkpointing requires a *reproducible* seed: resuming must re-derive
    the exact child-seed streams, so OS-entropy (``None``) and consumed
    ``Generator`` state are rejected up front rather than producing a
    ledger that can never match its run.
    """
    if isinstance(seed, (int, np.integer)):
        return {"type": "int", "value": int(seed)}
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if isinstance(entropy, (list, tuple)):
            entropy = [int(e) for e in entropy]
        elif entropy is not None:
            entropy = int(entropy)
        return {
            "type": "seedseq",
            "entropy": entropy,
            "spawn_key": [int(k) for k in seed.spawn_key],
            "children_spawned": int(seed.n_children_spawned),
        }
    raise ValueError(
        "checkpointing requires a reproducible master seed (an int or a "
        f"SeedSequence), got {type(seed).__name__}: a resumed run could "
        "not re-derive the same child-seed streams"
    )


def _normalize(value):
    """Canonical JSON view, so tuples/lists and int/float compare sanely."""
    return json.loads(json.dumps(value, sort_keys=True))


class Checkpoint:
    """One ledger-backed checkpoint for one logical run.

    Parameters
    ----------
    path:
        Ledger file (created on first open if missing).
    abort_after:
        Test hook — after this many successful :meth:`record` appends,
        raise :class:`CheckpointAbort`.  The appended records are already
        durable, so this simulates a crash at a deterministic point.
    """

    def __init__(self, path: str | Path, abort_after: int | None = None) -> None:
        self.path = Path(path)
        self._abort_after = abort_after
        self._writer: LedgerWriter | None = None
        self._done: dict[str, dict] = {}
        self._meta: dict | None = None
        self._opened = False
        self.n_replayed = 0
        self.n_recorded = 0
        self.n_corrupt = 0
        self.truncated_tail = False

    # ------------------------------------------------------------------ #
    @property
    def opened(self) -> bool:
        return self._opened

    def open(self, meta: dict) -> "Checkpoint":
        """Replay the ledger (validating its header against *meta*) or
        start a fresh one whose header pins *meta*.  Idempotent: a second
        open with matching meta is a no-op."""
        if self._opened:
            self._check_meta(meta)
            return self
        contents = read_ledger(self.path)
        if contents.header is not None:
            self._meta = contents.meta or {}
            self._check_meta(meta)
            self._done = contents.records
        self.n_corrupt = contents.n_corrupt
        self.truncated_tail = contents.truncated_tail
        self._writer = LedgerWriter(self.path)
        if contents.header is None:
            self._meta = _normalize(meta)
            self._writer.append(
                {
                    "kind": "header",
                    "schema": LEDGER_SCHEMA_VERSION,
                    "meta": self._meta,
                }
            )
        self._opened = True
        return self

    def _check_meta(self, meta: dict) -> None:
        ours = self._meta or {}
        theirs = _normalize(meta)
        for key in _CORE_META_KEYS:
            if _normalize(ours.get(key)) != _normalize(theirs.get(key)):
                raise CheckpointMismatch(
                    f"ledger {self.path} belongs to a different run: "
                    f"header {key}={ours.get(key)!r} but this call has "
                    f"{key}={theirs.get(key)!r}; point the checkpoint at "
                    "a fresh path or fix the arguments to match"
                )

    @property
    def meta(self) -> dict | None:
        return self._meta

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> dict | None:
        """Durable payload of a finished cell, or ``None`` (run it)."""
        payload = self._done.get(key)
        if payload is not None:
            self.n_replayed += 1
        return payload

    def record(self, key: str, payload: dict) -> None:
        """Durably append one finished cell (fsync'd before returning)."""
        if not self._opened or self._writer is None or self._writer.closed:
            raise ValueError(
                f"checkpoint {self.path} is not open for recording"
            )
        self._writer.append({"kind": "trial", "key": key, "payload": payload})
        self._done[key] = payload
        self.n_recorded += 1
        if self._abort_after is not None and self.n_recorded >= self._abort_after:
            raise CheckpointAbort(
                f"checkpoint test hook: aborting after {self.n_recorded} "
                f"record(s) appended to {self.path}"
            )

    def scoped(self, prefix: str) -> "CheckpointScope":
        """A key-prefixed view sharing this ledger (sweep points)."""
        return CheckpointScope(self, prefix)

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
        self._opened = False

    def emit_counters(self, tracer) -> None:
        """Mirror ledger activity into obs counters (``ckpt_*``)."""
        if tracer is None or not tracer.enabled:
            return
        if self.n_replayed:
            tracer.count("ckpt_trials_replayed", self.n_replayed)
        if self.n_recorded:
            tracer.count("ckpt_trials_recorded", self.n_recorded)
        if self.n_corrupt:
            tracer.count("ckpt_corrupt_records", self.n_corrupt)
        if self.truncated_tail:
            tracer.count("ckpt_truncated_tail")

    def __enter__(self) -> "Checkpoint":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class CheckpointScope:
    """Prefix-scoped view of a :class:`Checkpoint` (shared writer).

    ``run_sweep`` owns the real checkpoint and hands each parameter
    point a scope, so every point's trials land in one ledger under
    distinct keys and the sweep header is validated exactly once.
    """

    def __init__(self, parent: Checkpoint, prefix: str) -> None:
        self.parent = parent
        self.prefix = prefix

    def get(self, key: str) -> dict | None:
        return self.parent.get(f"{self.prefix}:{key}")

    def record(self, key: str, payload: dict) -> None:
        self.parent.record(f"{self.prefix}:{key}", payload)

    def emit_counters(self, tracer) -> None:
        """No-op: the owning checkpoint reports once for the whole run."""


def resolve_checkpoint(checkpoint, make_meta) -> tuple[object, bool]:
    """Entry-point plumbing: turn a ``checkpoint=`` argument into an
    opened checkpoint-like object plus an ownership flag.

    * path → construct, open (validating/creating the header), own it;
    * :class:`Checkpoint` → open if needed, caller keeps ownership;
    * :class:`CheckpointScope` → already validated by its owner.

    *make_meta* is a zero-arg callable so header construction (which may
    reject irreproducible seeds) only happens when actually needed.
    """
    if isinstance(checkpoint, CheckpointScope):
        return checkpoint, False
    if isinstance(checkpoint, Checkpoint):
        checkpoint.open(make_meta())
        return checkpoint, False
    if isinstance(checkpoint, (str, Path)):
        ck = Checkpoint(checkpoint)
        ck.open(make_meta())
        return ck, True
    raise TypeError(
        "checkpoint must be a path, Checkpoint, or CheckpointScope, got "
        f"{type(checkpoint).__name__}"
    )


@contextmanager
def trap_signals(extra=(signal.SIGTERM,)):
    """Convert polite kill signals into ``KeyboardInterrupt`` so
    ``finally`` blocks run: the ledger closes flushed and worker pools
    are terminated/joined instead of orphaned.  Restores the previous
    handlers on **every** exit path — normal completion, exceptions
    raised mid-scope, even a trapped signal arriving during the restore
    itself — so a long-lived server embedding checkpointed runs cannot
    leak the trap handler past the scope.  Scopes nest (the inner scope
    restores the outer scope's handler).  A no-op outside the main
    thread, where Python forbids installing handlers.

    Restore details that matter for embedding:

    * the previous handler is captured with :func:`signal.getsignal`
      *before* installing the trap — ``signal.signal``'s return value is
      ``None`` for handlers not installed from Python, and passing that
      ``None`` back to ``signal.signal`` raises, which used to abort the
      restore loop and leak every remaining handler;
    * each restore is individually guarded, so one failing (or a trapped
      signal firing mid-restore) still restores the rest, and the first
      such exception is re-raised once restoration finished.
    """
    installed = []

    def _raise(signum, frame):
        raise KeyboardInterrupt(f"terminated by signal {signum}")

    try:
        for sig in extra:
            try:
                prev = signal.getsignal(sig)
                signal.signal(sig, _raise)
            except ValueError:
                continue  # not the main thread
            installed.append((sig, prev))
        yield
    finally:
        pending: BaseException | None = None
        for sig, prev in reversed(installed):
            if prev is None:
                # Installed by non-Python code — unrecoverable from here;
                # fall back to the default disposition rather than
                # leaving our raising trap behind.
                prev = signal.SIG_DFL
            try:
                signal.signal(sig, prev)
            except BaseException as exc:  # noqa: BLE001 - keep restoring
                if pending is None:
                    pending = exc
        if pending is not None:
            raise pending


# --------------------------------------------------------------------- #
# progress reporting (the `repro resume` CLI)
# --------------------------------------------------------------------- #
@dataclass
class LedgerProgress:
    """What a ledger says about its run, without re-running anything."""

    path: Path
    meta: dict | None
    n_done: int
    total_cells: int | None
    n_corrupt: int
    truncated_tail: bool

    @property
    def complete(self) -> bool:
        return self.total_cells is not None and self.n_done >= self.total_cells


def ledger_progress(path: str | Path) -> LedgerProgress:
    """Inspect a ledger: distinct finished cells vs the header's total.

    Raises :class:`LedgerError` for unusable files (unknown schema,
    headerless trial records); damaged individual records only lower
    ``n_done``.
    """
    path = Path(path)
    if not path.exists():
        raise LedgerError(f"ledger {path} does not exist")
    contents = read_ledger(path)
    meta = contents.meta
    total = None
    if meta is not None and isinstance(meta.get("total_cells"), int):
        total = meta["total_cells"]
    return LedgerProgress(
        path=path,
        meta=meta,
        n_done=len(contents.records),
        total_cells=total,
        n_corrupt=contents.n_corrupt,
        truncated_tail=contents.truncated_tail,
    )


def format_progress(progress: LedgerProgress) -> str:
    """Human-readable progress block for the CLI."""
    meta = progress.meta or {}
    lines = [f"ledger: {progress.path}"]
    kind = meta.get("kind")
    if kind:
        lines.append(f"run kind: {kind}")
    if meta.get("param") is not None:
        lines.append(
            f"sweep: {meta['param']} over {meta.get('values')}"
        )
    if meta.get("methods"):
        lines.append("methods: " + ", ".join(meta["methods"]))
    if meta.get("n_trials") is not None:
        lines.append(f"trials per point: {meta['n_trials']}")
    seed = meta.get("seed") or {}
    if seed.get("type") == "int":
        lines.append(f"master seed: {seed['value']}")
    if progress.total_cells is not None:
        pct = 100.0 * progress.n_done / max(progress.total_cells, 1)
        lines.append(
            f"progress: {progress.n_done}/{progress.total_cells} "
            f"cells done ({pct:.0f}%)"
        )
    else:
        lines.append(f"progress: {progress.n_done} cells done")
    if progress.n_corrupt:
        lines.append(
            f"warning: {progress.n_corrupt} corrupt record(s) quarantined"
        )
    if progress.truncated_tail:
        lines.append("warning: torn final record dropped (interrupted append)")
    lines.append(
        "status: complete — resuming re-runs nothing"
        if progress.complete
        else "status: incomplete — resume will run the remaining cells"
    )
    return "\n".join(lines)
