"""Write-ahead trial ledger: CRC-framed, fsync'd, append-only JSONL.

One ledger file records one long-running experiment: a header line pins
the run's identity (entry point, config, seed fingerprint), then every
completed trial appends one record.  The framing is built to survive the
failure modes that actually happen to long sweeps:

* **Crash mid-append** — each line is ``crc32 <space> payload``; a torn
  tail line fails to frame and is dropped with a warning, everything
  before it is intact (appends are flushed and ``fsync``'d, so a record
  once returned from :meth:`LedgerWriter.append` survives ``kill -9``).
* **Bit rot / concurrent scribbling mid-file** — a line whose CRC does
  not match its payload is quarantined (warning, skipped), not fatal;
  resume simply re-runs the affected trial.
* **Format drift** — the header carries ``schema``; an unknown version
  raises :class:`LedgerError` instead of silently misreading records.

The payload is canonical JSON (sorted keys, no whitespace), so a record
is byte-stable for a given body and the CRC is well-defined.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "LedgerError",
    "LedgerWriter",
    "LedgerContents",
    "read_ledger",
    "frame_record",
    "parse_line",
]

#: bumped whenever the record layout changes incompatibly
LEDGER_SCHEMA_VERSION = 1

#: record kinds this schema version understands
_KINDS = ("header", "trial")


class LedgerError(ValueError):
    """The ledger cannot be used at all (unknown schema, no header
    ahead of trial records, unreadable file).  Per-record damage is
    *not* a LedgerError — damaged records are quarantined with a
    warning so the surviving trials still resume."""


def frame_record(body: dict) -> str:
    """One ledger line: ``crc32(payload) payload\\n`` (canonical JSON)."""
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {payload}\n"


def parse_line(line: str) -> dict | None:
    """Decode one framed line; ``None`` if the frame or CRC is bad."""
    head, sep, payload = line.partition(" ")
    if not sep or len(head) != 8:
        return None
    try:
        crc = int(head, 16)
    except ValueError:
        return None
    if zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF != crc:
        return None
    try:
        body = json.loads(payload)
    except json.JSONDecodeError:
        return None
    return body if isinstance(body, dict) else None


class LedgerWriter:
    """Append-only writer; every :meth:`append` is flushed and fsync'd
    before returning, so a record is durable the moment the trial that
    produced it is considered done (write-ahead discipline)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, body: dict) -> None:
        if self._fh is None:
            raise ValueError(f"ledger writer for {self.path} is closed")
        self._fh.write(frame_record(body))
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    @property
    def closed(self) -> bool:
        return self._fh is None

    def __enter__(self) -> "LedgerWriter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


@dataclass
class LedgerContents:
    """Everything salvaged from one ledger file.

    ``records`` maps trial key → payload, **last record wins** — a trial
    legitimately re-recorded (e.g. re-run with more methods) supersedes
    its earlier entry.  ``n_corrupt`` counts quarantined mid-file lines
    and ``truncated_tail`` flags a torn final line; both mean "those
    trials re-run on resume", never data loss of the intact ones.
    """

    header: dict | None = None
    records: dict[str, dict] = field(default_factory=dict)
    n_records: int = 0
    n_corrupt: int = 0
    truncated_tail: bool = False

    @property
    def meta(self) -> dict | None:
        return None if self.header is None else self.header.get("meta")


def read_ledger(path: str | Path) -> LedgerContents:
    """Replay a ledger, tolerating a torn tail and quarantining damage.

    Raises :class:`LedgerError` only for damage that makes the whole
    file unusable: an unknown schema version, or trial records with no
    header in front of them.  A missing or empty file is a valid empty
    ledger (fresh run).
    """
    path = Path(path)
    if not path.exists():
        return LedgerContents()
    text = path.read_text(encoding="utf-8", errors="replace")
    if not text:
        return LedgerContents()
    complete, _, tail = text.rpartition("\n")
    out = LedgerContents()
    if tail:
        # Torn final append (the crash window): drop it, keep the rest.
        out.truncated_tail = True
        warnings.warn(
            f"ledger {path}: dropping torn final record "
            "(interrupted append); the affected trial will re-run",
            RuntimeWarning,
            stacklevel=2,
        )
    lines = complete.split("\n") if complete else []
    for lineno, line in enumerate(lines, start=1):
        body = parse_line(line)
        if body is None or body.get("kind") not in _KINDS:
            out.n_corrupt += 1
            warnings.warn(
                f"ledger {path}: quarantining corrupt record at line "
                f"{lineno} (bad frame, CRC, or kind); the affected trial "
                "will re-run",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        if body["kind"] == "header":
            schema = body.get("schema")
            if schema != LEDGER_SCHEMA_VERSION:
                raise LedgerError(
                    f"ledger {path}: unknown schema version {schema!r} "
                    f"(this build reads {LEDGER_SCHEMA_VERSION}); refusing "
                    "to guess at the record layout"
                )
            if out.header is None:
                out.header = body
            continue
        if out.header is None:
            raise LedgerError(
                f"ledger {path}: trial record at line {lineno} precedes "
                "the header; the file is not a repro checkpoint ledger"
            )
        key = body.get("key")
        if not isinstance(key, str):
            out.n_corrupt += 1
            warnings.warn(
                f"ledger {path}: quarantining keyless trial record at "
                f"line {lineno}",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        out.records[key] = body.get("payload", {})
        out.n_records += 1
    return out
