"""Batched trial-axis grid-BP kernel.

A batch of *compatible* problems (same grid shape/extent, same ``K``,
equal config — different networks, priors, seeds) runs every synchronous
sum-product round as **one stacked tensor pass**: the trials' directed
message slots are concatenated into one ``(ΣT n_dir, K)`` block (a
block-diagonal union of independent graphs), so each round costs one set
of numpy kernel invocations for the whole batch instead of one per
trial.  All trials share whatever warm
:class:`~repro.core.potentials.PotentialCacheRegistry` kernels the
caller prepared — identical CSR objects across trials land in one
cross-trial mat-mat group.

Execution layout (the ≥10× lever over the cold per-trial kernel):

* the stacked slots are stored **operator-grouped** — every slot sharing
  one CSR kernel occupies a contiguous row block — so each round's
  mat-mat consumes and produces contiguous slabs with no per-round
  gather/scatter around the sparse products;
* all round state (message/log-message double buffers, the per-group
  transposed multivector and product slabs, the degree-pass staging
  rows) is **preallocated once per active-set rebuild** and reused every
  round: the hot loop performs no large allocations, so neither the
  allocator nor first-touch page faults appear in steady state;
* each group's whole pipeline — gather ``h``, max-shift, ``exp``,
  sparse product, normalize/damp/floor, residual, ``log`` — runs while
  the group's ~1 MB slab is cache-resident, instead of making full-array
  passes over the 10s-of-MB stacked block per step;
* the sparse product calls scipy's own ``csr_matvecs`` kernel directly
  on the preallocated slabs (zero-filled output, C-contiguous
  multivector) — the exact computation ``op.dot`` performs after its
  internal copies, minus the copies.

Bit-identity with the reference kernel (regression-gated by
``tests/test_kernels.py`` and the ``repro.audit`` bit-tier DiffCases)
rests on these facts:

* independent graphs never interact: stacking is block-diagonal, and
  every elementwise / row-wise step of a round touches each trial's rows
  exactly as the per-trial kernel would;
* per-node message-product accumulation replays the exact fadd sequence
  of ``np.add.at`` — the degree-pass formulation adds each destination's
  incoming messages in ascending (original) slot order, one rank per
  pass, and rows within a pass are unique (distinct accumulators commute
  trivially);
* scipy's CSR mat-mat accumulates each column in the same index order as
  its mat-vec kernel, so cross-trial groups (including slots that are
  singletons within their own trial) are bit-identical to per-slot
  products; dense operators stay on per-slot gemv because BLAS gemm and
  gemv are *not* bit-identical;
* row-wise reductions and elementwise ufuncs are computed per
  C-contiguous row block, so splitting the stacked block into operator
  groups (or permuting rows) changes nothing — each row's pairwise
  sum/max and each element's exp/log see identical inputs in identical
  order;
* ``max`` reductions are order-independent (NaN included — ``np.maximum``
  propagates NaN), so a trial's residual computed as a segment reduction
  over the permuted stacked block equals the per-trial global max.

Fallback semantics: the ``serial`` (Gauss–Seidel) schedule and
max-product messaging are inherently per-trial sequential, so
:class:`BatchedBackend` runs those problems through the reference kernel
one at a time — same results, no stacking win.  Per-trial convergence is
preserved by masking: a trial that converges (or hits
``max_iterations``) freezes — its slots drop out of the active set and
its messages never change again, exactly as if its own loop had ended.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.kernels.base import (
    BPOutcome,
    BPProblem,
    IncompatibleBatchError,
    KernelBackend,
    compatibility_key,
)
from repro.kernels.cancel import deadline_stop
from repro.kernels.reference import _MSG_FLOOR, run_bp
from repro.obs import NULL_TRACER, NullTracer

__all__ = ["BatchedBackend"]


def _degree_passes(
    dst: np.ndarray, orig_slots: np.ndarray, pos: np.ndarray
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Decompose a scatter-add into rank-ordered gather-add passes.

    Pass *d* holds, for every destination with at least ``d+1`` incoming
    slots, its ``d``-th lowest **original** slot (``orig_slots`` carries
    the pre-permutation slot ids; ``pos`` the rows where those slots
    live now).  Executing the passes in order adds each destination's
    messages in ascending original-slot order — the exact fadd sequence
    of ``np.add.at(totals, dst, msgs)`` on the unpermuted block — while
    each individual pass is a plain vectorized gather-add (destination
    rows unique per pass).
    """
    if not len(orig_slots):
        return []
    order = np.lexsort((orig_slots, dst))
    sdst = dst[order]
    new_run = np.empty(len(sdst), dtype=bool)
    new_run[0] = True
    np.not_equal(sdst[1:], sdst[:-1], out=new_run[1:])
    run_id = np.cumsum(new_run) - 1
    run_starts = np.flatnonzero(new_run)
    ranks = np.arange(len(sdst)) - run_starts[run_id]
    passes = []
    for d in range(int(ranks.max()) + 1):
        sel = order[ranks == d]
        passes.append((dst[sel], pos[sel]))
    return passes


class BatchedBackend(KernelBackend):
    """Stacked trial-axis execution of compatible problem batches."""

    name = "batched"

    def run(self, problem: BPProblem, tracer: NullTracer = NULL_TRACER) -> BPOutcome:
        return self.run_batch([problem], tracer)[0]

    def run_batch(
        self, problems: Sequence[BPProblem], tracer: NullTracer = NULL_TRACER
    ) -> list[BPOutcome]:
        problems = list(problems)
        if not problems:
            return []
        keys = {compatibility_key(p) for p in problems}
        if len(keys) > 1:
            raise IncompatibleBatchError(
                f"cannot co-batch {len(problems)} problems spanning "
                f"{len(keys)} incompatible (grid, K, config) shapes; "
                "partition with repro.kernels.group_compatible first"
            )
        cfg = problems[0].cfg
        if cfg.schedule == "serial" or cfg.max_product:
            # Gauss–Seidel sweeps and max-product messaging are per-trial
            # sequential by nature: documented fallback to the reference
            # kernel, one problem at a time (bit-identical, unstacked).
            return [
                BPOutcome(*run_bp(p.log_phi, p.edges, p.ops, p.grid, p.cfg, tracer))
                for p in problems
            ]
        return _run_batch_sync(problems, cfg, tracer)


def _csr_matvecs_kernel():
    """scipy's raw CSR multivector product, or ``None`` if unavailable.

    ``op.dot(X)`` on a ``(K, m)`` multivector is exactly ``Y = zeros;
    csr_matvecs(..., X.ravel(), Y.ravel())`` plus scipy's internal
    copies; calling the kernel on preallocated slabs skips the copies
    without touching a single float of the computation.
    """
    try:
        from scipy.sparse import _sparsetools

        return _sparsetools.csr_matvecs
    except Exception:  # pragma: no cover - scipy internals moved
        return None


def _run_batch_sync(
    problems: list[BPProblem], cfg, tracer: NullTracer
) -> list[BPOutcome]:
    from scipy import sparse as _sparse

    csr_matvecs = _csr_matvecs_kernel()

    T = len(problems)
    K = problems[0].n_cells
    n_us = [p.n_unknowns for p in problems]
    n_dirs = [2 * len(p.edges) for p in problems]
    node_off = np.concatenate(([0], np.cumsum(n_us))).astype(np.intp)
    slot_off = np.concatenate(([0], np.cumsum(n_dirs))).astype(np.intp)
    n_nodes = int(node_off[-1])
    n_dir = int(slot_off[-1])

    log_phi_all = (
        np.concatenate([p.log_phi for p in problems], axis=0)
        if n_nodes
        else np.empty((0, K))
    )

    # Global directed-slot endpoint maps (node indices offset per trial;
    # per-trial slot counts are even, so the global slot blocks start at
    # even offsets and ``slot ^ 1`` still addresses the reverse slot).
    src_of = np.empty(n_dir, dtype=np.intp)
    dst_of = np.empty(n_dir, dtype=np.intp)
    slot_trial = np.empty(n_dir, dtype=np.intp)
    for t, p in enumerate(problems):
        base, noff = int(slot_off[t]), int(node_off[t])
        slot_trial[base : int(slot_off[t + 1])] = t
        for e, (i, j) in enumerate(p.edges):
            src_of[base + 2 * e] = noff + i
            dst_of[base + 2 * e] = noff + j
            src_of[base + 2 * e + 1] = noff + j
            dst_of[base + 2 * e + 1] = noff + i
    swap_of = np.arange(n_dir, dtype=np.intp) ^ 1

    # Cross-trial sparse mat-mat groups keyed by operator identity: the
    # shared potential cache hands identical CSR objects to every trial
    # with the same quantized distance, so groups span the whole batch.
    # Slots that are singletons within their own trial still join a
    # cross-trial group — CSR mat-mat columns are bit-identical to the
    # per-slot mat-vec.  Dense operators stay per-slot (gemv ≠ gemm).
    by_op: dict[int, list[int]] = {}
    op_by_id: dict[int, object] = {}
    dense_slots: list[tuple[object, int]] = []
    for t, p in enumerate(problems):
        base = int(slot_off[t])
        for e in range(len(p.edges)):
            for parity in (0, 1):
                op = p.ops[e][parity]
                slot = base + 2 * e + parity
                if _sparse.issparse(op):
                    by_op.setdefault(id(op), []).append(slot)
                    op_by_id[id(op)] = op
                else:
                    dense_slots.append((op, slot))
    sparse_groups = [
        (op_by_id[key], np.asarray(slots, dtype=np.intp))
        for key, slots in by_op.items()
    ]

    # Global-order state: the source of truth between rebuilds and for
    # the (tracing-only) whole-batch belief snapshots.  During rounds
    # the active slots live in the operator-grouped buffers below.
    messages = np.full((n_dir, K), 1.0 / K)
    log_messages = np.log(messages)

    n_iter = [0] * T
    converged = [nd == 0 for nd in n_dirs]  # edge-less trials are done
    healths = [{"residuals": [], "message_repairs": 0} for _ in range(T)]
    traces: list[list[np.ndarray]] = [[] for _ in range(T)]
    active = np.array([nd > 0 for nd in n_dirs], dtype=bool)

    def stacked_beliefs() -> np.ndarray:
        # Per node: log_phi + incoming log-messages (ascending slot
        # order via np.add.at), row-wise max-shift / exp / normalize —
        # each row identical to the per-trial beliefs_now().
        totals_b = log_phi_all.copy()
        if n_dir:
            np.add.at(totals_b, dst_of, log_messages)
        if not n_nodes:
            return totals_b
        totals_b -= totals_b.max(axis=1, keepdims=True)
        np.exp(totals_b, out=totals_b)
        totals_b /= totals_b.sum(axis=1, keepdims=True)
        return totals_b

    def trial_beliefs(B: np.ndarray, t: int) -> np.ndarray:
        return B[int(node_off[t]) : int(node_off[t + 1])].copy()

    if cfg.record_trace:
        B0 = stacked_beliefs()
        for t in range(T):
            traces[t].append(trial_beliefs(B0, t))

    emit_iterations = tracer.enabled and T == 1
    prev_beliefs = stacked_beliefs() if emit_iterations else None
    msgs_cum = 0
    trace_rounds = cfg.record_trace or emit_iterations

    # ---------------------------------------------------------------- #
    # Active-set execution plan, rebuilt whenever a trial freezes.  The
    # active slots are permuted into operator-grouped order; every round
    # buffer is preallocated here and reused for the rebuild's lifetime.
    act_trials: list[int] = []
    act_slots = src_act = swap_pos = None
    passes: list = []
    group_plan: list = []  # (op, a, b, Hx, Y): contiguous sparse slabs
    dense_plan: list = []  # (op, row): per-slot dense products
    by_trial_order = by_trial_starts = None
    Mcur = Mold = Lcur = Lold = None
    Hbuf = Sbuf = rowmax_buf = None
    totals = np.empty_like(log_phi_all)

    def rebuild() -> None:
        nonlocal act_trials, act_slots, src_act, swap_pos, passes
        nonlocal group_plan, dense_plan, by_trial_order, by_trial_starts
        nonlocal Mcur, Mold, Lcur, Lold, Hbuf, Sbuf, rowmax_buf
        act_trials = [t for t in range(T) if active[t]]
        group_plan = []
        dense_plan = []
        if not act_trials:
            act_slots = np.empty(0, dtype=np.intp)
            return
        act_mask = active[slot_trial]
        ordered: list[np.ndarray] = []
        bounds: list[tuple[object, int, int]] = []
        cursor = 0
        for op, slots in sparse_groups:
            sel = slots[act_mask[slots]]
            if len(sel):
                ordered.append(sel)
                bounds.append((op, cursor, cursor + len(sel)))
                cursor += len(sel)
        dense_lo = cursor
        dense_ops: list[object] = []
        for op, s in dense_slots:
            if act_mask[s]:
                ordered.append(np.asarray([s], dtype=np.intp))
                dense_ops.append(op)
                cursor += 1
        act_slots = (
            np.concatenate(ordered) if ordered else np.empty(0, dtype=np.intp)
        )
        n_act = len(act_slots)
        pos_of = np.full(n_dir, -1, dtype=np.intp)
        pos_of[act_slots] = np.arange(n_act, dtype=np.intp)
        src_act = src_of[act_slots]
        # A slot's reverse lives in the same trial, so it is active
        # exactly when the slot is — the position map never misses.
        swap_pos = pos_of[swap_of[act_slots]]
        # Within a pass every destination appears once, so the adds
        # commute across rows — reordering entries by source position
        # turns the big Lcur gather into a near-sequential read (the
        # scatter back into the much smaller `totals` stays cheap).
        passes = []
        for rows, pos in _degree_passes(
            dst_of[act_slots], act_slots, np.arange(n_act, dtype=np.intp)
        ):
            order = np.argsort(pos, kind="stable")
            rows, pos = rows[order], pos[order]
            passes.append(
                (rows, pos, np.empty((len(rows), K)), np.empty((len(rows), K)))
            )
        max_m = 1
        for op, a, b in bounds:
            m = b - a
            max_m = max(max_m, m)
            # Symmetric ranging kernels reuse one operator for both
            # directions of an edge, so a group usually holds whole
            # (fwd, bwd) slot pairs in adjacent positions.  When the
            # group's reverse map is exactly that local pair swap, the
            # round can read reverse messages through a strided view of
            # the group's own Lcur block instead of a gathered copy.
            pair_local = False
            if m % 2 == 0:
                expect = np.arange(a, b, dtype=np.intp)
                expect = expect.reshape(-1, 2)[:, ::-1].ravel()
                pair_local = bool(np.array_equal(swap_pos[a:b], expect))
            group_plan.append(
                (op, a, b, np.empty((K, m)), np.zeros((K, m)), pair_local)
            )
        dense_plan = [(op, dense_lo + k) for k, op in enumerate(dense_ops)]
        # Per-trial residual segments: active rows sorted by trial (a
        # static permutation per rebuild) so a single max.reduceat
        # yields every trial's residual, in act_trials order.
        trial_idx = np.searchsorted(np.asarray(act_trials), slot_trial[act_slots])
        by_trial_order = np.argsort(trial_idx, kind="stable")
        sorted_tidx = trial_idx[by_trial_order]
        starts_mask = np.empty(n_act, dtype=bool)
        starts_mask[0] = True
        np.not_equal(sorted_tidx[1:], sorted_tidx[:-1], out=starts_mask[1:])
        by_trial_starts = np.flatnonzero(starts_mask)
        # Double-buffered message state in grouped order, seeded from
        # the global arrays; plus reusable per-round scratch slabs.
        Mcur = messages[act_slots]
        Lcur = log_messages[act_slots]
        Mold = np.empty_like(Mcur)
        Lold = np.empty_like(Lcur)
        Hbuf = np.empty((max_m, K))
        Sbuf = np.empty((max_m, K))
        rowmax_buf = np.empty(n_act)

    def sync_global() -> None:
        messages[act_slots] = Mcur
        log_messages[act_slots] = Lcur

    rebuild()

    _deadline_probe: dict = {}
    while act_trials:
        # Cooperative cancellation: all trials in a batch share rounds,
        # so an expired ambient deadline stops every still-active trial
        # between rounds (each gets at least one round; the check is a
        # thread-local read, free when no deadline scope is active).
        if min(n_iter[t] for t in act_trials) >= 1 and deadline_stop(
            _deadline_probe
        ):
            sync_global()  # commit the completed rounds' messages
            for t in act_trials:
                healths[t]["deadline_stop"] = True
                active[t] = False
            break
        # One stacked synchronous round over every active trial.  New
        # messages are written into the "old" buffers, then the pairs
        # swap — the previous round's state stays intact for damping,
        # residuals, and the NaN-repair path.
        Mnew, Lnew = Mold, Lold
        np.copyto(totals, log_phi_all)
        for rows, pos, Tb, Pb in passes:
            np.take(Lcur, pos, axis=0, out=Pb)
            np.take(totals, rows, axis=0, out=Tb)
            Tb += Pb
            totals[rows] = Tb

        for op, a, b, Hx, Y, pair_local in group_plan:
            m = b - a
            Hg = Hbuf[:m]
            Sg = Sbuf[:m]
            np.take(totals, src_act[a:b], axis=0, out=Hg)
            if pair_local:
                # Reverse messages are this block's rows pair-swapped:
                # subtract through the strided view, no gather.
                sw = Lcur[a:b].reshape(-1, 2, K)[:, ::-1, :]
                Hg3 = Hg.reshape(-1, 2, K)
                np.subtract(Hg3, sw, out=Hg3)
            else:
                np.take(Lcur, swap_pos[a:b], axis=0, out=Sg)
                np.subtract(Hg, Sg, out=Hg)
            Hg -= Hg.max(axis=1, keepdims=True)
            np.exp(Hg, out=Hg)
            res = Mnew[a:b]
            if csr_matvecs is not None:
                Hx[...] = Hg.T
                Y.fill(0.0)
                csr_matvecs(
                    K, K, m, op.indptr, op.indices, op.data,
                    Hx.ravel(), Y.ravel(),
                )
                res[...] = Y.T
            else:  # pragma: no cover - exercised only on exotic scipys
                res[...] = op.dot(Hg.T).T
            # commit_rows, reference-exact, while the slab is cache-hot.
            prev = Mcur[a:b]
            sums = res.sum(axis=1)
            bad = sums <= 0
            if bad.any():
                res[bad] = 1.0 / K
                sums[bad] = 1.0
            res /= sums[:, None]
            if cfg.damping > 0:
                res *= 1 - cfg.damping
                res += cfg.damping * prev
                res /= res.sum(axis=1)[:, None]
            np.maximum(res, _MSG_FLOOR, out=res)
            np.subtract(res, prev, out=Sg)
            np.abs(Sg, out=Sg)
            rowmax_buf[a:b] = Sg.max(axis=1)
            np.log(res, out=Lnew[a:b])

        for op, r in dense_plan:
            h = totals[src_act[r]] - Lcur[swap_pos[r]]
            h -= h.max()
            hvec = np.exp(h)
            res1 = op.dot(hvec)[None, :]
            prev1 = Mcur[r : r + 1]
            sums = res1.sum(axis=1)
            bad = sums <= 0
            if bad.any():
                res1[bad] = 1.0 / K
                sums[bad] = 1.0
            res1 /= sums[:, None]
            if cfg.damping > 0:
                res1 *= 1 - cfg.damping
                res1 += cfg.damping * prev1
                res1 /= res1.sum(axis=1)[:, None]
            np.maximum(res1, _MSG_FLOOR, out=res1)
            Mnew[r] = res1[0]
            rowmax_buf[r] = float(np.abs(res1 - prev1).max())
            Lnew[r] = np.log(res1[0])

        Mcur, Mold = Mnew, Mcur
        Lcur, Lold = Lnew, Lcur

        # Per-trial residuals: segment max over each trial's rows
        # (order-independent, NaN-propagating — equals the per-trial
        # global max).
        deltas = np.maximum.reduceat(rowmax_buf[by_trial_order], by_trial_starts)

        froze = False
        for ti, t in enumerate(act_trials):
            md = float(deltas[ti])
            if cfg.health_checks and not np.isfinite(md):
                # Same repair as the per-trial kernel, restricted to
                # this trial's rows (Mold still holds the pre-round
                # messages for the residual recompute).
                from repro.core.health import repair_nonfinite_messages

                seg_end = (
                    by_trial_starts[ti + 1]
                    if ti + 1 < len(by_trial_starts)
                    else len(by_trial_order)
                )
                rows = by_trial_order[by_trial_starts[ti] : seg_end]
                block = Mcur[rows]
                healths[t]["message_repairs"] += repair_nonfinite_messages(block)
                Mcur[rows] = block
                Lcur[rows] = np.log(block)
                with np.errstate(invalid="ignore"):
                    dd = np.abs(block - Mold[rows])
                md = float(np.nanmax(np.where(np.isfinite(dd), dd, 1.0)))
            healths[t]["residuals"].append(md)
            n_iter[t] += 1
            if md < cfg.tol:
                converged[t] = True
                active[t] = False
                froze = True
            elif n_iter[t] >= cfg.max_iterations:
                active[t] = False
                froze = True

        if trace_rounds or froze:
            sync_global()
        if cfg.record_trace:
            B = stacked_beliefs()
            for t in act_trials:
                traces[t].append(trial_beliefs(B, t))
        if emit_iterations:
            new_beliefs = stacked_beliefs()
            changed = int(
                np.count_nonzero(
                    np.abs(new_beliefs - prev_beliefs).max(axis=1) > cfg.tol
                )
            )
            prev_beliefs = new_beliefs
            round_msgs = n_dirs[0]
            msgs_cum += round_msgs
            tracer.iteration(
                residual=healths[0]["residuals"][-1],
                beliefs_changed=changed,
                messages=round_msgs,
                messages_cum=msgs_cum,
                bytes_cum=msgs_cum * K * 8,
            )
        if froze:
            rebuild()

    B = stacked_beliefs()
    return [
        BPOutcome(
            beliefs=trial_beliefs(B, t),
            n_iterations=n_iter[t],
            converged=bool(converged[t]),
            trace=traces[t],
            health=healths[t],
        )
        for t in range(T)
    ]
