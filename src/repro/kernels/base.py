"""Pluggable grid-BP kernel backends.

A *kernel backend* owns the inner message-passing loop of
:class:`~repro.core.bnloc.GridBPLocalizer`: it receives a fully prepared
:class:`BPProblem` (log node potentials, edge list, oriented operator
pairs, grid, config) and returns a :class:`BPOutcome` (beliefs, iteration
count, convergence flag, optional trace, health record).  Everything
*around* the loop — potentials, estimates, communication accounting,
health restarts — stays in the solver, so new backends (numba, GPU, …)
slot in without touching solver code.

Two backends ship today:

``reference``
    The per-trial kernels of PR 3 (:mod:`repro.kernels.reference`):
    ``cfg.optimized`` selects the vectorized or the straightforward
    implementation, both bit-identical.
``batched``
    The trial-axis kernel (:mod:`repro.kernels.batched`): a batch of
    same-shape problems runs each BP round as one stacked tensor pass.
    Bit-identical to ``reference`` on every problem (the kernel
    equivalence suite and the ``repro.audit`` bit-tier DiffCases are the
    gate).

Batch compatibility
-------------------
:func:`group_compatible` partitions a problem list into runnable batches:
problems co-batch only when their grids have identical shape and extent,
their state count ``K`` matches, and their configs are equal.  Mixed
shapes are *split into separate groups*, never silently co-batched;
handing an incompatible list straight to
:meth:`KernelBackend.run_batch` raises :class:`IncompatibleBatchError`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.obs import NULL_TRACER, NullTracer

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.bnloc import GridBPConfig
    from repro.core.grid import Grid2D

__all__ = [
    "BPProblem",
    "BPOutcome",
    "KernelBackend",
    "IncompatibleBatchError",
    "compatibility_key",
    "config_key",
    "group_compatible",
    "register_backend",
    "get_backend",
    "available_backends",
]


class IncompatibleBatchError(ValueError):
    """A problem batch mixes incompatible shapes/configs.

    Raised by :meth:`KernelBackend.run_batch` implementations that
    require a homogeneous batch.  Callers should partition with
    :func:`group_compatible` first; trials that cannot be grouped fall
    back to per-problem execution.
    """


@dataclass
class BPProblem:
    """One prepared grid-BP inference problem (inputs of the BP loop).

    ``log_phi`` is ``(n_unknown, K)``; ``edges`` lists unknown-index
    pairs; ``ops[e]`` is the oriented operator pair ``(fwd, bwd)`` of
    edge *e* (slot ``2e`` uses ``fwd``, ``2e+1`` uses ``bwd``).
    """

    log_phi: np.ndarray
    edges: list[tuple[int, int]]
    ops: list[tuple]
    grid: "Grid2D"
    cfg: "GridBPConfig"

    @property
    def n_unknowns(self) -> int:
        return int(self.log_phi.shape[0])

    @property
    def n_cells(self) -> int:
        return int(self.log_phi.shape[1])


@dataclass
class BPOutcome:
    """What a kernel returns for one problem: exactly the tuple the
    pre-backend ``_run_bp`` produced, named."""

    beliefs: np.ndarray
    n_iterations: int
    converged: bool
    trace: list[np.ndarray]
    health: dict


def config_key(grid: "Grid2D", cfg: "GridBPConfig", n_cells: int | None = None) -> tuple:
    """Batch-compatibility key from ``(grid, cfg)`` alone.

    This is :func:`compatibility_key` without a prepared problem in hand —
    the serving layer uses it to group *requests* into micro-batches
    before any node potentials exist, with the guarantee that requests
    sharing this key prepare into problems sharing
    :func:`compatibility_key` (the tuples are constructed identically).
    """
    return (
        grid.nx,
        grid.ny,
        float(grid.width),
        float(grid.height),
        int(grid.n_cells if n_cells is None else n_cells),
        dataclasses.astuple(cfg),
    )


def compatibility_key(problem: BPProblem) -> tuple:
    """Hashable batch-compatibility key of a problem.

    Problems sharing a key may run as one stacked batch: same grid shape
    and extent (hence same ``K`` and identical cell geometry) and equal
    config (schedule, damping, tolerances, …).  Different seeds /
    networks / priors are exactly what the batch axis is for.
    """
    return config_key(problem.grid, problem.cfg, problem.n_cells)


def group_compatible(
    problems: Sequence[BPProblem],
) -> list[tuple[tuple, list[int]]]:
    """Partition *problems* into compatible batches.

    Returns ``(key, indices)`` groups in first-seen order; indices are
    positions into the input sequence, in input order.  Incompatible
    problems land in separate groups — grouping never silently co-batches
    mixed shapes.
    """
    groups: dict[tuple, list[int]] = {}
    order: list[tuple] = []
    for i, p in enumerate(problems):
        key = compatibility_key(p)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(i)
    return [(key, groups[key]) for key in order]


class KernelBackend:
    """Interface every grid-BP kernel backend implements.

    ``run`` solves one problem; ``run_batch`` solves a *compatible* batch
    (see :func:`group_compatible`) and returns outcomes in input order.
    The default ``run_batch`` is a per-problem loop, so a backend only
    has to override it when it can do better.
    """

    name: str = "abstract"

    def run(self, problem: BPProblem, tracer: NullTracer = NULL_TRACER) -> BPOutcome:
        raise NotImplementedError

    def run_batch(
        self, problems: Sequence[BPProblem], tracer: NullTracer = NULL_TRACER
    ) -> list[BPOutcome]:
        return [self.run(p, tracer) for p in problems]


_REGISTRY: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Register a backend instance under ``backend.name``."""
    if not backend.name or backend.name == "abstract":
        raise ValueError("backend must define a concrete name")
    _REGISTRY[backend.name] = backend
    return backend


def _ensure_builtin_backends() -> None:
    # Imported lazily so repro.kernels.base stays import-cycle free and
    # scipy is only pulled in when a kernel actually runs.
    if "reference" not in _REGISTRY:
        from repro.kernels.reference import ReferenceBackend

        register_backend(ReferenceBackend())
    if "batched" not in _REGISTRY:
        from repro.kernels.batched import BatchedBackend

        register_backend(BatchedBackend())


def get_backend(name: str) -> KernelBackend:
    """Look up a backend by name (``"reference"`` / ``"batched"`` / any
    registered extension)."""
    _ensure_builtin_backends()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; available: "
            f"{sorted(_REGISTRY)}"
        ) from None


def available_backends() -> list[str]:
    _ensure_builtin_backends()
    return sorted(_REGISTRY)
