"""Cooperative deadline cancellation for kernel round loops.

A serving runtime cannot afford a BP solve that ignores its caller's
latency budget: a request with 50 ms left must not sit inside a 15-round
message-passing loop for 300 ms.  The mechanism here is *cooperative*
cancellation — the kernel checks an ambient deadline **between** BP
rounds and, when it has expired, stops early and returns the beliefs it
has, flagged so callers can mark the answer degraded.  Nothing is ever
interrupted mid-round, so partial results are always internally
consistent (a full synchronous round either committed or didn't).

Usage::

    with deadline_scope(seconds=0.050):
        outcome = backend.run(problem)          # stops between rounds
    if outcome.health.get("deadline_stop"):
        ...                                     # partial, flag degraded

Design rules
------------
* **Zero-cost when inactive.**  With no scope installed the per-round
  check is one thread-local attribute read and a ``None`` test — no
  clock call, no float math — so batch entry points (and the golden-trace
  bit-identity suite) are untouched.
* **Thread-local.**  Each worker thread/process owns its scope; a server
  thread setting a deadline cannot truncate an unrelated solve running
  elsewhere in the process.
* **At least one round always completes.**  Kernels check only after a
  round has run, so even an already-expired deadline yields a usable
  one-round posterior rather than raw unary beliefs.  Callers that
  cannot afford even one round should not dispatch the solve at all
  (the serving layer's fallback-estimate path).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = ["Deadline", "deadline_scope", "active_deadline", "deadline_stop"]


class Deadline:
    """An absolute wall-clock budget on a monotonic clock.

    ``clock`` is injectable for deterministic tests (takes no arguments,
    returns seconds).
    """

    __slots__ = ("at", "_clock")

    def __init__(self, seconds: float, clock=time.monotonic) -> None:
        if seconds < 0:
            raise ValueError("deadline seconds must be non-negative")
        self._clock = clock
        self.at = clock() + seconds

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.at - self._clock()

    def expired(self) -> bool:
        return self._clock() >= self.at


_SCOPE = threading.local()


def active_deadline() -> Deadline | None:
    """The innermost deadline installed in this thread, or ``None``."""
    return getattr(_SCOPE, "deadline", None)


@contextmanager
def deadline_scope(seconds: float | None = None, deadline: Deadline | None = None):
    """Install a :class:`Deadline` for the dynamic extent of the block.

    Pass either a relative budget in *seconds* or a prebuilt *deadline*.
    ``seconds=None`` (and no deadline) is a no-op scope, so call sites can
    thread an optional budget without branching.  Scopes nest: the inner
    scope shadows the outer one and the outer is restored on exit —
    including on exceptions raised mid-scope.
    """
    if deadline is None and seconds is not None:
        deadline = Deadline(seconds)
    if deadline is None:
        yield None
        return
    prev = getattr(_SCOPE, "deadline", None)
    _SCOPE.deadline = deadline
    try:
        yield deadline
    finally:
        _SCOPE.deadline = prev


def deadline_stop(health: dict) -> bool:
    """Between-round check kernels call at the top of each BP round.

    Returns ``True`` — and records ``health["deadline_stop"] = True`` —
    when an installed deadline has expired; the kernel then breaks out of
    its round loop and returns the beliefs computed so far
    (``converged=False``).  With no scope installed this is a single
    attribute read, so fault-free batch runs stay bit-identical.
    """
    d = getattr(_SCOPE, "deadline", None)
    if d is None or not d.expired():
        return False
    health["deadline_stop"] = True
    return True
