"""Per-trial grid-BP kernels (the pre-backend implementations, moved
verbatim from :mod:`repro.core.bnloc`).

``run_bp`` is the vectorized hot path of PR 3; ``run_bp_baseline`` is the
straightforward reference it is regression-tested against
(``cfg.optimized`` selects between them).  Both produce bit-identical
beliefs — see the docstrings below for why each optimization preserves
the exact float sequence.

:class:`ReferenceBackend` wraps them behind the
:class:`~repro.kernels.base.KernelBackend` interface; its ``run_batch``
is the default per-problem loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.kernels.base import BPOutcome, BPProblem, KernelBackend
from repro.kernels.cancel import deadline_stop
from repro.obs import NULL_TRACER, NullTracer

__all__ = [
    "run_bp",
    "run_bp_baseline",
    "ReferenceBackend",
    "_MSG_FLOOR",
    "_max_product_matvec",
]

_MSG_FLOOR = 1e-12  # keeps log-space products finite after truncation


def _max_product_matvec(op, hvec: np.ndarray) -> np.ndarray:
    """``out[j] = max_k op[j, k] · h[k]`` — the max-product analogue of
    ``op @ h`` (same operator orientation as the sum-product message).

    Implicit sparse zeros contribute 0, which is the correct floor since
    potentials and h are non-negative.
    """
    from scipy import sparse

    if sparse.issparse(op):
        scaled = op.multiply(hvec[None, :]).tocsr()
        return np.asarray(scaled.max(axis=1).todense()).ravel()
    return (op * hvec[None, :]).max(axis=1)


def run_bp(
    log_phi: np.ndarray,
    edges: list[tuple[int, int]],
    ops: list[tuple],
    grid,
    cfg,
    tracer: NullTracer = NULL_TRACER,
) -> tuple[np.ndarray, int, bool, list[np.ndarray], dict]:
    """Loopy sum-product over unknown-unknown edges.

    *ops[e]* is the oriented operator pair ``(fwd, bwd)`` of edge *e*.
    Returns normalized beliefs ``(n_unknown, K)``, iteration count,
    convergence flag, (if ``cfg.record_trace``) per-iteration beliefs,
    and a health dict with the residual history and the count of
    non-finite messages repaired to uniform (always 0 on numerically
    healthy runs — the repair triggers only off a single NaN/Inf float
    check per round).  An enabled *tracer* additionally receives one
    iteration record per round (message residual, beliefs-changed count,
    message/byte spend); tracing only reads the state, never alters it.

    Two hot-path optimizations over :func:`run_bp_baseline`, both
    bit-identical by construction (regression-tested):

    * ``np.log(messages)`` is maintained as one stacked array, refreshed
      once per round, instead of being recomputed per directed slot
      (``np.log`` on equal inputs is deterministic, so cached logs equal
      recomputed ones bit-for-bit);
    * on the synchronous sum-product schedule, outgoing messages whose
      edges share one sparse kernel (the common case — the
      RangingPotentialCache quantizes distances exactly so edges share
      ``csr`` objects) are computed by a single sparse mat-mat instead
      of one mat-vec per slot.  scipy's CSR mat-mat accumulates each
      column in the same index order as the mat-vec kernel, so the
      batched columns are bit-identical to per-slot products; dense
      operators stay on the mat-vec path because BLAS gemm/gemv are
      *not* bit-identical.
    """
    if not cfg.optimized:
        return run_bp_baseline(log_phi, edges, ops, grid, cfg, tracer)
    from scipy import sparse as _sparse

    n_u, K = log_phi.shape
    # Directed message storage: for each undirected edge e=(i,j), slot
    # 2e is i->j and 2e+1 is j->i.
    n_dir = 2 * len(edges)
    messages = np.full((n_dir, K), 1.0 / K)
    log_messages = np.log(messages)
    in_slots: list[list[int]] = [[] for _ in range(n_u)]  # messages INTO node
    out_slots: list[list[tuple[int, int, int]]] = [
        [] for _ in range(n_u)
    ]  # (slot, edge_index, recipient)
    for e, (i, j) in enumerate(edges):
        in_slots[j].append(2 * e)
        in_slots[i].append(2 * e + 1)
        out_slots[i].append((2 * e, e, j))
        out_slots[j].append((2 * e + 1, e, i))

    def beliefs_now() -> np.ndarray:
        out = np.empty((n_u, K))
        for ui in range(n_u):
            acc = log_phi[ui].copy()
            for s in in_slots[ui]:
                acc += log_messages[s]
            acc -= acc.max()
            b = np.exp(acc)
            out[ui] = b / b.sum()
        return out

    converged = False
    n_iter = 0
    trace: list[np.ndarray] = []
    health = {"residuals": [], "message_repairs": 0}
    if cfg.record_trace:
        # Iteration 0: unary-only beliefs (prior + anchor evidence,
        # before any cooperation) — the natural convergence baseline.
        trace.append(beliefs_now())
    if not edges:
        return beliefs_now(), 0, True, trace, health

    serial = cfg.schedule == "serial"
    # Static batching plan (operators never change across rounds):
    # group directed slots by sparse-kernel identity; groups of one
    # keep the plain mat-vec.
    sparse_groups: list[tuple] = []
    slot_batched = np.zeros(n_dir, dtype=bool)
    unbatched_slots: np.ndarray | None = None
    src_of = dst_of = swap_of = None
    if not serial and not cfg.max_product:
        by_op: dict[int, list[int]] = {}
        op_by_id: dict[int, object] = {}
        for e in range(len(edges)):
            for parity in (0, 1):
                op = ops[e][parity]
                if _sparse.issparse(op):
                    by_op.setdefault(id(op), []).append(2 * e + parity)
                    op_by_id[id(op)] = op
        for key, slots in by_op.items():
            if len(slots) > 1:
                arr = np.asarray(slots, dtype=np.intp)
                sparse_groups.append((op_by_id[key], arr))
                slot_batched[arr] = True
        unbatched_slots = np.nonzero(~slot_batched)[0]
        # Directed-slot endpoint maps for the vectorized h-build: slot
        # 2e carries i->j (source i, destination j), 2e+1 the reverse.
        src_of = np.empty(n_dir, dtype=np.intp)
        dst_of = np.empty(n_dir, dtype=np.intp)
        for e, (i, j) in enumerate(edges):
            src_of[2 * e] = i
            dst_of[2 * e] = j
            src_of[2 * e + 1] = j
            dst_of[2 * e + 1] = i
        swap_of = np.arange(n_dir) ^ 1

    prev_beliefs = beliefs_now() if tracer.enabled else None
    round_msgs = 2 * len(edges)
    msgs_cum = 0
    H = np.empty((n_dir, K)) if not serial else None
    for n_iter in range(1, cfg.max_iterations + 1):
        # Cooperative cancellation: an expired ambient deadline stops the
        # loop between rounds (at least one round always runs); the
        # check is a thread-local read, free when no scope is active.
        if n_iter > 1 and deadline_stop(health):
            n_iter -= 1
            break
        # "sync" computes the whole round from the previous round's
        # messages; "serial" commits each node's messages immediately
        # so later nodes in the sweep see them.
        new_messages = messages if serial else np.empty_like(messages)
        old_messages = messages.copy() if serial else messages

        def commit(slot: int, msg: np.ndarray) -> None:
            s = msg.sum()
            if s <= 0:
                msg = np.full(K, 1.0 / K)
            else:
                msg = msg / s
            if cfg.damping > 0:
                prev = old_messages[slot] if serial else messages[slot]
                msg = (1 - cfg.damping) * msg + cfg.damping * prev
                msg = msg / msg.sum()
            np.maximum(msg, _MSG_FLOOR, out=msg)
            new_messages[slot] = msg
            if serial:
                # keep the log cache Gauss–Seidel-fresh
                log_messages[slot] = np.log(new_messages[slot])

        def commit_rows(slots_arr: np.ndarray, res: np.ndarray) -> None:
            # Vectorized commit for a block of sync-schedule slots.
            # Every step is elementwise or a row-wise reduction, and
            # numpy's axis-1 sum/max over a C-contiguous block uses the
            # same pairwise kernel as the per-row reduction, so this is
            # bit-identical to running `commit` on each row.
            sums = res.sum(axis=1)
            bad = sums <= 0
            if bad.any():
                res[bad] = 1.0 / K
                sums[bad] = 1.0
            res /= sums[:, None]
            if cfg.damping > 0:
                res *= 1 - cfg.damping
                res += cfg.damping * messages[slots_arr]
                res /= res.sum(axis=1)[:, None]
            np.maximum(res, _MSG_FLOOR, out=res)
            new_messages[slots_arr] = res

        if serial or cfg.max_product:
            for ui in range(n_u):
                if not out_slots[ui]:
                    continue
                total = log_phi[ui].copy()
                for s in in_slots[ui]:
                    total += log_messages[s]
                for slot, e, _dst in out_slots[ui]:
                    # Exclude the recipient's own message (slot^1 is
                    # the reverse direction, which feeds INTO ui).
                    back = slot ^ 1
                    h = total - log_messages[back]
                    h -= h.max()
                    hvec = np.exp(h)
                    # slot parity picks the operator orientation: even
                    # slots are i→j (fwd), odd are j→i (bwd).
                    op = ops[e][slot & 1]
                    if cfg.max_product:
                        msg = _max_product_matvec(op, hvec)
                    else:
                        msg = op.dot(hvec)
                    commit(slot, msg)
        else:
            # Synchronous sum-product, fully vectorized.  Per-node
            # message-product accumulation runs through np.add.at,
            # whose unbuffered in-index-order adds replay the exact
            # fadd sequence of the per-node loop (in_slots[ui] is in
            # increasing slot order by construction, matching the
            # slot-major iteration of the fancy index).
            totals = log_phi.copy()
            np.add.at(totals, dst_of, log_messages)
            np.subtract(totals[src_of], log_messages[swap_of], out=H)
            H -= H.max(axis=1, keepdims=True)
            np.exp(H, out=H)
            for op, slots in sparse_groups:
                res = np.ascontiguousarray(op.dot(H[slots].T).T)
                commit_rows(slots, res)
            if len(unbatched_slots):
                res = np.empty((len(unbatched_slots), K))
                for k, slot in enumerate(unbatched_slots):
                    res[k] = ops[slot >> 1][slot & 1].dot(H[slot])
                commit_rows(unbatched_slots, res)

        max_delta = float(np.abs(new_messages - old_messages).max())
        repaired = False
        if cfg.health_checks and not np.isfinite(max_delta):
            # A NaN/Inf somewhere in the round's messages (corrupted
            # potentials / degenerate inputs): repair the offending
            # rows to uniform so BP can keep going.  The trigger is a
            # single float check, so healthy rounds pay nothing.
            from repro.core.health import repair_nonfinite_messages

            health["message_repairs"] += repair_nonfinite_messages(new_messages)
            repaired = True
            with np.errstate(invalid="ignore"):
                deltas = np.abs(new_messages - old_messages)
            max_delta = float(np.nanmax(np.where(np.isfinite(deltas), deltas, 1.0)))
        health["residuals"].append(max_delta)
        messages = new_messages
        if not serial or repaired:
            log_messages = np.log(messages)
        if cfg.record_trace:
            trace.append(beliefs_now())
        if tracer.enabled:
            new_beliefs = beliefs_now()
            changed = int(
                np.count_nonzero(
                    np.abs(new_beliefs - prev_beliefs).max(axis=1) > cfg.tol
                )
            )
            prev_beliefs = new_beliefs
            msgs_cum += round_msgs
            tracer.iteration(
                residual=max_delta,
                beliefs_changed=changed,
                messages=round_msgs,
                messages_cum=msgs_cum,
                bytes_cum=msgs_cum * K * 8,
            )
        if max_delta < cfg.tol:
            converged = True
            break

    return beliefs_now(), n_iter, converged, trace, health


def run_bp_baseline(
    log_phi: np.ndarray,
    edges: list[tuple[int, int]],
    ops: list[tuple],
    grid,
    cfg,
    tracer: NullTracer = NULL_TRACER,
) -> tuple[np.ndarray, int, bool, list[np.ndarray], dict]:
    """Reference implementation of :func:`run_bp`.

    Kept for A/B benchmarking (``GridBPConfig(optimized=False)``) and
    the bit-identity regression tests; recomputes message logs per
    slot and sends every message through its own mat-vec.
    """
    n_u, K = log_phi.shape
    # Directed message storage: for each undirected edge e=(i,j), slot
    # 2e is i->j and 2e+1 is j->i.
    n_dir = 2 * len(edges)
    messages = np.full((n_dir, K), 1.0 / K)
    in_slots: list[list[int]] = [[] for _ in range(n_u)]  # messages INTO node
    out_slots: list[list[tuple[int, int, int]]] = [
        [] for _ in range(n_u)
    ]  # (slot, edge_index, recipient)
    for e, (i, j) in enumerate(edges):
        in_slots[j].append(2 * e)
        in_slots[i].append(2 * e + 1)
        out_slots[i].append((2 * e, e, j))
        out_slots[j].append((2 * e + 1, e, i))

    def node_log_in(ui: int) -> np.ndarray:
        acc = log_phi[ui].copy()
        for s in in_slots[ui]:
            acc += np.log(messages[s])
        return acc

    def beliefs_from(msgs: np.ndarray) -> np.ndarray:
        out = np.empty((n_u, K))
        for ui in range(n_u):
            acc = log_phi[ui].copy()
            for s in in_slots[ui]:
                acc += np.log(msgs[s])
            acc -= acc.max()
            b = np.exp(acc)
            out[ui] = b / b.sum()
        return out

    converged = False
    n_iter = 0
    trace: list[np.ndarray] = []
    health = {"residuals": [], "message_repairs": 0}
    if cfg.record_trace:
        # Iteration 0: unary-only beliefs (prior + anchor evidence,
        # before any cooperation) — the natural convergence baseline.
        trace.append(beliefs_from(messages))
    if not edges:
        return beliefs_from(messages), 0, True, trace, health

    prev_beliefs = beliefs_from(messages) if tracer.enabled else None
    round_msgs = 2 * len(edges)
    msgs_cum = 0
    serial = cfg.schedule == "serial"
    for n_iter in range(1, cfg.max_iterations + 1):
        # Cooperative cancellation between rounds, as in run_bp.
        if n_iter > 1 and deadline_stop(health):
            n_iter -= 1
            break
        # "sync" computes the whole round from the previous round's
        # messages; "serial" commits each node's messages immediately
        # so later nodes in the sweep see them.
        new_messages = messages if serial else np.empty_like(messages)
        old_messages = messages.copy() if serial else messages
        for ui in range(n_u):
            if not out_slots[ui]:
                continue
            # In serial mode `messages` aliases `new_messages`, so this
            # reads the freshest values (Gauss–Seidel); in sync mode it
            # reads the previous round.
            total = node_log_in(ui)
            for slot, e, _dst in out_slots[ui]:
                # Exclude the recipient's own message (slot^1 is the
                # reverse direction, which feeds INTO ui).
                back = slot ^ 1
                h = total - np.log(messages[back])
                h -= h.max()
                hvec = np.exp(h)
                # slot parity picks the operator orientation: even
                # slots are i→j (fwd), odd are j→i (bwd).
                op = ops[e][slot & 1]
                if cfg.max_product:
                    msg = _max_product_matvec(op, hvec)
                else:
                    msg = op.dot(hvec)
                s = msg.sum()
                if s <= 0:
                    msg = np.full(K, 1.0 / K)
                else:
                    msg = msg / s
                if cfg.damping > 0:
                    prev = old_messages[slot] if serial else messages[slot]
                    msg = (1 - cfg.damping) * msg + cfg.damping * prev
                    msg = msg / msg.sum()
                np.maximum(msg, _MSG_FLOOR, out=msg)
                new_messages[slot] = msg
        max_delta = float(np.abs(new_messages - old_messages).max())
        if cfg.health_checks and not np.isfinite(max_delta):
            # A NaN/Inf somewhere in the round's messages (corrupted
            # potentials / degenerate inputs): repair the offending
            # rows to uniform so BP can keep going.  The trigger is a
            # single float check, so healthy rounds pay nothing.
            from repro.core.health import repair_nonfinite_messages

            health["message_repairs"] += repair_nonfinite_messages(new_messages)
            with np.errstate(invalid="ignore"):
                deltas = np.abs(new_messages - old_messages)
            max_delta = float(np.nanmax(np.where(np.isfinite(deltas), deltas, 1.0)))
        health["residuals"].append(max_delta)
        messages = new_messages
        if cfg.record_trace:
            trace.append(beliefs_from(messages))
        if tracer.enabled:
            new_beliefs = beliefs_from(messages)
            changed = int(
                np.count_nonzero(
                    np.abs(new_beliefs - prev_beliefs).max(axis=1) > cfg.tol
                )
            )
            prev_beliefs = new_beliefs
            msgs_cum += round_msgs
            tracer.iteration(
                residual=max_delta,
                beliefs_changed=changed,
                messages=round_msgs,
                messages_cum=msgs_cum,
                bytes_cum=msgs_cum * K * 8,
            )
        if max_delta < cfg.tol:
            converged = True
            break

    return beliefs_from(messages), n_iter, converged, trace, health


class ReferenceBackend(KernelBackend):
    """Per-trial execution: every problem runs its own BP loop.

    ``cfg.optimized`` picks between the vectorized and the baseline
    kernel, exactly as before the backend layer existed.
    """

    name = "reference"

    def run(self, problem: BPProblem, tracer: NullTracer = NULL_TRACER) -> BPOutcome:
        return BPOutcome(
            *run_bp(
                problem.log_phi,
                problem.edges,
                problem.ops,
                problem.grid,
                problem.cfg,
                tracer,
            )
        )

    def run_batch(
        self, problems: Sequence[BPProblem], tracer: NullTracer = NULL_TRACER
    ) -> list[BPOutcome]:
        return [self.run(p, tracer) for p in problems]
