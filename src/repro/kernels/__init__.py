"""Pluggable grid-BP kernel backends (reference and batched trial-axis)."""

from repro.kernels.base import (
    BPOutcome,
    BPProblem,
    IncompatibleBatchError,
    KernelBackend,
    available_backends,
    compatibility_key,
    config_key,
    get_backend,
    group_compatible,
    register_backend,
)
from repro.kernels.cancel import (
    Deadline,
    active_deadline,
    deadline_scope,
    deadline_stop,
)

__all__ = [
    "BPProblem",
    "BPOutcome",
    "KernelBackend",
    "IncompatibleBatchError",
    "compatibility_key",
    "config_key",
    "group_compatible",
    "register_backend",
    "get_backend",
    "available_backends",
    "Deadline",
    "deadline_scope",
    "active_deadline",
    "deadline_stop",
]
