"""Pluggable grid-BP kernel backends (reference and batched trial-axis)."""

from repro.kernels.base import (
    BPOutcome,
    BPProblem,
    IncompatibleBatchError,
    KernelBackend,
    available_backends,
    compatibility_key,
    get_backend,
    group_compatible,
    register_backend,
)

__all__ = [
    "BPProblem",
    "BPOutcome",
    "KernelBackend",
    "IncompatibleBatchError",
    "compatibility_key",
    "group_compatible",
    "register_backend",
    "get_backend",
    "available_backends",
]
