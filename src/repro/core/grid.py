"""2-D grid discretization of the deployment field.

The Bayesian-network localizer models each unknown node's position as a
categorical variable over the cells of a regular grid; :class:`Grid2D`
owns the cell geometry and the (cached) pairwise cell-center distance
matrix that every pairwise potential is built from.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["Grid2D"]


class Grid2D:
    """Regular ``nx × ny`` grid over ``[0, width] × [0, height]``.

    Cells are indexed in row-major order: cell ``k`` has column
    ``k % nx`` and row ``k // nx``; its center is ``centers[k]``.
    """

    def __init__(
        self, nx: int, ny: int | None = None, width: float = 1.0, height: float = 1.0
    ) -> None:
        if ny is None:
            ny = nx
        if nx < 2 or ny < 2:
            raise ValueError("grid needs at least 2 cells per axis")
        self.nx = int(nx)
        self.ny = int(ny)
        self.width = check_positive(width, "width")
        self.height = check_positive(height, "height")
        xs = (np.arange(self.nx) + 0.5) * self.width / self.nx
        ys = (np.arange(self.ny) + 0.5) * self.height / self.ny
        gx, gy = np.meshgrid(xs, ys)
        #: ``(K, 2)`` cell-center coordinates, row-major.
        self.centers = np.ascontiguousarray(
            np.column_stack([gx.ravel(), gy.ravel()])
        )
        self.xs = xs
        self.ys = ys
        self._pairwise: np.ndarray | None = None
        self._bearings: np.ndarray | None = None

    @property
    def n_cells(self) -> int:
        return self.nx * self.ny

    @property
    def cell_width(self) -> float:
        return self.width / self.nx

    @property
    def cell_height(self) -> float:
        return self.height / self.ny

    @property
    def cell_diagonal(self) -> float:
        """The quantization scale: a position is known to ± half a diagonal."""
        return float(np.hypot(self.cell_width, self.cell_height))

    def pairwise_center_distances(self) -> np.ndarray:
        """``(K, K)`` distances between all cell centers (cached).

        For a 20×20 grid this is a 400×400 array (1.3 MB); computed once
        and shared by every pairwise potential.
        """
        if self._pairwise is None:
            c = self.centers
            diff = c[:, None, :] - c[None, :, :]
            self._pairwise = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        return self._pairwise

    def use_shared_pairwise(self, matrix: np.ndarray) -> None:
        """Install a precomputed center-distance matrix (cache adoption).

        Lets a cross-trial cache (``repro.core.potentials.shared_registry``)
        hand an identical grid the ``(K, K)`` matrix it already built,
        instead of recomputing it.  The matrix must match this grid's cell
        count; geometric equality is the caller's contract.
        """
        mat = np.asarray(matrix, dtype=np.float64)
        if mat.shape != (self.n_cells, self.n_cells):
            raise ValueError(
                f"pairwise matrix must be ({self.n_cells}, {self.n_cells}), "
                f"got {mat.shape}"
            )
        self._pairwise = mat

    def pairwise_center_bearings(self) -> np.ndarray:
        """``(K, K)`` bearings (radians, atan2 convention) between cell
        centers: entry ``[k, l]`` is the direction *from* cell k *to* cell
        l.  Cached; the diagonal is 0 by convention.  Used by
        angle-of-arrival potentials.
        """
        if self._bearings is None:
            c = self.centers
            dx = c[None, :, 0] - c[:, None, 0]
            dy = c[None, :, 1] - c[:, None, 1]
            self._bearings = np.arctan2(dy, dx)
        return self._bearings

    def bearings_to_point(self, point: np.ndarray) -> np.ndarray:
        """``(K,)`` bearings from every cell center to *point*."""
        p = np.asarray(point, dtype=np.float64)
        if p.shape != (2,):
            raise ValueError("point must have shape (2,)")
        diff = p - self.centers
        return np.arctan2(diff[:, 1], diff[:, 0])

    def distances_to_point(self, point: np.ndarray) -> np.ndarray:
        """``(K,)`` distances from every cell center to *point*."""
        p = np.asarray(point, dtype=np.float64)
        if p.shape != (2,):
            raise ValueError("point must have shape (2,)")
        diff = self.centers - p
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def cell_of(self, points: np.ndarray) -> np.ndarray:
        """Row-major cell index of each ``(m, 2)`` point (clipped to field)."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim == 1:
            pts = pts[None, :]
        col = np.clip(
            (pts[:, 0] / self.cell_width).astype(int), 0, self.nx - 1
        )
        row = np.clip(
            (pts[:, 1] / self.cell_height).astype(int), 0, self.ny - 1
        )
        return row * self.nx + col

    def expectation(self, weights: np.ndarray) -> np.ndarray:
        """Mean position under a normalized belief vector (MMSE estimate)."""
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (self.n_cells,):
            raise ValueError(
                f"weights must have shape ({self.n_cells},), got {w.shape}"
            )
        total = w.sum()
        if total <= 0:
            raise ValueError("weights must have positive mass")
        return (w[:, None] * self.centers).sum(axis=0) / total

    def covariance(self, weights: np.ndarray) -> np.ndarray:
        """2×2 covariance of the belief (posterior spread / uncertainty)."""
        mean = self.expectation(weights)
        w = np.asarray(weights, dtype=np.float64)
        w = w / w.sum()
        d = self.centers - mean
        return np.einsum("k,ki,kj->ij", w, d, d)

    def map_estimate(self, weights: np.ndarray) -> np.ndarray:
        """Cell center of the largest belief entry (MAP estimate)."""
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (self.n_cells,):
            raise ValueError("weights shape mismatch")
        return self.centers[int(np.argmax(w))].copy()
