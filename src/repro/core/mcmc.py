"""Sampling-based continuous-posterior cooperative localization (MCMC).

The third solver family, next to the grid Bayesian network (exact on a
discretized state space) and NBP (particle message passing).  A
Metropolis-within-Gibbs sampler sweeps the unknown nodes; each node move
is a multiple-try Metropolis (MTM) step in the style of the beetroots
sampler for sensor-localization posteriors: draw ``k`` Gaussian candidates
around the current position, pick one by its posterior weight, and accept
against ``k − 1`` reference draws around the selected point.  MTM's
weighted selection makes the random-walk usable on the sharply ridged
likelihoods ranging produces, where plain Metropolis mixes poorly.

The target density reuses the *same* building blocks as the other
solvers — ``ranging.log_likelihood``, ``radio.p_detect`` (link and
negative evidence, floored exactly like the grid potentials),
``bearing_model.log_likelihood``, ``prior.log_density``, and the hard
deployment-field support the grid's state space implies — so the three
families approximate one posterior, not three.  That is also why this
module leans on the tail-safe likelihoods: MTM weights are combined with
:func:`repro.utils.logsumexp`, and a candidate in a zero-mass region must
contribute ``-inf`` (an ordinary rejection), never NaN.

Compared to the grid, the sampler has no quantization floor: its per-node
sample covariances feed :mod:`repro.metrics.calibration` directly.
Convergence is self-reported through split-R̂ and a crude ESS over the
kept draws (``extras["diagnostics"]``, also annotated on the obs tracer).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.grid import Grid2D
from repro.core.result import LocalizationResult, Localizer
from repro.measurement.measurements import MeasurementSet
from repro.network.radio import RadioModel, UnitDiskRadio
from repro.obs import NULL_TRACER, NullTracer
from repro.priors.base import PositionPrior
from repro.priors.deployment import UniformPrior
from repro.utils.rng import RNGLike, as_generator
from repro.utils.stablemath import logsumexp, safe_log, softmax_from_log

__all__ = ["MCMCLocalizer", "MCMCConfig"]


@dataclass
class MCMCConfig:
    """Tunables of :class:`MCMCLocalizer`.

    Attributes
    ----------
    n_chains:
        Independent chains (≥ 2 for a meaningful split-R̂).
    n_samples:
        Kept draws per chain after burn-in (before thinning).
    burn_in:
        Discarded warm-up sweeps per chain.
    k_try:
        Multiple-try candidates per node move.
    step_scale:
        Proposal standard deviation as a fraction of the radio range.
    thin:
        Keep every *thin*-th post-burn-in sweep.
    prior_grid_size:
        Resolution used only to draw initial states from the prior.
    use_negative_evidence:
        Penalize positions inside the coverage disk of anchors the node
        does *not* hear (same floored factor as the grid solver).
    use_connectivity_in_ranging:
        Multiply the link-detection probability into ranged links.
    rhat_tol:
        ``converged`` reports ``max split-R̂ ≤ rhat_tol``.
    keep_samples:
        Attach the raw ``(n_chains, n_kept, n_unknowns, 2)`` draw tensor
        as ``extras["samples"]`` (off by default — it can dwarf the
        result).
    eta_support:
        When set, the path-loss exponent η becomes a latent variable on
        this discrete support, resampled once per sweep by a categorical
        Gibbs draw from the total data likelihood at the current
        positions (requires RSSI-based ranging; the sampling counterpart
        of :class:`~repro.core.jointchannel.JointChannelLocalizer`).
        ``None`` (the default) keeps the ranging model fixed — existing
        seeded chains are bit-identical.
    audit:
        Runtime invariant checking, as in the grid/NBP configs.
    """

    n_chains: int = 2
    n_samples: int = 300
    burn_in: int = 150
    k_try: int = 4
    step_scale: float = 0.4
    thin: int = 1
    prior_grid_size: int = 25
    use_negative_evidence: bool = True
    use_connectivity_in_ranging: bool = True
    rhat_tol: float = 1.3
    keep_samples: bool = False
    eta_support: tuple[float, ...] | None = None
    audit: str | None = None

    def __post_init__(self) -> None:
        if self.n_chains < 1:
            raise ValueError("n_chains must be >= 1")
        if self.n_samples < 4:
            raise ValueError("n_samples must be >= 4")
        if self.burn_in < 0:
            raise ValueError("burn_in must be non-negative")
        if self.k_try < 2:
            raise ValueError("k_try must be >= 2 (plain Metropolis is k=1)")
        if self.step_scale <= 0:
            raise ValueError("step_scale must be positive")
        if self.thin < 1:
            raise ValueError("thin must be >= 1")
        if self.prior_grid_size < 2:
            raise ValueError("prior_grid_size must be >= 2")
        if self.rhat_tol <= 1.0:
            raise ValueError("rhat_tol must exceed 1.0")
        if self.eta_support is not None:
            support = tuple(float(e) for e in self.eta_support)
            if not support or any(e <= 0 for e in support):
                raise ValueError("eta_support must be non-empty and positive")
            if len(set(support)) != len(support):
                raise ValueError("eta_support must not contain duplicates")
            self.eta_support = support
        if self.audit not in (None, "off", "warn", "raise"):
            raise ValueError("audit must be one of None, 'off', 'warn', 'raise'")


# --------------------------------------------------------------------- #
# chain diagnostics
# --------------------------------------------------------------------- #
def split_rhat(draws: np.ndarray) -> float:
    """Split-R̂ of one scalar chain set ``(n_chains, n_kept)``.

    Each chain is halved so a single slowly-drifting chain is caught even
    with ``n_chains == 1``; returns NaN when fewer than 2 draws per half.
    """
    x = np.asarray(draws, dtype=np.float64)
    half = x.shape[1] // 2
    if half < 2:
        return float("nan")
    halves = np.concatenate([x[:, :half], x[:, half : 2 * half]], axis=0)
    mu = halves.mean(axis=1)
    W = float(halves.var(axis=1, ddof=1).mean())
    B = float(half * mu.var(ddof=1))
    if W <= 0:
        # all halves constant: identical (R̂ = 1) or irreconcilable (∞)
        return 1.0 if B <= 0 else float("inf")
    var_plus = (half - 1) / half * W + B / half
    return float(np.sqrt(var_plus / W))


def effective_sample_size(draws: np.ndarray) -> float:
    """Crude multi-chain ESS: ``mn / (1 + 2 Σ ρ_t)`` with the mean
    within-chain autocorrelation truncated at the first lag below 0.05."""
    x = np.asarray(draws, dtype=np.float64)
    m, n = x.shape
    if n < 4:
        return float(m * n)
    rhos = []
    for row in x:
        r = row - row.mean()
        ac = np.correlate(r, r, mode="full")[n - 1 :]
        if ac[0] <= 0:  # constant chain — no autocorrelation information
            continue
        rhos.append(ac / ac[0])
    if not rhos:
        return float(m * n)
    rho = np.mean(rhos, axis=0)
    tail = 0.0
    for t in range(1, n):
        if rho[t] < 0.05:
            break
        tail += float(rho[t])
    return float(m * n / (1.0 + 2.0 * tail))


class MCMCLocalizer(Localizer):
    """Metropolis-within-Gibbs / MTM sampler over continuous positions.

    Handles every observation modality the grid solver does — ranging,
    pure connectivity, bearings, negative evidence — because the target
    density is assembled from the same model objects.  Seeded runs are
    bit-reproducible: all randomness flows through the single generator
    passed to :meth:`localize`.
    """

    name = "mcmc"

    def __init__(
        self,
        prior: PositionPrior | None = None,
        config: MCMCConfig | None = None,
        radio: RadioModel | None = None,
        tracer: NullTracer | None = None,
    ) -> None:
        self.prior = prior
        self.config = config if config is not None else MCMCConfig()
        self.radio = radio
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------ #
    def localize(
        self, measurements: MeasurementSet, rng: RNGLike = None
    ) -> LocalizationResult:
        tracer = self.tracer
        with tracer.timer("localize"):
            result = self._localize_traced(measurements, rng, tracer)
        if tracer.enabled:
            result.telemetry = tracer.snapshot()
        return result

    def _localize_traced(
        self, measurements: MeasurementSet, rng: RNGLike, tracer: NullTracer
    ) -> LocalizationResult:
        ms = measurements
        cfg = self.config
        gen = as_generator(rng)
        prior = self.prior if self.prior is not None else UniformPrior(ms.width, ms.height)
        radio = self.radio if self.radio is not None else UnitDiskRadio(ms.radio_range)
        grid = Grid2D(cfg.prior_grid_size, cfg.prior_grid_size, ms.width, ms.height)

        unknowns = [int(u) for u in ms.unknown_ids]
        index = {u: ui for ui, u in enumerate(unknowns)}
        anchors_of = {
            u: [int(a) for a in ms.anchor_ids if ms.adjacency[u, a]] for u in unknowns
        }
        silent_anchors = {
            u: [int(a) for a in ms.anchor_ids if not ms.adjacency[u, a]]
            for u in unknowns
        }
        unknown_neighbors = {
            u: [int(v) for v in ms.neighbors(u) if not ms.anchor_mask[v]]
            for u in unknowns
        }
        target = _TargetDensity(ms, prior, radio, cfg, anchors_of, silent_anchors,
                                unknown_neighbors)
        eta_models = eta_links = eta_samples = None
        eta_start = 0
        if cfg.eta_support is not None:
            eta_models, eta_start, eta_links = self._eta_setup(ms, cfg)

        step = cfg.step_scale * ms.radio_range
        n_kept = cfg.n_samples
        sweeps = cfg.burn_in + cfg.n_samples * cfg.thin
        samples = np.empty((cfg.n_chains, n_kept, len(unknowns), 2))
        if eta_models is not None:
            eta_samples = np.empty((cfg.n_chains, n_kept))
        proposals = 0
        accepts = 0
        ever_finite = np.zeros(len(unknowns), dtype=bool)

        for chain in range(cfg.n_chains):
            with tracer.timer("chain"):
                positions = np.where(
                    ms.anchor_mask[:, None], ms.anchor_positions_full, 0.0
                ).astype(np.float64)
                for u in unknowns:
                    positions[u] = prior.sample(u, 1, grid, gen)[0]
                eta_idx = eta_start
                if eta_models is not None:
                    target.ranging = eta_models[eta_idx]
                kept = 0
                for sweep in range(sweeps):
                    moved = 0.0
                    for u in unknowns:
                        proposals += 1
                        x = positions[u]
                        logp_x = target(u, x[None, :], positions)[0]
                        if np.isfinite(logp_x):
                            ever_finite[index[u]] = True
                        cands = x + gen.normal(0.0, step, size=(cfg.k_try, 2))
                        logw_c = target(u, cands, positions)
                        up = logsumexp(logw_c)
                        if not np.isfinite(up):
                            continue  # every candidate in a zero-mass region
                        y = cands[int(gen.choice(cfg.k_try, p=softmax_from_log(logw_c)))]
                        refs = y + gen.normal(0.0, step, size=(cfg.k_try - 1, 2))
                        logw_z = target(u, refs, positions)
                        down = logsumexp(np.append(logw_z, logp_x))
                        # symmetric proposal: the MTM ratio is Σw(C)/Σw(Z∪{x})
                        if np.log(gen.uniform()) < up - down:
                            delta = float(np.linalg.norm(y - x))
                            positions[u] = y
                            accepts += 1
                            moved = max(moved, delta)
                    if eta_models is not None:
                        # Gibbs step for the latent exponent: categorical
                        # draw from the total data likelihood at the
                        # current positions (uniform prior over support).
                        scores = self._eta_scores(eta_models, eta_links, positions)
                        if np.isfinite(scores).any():
                            eta_idx = int(
                                gen.choice(
                                    len(eta_models), p=softmax_from_log(scores)
                                )
                            )
                            target.ranging = eta_models[eta_idx]
                    if sweep >= cfg.burn_in and (sweep - cfg.burn_in) % cfg.thin == 0:
                        samples[chain, kept] = positions[unknowns]
                        if eta_samples is not None:
                            eta_samples[chain, kept] = cfg.eta_support[eta_idx]
                        kept += 1
                    if tracer.enabled:
                        tracer.iteration(
                            chain=chain, residual=moved, kept=kept
                        )

        with tracer.timer("estimate"):
            result = self._finish(
                ms, cfg, prior, grid, unknowns, samples, ever_finite,
                accepts, proposals, sweeps, tracer,
            )
        if eta_samples is not None:
            support = np.asarray(cfg.eta_support, dtype=np.float64)
            freq = (eta_samples[..., None] == support).mean(axis=(0, 1))
            result.extras.update(
                eta_support=[float(e) for e in support],
                eta_posterior=[float(f) for f in freq],
                eta_map=float(support[int(np.argmax(freq))]),
                eta_mean=float(eta_samples.mean()),
            )
            if tracer.enabled:
                tracer.annotate("eta_map", result.extras["eta_map"])
        self._maybe_audit(result, ms, tracer)
        return result

    # ------------------------------------------------------------------ #
    @staticmethod
    def _eta_setup(ms: MeasurementSet, cfg: MCMCConfig):
        """Hypothesis ranging models, start index, and flat link arrays.

        One model per η on the support, sharing the receiver's inversion
        exponent (see :mod:`repro.measurement.channel`); an NLOS
        contamination/mixture wrapper on the measured model is re-applied
        around each hypothesis so the target density keeps its semantics.
        The chain starts at the support point nearest the receiver's own
        exponent.
        """
        import dataclasses

        from repro.core.jointchannel import JointChannelLocalizer
        from repro.measurement.channel import ChannelRSSIRanging
        from repro.measurement.nlos import NLOSRanging, RobustRanging

        if not ms.has_ranging:
            raise ValueError("eta_support needs ranged measurements")
        path_loss, inversion = JointChannelLocalizer._channel_base(ms.ranging)
        models = []
        for eta in cfg.eta_support:
            model = ChannelRSSIRanging(
                dataclasses.replace(path_loss, path_loss_exponent=eta),
                inversion_exponent=inversion,
            )
            if isinstance(ms.ranging, (NLOSRanging, RobustRanging)):
                model = type(ms.ranging)(
                    model, ms.ranging.nlos_fraction, ms.ranging.bias_mean
                )
            models.append(model)
        start = int(
            np.argmin(
                np.abs(
                    np.asarray(cfg.eta_support) - path_loss.path_loss_exponent
                )
            )
        )
        ii, jj, obs = [], [], []
        for i, j in ms.edges():
            i, j = int(i), int(j)
            if ms.anchor_mask[i] and ms.anchor_mask[j]:
                continue
            ii.append(i)
            jj.append(j)
            obs.append(float(ms.observed_distances[i, j]))
        links = (np.asarray(ii), np.asarray(jj), np.asarray(obs))
        return models, start, links

    @staticmethod
    def _eta_scores(models: list, links: tuple, positions: np.ndarray) -> np.ndarray:
        """Total data log-likelihood of each η hypothesis at *positions*."""
        ii, jj, obs = links
        d = np.linalg.norm(positions[ii] - positions[jj], axis=1)
        scores = np.empty(len(models))
        with np.errstate(all="ignore"):
            for m, model in enumerate(models):
                ll = np.nan_to_num(
                    model.log_likelihood(obs, d), nan=-np.inf, neginf=-np.inf
                )
                scores[m] = float(ll.sum())
        return scores

    def _finish(
        self,
        ms: MeasurementSet,
        cfg: MCMCConfig,
        prior: PositionPrior,
        grid: Grid2D,
        unknowns: list[int],
        samples: np.ndarray,
        ever_finite: np.ndarray,
        accepts: int,
        proposals: int,
        sweeps: int,
        tracer: NullTracer,
    ) -> LocalizationResult:
        from repro.core.health import fallback_position

        estimates, mask = self._result_skeleton(ms)
        fallback = np.zeros(ms.n_nodes, dtype=bool)
        covariances = np.full((ms.n_nodes, 2, 2), np.nan)
        pooled = samples.reshape(-1, len(unknowns), 2)
        rhats, esss = [], []
        for ui, u in enumerate(unknowns):
            est = pooled[:, ui, :].mean(axis=0)
            if not ever_finite[ui] or not np.isfinite(est).all():
                # the chain never found support for this node — the draws
                # are just the initialization, not a posterior
                est = fallback_position(ms, u, prior, grid)
                fallback[u] = True
            else:
                covariances[u] = np.cov(pooled[:, ui, :].T, ddof=1)
                for coord in range(2):
                    rhats.append(split_rhat(samples[:, :, ui, coord]))
                    esss.append(effective_sample_size(samples[:, :, ui, coord]))
            estimates[u] = est
            mask[u] = True
        acceptance = accepts / proposals if proposals else 0.0
        finite_rhats = [r for r in rhats if np.isfinite(r)]
        max_rhat = max(finite_rhats) if finite_rhats else float("nan")
        min_ess = min(esss) if esss else 0.0
        converged = bool(finite_rhats) and max_rhat <= cfg.rhat_tol
        diagnostics = {
            "acceptance_rate": float(acceptance),
            "max_split_rhat": float(max_rhat),
            "min_ess": float(min_ess),
            "n_chains": cfg.n_chains,
            "kept_per_chain": int(samples.shape[1]),
        }
        n_fallback = int(fallback.sum())
        if tracer.enabled:
            tracer.annotate("method", self.name)
            tracer.annotate("acceptance_rate", float(acceptance))
            tracer.annotate("max_split_rhat", float(max_rhat))
            tracer.annotate("min_ess", float(min_ess))
            tracer.annotate("converged", converged)
            tracer.count("runs")
            tracer.count("mcmc_sweeps", cfg.n_chains * sweeps)
            tracer.count("mcmc_proposals", proposals)
            tracer.count("mcmc_accepts", accepts)
            if n_fallback:
                tracer.count("fallback_nodes", n_fallback)
        extras: dict = {"covariances": covariances, "diagnostics": diagnostics}
        if cfg.keep_samples:
            extras["samples"] = samples
        return LocalizationResult(
            estimates=estimates,
            localized_mask=mask,
            method=self.name,
            n_iterations=sweeps,
            converged=converged,
            fallback_mask=fallback,
            extras=extras,
        )

    def _maybe_audit(
        self, result: LocalizationResult, ms: MeasurementSet, tracer: NullTracer
    ) -> None:
        from repro.audit.invariants import resolve_audit_mode

        mode = resolve_audit_mode(self.config.audit)
        if mode is None:
            return
        from repro.audit.invariants import Auditor, check_result_geometry

        auditor = Auditor(mode, tracer=tracer, solver=self.name)
        auditor.extend(
            check_result_geometry(
                result, ms.width, ms.height, anchor_mask=ms.anchor_mask
            )
        )
        auditor.finish()


class _TargetDensity:
    """Local conditional log-density of one unknown given the rest.

    Evaluates ``log p(x_u | x_{−u}, observations)`` at a batch of points —
    the only quantity the Gibbs sweep needs.  Terms mirror the grid
    solver's node/edge potentials exactly (see ``repro.core.potentials``):
    floored connectivity factors, anchors-only negative evidence, hard
    field support.
    """

    def __init__(self, ms, prior, radio, cfg, anchors_of, silent_anchors,
                 unknown_neighbors) -> None:
        self.ms = ms
        self.prior = prior
        self.radio = radio
        self.cfg = cfg
        # Swappable so a latent-η Gibbs step can point the position moves
        # at the current hypothesis model (defaults to the measured model).
        self.ranging = ms.ranging
        self.anchors_of = anchors_of
        self.silent_anchors = silent_anchors
        self.unknown_neighbors = unknown_neighbors
        self.hi = np.array([ms.width, ms.height])
        self.use_conn = cfg.use_connectivity_in_ranging or not ms.has_ranging
        # Per-node anchor data stacked once so one sweep's hot path runs a
        # single broadcast likelihood call per term, not one per anchor.
        self.apos = {
            u: ms.anchor_positions_full[anchors_of[u]] for u in anchors_of
        }
        self.aobs = {
            u: (ms.observed_distances[u, anchors_of[u]] if ms.has_ranging else None)
            for u in anchors_of
        }
        self.spos = {
            u: ms.anchor_positions_full[silent_anchors[u]] for u in silent_anchors
        }

    @staticmethod
    def _dists(pts: np.ndarray, others: np.ndarray) -> np.ndarray:
        """``(m, k)`` distances from each of m points to k positions."""
        diff = pts[:, None, :] - others[None, :, :]
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))

    def __call__(
        self, u: int, points: np.ndarray, positions: np.ndarray
    ) -> np.ndarray:
        ms, radio = self.ms, self.radio
        pts = np.asarray(points, dtype=np.float64)
        lp = np.asarray(self.prior.log_density(u, pts), dtype=np.float64).copy()
        # hard field support: the grid's state space cannot leave the field
        inside = np.all((pts >= 0.0) & (pts <= self.hi), axis=1)
        lp[~inside] = -np.inf
        if len(self.apos[u]):
            d = self._dists(pts, self.apos[u])
            if ms.has_ranging:
                lp += self.ranging.log_likelihood(self.aobs[u], d).sum(axis=1)
            if self.use_conn:
                lp += safe_log(radio.p_detect(d)).sum(axis=1)
            if ms.has_bearings:
                for a in self.anchors_of[u]:
                    lp += self._bearing_terms(u, a, pts, ms.anchor_positions_full[a])
        if self.cfg.use_negative_evidence and len(self.spos[u]):
            d = self._dists(pts, self.spos[u])
            lp += safe_log(1.0 - radio.p_detect(d)).sum(axis=1)
        neigh = self.unknown_neighbors[u]
        if neigh:
            d = self._dists(pts, positions[neigh])
            if ms.has_ranging:
                lp += self.ranging.log_likelihood(
                    ms.observed_distances[u, neigh], d
                ).sum(axis=1)
            if self.use_conn:
                lp += safe_log(radio.p_detect(d)).sum(axis=1)
            if ms.has_bearings:
                for v in neigh:
                    lp += self._bearing_terms(u, v, pts, positions[v])
        return lp

    def _bearing_terms(
        self, u: int, other: int, pts: np.ndarray, opos: np.ndarray
    ) -> np.ndarray:
        """AoA factors for the (u, other) link at candidate points.

        ``observed_bearings[u, other]`` is what *u* measured toward the
        neighbor (candidate bearing points from ``pts`` to ``opos``);
        the reverse observation constrains the bearing from the neighbor
        back to the candidate.  NaN observations are missing.
        """
        ms = self.ms
        out = np.zeros(len(pts))
        b_uo = float(ms.observed_bearings[u, other])
        b_ou = float(ms.observed_bearings[other, u])
        if np.isfinite(b_uo):
            cand = np.arctan2(opos[1] - pts[:, 1], opos[0] - pts[:, 0])
            out += ms.bearing_model.log_likelihood(b_uo, cand)
        if np.isfinite(b_ou):
            cand = np.arctan2(pts[:, 1] - opos[1], pts[:, 0] - opos[0])
            out += ms.bearing_model.log_likelihood(b_ou, cand)
        return out
