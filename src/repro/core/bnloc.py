"""The paper's core method: cooperative localization as Bayesian-network
inference over a grid-discretized position space, with pre-knowledge priors.

Model
-----
Each unknown node *i* gets a categorical variable ``X_i`` over the ``K``
cells of a :class:`~repro.core.grid.Grid2D`.  The Bayesian network is the
usual pairwise construction:

* node potential  φ_i(x) = prior_i(x) · ∏_{a ∈ anchors heard} p(obs_ia | x)
  · ∏_{a ∈ anchors not heard} (1 − p_detect(‖x − a‖))    (negative evidence)
* edge potential  ψ_ij(x, y) = p(obs_ij, link | ‖x − y‖) for each pair of
  connected unknowns.

Inference is synchronous loopy sum-product BP — exactly the computation a
real network performs distributively, each node broadcasting its outgoing
messages to neighbors once per round.  Communication accounting (shared
with :class:`~repro.parallel.messaging.DistributedBPSimulator` and the E7
cost/accuracy experiment): unknowns exchange belief messages of ``8·K``
bytes (a ``K``-vector of float64), ``2·|edges|`` of them per round, while
an anchor broadcast carries only its own position (``2·8`` bytes).

Pre-knowledge enters solely through ``prior``; running the *same* inference
with :class:`~repro.priors.deployment.UniformPrior` is the paper's
"without pre-knowledge" arm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.grid import Grid2D
from repro.core.potentials import (
    RangingPotentialCache,
    _normalize_matrix,
    anchor_bearing_potential,
    anchor_connectivity_potential,
    anchor_ranging_potential,
    connectivity_potential,
    negative_anchor_potential,
    pairwise_bearing_potential,
    ranging_potential_from_distances,
    shared_registry,
)
from repro.core.result import LocalizationResult, Localizer
from repro.measurement.measurements import MeasurementSet
from repro.network.radio import RadioModel, UnitDiskRadio
from repro.obs import NULL_TRACER, NullTracer
from repro.priors.base import PositionPrior
from repro.priors.deployment import UniformPrior
from repro.utils.rng import RNGLike

__all__ = ["GridBPLocalizer", "GridBPConfig"]

_MSG_FLOOR = 1e-12  # keeps log-space products finite after truncation

#: bytes of one anchor broadcast — the anchor's own position (2 float64).
#: Unknown-unknown belief messages cost ``8·K`` bytes instead; both
#: solvers and the E7 benchmark share this convention.
_ANCHOR_BROADCAST_BYTES = 2 * 8


def _max_product_matvec(op, hvec: np.ndarray) -> np.ndarray:
    """``out[j] = max_k op[j, k] · h[k]`` — the max-product analogue of
    ``op @ h`` (same operator orientation as the sum-product message).

    Implicit sparse zeros contribute 0, which is the correct floor since
    potentials and h are non-negative.
    """
    from scipy import sparse

    if sparse.issparse(op):
        scaled = op.multiply(hvec[None, :]).tocsr()
        return np.asarray(scaled.max(axis=1).todense()).ravel()
    return (op * hvec[None, :]).max(axis=1)


@dataclass
class GridBPConfig:
    """Tunables of :class:`GridBPLocalizer`.

    Attributes
    ----------
    grid_size:
        Cells per axis (``K = grid_size²`` states per node) — the E10
        resolution-ablation knob.
    max_iterations, tol, damping:
        Loopy-BP schedule: synchronous rounds, stop when the max message
        change drops below *tol*; *damping* interpolates toward the old
        message (0 = undamped).  Mild damping (the 0.15 default)
        counteracts the overconfidence loopy BP develops on dense
        connectivity graphs.
    use_negative_evidence:
        Fold silent anchors into the node potentials.
    use_hop_bounds:
        Fold multi-hop anchor reachability into the node potentials: a
        node *h* hops from anchor *a* cannot be farther than ``h·r`` from
        it.  This connectivity pre-knowledge anchors clusters of unknowns
        that hear no anchor directly, suppressing the translated/mirrored
        joint modes loopy BP can otherwise lock into.
    use_connectivity_in_ranging:
        Multiply the link-detection probability into ranging potentials
        (observing a link is evidence of proximity in itself).
    cell_blur_fraction:
        Quantization-marginalization scale as a fraction of the cell
        diagonal (``blur_sigma = fraction × cell_diagonal``).  Prevents
        potential aliasing when ranging noise is narrower than a cell;
        0 disables.
    schedule:
        ``"sync"`` — flooding: all messages computed from the previous
        round (what a distributed deployment does, one broadcast per
        round); ``"serial"`` — Gauss–Seidel: messages commit immediately
        within a sweep, so information crosses the network in one
        iteration (the natural centralized schedule; usually converges in
        fewer iterations).
    estimator:
        ``"mmse"`` (posterior mean — minimizes expected squared error) or
        ``"map"`` (best cell center).
    max_product:
        Run max-product instead of sum-product message passing: beliefs
        become max-marginals and the per-node argmax approximates the
        *joint* MAP configuration (use with ``estimator="map"``).  Useful
        when a single consistent configuration matters more than
        per-node expected error.
    record_trace:
        Store the per-iteration estimates (needed by E6, costs memory).
    health_checks:
        Graceful-degradation guards (on by default): non-finite messages
        are repaired to uniform, a numerically broken or diverging run is
        retried once with damping raised to *restart_damping*, and nodes
        whose belief stays broken get a baseline fallback estimate
        (recorded in ``LocalizationResult.fallback_mask``) instead of
        NaN.  The guards only observe on healthy runs — results are
        bit-identical with the checks on or off unless something actually
        breaks.
    restart_damping:
        Damping used by the automatic restart (must exceed the normal
        *damping* to be useful).
    optimized:
        Use the vectorized hot paths (per-anchor hoisting in the node
        potentials, cached logs and batched same-kernel sparse matmuls in
        the BP rounds).  ``False`` selects the straightforward reference
        implementation, kept for A/B benchmarking and the bit-identity
        regression tests — both paths produce byte-identical beliefs.
    audit:
        Runtime invariant guards (:mod:`repro.audit`): ``None`` defers to
        the ``REPRO_AUDIT`` environment toggle, ``"off"`` disables,
        ``"warn"`` reports violations as warnings (and through the
        tracer), ``"raise"`` escalates to
        :class:`~repro.audit.AuditError`.  Observation-only and zero-cost
        when off; auditing never changes solver outputs.
    shared_cache:
        Reuse ranging-potential kernels and grid distance matrices from
        the process-level :func:`~repro.core.potentials.shared_registry`
        across solver runs with identical (grid, ranging, radio, blur)
        parameters — the common case inside Monte-Carlo sweeps.  Warm
        runs are bit-identical to cold ones; disable to force per-run
        rebuilds.
    """

    grid_size: int = 20
    max_iterations: int = 15
    tol: float = 1e-4
    damping: float = 0.15
    use_negative_evidence: bool = True
    use_hop_bounds: bool = True
    use_connectivity_in_ranging: bool = True
    cell_blur_fraction: float = 1.0 / 6.0
    schedule: str = "sync"
    estimator: str = "mmse"
    max_product: bool = False
    record_trace: bool = False
    health_checks: bool = True
    restart_damping: float = 0.5
    optimized: bool = True
    shared_cache: bool = True
    audit: str | None = None

    def __post_init__(self) -> None:
        if self.audit not in (None, "off", "warn", "raise"):
            raise ValueError(
                f"audit must be None, 'off', 'warn', or 'raise', got {self.audit!r}"
            )
        if self.grid_size < 2:
            raise ValueError("grid_size must be >= 2")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.tol <= 0:
            raise ValueError("tol must be positive")
        if not (0.0 <= self.damping < 1.0):
            raise ValueError("damping must lie in [0, 1)")
        if self.cell_blur_fraction < 0:
            raise ValueError("cell_blur_fraction must be non-negative")
        if self.schedule not in ("sync", "serial"):
            raise ValueError(f"unknown schedule {self.schedule!r}")
        if self.estimator not in ("mmse", "map"):
            raise ValueError(f"unknown estimator {self.estimator!r}")
        if not (0.0 <= self.restart_damping < 1.0):
            raise ValueError("restart_damping must lie in [0, 1)")


class GridBPLocalizer(Localizer):
    """Bayesian-network cooperative localization on a position grid.

    Parameters
    ----------
    prior:
        The pre-knowledge.  Defaults to the uninformative
        :class:`~repro.priors.deployment.UniformPrior`.
    radio:
        Link model assumed by the inference (for detection and negative-
        evidence probabilities).  Defaults to a unit disk at the
        measurement set's ``radio_range``; pass the true generating model
        for matched inference.
    config:
        Algorithm settings (see :class:`GridBPConfig`).
    tracer:
        Optional :class:`~repro.obs.Tracer`.  Records per-iteration
        residuals / message counts, phase timers, and peak factor sizes;
        the exported dict is attached to the result as ``telemetry``.
        The default no-op tracer leaves the hot path untouched and the
        beliefs bit-identical to an untraced run.
    """

    name = "grid-bp"

    def __init__(
        self,
        prior: PositionPrior | None = None,
        radio: RadioModel | None = None,
        config: GridBPConfig | None = None,
        tracer: NullTracer | None = None,
    ) -> None:
        self.prior = prior
        self.radio = radio
        self.config = config if config is not None else GridBPConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------ #
    def localize(
        self, measurements: MeasurementSet, rng: RNGLike = None
    ) -> LocalizationResult:
        tracer = self.tracer
        with tracer.timer("localize"):
            result = self._localize_traced(measurements, tracer)
        if tracer.enabled:
            result.telemetry = tracer.snapshot()
        return result

    def _localize_traced(
        self, measurements: MeasurementSet, tracer: NullTracer
    ) -> LocalizationResult:
        ms = measurements
        cfg = self.config
        grid = Grid2D(cfg.grid_size, cfg.grid_size, ms.width, ms.height)
        prior = self.prior if self.prior is not None else UniformPrior(ms.width, ms.height)
        radio = self.radio if self.radio is not None else UnitDiskRadio(ms.radio_range)

        unknowns = ms.unknown_ids
        n = ms.n_nodes
        K = grid.n_cells
        index = {int(u): ui for ui, u in enumerate(unknowns)}

        with tracer.timer("node_potentials"):
            log_phi = self._node_potentials(ms, grid, prior, radio, unknowns)

        # Edges between unknowns, with their pairwise potentials.  Each
        # edge carries an oriented operator pair (fwd, bwd): the i→j
        # message is ``fwd @ h_i`` and j→i is ``bwd @ h_j``.  Pure ranging
        # potentials are symmetric (fwd is bwd); AoA potentials are not.
        edges: list[tuple[int, int]] = []
        ops: list[tuple] = []
        anchor_msgs = 0
        with tracer.timer("edge_potentials"):
            if ms.has_ranging:
                blur = cfg.cell_blur_fraction * grid.cell_diagonal
                conn_radio = radio if cfg.use_connectivity_in_ranging else None
                if cfg.shared_cache:
                    # Cross-trial reuse: identical (grid, ranging, radio,
                    # blur) keys get the warm kernels built by earlier runs
                    # in this process.
                    cache = shared_registry().ranging_cache(
                        grid, ms.ranging, conn_radio, blur
                    )
                else:
                    cache = RangingPotentialCache(
                        grid, ms.ranging, conn_radio, blur_sigma=blur
                    )
            conn_psi = None
            for i, j in ms.edges():
                i, j = int(i), int(j)
                if ms.anchor_mask[i] and ms.anchor_mask[j]:
                    continue
                if ms.anchor_mask[i] or ms.anchor_mask[j]:
                    anchor_msgs += 1  # anchor broadcast consumed by the unknown
                    continue
                if ms.has_ranging:
                    psi = cache.get(ms.observed_distances[i, j])
                else:
                    if conn_psi is None:
                        from scipy import sparse as _sparse

                        if cfg.shared_cache:
                            shared_registry().pairwise_distances(grid)
                        # CSR like the ranging kernels (and exactly like
                        # DistributedBPSimulator builds it): the dense
                        # operator went through BLAS gemv, whose rounding
                        # differs from the sparse kernel, so the two
                        # solvers' range-free beliefs diverged in the last
                        # bit (caught by the repro.audit differential
                        # harness, scenario smoke-rangefree).
                        conn_psi = _sparse.csr_matrix(
                            connectivity_potential(
                                grid.pairwise_center_distances(), radio
                            )
                        )
                    psi = conn_psi
                if ms.has_bearings:
                    from scipy import sparse as _sparse

                    bpsi = pairwise_bearing_potential(
                        grid,
                        ms.observed_bearings[i, j],
                        ms.observed_bearings[j, i],
                        ms.bearing_model,
                    )
                    combined = (
                        psi.multiply(bpsi)
                        if _sparse.issparse(psi)
                        else _sparse.csr_matrix(psi * bpsi)
                    )
                    combined = _sparse.csr_matrix(combined)
                    ops.append((_sparse.csr_matrix(combined.T), combined))
                else:
                    ops.append((psi, psi))
                edges.append((index[i], index[j]))
        if tracer.enabled:
            from scipy import sparse as _sparse

            for fwd, _ in ops:
                nnz = fwd.nnz if _sparse.issparse(fwd) else fwd.size
                tracer.gauge_max("peak_factor_nnz", int(nnz))

        with tracer.timer("bp"):
            beliefs, n_iter, converged, trace_logs, health = self._run_bp(
                log_phi, edges, ops, grid, cfg, tracer
            )

        # Graceful degradation: a numerically broken or diverging run gets
        # one damped restart before we resort to per-node fallbacks.  On
        # healthy runs (no repairs, finite beliefs, shrinking residuals)
        # this is observation-only — outputs stay bit-identical.
        restarted = False
        if cfg.health_checks and edges:
            from repro.core.health import healthy_belief_rows, residuals_diverging

            broken = (
                health["message_repairs"] > 0
                or not healthy_belief_rows(beliefs).all()
                or (not converged and residuals_diverging(health["residuals"]))
            )
            if broken:
                import dataclasses as _dc

                restarted = True
                cfg_restart = _dc.replace(
                    cfg, damping=max(cfg.damping, cfg.restart_damping)
                )
                with tracer.timer("damped_restart"):
                    beliefs, n_more, converged, trace_logs, health = self._run_bp(
                        log_phi, edges, ops, grid, cfg_restart, tracer
                    )
                n_iter += n_more
                if tracer.enabled:
                    tracer.count("damped_restarts")

        with tracer.timer("estimate"):
            from repro.core.health import fallback_position, healthy_belief_rows

            estimates, mask = self._result_skeleton(ms)
            covariances = np.full((n, 2, 2), np.nan)
            fallback = np.zeros(n, dtype=bool)
            healthy = (
                healthy_belief_rows(beliefs)
                if cfg.health_checks
                else np.ones(len(unknowns), dtype=bool)
            )
            for ui, u in enumerate(unknowns):
                if not healthy[ui]:
                    # Belief beyond repair: baseline fallback estimate and
                    # an honest uniform belief for downstream consumers.
                    beliefs[ui] = 1.0 / K
                    estimates[u] = fallback_position(ms, u, prior, grid)
                    fallback[u] = True
                    mask[u] = True
                    continue
                b = beliefs[ui]
                estimates[u] = (
                    grid.expectation(b) if cfg.estimator == "mmse" else grid.map_estimate(b)
                )
                covariances[u] = grid.covariance(b)
                mask[u] = True
            n_fallback = int(fallback.sum())

        trace = []
        if cfg.record_trace:
            for logs in trace_logs:
                snap = estimates.copy()
                for ui, u in enumerate(unknowns):
                    snap[u] = (
                        grid.expectation(logs[ui])
                        if cfg.estimator == "mmse"
                        else grid.map_estimate(logs[ui])
                    )
                trace.append(snap)

        # Communication accounting (distributed execution model): one
        # anchor broadcast (the anchor's own position, 2 float64) per
        # anchor-unknown link, plus 2 messages per unknown-unknown edge per
        # BP round, each a K-vector of float64.  Shared convention with
        # DistributedBPSimulator and the E7 benchmark.
        uu_msgs = 2 * len(edges) * n_iter
        messages = anchor_msgs + uu_msgs
        bytes_sent = anchor_msgs * _ANCHOR_BROADCAST_BYTES + uu_msgs * K * 8
        if tracer.enabled:
            tracer.annotate("method", self.name)
            tracer.annotate("schedule", cfg.schedule)
            tracer.annotate("grid_cells", K)
            tracer.annotate("n_unknowns", len(unknowns))
            tracer.annotate("converged", bool(converged))
            tracer.count("runs")
            tracer.count("bp_iterations", n_iter)
            tracer.count("anchor_broadcasts", anchor_msgs)
            tracer.count("messages", messages)
            tracer.count("bytes", bytes_sent)
            if health["message_repairs"]:
                tracer.count("message_repairs", health["message_repairs"])
            if n_fallback:
                tracer.count("fallback_nodes", n_fallback)
            if restarted:
                tracer.annotate("damped_restart", True)
        result = LocalizationResult(
            estimates=estimates,
            localized_mask=mask,
            method=self.name,
            n_iterations=n_iter,
            converged=converged,
            trace=trace,
            messages_sent=messages,
            bytes_sent=bytes_sent,
            fallback_mask=fallback,
            extras={
                "beliefs": {int(u): beliefs[ui] for ui, u in enumerate(unknowns)},
                "covariances": covariances,
                "grid": grid,
            },
        )
        self._maybe_audit(result, ms, ops, tracer)
        return result

    def _maybe_audit(self, result, ms: MeasurementSet, ops, tracer) -> None:
        """Run the :mod:`repro.audit` invariant guards when enabled.

        Observation-only: never mutates the result.  The common off path
        costs one config check plus one environment lookup.
        """
        from repro.audit.invariants import resolve_audit_mode

        mode = resolve_audit_mode(self.config.audit)
        if mode is None:
            return
        from repro.audit.invariants import (
            Auditor,
            audit_localization_result,
            check_symmetric_ops,
        )

        auditor = Auditor(mode, tracer=tracer, solver=self.name)
        auditor.extend(
            audit_localization_result(
                result, ms.width, ms.height, anchor_mask=ms.anchor_mask
            )
        )
        if not ms.has_bearings:
            # pure ranging / connectivity operators are claimed symmetric
            auditor.extend(check_symmetric_ops(ops))
        auditor.finish()

    # ------------------------------------------------------------------ #
    def _node_potentials(
        self,
        ms: MeasurementSet,
        grid: Grid2D,
        prior: PositionPrior,
        radio: RadioModel,
        unknowns: np.ndarray,
    ) -> np.ndarray:
        """Log node potentials ``(n_unknown, K)``: prior × anchor evidence.

        The anchor-side terms depend only on the anchor, not on the
        unknown, so each anchor's distance field, detection probabilities,
        and log-potentials are computed once and reused across all
        unknowns (the baseline recomputed them per (unknown, anchor)
        pair — O(n_unknown × n_anchor × K) redundant work).  Output is
        bit-identical to :meth:`_node_potentials_baseline`.
        """
        cfg = self.config
        if not cfg.optimized:
            return self._node_potentials_baseline(ms, grid, prior, radio, unknowns)
        log_phi = np.empty((len(unknowns), grid.n_cells))
        anchor_ids = ms.anchor_ids
        hops = None
        if cfg.use_hop_bounds:
            from scipy.sparse import csr_matrix
            from scipy.sparse.csgraph import shortest_path

            hops = shortest_path(
                csr_matrix(ms.adjacency.astype(np.int8)),
                method="D",
                unweighted=True,
                directed=False,
            )[:, anchor_ids]
        n_a = len(anchor_ids)
        anchor_d = [
            grid.distances_to_point(ms.anchor_positions_full[int(a)])
            for a in anchor_ids
        ]
        anchor_pd: list[np.ndarray | None] = [None] * n_a
        log_neg: list[np.ndarray | None] = [None] * n_a
        log_conn: list[np.ndarray | None] = [None] * n_a
        blur = cfg.cell_blur_fraction * grid.cell_diagonal
        conn_radio = radio if cfg.use_connectivity_in_ranging else None
        log_tiny = np.log(1e-300)

        def pdet(ai: int) -> np.ndarray:
            # Lazy like everything below: only touch the radio model for
            # anchors whose terms are actually used, as the baseline does.
            out = anchor_pd[ai]
            if out is None:
                out = radio.p_detect(anchor_d[ai])
                anchor_pd[ai] = out
            return out

        def neg_log(ai: int) -> np.ndarray:
            out = log_neg[ai]
            if out is None:
                vals = 1.0 - pdet(ai)
                if vals.max() <= 0:
                    # same failure mode as negative_anchor_potential
                    raise ValueError(
                        "negative evidence eliminated every cell — anchor's "
                        "radio range covers the entire grid"
                    )
                out = np.log(np.maximum(vals, 1e-300))
                log_neg[ai] = out
            return out

        def conn_log(ai: int) -> np.ndarray:
            out = log_conn[ai]
            if out is None:
                out = np.log(np.maximum(_normalize_matrix(pdet(ai)), 1e-300))
                log_conn[ai] = out
            return out

        for ui, u in enumerate(unknowns):
            u = int(u)
            w = prior.grid_weights(u, grid)
            lp = np.log(np.maximum(w, 1e-300))
            for ai, a in enumerate(anchor_ids):
                a = int(a)
                if (
                    hops is not None
                    and not ms.adjacency[u, a]
                    and np.isfinite(hops[u, ai])
                    and hops[u, ai] >= 2
                ):
                    # h-hop reachability: each hop covers at most the radio
                    # range, so the node lies within h·r of the anchor.
                    reach = hops[u, ai] * ms.radio_range
                    lp = lp + np.where(anchor_d[ai] <= reach, 0.0, log_tiny)
                if ms.adjacency[u, a]:
                    if ms.has_ranging:
                        pot = ranging_potential_from_distances(
                            anchor_d[ai],
                            ms.observed_distances[u, a],
                            ms.ranging,
                            conn_radio,
                            blur_sigma=blur,
                            p_detect=pdet(ai) if conn_radio is not None else None,
                        )
                        lp = lp + np.log(np.maximum(pot, 1e-300))
                    else:
                        lp = lp + conn_log(ai)
                    if ms.has_bearings:
                        bpot = anchor_bearing_potential(
                            grid,
                            ms.anchor_positions_full[a],
                            ms.observed_bearings[u, a],
                            ms.observed_bearings[a, u],
                            ms.bearing_model,
                        )
                        lp = lp + np.log(np.maximum(bpot, 1e-300))
                elif cfg.use_negative_evidence:
                    lp = lp + neg_log(ai)
            peak = lp.max()
            if not np.isfinite(peak):
                raise ValueError(
                    f"node {u}: evidence and prior are mutually exclusive on "
                    "the grid (prior support excludes all feasible cells?)"
                )
            log_phi[ui] = lp - peak
        return log_phi

    def _node_potentials_baseline(
        self,
        ms: MeasurementSet,
        grid: Grid2D,
        prior: PositionPrior,
        radio: RadioModel,
        unknowns: np.ndarray,
    ) -> np.ndarray:
        """Reference implementation of :meth:`_node_potentials`.

        Kept for A/B benchmarking (``GridBPConfig(optimized=False)``) and
        the bit-identity regression tests; recomputes every anchor field
        per unknown.
        """
        cfg = self.config
        log_phi = np.empty((len(unknowns), grid.n_cells))
        anchor_ids = ms.anchor_ids
        hops = None
        if cfg.use_hop_bounds:
            from scipy.sparse import csr_matrix
            from scipy.sparse.csgraph import shortest_path

            hops = shortest_path(
                csr_matrix(ms.adjacency.astype(np.int8)),
                method="D",
                unweighted=True,
                directed=False,
            )[:, anchor_ids]
        for ui, u in enumerate(unknowns):
            u = int(u)
            w = prior.grid_weights(u, grid)
            lp = np.log(np.maximum(w, 1e-300))
            for ai, a in enumerate(anchor_ids):
                a = int(a)
                apos = ms.anchor_positions_full[a]
                if (
                    hops is not None
                    and not ms.adjacency[u, a]
                    and np.isfinite(hops[u, ai])
                    and hops[u, ai] >= 2
                ):
                    # h-hop reachability: each hop covers at most the radio
                    # range, so the node lies within h·r of the anchor.
                    reach = hops[u, ai] * ms.radio_range
                    d = grid.distances_to_point(apos)
                    lp = lp + np.where(d <= reach, 0.0, np.log(1e-300))
                if ms.adjacency[u, a]:
                    if ms.has_ranging:
                        pot = anchor_ranging_potential(
                            grid,
                            apos,
                            ms.observed_distances[u, a],
                            ms.ranging,
                            radio if cfg.use_connectivity_in_ranging else None,
                            blur_sigma=cfg.cell_blur_fraction * grid.cell_diagonal,
                        )
                    else:
                        pot = anchor_connectivity_potential(grid, apos, radio)
                    lp = lp + np.log(np.maximum(pot, 1e-300))
                    if ms.has_bearings:
                        bpot = anchor_bearing_potential(
                            grid,
                            apos,
                            ms.observed_bearings[u, a],
                            ms.observed_bearings[a, u],
                            ms.bearing_model,
                        )
                        lp = lp + np.log(np.maximum(bpot, 1e-300))
                elif cfg.use_negative_evidence:
                    pot = negative_anchor_potential(grid, apos, radio)
                    lp = lp + np.log(np.maximum(pot, 1e-300))
            peak = lp.max()
            if not np.isfinite(peak):
                raise ValueError(
                    f"node {u}: evidence and prior are mutually exclusive on "
                    "the grid (prior support excludes all feasible cells?)"
                )
            log_phi[ui] = lp - peak
        return log_phi

    # ------------------------------------------------------------------ #
    @staticmethod
    def _run_bp(
        log_phi: np.ndarray,
        edges: list[tuple[int, int]],
        ops: list[tuple],
        grid: Grid2D,
        cfg: GridBPConfig,
        tracer: NullTracer = NULL_TRACER,
    ) -> tuple[np.ndarray, int, bool, list[np.ndarray], dict]:
        """Loopy sum-product over unknown-unknown edges.

        *ops[e]* is the oriented operator pair ``(fwd, bwd)`` of edge *e*
        (see :meth:`localize`).  Returns normalized beliefs
        ``(n_unknown, K)``, iteration count, convergence flag, (if
        ``cfg.record_trace``) per-iteration beliefs, and a health dict
        with the residual history and the count of non-finite messages
        repaired to uniform (always 0 on numerically healthy runs — the
        repair triggers only off a single NaN/Inf float check per round).
        An enabled *tracer* additionally receives one iteration record per
        round (message residual, beliefs-changed count, message/byte
        spend); tracing only reads the state, never alters it.

        Two hot-path optimizations over :meth:`_run_bp_baseline`, both
        bit-identical by construction (regression-tested):

        * ``np.log(messages)`` is maintained as one stacked array,
          refreshed once per round, instead of being recomputed per
          directed slot (``np.log`` on equal inputs is deterministic, so
          cached logs equal recomputed ones bit-for-bit);
        * on the synchronous sum-product schedule, outgoing messages whose
          edges share one sparse kernel (the common case — the
          RangingPotentialCache quantizes distances exactly so edges share
          ``csr`` objects) are computed by a single sparse mat-mat instead
          of one mat-vec per slot.  scipy's CSR mat-mat accumulates each
          column in the same index order as the mat-vec kernel, so the
          batched columns are bit-identical to per-slot products; dense
          operators stay on the mat-vec path because BLAS gemm/gemv are
          *not* bit-identical.
        """
        if not cfg.optimized:
            return GridBPLocalizer._run_bp_baseline(
                log_phi, edges, ops, grid, cfg, tracer
            )
        from scipy import sparse as _sparse

        n_u, K = log_phi.shape
        # Directed message storage: for each undirected edge e=(i,j), slot
        # 2e is i->j and 2e+1 is j->i.
        n_dir = 2 * len(edges)
        messages = np.full((n_dir, K), 1.0 / K)
        log_messages = np.log(messages)
        in_slots: list[list[int]] = [[] for _ in range(n_u)]  # messages INTO node
        out_slots: list[list[tuple[int, int, int]]] = [
            [] for _ in range(n_u)
        ]  # (slot, edge_index, recipient)
        for e, (i, j) in enumerate(edges):
            in_slots[j].append(2 * e)
            in_slots[i].append(2 * e + 1)
            out_slots[i].append((2 * e, e, j))
            out_slots[j].append((2 * e + 1, e, i))

        def beliefs_now() -> np.ndarray:
            out = np.empty((n_u, K))
            for ui in range(n_u):
                acc = log_phi[ui].copy()
                for s in in_slots[ui]:
                    acc += log_messages[s]
                acc -= acc.max()
                b = np.exp(acc)
                out[ui] = b / b.sum()
            return out

        converged = False
        n_iter = 0
        trace: list[np.ndarray] = []
        health = {"residuals": [], "message_repairs": 0}
        if cfg.record_trace:
            # Iteration 0: unary-only beliefs (prior + anchor evidence,
            # before any cooperation) — the natural convergence baseline.
            trace.append(beliefs_now())
        if not edges:
            return beliefs_now(), 0, True, trace, health

        serial = cfg.schedule == "serial"
        # Static batching plan (operators never change across rounds):
        # group directed slots by sparse-kernel identity; groups of one
        # keep the plain mat-vec.
        sparse_groups: list[tuple] = []
        slot_batched = np.zeros(n_dir, dtype=bool)
        unbatched_slots: np.ndarray | None = None
        src_of = dst_of = swap_of = None
        if not serial and not cfg.max_product:
            by_op: dict[int, list[int]] = {}
            op_by_id: dict[int, object] = {}
            for e in range(len(edges)):
                for parity in (0, 1):
                    op = ops[e][parity]
                    if _sparse.issparse(op):
                        by_op.setdefault(id(op), []).append(2 * e + parity)
                        op_by_id[id(op)] = op
            for key, slots in by_op.items():
                if len(slots) > 1:
                    arr = np.asarray(slots, dtype=np.intp)
                    sparse_groups.append((op_by_id[key], arr))
                    slot_batched[arr] = True
            unbatched_slots = np.nonzero(~slot_batched)[0]
            # Directed-slot endpoint maps for the vectorized h-build: slot
            # 2e carries i->j (source i, destination j), 2e+1 the reverse.
            src_of = np.empty(n_dir, dtype=np.intp)
            dst_of = np.empty(n_dir, dtype=np.intp)
            for e, (i, j) in enumerate(edges):
                src_of[2 * e] = i
                dst_of[2 * e] = j
                src_of[2 * e + 1] = j
                dst_of[2 * e + 1] = i
            swap_of = np.arange(n_dir) ^ 1

        prev_beliefs = beliefs_now() if tracer.enabled else None
        round_msgs = 2 * len(edges)
        msgs_cum = 0
        H = np.empty((n_dir, K)) if not serial else None
        for n_iter in range(1, cfg.max_iterations + 1):
            # "sync" computes the whole round from the previous round's
            # messages; "serial" commits each node's messages immediately
            # so later nodes in the sweep see them.
            new_messages = messages if serial else np.empty_like(messages)
            old_messages = messages.copy() if serial else messages

            def commit(slot: int, msg: np.ndarray) -> None:
                s = msg.sum()
                if s <= 0:
                    msg = np.full(K, 1.0 / K)
                else:
                    msg = msg / s
                if cfg.damping > 0:
                    prev = old_messages[slot] if serial else messages[slot]
                    msg = (1 - cfg.damping) * msg + cfg.damping * prev
                    msg = msg / msg.sum()
                np.maximum(msg, _MSG_FLOOR, out=msg)
                new_messages[slot] = msg
                if serial:
                    # keep the log cache Gauss–Seidel-fresh
                    log_messages[slot] = np.log(new_messages[slot])

            def commit_rows(slots_arr: np.ndarray, res: np.ndarray) -> None:
                # Vectorized commit for a block of sync-schedule slots.
                # Every step is elementwise or a row-wise reduction, and
                # numpy's axis-1 sum/max over a C-contiguous block uses the
                # same pairwise kernel as the per-row reduction, so this is
                # bit-identical to running `commit` on each row.
                sums = res.sum(axis=1)
                bad = sums <= 0
                if bad.any():
                    res[bad] = 1.0 / K
                    sums[bad] = 1.0
                res /= sums[:, None]
                if cfg.damping > 0:
                    res *= 1 - cfg.damping
                    res += cfg.damping * messages[slots_arr]
                    res /= res.sum(axis=1)[:, None]
                np.maximum(res, _MSG_FLOOR, out=res)
                new_messages[slots_arr] = res

            if serial or cfg.max_product:
                for ui in range(n_u):
                    if not out_slots[ui]:
                        continue
                    total = log_phi[ui].copy()
                    for s in in_slots[ui]:
                        total += log_messages[s]
                    for slot, e, _dst in out_slots[ui]:
                        # Exclude the recipient's own message (slot^1 is
                        # the reverse direction, which feeds INTO ui).
                        back = slot ^ 1
                        h = total - log_messages[back]
                        h -= h.max()
                        hvec = np.exp(h)
                        # slot parity picks the operator orientation: even
                        # slots are i→j (fwd), odd are j→i (bwd).
                        op = ops[e][slot & 1]
                        if cfg.max_product:
                            msg = _max_product_matvec(op, hvec)
                        else:
                            msg = op.dot(hvec)
                        commit(slot, msg)
            else:
                # Synchronous sum-product, fully vectorized.  Per-node
                # message-product accumulation runs through np.add.at,
                # whose unbuffered in-index-order adds replay the exact
                # fadd sequence of the per-node loop (in_slots[ui] is in
                # increasing slot order by construction, matching the
                # slot-major iteration of the fancy index).
                totals = log_phi.copy()
                np.add.at(totals, dst_of, log_messages)
                np.subtract(totals[src_of], log_messages[swap_of], out=H)
                H -= H.max(axis=1, keepdims=True)
                np.exp(H, out=H)
                for op, slots in sparse_groups:
                    res = np.ascontiguousarray(op.dot(H[slots].T).T)
                    commit_rows(slots, res)
                if len(unbatched_slots):
                    res = np.empty((len(unbatched_slots), K))
                    for k, slot in enumerate(unbatched_slots):
                        res[k] = ops[slot >> 1][slot & 1].dot(H[slot])
                    commit_rows(unbatched_slots, res)

            max_delta = float(np.abs(new_messages - old_messages).max())
            repaired = False
            if cfg.health_checks and not np.isfinite(max_delta):
                # A NaN/Inf somewhere in the round's messages (corrupted
                # potentials / degenerate inputs): repair the offending
                # rows to uniform so BP can keep going.  The trigger is a
                # single float check, so healthy rounds pay nothing.
                from repro.core.health import repair_nonfinite_messages

                health["message_repairs"] += repair_nonfinite_messages(new_messages)
                repaired = True
                with np.errstate(invalid="ignore"):
                    deltas = np.abs(new_messages - old_messages)
                max_delta = float(np.nanmax(np.where(np.isfinite(deltas), deltas, 1.0)))
            health["residuals"].append(max_delta)
            messages = new_messages
            if not serial or repaired:
                log_messages = np.log(messages)
            if cfg.record_trace:
                trace.append(beliefs_now())
            if tracer.enabled:
                new_beliefs = beliefs_now()
                changed = int(
                    np.count_nonzero(
                        np.abs(new_beliefs - prev_beliefs).max(axis=1) > cfg.tol
                    )
                )
                prev_beliefs = new_beliefs
                msgs_cum += round_msgs
                tracer.iteration(
                    residual=max_delta,
                    beliefs_changed=changed,
                    messages=round_msgs,
                    messages_cum=msgs_cum,
                    bytes_cum=msgs_cum * K * 8,
                )
            if max_delta < cfg.tol:
                converged = True
                break

        return beliefs_now(), n_iter, converged, trace, health

    # ------------------------------------------------------------------ #
    @staticmethod
    def _run_bp_baseline(
        log_phi: np.ndarray,
        edges: list[tuple[int, int]],
        ops: list[tuple],
        grid: Grid2D,
        cfg: GridBPConfig,
        tracer: NullTracer = NULL_TRACER,
    ) -> tuple[np.ndarray, int, bool, list[np.ndarray], dict]:
        """Reference implementation of :meth:`_run_bp`.

        Kept for A/B benchmarking (``GridBPConfig(optimized=False)``) and
        the bit-identity regression tests; recomputes message logs per
        slot and sends every message through its own mat-vec.
        """
        n_u, K = log_phi.shape
        # Directed message storage: for each undirected edge e=(i,j), slot
        # 2e is i->j and 2e+1 is j->i.
        n_dir = 2 * len(edges)
        messages = np.full((n_dir, K), 1.0 / K)
        in_slots: list[list[int]] = [[] for _ in range(n_u)]  # messages INTO node
        out_slots: list[list[tuple[int, int, int]]] = [
            [] for _ in range(n_u)
        ]  # (slot, edge_index, recipient)
        for e, (i, j) in enumerate(edges):
            in_slots[j].append(2 * e)
            in_slots[i].append(2 * e + 1)
            out_slots[i].append((2 * e, e, j))
            out_slots[j].append((2 * e + 1, e, i))

        def node_log_in(ui: int) -> np.ndarray:
            acc = log_phi[ui].copy()
            for s in in_slots[ui]:
                acc += np.log(messages[s])
            return acc

        def beliefs_from(msgs: np.ndarray) -> np.ndarray:
            out = np.empty((n_u, K))
            for ui in range(n_u):
                acc = log_phi[ui].copy()
                for s in in_slots[ui]:
                    acc += np.log(msgs[s])
                acc -= acc.max()
                b = np.exp(acc)
                out[ui] = b / b.sum()
            return out

        converged = False
        n_iter = 0
        trace: list[np.ndarray] = []
        health = {"residuals": [], "message_repairs": 0}
        if cfg.record_trace:
            # Iteration 0: unary-only beliefs (prior + anchor evidence,
            # before any cooperation) — the natural convergence baseline.
            trace.append(beliefs_from(messages))
        if not edges:
            return beliefs_from(messages), 0, True, trace, health

        prev_beliefs = beliefs_from(messages) if tracer.enabled else None
        round_msgs = 2 * len(edges)
        msgs_cum = 0
        serial = cfg.schedule == "serial"
        for n_iter in range(1, cfg.max_iterations + 1):
            # "sync" computes the whole round from the previous round's
            # messages; "serial" commits each node's messages immediately
            # so later nodes in the sweep see them.
            new_messages = messages if serial else np.empty_like(messages)
            old_messages = messages.copy() if serial else messages
            for ui in range(n_u):
                if not out_slots[ui]:
                    continue
                # In serial mode `messages` aliases `new_messages`, so this
                # reads the freshest values (Gauss–Seidel); in sync mode it
                # reads the previous round.
                total = node_log_in(ui)
                for slot, e, _dst in out_slots[ui]:
                    # Exclude the recipient's own message (slot^1 is the
                    # reverse direction, which feeds INTO ui).
                    back = slot ^ 1
                    h = total - np.log(messages[back])
                    h -= h.max()
                    hvec = np.exp(h)
                    # slot parity picks the operator orientation: even
                    # slots are i→j (fwd), odd are j→i (bwd).
                    op = ops[e][slot & 1]
                    if cfg.max_product:
                        msg = _max_product_matvec(op, hvec)
                    else:
                        msg = op.dot(hvec)
                    s = msg.sum()
                    if s <= 0:
                        msg = np.full(K, 1.0 / K)
                    else:
                        msg = msg / s
                    if cfg.damping > 0:
                        prev = old_messages[slot] if serial else messages[slot]
                        msg = (1 - cfg.damping) * msg + cfg.damping * prev
                        msg = msg / msg.sum()
                    np.maximum(msg, _MSG_FLOOR, out=msg)
                    new_messages[slot] = msg
            max_delta = float(np.abs(new_messages - old_messages).max())
            if cfg.health_checks and not np.isfinite(max_delta):
                # A NaN/Inf somewhere in the round's messages (corrupted
                # potentials / degenerate inputs): repair the offending
                # rows to uniform so BP can keep going.  The trigger is a
                # single float check, so healthy rounds pay nothing.
                from repro.core.health import repair_nonfinite_messages

                health["message_repairs"] += repair_nonfinite_messages(new_messages)
                with np.errstate(invalid="ignore"):
                    deltas = np.abs(new_messages - old_messages)
                max_delta = float(np.nanmax(np.where(np.isfinite(deltas), deltas, 1.0)))
            health["residuals"].append(max_delta)
            messages = new_messages
            if cfg.record_trace:
                trace.append(beliefs_from(messages))
            if tracer.enabled:
                new_beliefs = beliefs_from(messages)
                changed = int(
                    np.count_nonzero(
                        np.abs(new_beliefs - prev_beliefs).max(axis=1) > cfg.tol
                    )
                )
                prev_beliefs = new_beliefs
                msgs_cum += round_msgs
                tracer.iteration(
                    residual=max_delta,
                    beliefs_changed=changed,
                    messages=round_msgs,
                    messages_cum=msgs_cum,
                    bytes_cum=msgs_cum * K * 8,
                )
            if max_delta < cfg.tol:
                converged = True
                break

        return beliefs_from(messages), n_iter, converged, trace, health
