"""The paper's core method: cooperative localization as Bayesian-network
inference over a grid-discretized position space, with pre-knowledge priors.

Model
-----
Each unknown node *i* gets a categorical variable ``X_i`` over the ``K``
cells of a :class:`~repro.core.grid.Grid2D`.  The Bayesian network is the
usual pairwise construction:

* node potential  φ_i(x) = prior_i(x) · ∏_{a ∈ anchors heard} p(obs_ia | x)
  · ∏_{a ∈ anchors not heard} (1 − p_detect(‖x − a‖))    (negative evidence)
* edge potential  ψ_ij(x, y) = p(obs_ij, link | ‖x − y‖) for each pair of
  connected unknowns.

Inference is synchronous loopy sum-product BP — exactly the computation a
real network performs distributively, each node broadcasting its outgoing
messages to neighbors once per round.  Communication accounting (shared
with :class:`~repro.parallel.messaging.DistributedBPSimulator` and the E7
cost/accuracy experiment): unknowns exchange belief messages of ``8·K``
bytes (a ``K``-vector of float64), ``2·|edges|`` of them per round, while
an anchor broadcast carries only its own position (``2·8`` bytes).

Pre-knowledge enters solely through ``prior``; running the *same* inference
with :class:`~repro.priors.deployment.UniformPrior` is the paper's
"without pre-knowledge" arm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.grid import Grid2D
from repro.core.potentials import (
    RangingPotentialCache,
    _normalize_matrix,
    anchor_bearing_potential,
    anchor_connectivity_potential,
    anchor_ranging_potential,
    connectivity_potential,
    negative_anchor_potential,
    pairwise_bearing_potential,
    ranging_potential_from_distances,
    shared_registry,
)
from repro.core.result import LocalizationResult, Localizer
from repro.kernels.base import BPOutcome, BPProblem, get_backend, group_compatible
from repro.kernels.reference import (  # noqa: F401 — long-standing aliases
    _MSG_FLOOR,
    _max_product_matvec,
)
from repro.measurement.measurements import MeasurementSet
from repro.network.radio import RadioModel, UnitDiskRadio
from repro.obs import NULL_TRACER, NullTracer
from repro.priors.base import PositionPrior
from repro.priors.deployment import UniformPrior
from repro.utils.rng import RNGLike

__all__ = ["GridBPLocalizer", "GridBPConfig", "localize_batch"]

#: bytes of one anchor broadcast — the anchor's own position (2 float64).
#: Unknown-unknown belief messages cost ``8·K`` bytes instead; both
#: solvers and the E7 benchmark share this convention.
_ANCHOR_BROADCAST_BYTES = 2 * 8


@dataclass
class GridBPConfig:
    """Tunables of :class:`GridBPLocalizer`.

    Attributes
    ----------
    grid_size:
        Cells per axis (``K = grid_size²`` states per node) — the E10
        resolution-ablation knob.
    max_iterations, tol, damping:
        Loopy-BP schedule: synchronous rounds, stop when the max message
        change drops below *tol*; *damping* interpolates toward the old
        message (0 = undamped).  Mild damping (the 0.15 default)
        counteracts the overconfidence loopy BP develops on dense
        connectivity graphs.
    use_negative_evidence:
        Fold silent anchors into the node potentials.
    use_hop_bounds:
        Fold multi-hop anchor reachability into the node potentials: a
        node *h* hops from anchor *a* cannot be farther than ``h·r`` from
        it.  This connectivity pre-knowledge anchors clusters of unknowns
        that hear no anchor directly, suppressing the translated/mirrored
        joint modes loopy BP can otherwise lock into.
    use_connectivity_in_ranging:
        Multiply the link-detection probability into ranging potentials
        (observing a link is evidence of proximity in itself).
    cell_blur_fraction:
        Quantization-marginalization scale as a fraction of the cell
        diagonal (``blur_sigma = fraction × cell_diagonal``).  Prevents
        potential aliasing when ranging noise is narrower than a cell;
        0 disables.
    schedule:
        ``"sync"`` — flooding: all messages computed from the previous
        round (what a distributed deployment does, one broadcast per
        round); ``"serial"`` — Gauss–Seidel: messages commit immediately
        within a sweep, so information crosses the network in one
        iteration (the natural centralized schedule; usually converges in
        fewer iterations).
    estimator:
        ``"mmse"`` (posterior mean — minimizes expected squared error) or
        ``"map"`` (best cell center).
    max_product:
        Run max-product instead of sum-product message passing: beliefs
        become max-marginals and the per-node argmax approximates the
        *joint* MAP configuration (use with ``estimator="map"``).  Useful
        when a single consistent configuration matters more than
        per-node expected error.
    record_trace:
        Store the per-iteration estimates (needed by E6, costs memory).
    health_checks:
        Graceful-degradation guards (on by default): non-finite messages
        are repaired to uniform, a numerically broken or diverging run is
        retried once with damping raised to *restart_damping*, and nodes
        whose belief stays broken get a baseline fallback estimate
        (recorded in ``LocalizationResult.fallback_mask``) instead of
        NaN.  The guards only observe on healthy runs — results are
        bit-identical with the checks on or off unless something actually
        breaks.
    restart_damping:
        Damping used by the automatic restart (must exceed the normal
        *damping* to be useful).
    optimized:
        Use the vectorized hot paths (per-anchor hoisting in the node
        potentials, cached logs and batched same-kernel sparse matmuls in
        the BP rounds).  ``False`` selects the straightforward reference
        implementation, kept for A/B benchmarking and the bit-identity
        regression tests — both paths produce byte-identical beliefs.
    audit:
        Runtime invariant guards (:mod:`repro.audit`): ``None`` defers to
        the ``REPRO_AUDIT`` environment toggle, ``"off"`` disables,
        ``"warn"`` reports violations as warnings (and through the
        tracer), ``"raise"`` escalates to
        :class:`~repro.audit.AuditError`.  Observation-only and zero-cost
        when off; auditing never changes solver outputs.
    shared_cache:
        Reuse ranging-potential kernels and grid distance matrices from
        the process-level :func:`~repro.core.potentials.shared_registry`
        across solver runs with identical (grid, ranging, radio, blur)
        parameters — the common case inside Monte-Carlo sweeps.  Warm
        runs are bit-identical to cold ones; disable to force per-run
        rebuilds.
    backend:
        Kernel backend running the BP loop (:mod:`repro.kernels`):
        ``"reference"`` is the per-trial kernel pair of PR 3 (with
        ``optimized`` selecting the vectorized or baseline path);
        ``"batched"`` is the trial-axis kernel — identical results on a
        single run, and :func:`localize_batch` stacks compatible runs
        into one tensor pass per BP round.  Any name registered through
        :func:`repro.kernels.register_backend` is accepted.  All
        backends are bit-identical (gated by ``tests/test_kernels.py``
        and the ``repro.audit`` bit-tier DiffCases).
    """

    grid_size: int = 20
    max_iterations: int = 15
    tol: float = 1e-4
    damping: float = 0.15
    use_negative_evidence: bool = True
    use_hop_bounds: bool = True
    use_connectivity_in_ranging: bool = True
    cell_blur_fraction: float = 1.0 / 6.0
    schedule: str = "sync"
    estimator: str = "mmse"
    max_product: bool = False
    record_trace: bool = False
    health_checks: bool = True
    restart_damping: float = 0.5
    optimized: bool = True
    shared_cache: bool = True
    audit: str | None = None
    backend: str = "reference"

    def __post_init__(self) -> None:
        if self.audit not in (None, "off", "warn", "raise"):
            raise ValueError(
                f"audit must be None, 'off', 'warn', or 'raise', got {self.audit!r}"
            )
        if self.grid_size < 2:
            raise ValueError("grid_size must be >= 2")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.tol <= 0:
            raise ValueError("tol must be positive")
        if not (0.0 <= self.damping < 1.0):
            raise ValueError("damping must lie in [0, 1)")
        if self.cell_blur_fraction < 0:
            raise ValueError("cell_blur_fraction must be non-negative")
        if self.schedule not in ("sync", "serial"):
            raise ValueError(f"unknown schedule {self.schedule!r}")
        if self.estimator not in ("mmse", "map"):
            raise ValueError(f"unknown estimator {self.estimator!r}")
        if not (0.0 <= self.restart_damping < 1.0):
            raise ValueError("restart_damping must lie in [0, 1)")
        if self.backend not in ("reference", "batched"):
            # builtin names validate for free; anything else must be a
            # registered extension backend
            from repro.kernels import available_backends

            if self.backend not in available_backends():
                raise ValueError(
                    f"unknown kernel backend {self.backend!r}; available: "
                    f"{available_backends()}"
                )


@dataclass
class _Prepared:
    """Output of :meth:`GridBPLocalizer._prepare`: the kernel-ready
    :class:`~repro.kernels.BPProblem` plus the context the estimate /
    accounting stage needs after the BP loop ran."""

    ms: MeasurementSet
    grid: Grid2D
    prior: PositionPrior
    radio: RadioModel
    unknowns: np.ndarray
    anchor_msgs: int
    problem: BPProblem


class GridBPLocalizer(Localizer):
    """Bayesian-network cooperative localization on a position grid.

    Parameters
    ----------
    prior:
        The pre-knowledge.  Defaults to the uninformative
        :class:`~repro.priors.deployment.UniformPrior`.
    radio:
        Link model assumed by the inference (for detection and negative-
        evidence probabilities).  Defaults to a unit disk at the
        measurement set's ``radio_range``; pass the true generating model
        for matched inference.
    config:
        Algorithm settings (see :class:`GridBPConfig`).
    tracer:
        Optional :class:`~repro.obs.Tracer`.  Records per-iteration
        residuals / message counts, phase timers, and peak factor sizes;
        the exported dict is attached to the result as ``telemetry``.
        The default no-op tracer leaves the hot path untouched and the
        beliefs bit-identical to an untraced run.
    """

    name = "grid-bp"

    def __init__(
        self,
        prior: PositionPrior | None = None,
        radio: RadioModel | None = None,
        config: GridBPConfig | None = None,
        tracer: NullTracer | None = None,
    ) -> None:
        self.prior = prior
        self.radio = radio
        self.config = config if config is not None else GridBPConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------ #
    def localize(
        self, measurements: MeasurementSet, rng: RNGLike = None
    ) -> LocalizationResult:
        tracer = self.tracer
        with tracer.timer("localize"):
            result = self._localize_traced(measurements, tracer)
        if tracer.enabled:
            result.telemetry = tracer.snapshot()
        return result

    def localize_batch(
        self, measurements_list: list[MeasurementSet], rng: RNGLike = None
    ) -> list[LocalizationResult]:
        """Localize several measurement sets with this solver, stacking
        compatible ones into batched kernel passes.

        Results are bit-identical to calling :meth:`localize` on each set
        in turn (grid BP is deterministic — *rng* is accepted for
        interface symmetry and ignored).  See the module-level
        :func:`localize_batch` for mixed-prior batches and the batching /
        fallback rules.
        """
        return localize_batch([(self, ms) for ms in measurements_list])

    def _localize_traced(
        self, measurements: MeasurementSet, tracer: NullTracer
    ) -> LocalizationResult:
        prep = self._prepare(measurements, tracer)
        backend = get_backend(self.config.backend)
        with tracer.timer("bp"):
            outcome = backend.run(prep.problem, tracer)
        outcome, restarted = self._maybe_restart(prep, outcome, backend, tracer)
        return self._finish(prep, outcome, restarted, tracer)

    def _prepare(
        self, measurements: MeasurementSet, tracer: NullTracer
    ) -> "_Prepared":
        """Everything before the BP loop: grid, prior/radio resolution,
        node potentials, edge operators.  Returns the prepared problem
        plus the context :meth:`_finish` needs afterwards."""
        ms = measurements
        cfg = self.config
        grid = Grid2D(cfg.grid_size, cfg.grid_size, ms.width, ms.height)
        prior = self.prior if self.prior is not None else UniformPrior(ms.width, ms.height)
        radio = self.radio if self.radio is not None else UnitDiskRadio(ms.radio_range)

        unknowns = ms.unknown_ids
        index = {int(u): ui for ui, u in enumerate(unknowns)}

        with tracer.timer("node_potentials"):
            log_phi = self._node_potentials(ms, grid, prior, radio, unknowns)

        # Edges between unknowns, with their pairwise potentials.  Each
        # edge carries an oriented operator pair (fwd, bwd): the i→j
        # message is ``fwd @ h_i`` and j→i is ``bwd @ h_j``.  Pure ranging
        # potentials are symmetric (fwd is bwd); AoA potentials are not.
        edges: list[tuple[int, int]] = []
        ops: list[tuple] = []
        anchor_msgs = 0
        with tracer.timer("edge_potentials"):
            if ms.has_ranging:
                blur = cfg.cell_blur_fraction * grid.cell_diagonal
                conn_radio = radio if cfg.use_connectivity_in_ranging else None
                if cfg.shared_cache:
                    # Cross-trial reuse: identical (grid, ranging, radio,
                    # blur) keys get the warm kernels built by earlier runs
                    # in this process.
                    cache = shared_registry().ranging_cache(
                        grid, ms.ranging, conn_radio, blur
                    )
                else:
                    cache = RangingPotentialCache(
                        grid, ms.ranging, conn_radio, blur_sigma=blur
                    )
            conn_psi = None
            for i, j in ms.edges():
                i, j = int(i), int(j)
                if ms.anchor_mask[i] and ms.anchor_mask[j]:
                    continue
                if ms.anchor_mask[i] or ms.anchor_mask[j]:
                    anchor_msgs += 1  # anchor broadcast consumed by the unknown
                    continue
                if ms.has_ranging:
                    psi = cache.get(ms.observed_distances[i, j])
                else:
                    if conn_psi is None:
                        from scipy import sparse as _sparse

                        if cfg.shared_cache:
                            shared_registry().pairwise_distances(grid)
                        # CSR like the ranging kernels (and exactly like
                        # DistributedBPSimulator builds it): the dense
                        # operator went through BLAS gemv, whose rounding
                        # differs from the sparse kernel, so the two
                        # solvers' range-free beliefs diverged in the last
                        # bit (caught by the repro.audit differential
                        # harness, scenario smoke-rangefree).
                        conn_psi = _sparse.csr_matrix(
                            connectivity_potential(
                                grid.pairwise_center_distances(), radio
                            )
                        )
                    psi = conn_psi
                if ms.has_bearings:
                    from scipy import sparse as _sparse

                    bpsi = pairwise_bearing_potential(
                        grid,
                        ms.observed_bearings[i, j],
                        ms.observed_bearings[j, i],
                        ms.bearing_model,
                    )
                    combined = (
                        psi.multiply(bpsi)
                        if _sparse.issparse(psi)
                        else _sparse.csr_matrix(psi * bpsi)
                    )
                    combined = _sparse.csr_matrix(combined)
                    ops.append((_sparse.csr_matrix(combined.T), combined))
                else:
                    ops.append((psi, psi))
                edges.append((index[i], index[j]))
        if tracer.enabled:
            from scipy import sparse as _sparse

            for fwd, _ in ops:
                nnz = fwd.nnz if _sparse.issparse(fwd) else fwd.size
                tracer.gauge_max("peak_factor_nnz", int(nnz))
        return _Prepared(
            ms=ms,
            grid=grid,
            prior=prior,
            radio=radio,
            unknowns=unknowns,
            anchor_msgs=anchor_msgs,
            problem=BPProblem(
                log_phi=log_phi, edges=edges, ops=ops, grid=grid, cfg=cfg
            ),
        )

    def _maybe_restart(
        self,
        prep: "_Prepared",
        outcome: BPOutcome,
        backend,
        tracer: NullTracer,
    ) -> tuple[BPOutcome, bool]:
        """Graceful degradation: a numerically broken or diverging run gets
        one damped restart before we resort to per-node fallbacks.  On
        healthy runs (no repairs, finite beliefs, shrinking residuals)
        this is observation-only — outputs stay bit-identical."""
        cfg = self.config
        if not (cfg.health_checks and prep.problem.edges):
            return outcome, False
        if outcome.health.get("deadline_stop"):
            # The kernel was stopped by an expired deadline scope — there
            # is no time budget left for a restart; the caller flags the
            # (internally consistent) partial answer as degraded instead.
            return outcome, False
        from repro.core.health import healthy_belief_rows, residuals_diverging

        health = outcome.health
        broken = (
            health["message_repairs"] > 0
            or not healthy_belief_rows(outcome.beliefs).all()
            or (
                not outcome.converged
                and residuals_diverging(health["residuals"])
            )
        )
        if not broken:
            return outcome, False
        import dataclasses as _dc

        cfg_restart = _dc.replace(cfg, damping=max(cfg.damping, cfg.restart_damping))
        with tracer.timer("damped_restart"):
            rerun = backend.run(
                _dc.replace(prep.problem, cfg=cfg_restart), tracer
            )
        if tracer.enabled:
            tracer.count("damped_restarts")
        return (
            BPOutcome(
                beliefs=rerun.beliefs,
                n_iterations=outcome.n_iterations + rerun.n_iterations,
                converged=rerun.converged,
                trace=rerun.trace,
                health=rerun.health,
            ),
            True,
        )

    def _finish(
        self,
        prep: "_Prepared",
        outcome: BPOutcome,
        restarted: bool,
        tracer: NullTracer,
    ) -> LocalizationResult:
        """Everything after the BP loop: estimates, fallbacks, trace,
        communication accounting, telemetry, audit."""
        ms = prep.ms
        cfg = self.config
        grid = prep.grid
        prior = prep.prior
        unknowns = prep.unknowns
        edges = prep.problem.edges
        anchor_msgs = prep.anchor_msgs
        n = ms.n_nodes
        K = grid.n_cells
        beliefs = outcome.beliefs
        n_iter = outcome.n_iterations
        converged = outcome.converged
        trace_logs = outcome.trace
        health = outcome.health
        with tracer.timer("estimate"):
            from repro.core.health import fallback_position, healthy_belief_rows

            estimates, mask = self._result_skeleton(ms)
            covariances = np.full((n, 2, 2), np.nan)
            fallback = np.zeros(n, dtype=bool)
            healthy = (
                healthy_belief_rows(beliefs)
                if cfg.health_checks
                else np.ones(len(unknowns), dtype=bool)
            )
            for ui, u in enumerate(unknowns):
                if not healthy[ui]:
                    # Belief beyond repair: baseline fallback estimate and
                    # an honest uniform belief for downstream consumers.
                    beliefs[ui] = 1.0 / K
                    estimates[u] = fallback_position(ms, u, prior, grid)
                    fallback[u] = True
                    mask[u] = True
                    continue
                b = beliefs[ui]
                estimates[u] = (
                    grid.expectation(b) if cfg.estimator == "mmse" else grid.map_estimate(b)
                )
                covariances[u] = grid.covariance(b)
                mask[u] = True
            n_fallback = int(fallback.sum())

        trace = []
        if cfg.record_trace:
            for logs in trace_logs:
                snap = estimates.copy()
                for ui, u in enumerate(unknowns):
                    snap[u] = (
                        grid.expectation(logs[ui])
                        if cfg.estimator == "mmse"
                        else grid.map_estimate(logs[ui])
                    )
                trace.append(snap)

        # Communication accounting (distributed execution model): one
        # anchor broadcast (the anchor's own position, 2 float64) per
        # anchor-unknown link, plus 2 messages per unknown-unknown edge per
        # BP round, each a K-vector of float64.  Shared convention with
        # DistributedBPSimulator and the E7 benchmark.
        uu_msgs = 2 * len(edges) * n_iter
        messages = anchor_msgs + uu_msgs
        bytes_sent = anchor_msgs * _ANCHOR_BROADCAST_BYTES + uu_msgs * K * 8
        if tracer.enabled:
            tracer.annotate("method", self.name)
            tracer.annotate("backend", cfg.backend)
            tracer.annotate("schedule", cfg.schedule)
            tracer.annotate("grid_cells", K)
            tracer.annotate("n_unknowns", len(unknowns))
            tracer.annotate("converged", bool(converged))
            tracer.count("runs")
            tracer.count("bp_iterations", n_iter)
            tracer.count("anchor_broadcasts", anchor_msgs)
            tracer.count("messages", messages)
            tracer.count("bytes", bytes_sent)
            if health["message_repairs"]:
                tracer.count("message_repairs", health["message_repairs"])
            if n_fallback:
                tracer.count("fallback_nodes", n_fallback)
            if restarted:
                tracer.annotate("damped_restart", True)
            if health.get("deadline_stop"):
                tracer.count("deadline_stops")
        result = LocalizationResult(
            estimates=estimates,
            localized_mask=mask,
            method=self.name,
            n_iterations=n_iter,
            converged=converged,
            trace=trace,
            messages_sent=messages,
            bytes_sent=bytes_sent,
            fallback_mask=fallback,
            extras={
                "beliefs": {int(u): beliefs[ui] for ui, u in enumerate(unknowns)},
                "covariances": covariances,
                "grid": grid,
                **(
                    {"deadline_stop": True}
                    if health.get("deadline_stop")
                    else {}
                ),
            },
        )
        self._maybe_audit(result, ms, prep.problem.ops, tracer)
        return result

    def _maybe_audit(self, result, ms: MeasurementSet, ops, tracer) -> None:
        """Run the :mod:`repro.audit` invariant guards when enabled.

        Observation-only: never mutates the result.  The common off path
        costs one config check plus one environment lookup.
        """
        from repro.audit.invariants import resolve_audit_mode

        mode = resolve_audit_mode(self.config.audit)
        if mode is None:
            return
        from repro.audit.invariants import (
            Auditor,
            audit_localization_result,
            check_symmetric_ops,
        )

        auditor = Auditor(mode, tracer=tracer, solver=self.name)
        auditor.extend(
            audit_localization_result(
                result, ms.width, ms.height, anchor_mask=ms.anchor_mask
            )
        )
        if not ms.has_bearings:
            # pure ranging / connectivity operators are claimed symmetric
            auditor.extend(check_symmetric_ops(ops))
        auditor.finish()

    # ------------------------------------------------------------------ #
    def _node_potentials(
        self,
        ms: MeasurementSet,
        grid: Grid2D,
        prior: PositionPrior,
        radio: RadioModel,
        unknowns: np.ndarray,
    ) -> np.ndarray:
        """Log node potentials ``(n_unknown, K)``: prior × anchor evidence.

        The anchor-side terms depend only on the anchor, not on the
        unknown, so each anchor's distance field, detection probabilities,
        and log-potentials are computed once and reused across all
        unknowns (the baseline recomputed them per (unknown, anchor)
        pair — O(n_unknown × n_anchor × K) redundant work).  The
        accumulation itself runs anchor-outer over row *blocks* of the
        ``(n_unknown, K)`` output: per anchor, one vectorized add per
        evidence kind instead of one Python-level add per (unknown,
        anchor) pair.  Each row still receives exactly the baseline's
        adds in the baseline's order — the anchor loop is the outer
        sweep, and within one anchor the hop-bound, adjacency, and
        negative-evidence terms hit *disjoint* row sets in the same
        hop → ranging/connectivity → bearings → negative sequence — so
        the output is bit-identical to
        :meth:`_node_potentials_baseline`.
        """
        cfg = self.config
        if not cfg.optimized:
            return self._node_potentials_baseline(ms, grid, prior, radio, unknowns)
        log_phi = np.empty((len(unknowns), grid.n_cells))
        anchor_ids = ms.anchor_ids
        hops = None
        if cfg.use_hop_bounds:
            from scipy.sparse import csr_matrix
            from scipy.sparse.csgraph import shortest_path

            hops = shortest_path(
                csr_matrix(ms.adjacency.astype(np.int8)),
                method="D",
                unweighted=True,
                directed=False,
            )[:, anchor_ids]
        n_a = len(anchor_ids)
        anchor_d = [
            grid.distances_to_point(ms.anchor_positions_full[int(a)])
            for a in anchor_ids
        ]
        anchor_pd: list[np.ndarray | None] = [None] * n_a
        log_neg: list[np.ndarray | None] = [None] * n_a
        log_conn: list[np.ndarray | None] = [None] * n_a
        blur = cfg.cell_blur_fraction * grid.cell_diagonal
        conn_radio = radio if cfg.use_connectivity_in_ranging else None
        log_tiny = np.log(1e-300)

        def pdet(ai: int) -> np.ndarray:
            # Lazy like everything below: only touch the radio model for
            # anchors whose terms are actually used, as the baseline does.
            out = anchor_pd[ai]
            if out is None:
                out = radio.p_detect(anchor_d[ai])
                anchor_pd[ai] = out
            return out

        def neg_log(ai: int) -> np.ndarray:
            out = log_neg[ai]
            if out is None:
                vals = 1.0 - pdet(ai)
                if vals.max() <= 0:
                    # same failure mode as negative_anchor_potential
                    raise ValueError(
                        "negative evidence eliminated every cell — anchor's "
                        "radio range covers the entire grid"
                    )
                out = np.log(np.maximum(vals, 1e-300))
                log_neg[ai] = out
            return out

        def conn_log(ai: int) -> np.ndarray:
            out = log_conn[ai]
            if out is None:
                out = np.log(np.maximum(_normalize_matrix(pdet(ai)), 1e-300))
                log_conn[ai] = out
            return out

        u_idx = np.asarray([int(u) for u in unknowns], dtype=np.intp)
        for ui, u in enumerate(u_idx):
            log_phi[ui] = prior.grid_weights(int(u), grid)
        log_phi = np.log(np.maximum(log_phi, 1e-300))
        adj_cols = (
            ms.adjacency[np.ix_(u_idx, anchor_ids)]
            if len(u_idx) and n_a
            else np.zeros((len(u_idx), n_a), dtype=bool)
        )
        hops_u = hops[u_idx] if hops is not None else None
        for ai, a in enumerate(anchor_ids):
            a = int(a)
            adj = adj_cols[:, ai].astype(bool)
            if hops is not None:
                # h-hop reachability: each hop covers at most the radio
                # range, so the node lies within h·r of the anchor.
                hcol = hops_u[:, ai]
                with np.errstate(invalid="ignore"):
                    sel = ~adj & np.isfinite(hcol) & (hcol >= 2)
                rows = np.flatnonzero(sel)
                if rows.size:
                    reach = hcol[rows] * ms.radio_range
                    log_phi[rows] += np.where(
                        anchor_d[ai][None, :] <= reach[:, None], 0.0, log_tiny
                    )
            rows_adj = np.flatnonzero(adj)
            if rows_adj.size:
                if ms.has_ranging:
                    pots = np.empty((rows_adj.size, grid.n_cells))
                    pd = pdet(ai) if conn_radio is not None else None
                    for k, ri in enumerate(rows_adj):
                        pots[k] = ranging_potential_from_distances(
                            anchor_d[ai],
                            ms.observed_distances[int(u_idx[ri]), a],
                            ms.ranging,
                            conn_radio,
                            blur_sigma=blur,
                            p_detect=pd,
                        )
                    log_phi[rows_adj] += np.log(np.maximum(pots, 1e-300))
                else:
                    log_phi[rows_adj] += conn_log(ai)[None, :]
                if ms.has_bearings:
                    for ri in rows_adj:
                        bpot = anchor_bearing_potential(
                            grid,
                            ms.anchor_positions_full[a],
                            ms.observed_bearings[int(u_idx[ri]), a],
                            ms.observed_bearings[a, int(u_idx[ri])],
                            ms.bearing_model,
                        )
                        log_phi[ri] += np.log(np.maximum(bpot, 1e-300))
            if cfg.use_negative_evidence:
                rows_neg = np.flatnonzero(~adj)
                if rows_neg.size:
                    log_phi[rows_neg] += neg_log(ai)[None, :]
        peaks = log_phi.max(axis=1) if len(u_idx) else np.empty(0)
        bad = np.flatnonzero(~np.isfinite(peaks))
        if bad.size:
            raise ValueError(
                f"node {int(u_idx[bad[0]])}: evidence and prior are mutually "
                "exclusive on the grid (prior support excludes all feasible "
                "cells?)"
            )
        if len(u_idx):
            log_phi = log_phi - peaks[:, None]
        return log_phi

    def _node_potentials_baseline(
        self,
        ms: MeasurementSet,
        grid: Grid2D,
        prior: PositionPrior,
        radio: RadioModel,
        unknowns: np.ndarray,
    ) -> np.ndarray:
        """Reference implementation of :meth:`_node_potentials`.

        Kept for A/B benchmarking (``GridBPConfig(optimized=False)``) and
        the bit-identity regression tests; recomputes every anchor field
        per unknown.
        """
        cfg = self.config
        log_phi = np.empty((len(unknowns), grid.n_cells))
        anchor_ids = ms.anchor_ids
        hops = None
        if cfg.use_hop_bounds:
            from scipy.sparse import csr_matrix
            from scipy.sparse.csgraph import shortest_path

            hops = shortest_path(
                csr_matrix(ms.adjacency.astype(np.int8)),
                method="D",
                unweighted=True,
                directed=False,
            )[:, anchor_ids]
        for ui, u in enumerate(unknowns):
            u = int(u)
            w = prior.grid_weights(u, grid)
            lp = np.log(np.maximum(w, 1e-300))
            for ai, a in enumerate(anchor_ids):
                a = int(a)
                apos = ms.anchor_positions_full[a]
                if (
                    hops is not None
                    and not ms.adjacency[u, a]
                    and np.isfinite(hops[u, ai])
                    and hops[u, ai] >= 2
                ):
                    # h-hop reachability: each hop covers at most the radio
                    # range, so the node lies within h·r of the anchor.
                    reach = hops[u, ai] * ms.radio_range
                    d = grid.distances_to_point(apos)
                    lp = lp + np.where(d <= reach, 0.0, np.log(1e-300))
                if ms.adjacency[u, a]:
                    if ms.has_ranging:
                        pot = anchor_ranging_potential(
                            grid,
                            apos,
                            ms.observed_distances[u, a],
                            ms.ranging,
                            radio if cfg.use_connectivity_in_ranging else None,
                            blur_sigma=cfg.cell_blur_fraction * grid.cell_diagonal,
                        )
                    else:
                        pot = anchor_connectivity_potential(grid, apos, radio)
                    lp = lp + np.log(np.maximum(pot, 1e-300))
                    if ms.has_bearings:
                        bpot = anchor_bearing_potential(
                            grid,
                            apos,
                            ms.observed_bearings[u, a],
                            ms.observed_bearings[a, u],
                            ms.bearing_model,
                        )
                        lp = lp + np.log(np.maximum(bpot, 1e-300))
                elif cfg.use_negative_evidence:
                    pot = negative_anchor_potential(grid, apos, radio)
                    lp = lp + np.log(np.maximum(pot, 1e-300))
            peak = lp.max()
            if not np.isfinite(peak):
                raise ValueError(
                    f"node {u}: evidence and prior are mutually exclusive on "
                    "the grid (prior support excludes all feasible cells?)"
                )
            log_phi[ui] = lp - peak
        return log_phi


    # ------------------------------------------------------------------ #
    @staticmethod
    def _run_bp(
        log_phi: np.ndarray,
        edges: list[tuple[int, int]],
        ops: list[tuple],
        grid: Grid2D,
        cfg: GridBPConfig,
        tracer: NullTracer = NULL_TRACER,
    ) -> tuple[np.ndarray, int, bool, list[np.ndarray], dict]:
        """Loopy sum-product over unknown-unknown edges.

        Delegates to :func:`repro.kernels.reference.run_bp` (the kernels
        moved there when backends became pluggable); kept as a staticmethod
        for callers that predate :mod:`repro.kernels`.
        """
        from repro.kernels.reference import run_bp

        return run_bp(log_phi, edges, ops, grid, cfg, tracer)

    @staticmethod
    def _run_bp_baseline(
        log_phi: np.ndarray,
        edges: list[tuple[int, int]],
        ops: list[tuple],
        grid: Grid2D,
        cfg: GridBPConfig,
        tracer: NullTracer = NULL_TRACER,
    ) -> tuple[np.ndarray, int, bool, list[np.ndarray], dict]:
        """Reference implementation of :meth:`_run_bp` — delegates to
        :func:`repro.kernels.reference.run_bp_baseline`."""
        from repro.kernels.reference import run_bp_baseline

        return run_bp_baseline(log_phi, edges, ops, grid, cfg, tracer)


# ---------------------------------------------------------------------- #
def localize_batch(
    pairs: list[tuple[GridBPLocalizer, MeasurementSet]],
) -> list[LocalizationResult]:
    """Localize many (solver, measurements) pairs, batching compatible ones.

    The pairs are prepared individually (node potentials, edge operators —
    each under its own solver's tracer), partitioned with
    :func:`repro.kernels.group_compatible` (same grid shape/extent, same
    ``K``, equal config — different networks/priors/seeds batch together;
    mixed shapes split into separate groups, never silently co-batched),
    and each group runs through the config's kernel backend in one
    ``run_batch`` call — for the ``batched`` backend, one stacked tensor
    pass per BP round for the whole group.

    Results come back in input order and are bit-identical to calling
    ``localize`` pair by pair (gated by ``tests/test_kernels.py`` and the
    ``repro.audit`` ``batched-batch-vs-sequential`` DiffCase).  Damped
    health restarts, estimation, and communication accounting still happen
    per trial.  Telemetry: each solver's tracer records its own
    preparation and estimate phases; for groups larger than one the BP
    loop itself is a shared pass, so per-trial ``bp`` timers are not
    emitted — the tracer gets ``batch_size`` / ``batch_groups``
    annotations instead.
    """
    pairs = list(pairs)
    if not pairs:
        return []
    preps = [loc._prepare(ms, loc.tracer) for loc, ms in pairs]
    groups = group_compatible([p.problem for p in preps])
    results: list[LocalizationResult | None] = [None] * len(pairs)
    for _key, idxs in groups:
        problems = [preps[i].problem for i in idxs]
        backend = get_backend(problems[0].cfg.backend)
        if len(idxs) == 1:
            i = idxs[0]
            tr = pairs[i][0].tracer
            with tr.timer("bp"):
                outcomes = [backend.run(problems[0], tr)]
        else:
            outcomes = backend.run_batch(problems)
        for i, outcome in zip(idxs, outcomes):
            loc = pairs[i][0]
            tr = loc.tracer
            outcome, restarted = loc._maybe_restart(preps[i], outcome, backend, tr)
            if tr.enabled:
                tr.annotate("backend", backend.name)
                tr.annotate("batch_size", len(idxs))
                tr.annotate("batch_groups", len(groups))
            result = loc._finish(preps[i], outcome, restarted, tr)
            if tr.enabled:
                result.telemetry = tr.snapshot()
            results[i] = result
    return results
