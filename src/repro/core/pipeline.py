"""High-level facade: network → measurements → localization → evaluation.

:class:`CooperativeLocalizer` bundles a solver choice with a prior so user
code (examples, experiment harness) can run the whole pipeline in two
calls.  It is a thin veneer — everything it does is available through the
underlying classes.
"""

from __future__ import annotations

import numpy as np

from repro.core.bnloc import GridBPConfig, GridBPLocalizer
from repro.core.nbp import NBPConfig, NBPLocalizer
from repro.core.result import LocalizationResult, Localizer
from repro.measurement.measurements import MeasurementSet, observe
from repro.measurement.ranging import RangingModel
from repro.network.topology import WSNetwork
from repro.obs import NULL_TRACER, NullTracer
from repro.priors.base import PositionPrior
from repro.utils.rng import RNGLike, as_generator

__all__ = ["CooperativeLocalizer"]


class CooperativeLocalizer(Localizer):
    """One-stop cooperative localization.

    Parameters
    ----------
    method:
        ``"grid-bp"`` (discrete Bayesian network, default) or ``"nbp"``
        (particle-based).
    prior:
        Pre-knowledge prior shared by both methods (None = uniform).
    grid_config / nbp_config:
        Per-method settings, forwarded verbatim.
    tracer:
        Optional :class:`~repro.obs.Tracer`, forwarded to the solver; the
        run's convergence trace lands on ``result.telemetry``.

    Examples
    --------
    >>> from repro.network import NetworkConfig, generate_network
    >>> from repro.measurement import GaussianRanging
    >>> net = generate_network(NetworkConfig(n_nodes=50), rng=0)
    >>> loc = CooperativeLocalizer(method="grid-bp")
    >>> result = loc.run(net, GaussianRanging(0.02), rng=1)
    >>> errors = result.errors(net.positions)
    """

    def __init__(
        self,
        method: str = "grid-bp",
        prior: PositionPrior | None = None,
        grid_config: GridBPConfig | None = None,
        nbp_config: NBPConfig | None = None,
        tracer: NullTracer | None = None,
    ) -> None:
        if method == "grid-bp":
            self._solver: Localizer = GridBPLocalizer(
                prior=prior, config=grid_config, tracer=tracer
            )
        elif method == "nbp":
            self._solver = NBPLocalizer(
                prior=prior, config=nbp_config, tracer=tracer
            )
        else:
            raise ValueError(
                f"unknown method {method!r}; expected 'grid-bp' or 'nbp'"
            )
        self.method = method
        self.name = method
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def localize(
        self, measurements: MeasurementSet, rng: RNGLike = None
    ) -> LocalizationResult:
        return self._solver.localize(measurements, rng)

    def run(
        self,
        network: WSNetwork,
        ranging: RangingModel | None = None,
        rng: RNGLike = None,
    ) -> LocalizationResult:
        """Observe *network* with *ranging*, then localize.

        A single RNG stream drives both the measurement noise and the
        solver, so ``run(net, ranging, rng=s)`` is fully reproducible —
        with a tracer attached, the exported per-iteration residuals are
        identical across runs with the same seed.
        """
        gen = as_generator(rng)
        with self.tracer.timer("observe"):
            ms = observe(network, ranging, gen)
        return self.localize(ms, gen)

    def evaluate(
        self,
        network: WSNetwork,
        ranging: RangingModel | None = None,
        rng: RNGLike = None,
    ) -> tuple[LocalizationResult, np.ndarray]:
        """Run and also return per-node errors against the ground truth."""
        result = self.run(network, ranging, rng)
        return result, result.errors(network.positions)
