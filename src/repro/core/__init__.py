"""The paper's primary contribution: Bayesian-network cooperative
localization with pre-knowledge.

* :class:`~repro.core.bnloc.GridBPLocalizer` — discrete BN over a position
  grid, loopy sum-product inference (the paper's method).
* :class:`~repro.core.nbp.NBPLocalizer` — nonparametric (particle) BP
  counterpart.
* :class:`~repro.core.mcmc.MCMCLocalizer` — continuous-posterior MCMC
  sampler (multiple-try Metropolis within Gibbs), quantization-free
  uncertainty.
* :class:`~repro.core.pipeline.CooperativeLocalizer` — high-level facade.
* :class:`~repro.core.grid.Grid2D` and :mod:`repro.core.potentials` — the
  discretization and likelihood-table machinery.
* :class:`~repro.core.result.LocalizationResult` /
  :class:`~repro.core.result.Localizer` — the interface every algorithm in
  the library (baselines included) implements.
"""

from repro.core.grid import Grid2D
from repro.core.result import LocalizationResult, Localizer
from repro.core.bnloc import GridBPLocalizer, GridBPConfig
from repro.core.nbp import NBPLocalizer, NBPConfig
from repro.core.mcmc import MCMCLocalizer, MCMCConfig
from repro.core.jointchannel import JointChannelLocalizer, JointChannelConfig
from repro.core.pipeline import CooperativeLocalizer
from repro.core.multires import MultiResolutionLocalizer
from repro.core.refine import refine_estimates
from repro.core.potentials import (
    RangingPotentialCache,
    pairwise_ranging_potential,
    connectivity_potential,
    anchor_ranging_potential,
    anchor_connectivity_potential,
    negative_anchor_potential,
)

__all__ = [
    "Grid2D",
    "LocalizationResult",
    "Localizer",
    "GridBPLocalizer",
    "GridBPConfig",
    "NBPLocalizer",
    "NBPConfig",
    "MCMCLocalizer",
    "MCMCConfig",
    "JointChannelLocalizer",
    "JointChannelConfig",
    "CooperativeLocalizer",
    "MultiResolutionLocalizer",
    "refine_estimates",
    "RangingPotentialCache",
    "pairwise_ranging_potential",
    "connectivity_potential",
    "anchor_ranging_potential",
    "anchor_connectivity_potential",
    "negative_anchor_potential",
]
