"""Joint channel-parameter and position inference (``bn-pk-joint``).

The grid-BP localizer treats every channel parameter — path-loss exponent
η, NLOS contamination ε — as fixed config, so a miscalibrated exponent
silently biases every RSSI likelihood (benchmark E20 quantifies the
damage).  Following Jin et al. (unknown path-loss exponent via message
passing) and Leng/Tay/Quek (multipath environments), this module promotes
both to latent variables:

* **η** lives on a small discrete support.  Each hypothesis η_m gets its
  own measurement model (:class:`~repro.measurement.channel
  .ChannelRSSIRanging` with the deployment's known inversion exponent)
  and a full grid-BP solve; because the kernel compatibility key ignores
  the ranging model, all hypotheses stack into **one**
  :func:`~repro.core.bnloc.localize_batch` pass on the batched backend.
  Hypotheses are scored by the expected data log-likelihood under their
  own posterior beliefs — all links stacked into one broadcast
  :func:`~repro.core.potentials.floored_loglik` call per hypothesis (the
  per-link equivalent is :func:`~repro.core.potentials
  .expected_anchor_loglik` / :func:`~repro.core.potentials
  .expected_pairwise_loglik`) — giving a proper posterior ``q(η)``.

* **per-link LOS/NLOS indicators** are marginalized inside the pairwise
  potentials by :class:`~repro.measurement.channel.LatentNLOSRanging`;
  their posterior responsibilities drive a deployment-level EM update of
  the contamination fraction ε (kept deployment-level — per-link ε
  instances would defeat fingerprint-based potential-cache sharing).

The outer loop is plain EM: solve all hypotheses, re-weight, update ε,
repeat.  Everything is deterministic — seeded runs are bit-reproducible.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.core.bnloc import GridBPConfig, GridBPLocalizer, localize_batch
from repro.core.potentials import floored_loglik
from repro.core.result import LocalizationResult, Localizer
from repro.measurement.channel import ChannelRSSIRanging, LatentNLOSRanging
from repro.measurement.measurements import MeasurementSet
from repro.measurement.nlos import NLOSRanging, RobustRanging
from repro.measurement.ranging import RangingModel, RSSIRanging
from repro.network.radio import RadioModel
from repro.obs import NULL_TRACER, NullTracer
from repro.priors.base import PositionPrior
from repro.utils.rng import RNGLike

__all__ = ["JointChannelConfig", "JointChannelLocalizer"]


@dataclass
class JointChannelConfig:
    """Tunables of :class:`JointChannelLocalizer`.

    Attributes
    ----------
    eta_support:
        Discrete hypotheses for the path-loss exponent η.  The default
        spans the physically plausible indoor/outdoor range [2, 4].
    em_iterations:
        Outer EM rounds (each runs one batched grid-BP pass per
        hypothesis).  The loop stops early once the MAP hypothesis and ε
        both stabilize.
    estimate_nlos:
        Marginalize per-link LOS/NLOS indicators
        (:class:`~repro.measurement.channel.LatentNLOSRanging`) and
        re-estimate the contamination fraction ε by EM.  Off, hypotheses
        use the pure log-normal RSSI likelihood.
    nlos_fraction_init:
        Initial ε (the E-step prior for the first round).
    nlos_bias_ratio:
        NLOS bias scale as a fraction of the radio range
        (``bias_mean = ratio × radio_range``), mirroring the scenario
        convention (``ScenarioConfig.nlos_bias_ratio``).
    nlos_fraction_bounds:
        ε is clipped into this open interval after each M-step so the
        mixture never degenerates to a single component.
    score_cells:
        Per-node belief-support cap for hypothesis scoring.  Converged BP
        beliefs concentrate on a few grid cells, so the expected
        log-likelihood is evaluated only on each node's top cells
        (smallest set covering ``1 − 1e-9`` of the mass, capped here and
        renormalized) instead of the full K×K cell product — the mixture
        tail (EMG) evaluation otherwise dominates the method's runtime.
        ``None`` scores densely over every cell.
    grid:
        The inner :class:`~repro.core.bnloc.GridBPConfig`.  Defaults to
        the ``batched`` backend so the per-hypothesis solves run as one
        stacked tensor pass.
    """

    eta_support: tuple[float, ...] = (2.0, 2.5, 3.0, 3.5, 4.0)
    em_iterations: int = 2
    estimate_nlos: bool = True
    nlos_fraction_init: float = 0.05
    nlos_bias_ratio: float = 0.5
    nlos_fraction_bounds: tuple[float, float] = (1e-3, 0.95)
    score_cells: int | None = 64
    grid: GridBPConfig = field(
        default_factory=lambda: GridBPConfig(backend="batched")
    )

    def __post_init__(self) -> None:
        support = tuple(float(e) for e in self.eta_support)
        if not support or any(e <= 0 for e in support):
            raise ValueError("eta_support must be non-empty and positive")
        if len(set(support)) != len(support):
            raise ValueError("eta_support must not contain duplicates")
        self.eta_support = support
        if self.em_iterations < 1:
            raise ValueError("em_iterations must be >= 1")
        if not (0.0 < self.nlos_fraction_init < 1.0):
            raise ValueError("nlos_fraction_init must lie in (0, 1)")
        if self.nlos_bias_ratio <= 0:
            raise ValueError("nlos_bias_ratio must be positive")
        lo, hi = self.nlos_fraction_bounds
        if not (0.0 < lo < hi < 1.0):
            raise ValueError("nlos_fraction_bounds must satisfy 0 < lo < hi < 1")
        if self.score_cells is not None and self.score_cells < 1:
            raise ValueError("score_cells must be >= 1 (or None for dense)")


class JointChannelLocalizer(Localizer):
    """Grid-BP localization with latent channel parameters (``bn-pk-joint``).

    Accepts measurement sets whose ranging is RSSI-based
    (:class:`~repro.measurement.ranging.RSSIRanging` or
    :class:`~repro.measurement.channel.ChannelRSSIRanging`, optionally
    wrapped in an NLOS contamination/mixture model); anything else raises
    ``ValueError``, which the experiment runner records as
    method-inapplicable.  The receiver's inversion exponent η̂₀ is read
    off the measurement model — it is hardware truth — while the
    generative exponent is inferred over ``config.eta_support``.

    ``extras`` of the returned result carry the channel posterior:
    ``eta_support`` / ``eta_posterior`` / ``eta_map`` / ``eta_mean``,
    the final ``nlos_fraction``, per-link ``link_responsibilities``
    (``(i, j, P(NLOS))`` triples), and ``em_rounds``, alongside the MAP
    hypothesis's beliefs/covariances/grid.
    """

    name = "bn-pk-joint"

    def __init__(
        self,
        prior: PositionPrior | None = None,
        radio: RadioModel | None = None,
        config: JointChannelConfig | None = None,
        tracer: NullTracer | None = None,
    ) -> None:
        self.prior = prior
        self.radio = radio
        self.config = config if config is not None else JointChannelConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------ #
    def localize(
        self, measurements: MeasurementSet, rng: RNGLike = None
    ) -> LocalizationResult:
        tracer = self.tracer
        with tracer.timer("localize"):
            result = self._localize_traced(measurements, tracer)
        if tracer.enabled:
            result.telemetry = tracer.snapshot()
        return result

    @staticmethod
    def _channel_base(ranging: RangingModel) -> tuple:
        """``(path_loss, inversion_exponent)`` of an RSSI-based model.

        Unwraps one NLOS contamination/mixture layer — the joint method
        replaces it with its own latent-indicator mixture.
        """
        base = ranging
        if isinstance(base, (NLOSRanging, RobustRanging)):
            base = base.base
        if isinstance(base, ChannelRSSIRanging):
            return base.path_loss, base.inversion_exponent
        if isinstance(base, RSSIRanging):
            return base.path_loss, base.path_loss.path_loss_exponent
        raise ValueError(
            "bn-pk-joint needs RSSI-based ranging (RSSIRanging or "
            f"ChannelRSSIRanging), got {type(ranging).__name__}"
        )

    def _hypothesis_models(
        self, path_loss, inversion: float, bias_mean: float, eps: float
    ) -> list[RangingModel]:
        cfg = self.config
        models: list[RangingModel] = []
        for eta in cfg.eta_support:
            model: RangingModel = ChannelRSSIRanging(
                dataclasses.replace(path_loss, path_loss_exponent=eta),
                inversion_exponent=inversion,
            )
            if cfg.estimate_nlos:
                model = LatentNLOSRanging(model, eps, bias_mean)
            models.append(model)
        return models

    def _localize_traced(
        self, ms: MeasurementSet, tracer: NullTracer
    ) -> LocalizationResult:
        cfg = self.config
        if not ms.has_ranging:
            raise ValueError("bn-pk-joint needs ranged measurements")
        path_loss, inversion = self._channel_base(ms.ranging)
        bias_mean = cfg.nlos_bias_ratio * ms.radio_range
        lo, hi = cfg.nlos_fraction_bounds
        # ε is rounded so repeated EM rounds reuse — not multiply — the
        # fingerprint-keyed entries in the shared potential registry.
        eps = round(float(np.clip(cfg.nlos_fraction_init, lo, hi)), 4)

        support = np.asarray(cfg.eta_support, dtype=np.float64)
        log_q = np.full(len(support), -np.log(len(support)))
        solvers = [
            GridBPLocalizer(self.prior, self.radio, cfg.grid)
            for _ in support
        ]

        results = scores = models = None
        structure = None
        responsibilities: list[tuple[int, int, float]] = []
        best = 0
        rounds = 0
        total_msgs = total_bytes = total_iters = 0
        for _ in range(cfg.em_iterations):
            rounds += 1
            models = self._hypothesis_models(path_loss, inversion, bias_mean, eps)
            variants = [
                dataclasses.replace(ms, ranging=model) for model in models
            ]
            with tracer.timer("hypothesis_batch"):
                results = localize_batch(list(zip(solvers, variants)))
            if structure is None:
                structure = self._link_structure(ms, results[0].extras["grid"])
            with tracer.timer("hypothesis_scores"):
                scores = np.array(
                    [
                        self._score(model, res, structure)
                        for model, res in zip(models, results)
                    ]
                )
            total_msgs += sum(r.messages_sent for r in results)
            total_bytes += sum(r.bytes_sent for r in results)
            total_iters += sum(r.n_iterations for r in results)
            log_q = scores - scores.max()
            new_best = int(np.argmax(scores))
            if cfg.estimate_nlos:
                responsibilities = self._link_responsibilities(
                    models[new_best], results[new_best], structure
                )
                new_eps = (
                    round(
                        float(
                            np.clip(
                                np.mean([r for _, _, r in responsibilities]),
                                lo,
                                hi,
                            )
                        ),
                        4,
                    )
                    if responsibilities
                    else eps
                )
            else:
                new_eps = eps
            converged = new_best == best and abs(new_eps - eps) < 1e-3
            best, eps = new_best, new_eps
            if converged and rounds > 1:
                break

        q = np.exp(log_q)
        q = q / q.sum()

        chosen = results[best]
        extras = dict(chosen.extras)
        extras.update(
            eta_support=[float(e) for e in support],
            eta_posterior=[float(v) for v in q],
            eta_map=float(support[best]),
            eta_mean=float(q @ support),
            eta_scores=[float(s) for s in scores],
            nlos_fraction=float(eps),
            link_responsibilities=responsibilities,
            em_rounds=rounds,
        )
        if tracer.enabled:
            tracer.annotate("method", self.name)
            tracer.annotate("eta_map", float(support[best]))
            tracer.annotate("nlos_fraction", float(eps))
            tracer.count("em_rounds", rounds)
            tracer.count("hypothesis_solves", rounds * len(support))
        return LocalizationResult(
            estimates=chosen.estimates.copy(),
            localized_mask=chosen.localized_mask.copy(),
            method=self.name,
            n_iterations=total_iters,
            converged=chosen.converged,
            messages_sent=total_msgs,
            bytes_sent=total_bytes,
            fallback_mask=(
                chosen.fallback_mask.copy()
                if chosen.fallback_mask is not None
                else None
            ),
            extras=extras,
        )

    # ------------------------------------------------------------------ #
    def _iter_links(self, ms: MeasurementSet):
        """Yield ``("anchor", u, a, obs)`` and ``("pair", i, j, obs)``."""
        for i, j in ms.edges():
            i, j = int(i), int(j)
            ai, aj = bool(ms.anchor_mask[i]), bool(ms.anchor_mask[j])
            if ai and aj:
                continue
            obs = float(ms.observed_distances[i, j])
            if ai or aj:
                u, a = (j, i) if ai else (i, j)
                yield "anchor", u, a, obs
            else:
                yield "pair", i, j, obs

    def _link_structure(self, ms: MeasurementSet, grid) -> dict:
        """Precompute the link arrays used for batched scoring.

        Scoring evaluates the model's log-likelihood at every grid cell
        for every link; doing that link-by-link dominates the whole
        method's runtime (the EMG mixture tail is expensive), so all
        links of one kind are stacked and evaluated in a single
        broadcast call per hypothesis.  Built once per ``localize`` —
        the grid and link list do not change across EM rounds.
        """
        links = list(self._iter_links(ms))
        pair = [(i, j, obs) for kind, i, j, obs in links if kind == "pair"]
        anch = [(u, a, obs) for kind, u, a, obs in links if kind == "anchor"]
        anchor_fields: dict[int, np.ndarray] = {}
        for _, a, _ in anch:
            if a not in anchor_fields:
                anchor_fields[a] = grid.distances_to_point(
                    ms.anchor_positions_full[a]
                )
        return {
            "links": links,
            "cell_d": grid.pairwise_center_distances(),
            "pair_i": [i for i, _, _ in pair],
            "pair_j": [j for _, j, _ in pair],
            "pair_obs": np.array([obs for _, _, obs in pair]),
            "anchor_u": [u for u, _, _ in anch],
            "anchor_obs": np.array([obs for _, _, obs in anch]),
            "anchor_d": (
                np.stack([anchor_fields[a] for _, a, _ in anch])
                if anch
                else np.zeros((0, 0))
            ),
        }

    @staticmethod
    def _truncate_belief(b: np.ndarray, cap: int) -> tuple[np.ndarray, np.ndarray]:
        """Smallest top-cell set covering ``1 − 1e-9`` mass (≤ *cap* cells),
        weights renormalized.  Deterministic: ties broken by argsort order."""
        order = np.argsort(b)[::-1]
        csum = np.cumsum(b[order])
        k = int(np.searchsorted(csum, 1.0 - 1e-9)) + 1
        k = min(max(k, 1), cap, b.size)
        idx = order[:k]
        w = b[idx]
        s = w.sum()
        w = w / s if s > 0 else np.full(k, 1.0 / k)
        return idx, w

    def _support_arrays(
        self, beliefs: dict, nodes: list[int], cap: int
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """``(idx, w)`` arrays of shape ``(len(nodes), T)`` of each node's
        truncated belief support, zero-weight padded to the widest node."""
        cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for n in nodes:
            if n not in cache:
                cache[n] = self._truncate_belief(beliefs[n], cap)
        width = max(len(cache[n][0]) for n in nodes)
        idx = np.zeros((len(nodes), width), dtype=np.intp)
        w = np.zeros((len(nodes), width))
        for e, n in enumerate(nodes):
            ni, nw = cache[n]
            idx[e, : len(ni)] = ni
            w[e, : len(nw)] = nw
        return idx, w, cache

    def _score(
        self, model: RangingModel, result: LocalizationResult, structure: dict
    ) -> float:
        """Expected data log-likelihood of *model* under *result*'s beliefs.

        With ``config.score_cells`` set (the default) the expectation runs
        over each node's truncated belief support; padded zero-weight
        entries hit the likelihood floor and contribute exactly 0.
        ``score_cells=None`` evaluates densely over every grid cell.
        """
        beliefs = result.extras["beliefs"]
        cap = self.config.score_cells
        total = 0.0
        if structure["pair_i"]:
            if cap is None:
                bi = np.stack([beliefs[n] for n in structure["pair_i"]])
                bj = np.stack([beliefs[n] for n in structure["pair_j"]])
                ll = floored_loglik(
                    model,
                    structure["pair_obs"][:, None, None],
                    structure["cell_d"][None, :, :],
                )
                total += float(np.einsum("eij,ei,ej->", ll, bi, bj))
            else:
                ii, wi, cache = self._support_arrays(
                    beliefs, structure["pair_i"], cap
                )
                jj, wj, _ = self._support_arrays(
                    beliefs, structure["pair_j"], cap
                )
                d = structure["cell_d"][ii[:, :, None], jj[:, None, :]]
                ll = floored_loglik(
                    model, structure["pair_obs"][:, None, None], d
                )
                total += float(np.einsum("eab,ea,eb->", ll, wi, wj))
        if structure["anchor_u"]:
            if cap is None:
                bu = np.stack([beliefs[n] for n in structure["anchor_u"]])
                ll = floored_loglik(
                    model,
                    structure["anchor_obs"][:, None],
                    structure["anchor_d"],
                )
                total += float(np.einsum("ek,ek->", ll, bu))
            else:
                uu, wu, _ = self._support_arrays(
                    beliefs, structure["anchor_u"], cap
                )
                d = np.take_along_axis(structure["anchor_d"], uu, axis=1)
                ll = floored_loglik(
                    model, structure["anchor_obs"][:, None], d
                )
                total += float(np.einsum("ea,ea->", ll, wu))
        return total

    def _link_responsibilities(
        self,
        model: LatentNLOSRanging,
        result: LocalizationResult,
        structure: dict,
    ) -> list[tuple[int, int, float]]:
        """Per-link expected NLOS posterior under the hypothesis beliefs."""
        beliefs = result.extras["beliefs"]
        cap = self.config.score_cells
        with np.errstate(all="ignore"):
            if structure["pair_i"]:
                if cap is None:
                    bi = np.stack([beliefs[n] for n in structure["pair_i"]])
                    bj = np.stack([beliefs[n] for n in structure["pair_j"]])
                    resp = model.responsibilities(
                        structure["pair_obs"][:, None, None],
                        structure["cell_d"][None, :, :],
                    )
                    r_pair = iter(np.einsum("eij,ei,ej->e", resp, bi, bj))
                else:
                    ii, wi, _ = self._support_arrays(
                        beliefs, structure["pair_i"], cap
                    )
                    jj, wj, _ = self._support_arrays(
                        beliefs, structure["pair_j"], cap
                    )
                    d = structure["cell_d"][ii[:, :, None], jj[:, None, :]]
                    resp = model.responsibilities(
                        structure["pair_obs"][:, None, None], d
                    )
                    r_pair = iter(np.einsum("eab,ea,eb->e", resp, wi, wj))
            else:
                r_pair = iter(())
            if structure["anchor_u"]:
                if cap is None:
                    bu = np.stack([beliefs[n] for n in structure["anchor_u"]])
                    resp = model.responsibilities(
                        structure["anchor_obs"][:, None],
                        structure["anchor_d"],
                    )
                    r_anchor = iter(np.einsum("ek,ek->e", resp, bu))
                else:
                    uu, wu, _ = self._support_arrays(
                        beliefs, structure["anchor_u"], cap
                    )
                    d = np.take_along_axis(structure["anchor_d"], uu, axis=1)
                    resp = model.responsibilities(
                        structure["anchor_obs"][:, None], d
                    )
                    r_anchor = iter(np.einsum("ea,ea->e", resp, wu))
            else:
                r_anchor = iter(())
        out: list[tuple[int, int, float]] = []
        for kind, i, j, _ in structure["links"]:
            r = next(r_anchor) if kind == "anchor" else next(r_pair)
            out.append((i, j, min(max(float(r), 0.0), 1.0)))
        return out
