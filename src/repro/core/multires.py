"""Coarse-to-fine multi-resolution localization.

Running grid BP at fine resolution is accurate but costs O(K²) per edge
per iteration.  :class:`MultiResolutionLocalizer` runs the solver at a
ladder of resolutions, converting each level's posterior beliefs into the
next level's pre-knowledge prior (:class:`~repro.priors.belief.GridBeliefPrior`)
— the same "posterior becomes prior" mechanism the mobile tracker uses,
applied across scales instead of time.  Because the coarse level already
concentrates the beliefs, the fine level needs fewer iterations, cutting
total runtime while matching (often beating) single-resolution accuracy.

This is one of the natural-extension features DESIGN.md calls out; its
cost/accuracy trade-off is measured by the design-ablation benchmark.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.bnloc import GridBPConfig, GridBPLocalizer
from repro.core.grid import Grid2D
from repro.core.result import LocalizationResult, Localizer
from repro.measurement.measurements import MeasurementSet
from repro.priors.base import PositionPrior
from repro.priors.belief import GridBeliefPrior
from repro.priors.composition import combine
from repro.utils.rng import RNGLike

__all__ = ["MultiResolutionLocalizer"]


class MultiResolutionLocalizer(Localizer):
    """Grid BP on a resolution ladder with belief hand-off between levels.

    Parameters
    ----------
    prior:
        Pre-knowledge applied at the *coarsest* level (finer levels inherit
        it through the belief hand-off, which already contains it).
    levels:
        Grid sizes, coarse to fine (strictly increasing).
    iterations_per_level:
        BP iterations at each level; by default most work happens at the
        coarse levels and the finest level only polishes.
    config:
        Template for per-level configs (grid size and iteration count are
        overridden level by level).
    keep_prior_at_all_levels:
        Re-apply the explicit prior at every level (in addition to the
        inherited beliefs).  Off by default — the hand-off already carries
        it, and re-applying would double-count.
    """

    name = "grid-bp-multires"

    def __init__(
        self,
        prior: PositionPrior | None = None,
        levels: Sequence[int] = (8, 16, 24),
        iterations_per_level: Sequence[int] | None = None,
        config: GridBPConfig | None = None,
        keep_prior_at_all_levels: bool = False,
    ) -> None:
        levels = [int(g) for g in levels]
        if len(levels) < 1:
            raise ValueError("need at least one resolution level")
        if any(b <= a for a, b in zip(levels, levels[1:])):
            raise ValueError("levels must be strictly increasing (coarse→fine)")
        if iterations_per_level is None:
            # front-load iterations on the cheap coarse levels
            iterations_per_level = [8] * (len(levels) - 1) + [4] if len(levels) > 1 else [10]
        iterations_per_level = [int(i) for i in iterations_per_level]
        if len(iterations_per_level) != len(levels):
            raise ValueError("iterations_per_level must match levels")
        if any(i < 1 for i in iterations_per_level):
            raise ValueError("iterations must be >= 1")
        self.prior = prior
        self.levels = levels
        self.iterations_per_level = iterations_per_level
        self.template = config if config is not None else GridBPConfig()
        self.keep_prior_at_all_levels = bool(keep_prior_at_all_levels)

    def localize(
        self, measurements: MeasurementSet, rng: RNGLike = None
    ) -> LocalizationResult:
        """Run the ladder and aggregate into one fresh result.

        Aggregate field semantics (the finest level's result is *not*
        mutated — estimates, masks, beliefs, and grid come from the finest
        level, the ladder-wide fields are recomputed):

        * ``n_iterations`` — total BP iterations across all levels;
        * ``converged`` — True only if *every* level met its tolerance;
        * ``messages_sent`` / ``bytes_sent`` — summed over levels;
        * ``extras["levels"]`` — per-level detail (``grid_size``,
          ``n_iterations``, ``converged``, ``messages_sent``,
          ``bytes_sent``).
        """
        from dataclasses import replace

        prior: PositionPrior | None = self.prior
        result: LocalizationResult | None = None
        level_detail: list[dict] = []
        for level, (grid_size, iters) in enumerate(
            zip(self.levels, self.iterations_per_level)
        ):
            cfg = replace(
                self.template, grid_size=grid_size, max_iterations=iters
            )
            solver = GridBPLocalizer(prior=prior, config=cfg)
            result = solver.localize(measurements, rng)
            level_detail.append(
                {
                    "grid_size": grid_size,
                    "n_iterations": result.n_iterations,
                    "converged": bool(result.converged),
                    "messages_sent": result.messages_sent,
                    "bytes_sent": result.bytes_sent,
                }
            )
            if level + 1 < len(self.levels):
                grid: Grid2D = result.extras["grid"]
                handoff: PositionPrior = GridBeliefPrior(
                    grid,
                    result.extras["beliefs"],
                    # smooth by one coarse cell so the fine level can move
                    # within the quantization uncertainty of the hand-off
                    diffusion_sigma=grid.cell_diagonal / 2,
                    floor=1e-4,
                )
                if self.keep_prior_at_all_levels and self.prior is not None:
                    handoff = combine(handoff, self.prior)
                prior = handoff
        assert result is not None
        return LocalizationResult(
            estimates=result.estimates,
            localized_mask=result.localized_mask,
            method=self.name,
            n_iterations=sum(d["n_iterations"] for d in level_detail),
            converged=all(d["converged"] for d in level_detail),
            trace=result.trace,
            messages_sent=sum(d["messages_sent"] for d in level_detail),
            bytes_sent=sum(d["bytes_sent"] for d in level_detail),
            telemetry=result.telemetry,
            fallback_mask=result.fallback_mask,
            extras={**result.extras, "levels": level_detail},
        )
