"""Continuous refinement of grid estimates.

The grid posterior quantizes positions to cell scale.  When a point
estimate (rather than a distribution) is the deliverable, a short
Gauss–Seidel polish removes most of the quantization bias: each unknown
node in turn is re-solved by weighted nonlinear least squares against its
neighbors' *current* estimates and its anchor observations, for a few
sweeps.  Because it starts from the BP estimate — already in the right
basin — it inherits BP's robustness while recovering continuous accuracy,
unlike cold-started MLE which falls into fold-over minima.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import least_squares

from repro.core.result import LocalizationResult
from repro.measurement.measurements import MeasurementSet
from repro.utils.rng import RNGLike

__all__ = ["refine_estimates"]


def refine_estimates(
    measurements: MeasurementSet,
    result: LocalizationResult,
    n_sweeps: int = 2,
    max_step: float | None = None,
) -> LocalizationResult:
    """Polish a localization result by per-node nonlinear least squares.

    Parameters
    ----------
    measurements:
        The observations the original result was computed from (must be a
        ranging measurement set).
    result:
        Any :class:`LocalizationResult`; only localized unknown nodes with
        ≥ 2 localized neighbors are touched.
    n_sweeps:
        Gauss–Seidel sweeps over all nodes.
    max_step:
        Optional cap on how far a node may move from its starting
        estimate (defaults to one radio range) — keeps the polish local,
        so it cannot undo BP's global disambiguation.

    Returns
    -------
    LocalizationResult
        A new result (method name suffixed ``+refine``); the input is not
        modified.
    """
    ms = measurements
    if not ms.has_ranging:
        raise ValueError("refinement needs ranged measurements")
    if n_sweeps < 1:
        raise ValueError("n_sweeps must be >= 1")
    if max_step is None:
        max_step = ms.radio_range
    if max_step <= 0:
        raise ValueError("max_step must be positive")

    estimates = result.estimates.copy()
    mask = result.localized_mask.copy()
    start = estimates.copy()

    obs = ms.observed_distances
    sigma = ms.ranging.sigma_at(np.where(np.isfinite(obs), obs, 1.0))
    for _ in range(n_sweeps):
        for u in ms.unknown_ids:
            u = int(u)
            if not mask[u]:
                continue
            neigh = [int(v) for v in ms.neighbors(u) if mask[v]]
            if len(neigh) < 2:
                continue
            refs = estimates[neigh]
            d = obs[u, neigh]
            w = 1.0 / np.maximum(sigma[u, neigh], 1e-9)

            def residuals(p):
                return (np.linalg.norm(refs - p, axis=1) - d) * w

            fit = least_squares(residuals, estimates[u], method="lm", max_nfev=50)
            candidate = fit.x
            step = candidate - start[u]
            norm = np.linalg.norm(step)
            if norm > max_step:
                candidate = start[u] + step * (max_step / norm)
            estimates[u] = candidate

    return LocalizationResult(
        estimates=estimates,
        localized_mask=mask,
        method=f"{result.method}+refine",
        n_iterations=result.n_iterations,
        converged=result.converged,
        messages_sent=result.messages_sent,
        bytes_sent=result.bytes_sent,
        extras=dict(result.extras),
    )
