"""Belief-health guards and fallback position estimates.

Under fault injection (corrupted messages, dead anchors, outlier ranges)
a message-passing solver can produce numerically broken beliefs: NaN/Inf
entries, zero total mass, or residuals that grow instead of shrink.  The
helpers here let every solver detect that cheaply, attempt a damped
restart, and — for nodes whose belief is beyond repair — fall back to a
baseline-style estimate (anchor centroid, then the prior mean, then the
field center) instead of emitting NaN or aborting the run.

All checks are *observation only* on healthy inputs: they allocate no
randomness and change nothing unless a belief is actually broken, so
fault-free runs remain bit-identical (asserted by the golden-trace
tests).
"""

from __future__ import annotations

import numpy as np

from repro.measurement.measurements import MeasurementSet

__all__ = [
    "healthy_belief_rows",
    "repair_nonfinite_messages",
    "residuals_diverging",
    "fallback_position",
]

#: a belief more concentrated than this on a single state is considered
#: degenerate only if it is *exactly* a delta with no supporting evidence —
#: we deliberately do NOT flag confident-but-finite beliefs, which are the
#: normal end state of converged BP.
_DIVERGENCE_GROWTH = 100.0
_DIVERGENCE_FLOOR = 1e-3


def healthy_belief_rows(beliefs: np.ndarray) -> np.ndarray:
    """Per-row health mask of a ``(n, K)`` belief matrix.

    A belief row is healthy when every entry is finite and non-negative
    and the row carries positive total mass.
    """
    finite = np.isfinite(beliefs).all(axis=1)
    nonneg = np.ones(len(beliefs), dtype=bool)
    nonneg[finite] = (beliefs[finite] >= 0).all(axis=1)
    mass = np.zeros(len(beliefs))
    mass[finite] = beliefs[finite].sum(axis=1)
    return finite & nonneg & (mass > 0)


def repair_nonfinite_messages(messages: np.ndarray) -> int:
    """Replace non-finite message rows with uniform in place.

    Returns the number of rows repaired (0 on healthy input, in which
    case the array is untouched).
    """
    finite = np.isfinite(messages).all(axis=1)
    n_bad = int(len(finite) - finite.sum())
    if n_bad:
        K = messages.shape[1]
        messages[~finite] = 1.0 / K
    return n_bad


def residuals_diverging(residuals: list[float]) -> bool:
    """Conservative divergence test on a message-residual history.

    True only when the residual grew on each of the last three steps AND
    the final residual sits two orders of magnitude above the best seen
    (and above an absolute floor).  Healthy damped loopy BP — including
    runs that merely plateau above tolerance — never trips this.
    """
    if len(residuals) < 4:
        return False
    tail = residuals[-4:]
    if not all(b > a for a, b in zip(tail, tail[1:])):
        return False
    best = min(residuals)
    last = residuals[-1]
    if not np.isfinite(last):
        return True
    return last > _DIVERGENCE_FLOOR and last > _DIVERGENCE_GROWTH * max(best, 1e-300)


def fallback_position(
    ms: MeasurementSet,
    node: int,
    prior=None,
    grid=None,
) -> np.ndarray:
    """Baseline-style estimate for a node whose belief broke down.

    Preference order: centroid of the anchors the node hears (the classic
    range-free estimate), then the prior mean on *grid*, then the field
    center — always finite, never raises.
    """
    node = int(node)
    heard = [
        int(a) for a in ms.anchor_ids if ms.adjacency[node, a]
    ]
    if heard:
        return ms.anchor_positions_full[heard].mean(axis=0)
    if prior is not None and grid is not None:
        try:
            w = prior.grid_weights(node, grid)
            return w @ grid.centers
        except Exception:
            pass
    return np.array([ms.width / 2.0, ms.height / 2.0])
