"""Common result type and localizer interface.

Every localization algorithm in the library — the Bayesian-network core as
well as every classic baseline — implements :class:`Localizer` and returns
a :class:`LocalizationResult`, so the experiment harness can treat them
uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.measurement.measurements import MeasurementSet
from repro.utils.rng import RNGLike

__all__ = ["LocalizationResult", "Localizer"]


@dataclass
class LocalizationResult:
    """Output of one localization run.

    Attributes
    ----------
    estimates:
        ``(n, 2)`` estimated coordinates.  Anchor rows contain the known
        anchor positions; rows of nodes the method could not localize are
        NaN (and excluded from ``localized_mask``).
    localized_mask:
        Boolean mask of nodes with a valid estimate (anchors included).
    method:
        Human-readable algorithm name.
    n_iterations:
        Iterations executed (0 for one-shot methods).
    converged:
        Whether the iterative method met its stopping tolerance.
    trace:
        Optional per-iteration snapshots of ``estimates`` (for convergence
        curves, experiment E6).
    messages_sent, bytes_sent:
        Communication accounting under the distributed execution model
        (experiment E7); zero for centralized-only baselines.
    telemetry:
        JSON-serializable instrumentation export
        (:meth:`repro.obs.Tracer.snapshot`) when the solver ran with a
        tracer attached; ``None`` otherwise.  Per-iteration residuals and
        message counts in it are deterministic given the seed; only the
        ``"timers"`` section is wall-clock.
    fallback_mask:
        Per-node boolean mask of graceful-degradation fallbacks: True
        where the solver's belief broke down (NaN / zero mass, e.g. under
        fault injection) and the reported estimate came from a baseline
        fallback (anchor centroid / prior mean) instead of the posterior.
        ``None`` when the method has no degradation machinery; all-False
        on healthy runs.
    extras:
        Method-specific payloads (belief vectors, covariances, …).
    """

    estimates: np.ndarray
    localized_mask: np.ndarray
    method: str
    n_iterations: int = 0
    converged: bool = True
    trace: list[np.ndarray] = field(default_factory=list)
    messages_sent: int = 0
    bytes_sent: int = 0
    telemetry: dict | None = None
    fallback_mask: np.ndarray | None = None
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.estimates = np.asarray(self.estimates, dtype=np.float64)
        if self.estimates.ndim != 2 or self.estimates.shape[1] != 2:
            raise ValueError("estimates must have shape (n, 2)")
        self.localized_mask = np.asarray(self.localized_mask, dtype=bool)
        if self.localized_mask.shape != (len(self.estimates),):
            raise ValueError("localized_mask shape mismatch")
        if np.isnan(self.estimates[self.localized_mask]).any():
            raise ValueError("localized nodes must have finite estimates")
        if self.fallback_mask is not None:
            self.fallback_mask = np.asarray(self.fallback_mask, dtype=bool)
            if self.fallback_mask.shape != (len(self.estimates),):
                raise ValueError("fallback_mask shape mismatch")

    @property
    def n_nodes(self) -> int:
        return len(self.estimates)

    def errors(self, true_positions: np.ndarray) -> np.ndarray:
        """Per-node Euclidean errors (NaN where not localized)."""
        true = np.asarray(true_positions, dtype=np.float64)
        if true.shape != self.estimates.shape:
            raise ValueError("true_positions shape mismatch")
        err = np.full(self.n_nodes, np.nan)
        m = self.localized_mask
        err[m] = np.linalg.norm(self.estimates[m] - true[m], axis=1)
        return err


class Localizer(ABC):
    """Interface implemented by every localization algorithm."""

    #: short identifier used in result tables
    name: str = "localizer"

    @abstractmethod
    def localize(
        self, measurements: MeasurementSet, rng: RNGLike = None
    ) -> LocalizationResult:
        """Estimate unknown-node positions from observable data only."""

    @staticmethod
    def _result_skeleton(measurements: MeasurementSet) -> tuple[np.ndarray, np.ndarray]:
        """NaN estimate array with anchors pre-filled + anchor-only mask."""
        estimates = np.full((measurements.n_nodes, 2), np.nan)
        estimates[measurements.anchor_mask] = measurements.anchor_positions
        return estimates, measurements.anchor_mask.copy()
