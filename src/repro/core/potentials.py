"""Grid potentials: likelihood tables over cells and cell pairs.

These functions turn measurement models into the unary vectors and pairwise
matrices that the grid Bayesian network multiplies together:

* anchor observations → unary ``(K,)`` vectors,
* inter-unknown ranging → pairwise ``(K, K)`` matrices,
* absence of a link to an anchor → *negative evidence* unary vectors.

Pairwise matrices dominate cost and memory, so
:class:`RangingPotentialCache` quantizes the observed distance and stores
truncated sparse kernels: edges with (nearly) the same observed distance
share one matrix.  For a 20×20 grid, a typical cache holds a few dozen
sparse 400×400 kernels instead of one dense matrix per edge.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
from scipy import sparse

from repro.core.grid import Grid2D
from repro.measurement.ranging import RangingModel
from repro.network.radio import RadioModel

__all__ = [
    "pairwise_ranging_potential",
    "ranging_potential_from_distances",
    "connectivity_potential",
    "anchor_ranging_potential",
    "anchor_connectivity_potential",
    "negative_anchor_potential",
    "pairwise_bearing_potential",
    "anchor_bearing_potential",
    "floored_loglik",
    "expected_anchor_loglik",
    "expected_pairwise_loglik",
    "RangingPotentialCache",
    "PotentialCacheRegistry",
    "shared_registry",
]


def _normalize_matrix(values: np.ndarray) -> np.ndarray:
    peak = values.max()
    if peak <= 0:
        raise ValueError(
            "potential has zero mass everywhere — measurement inconsistent "
            "with the grid (observed distance far outside the field?)"
        )
    return values / peak


# 3-point Gauss–Hermite quadrature for N(0, 1): nodes ±√3 and 0.
_GH_NODES = np.array([-np.sqrt(3.0), 0.0, np.sqrt(3.0)])
_GH_WEIGHTS = np.array([1.0 / 6.0, 2.0 / 3.0, 1.0 / 6.0])


def _blurred_likelihood(
    distances: np.ndarray,
    observed_distance: float,
    ranging: RangingModel,
    blur_sigma: float,
) -> np.ndarray:
    """``E_ε[p(d_obs | d + ε)]`` with ε ~ N(0, blur_sigma²).

    Positions are only known to within a grid cell, so the distance
    between two cell *centers* differs from the true inter-node distance
    by a quantization error.  Marginalizing the likelihood over that error
    (3-point Gauss–Hermite) prevents aliasing when the ranging noise is
    narrower than a cell.  ``blur_sigma=0`` is the plain likelihood.

    All quadrature components share ONE log-offset (the global maximum):
    normalizing each component by its own peak would rescale the mixture
    terms relative to each other and distort the quadrature weights.
    """
    if blur_sigma <= 0:
        ll = ranging.log_likelihood(float(observed_distance), distances)
        return np.exp(ll - ll.max())
    lls = [
        ranging.log_likelihood(
            float(observed_distance),
            np.maximum(distances + node * blur_sigma, 0.0),
        )
        for node in _GH_NODES
    ]
    offset = max(ll.max() for ll in lls)
    vals = 0.0
    for weight, ll in zip(_GH_WEIGHTS, lls):
        vals = vals + weight * np.exp(ll - offset)
    return vals


def ranging_potential_from_distances(
    distances: np.ndarray,
    observed_distance: float,
    ranging: RangingModel,
    radio: RadioModel | None = None,
    blur_sigma: float = 0.0,
    p_detect: np.ndarray | None = None,
) -> np.ndarray:
    """Ranging potential over precomputed candidate *distances*.

    The shared kernel behind :func:`pairwise_ranging_potential` (pairwise
    ``(K, K)`` cell distances) and :func:`anchor_ranging_potential` (unary
    ``(K,)`` distances to an anchor).  Callers that evaluate many
    observations against the *same* geometry pass the distance field — and
    optionally the matching detection-probability field *p_detect* — once
    instead of recomputing them per observation.
    """
    vals = _blurred_likelihood(distances, observed_distance, ranging, blur_sigma)
    if radio is not None or p_detect is not None:
        pd = p_detect if p_detect is not None else radio.p_detect(distances)
        masked = vals * pd
        if masked.max() <= 0:
            # The observed distance is inconsistent with being in radio
            # range (a gross outlier, e.g. severe NLOS): discard the range
            # and keep the link evidence rather than zeroing the factor.
            masked = pd
        vals = masked
    return _normalize_matrix(vals)


def pairwise_ranging_potential(
    cell_distances: np.ndarray,
    observed_distance: float,
    ranging: RangingModel,
    radio: RadioModel | None = None,
    blur_sigma: float = 0.0,
) -> np.ndarray:
    """Dense ``(K, K)`` potential ``p(d_obs, link | x_i, x_j)``.

    Scaled so the maximum entry is 1 (BP renormalizes messages anyway).
    If *radio* is given, the link-detection probability multiplies in —
    observing the link is itself evidence the pair is within range.
    *blur_sigma* marginalizes the grid-quantization error (see
    :func:`_blurred_likelihood`).
    """
    return ranging_potential_from_distances(
        cell_distances, observed_distance, ranging, radio, blur_sigma
    )


def connectivity_potential(
    cell_distances: np.ndarray, radio: RadioModel
) -> np.ndarray:
    """Range-free pairwise potential: ``p(link | x_i, x_j)`` (max-scaled)."""
    return _normalize_matrix(radio.p_detect(cell_distances))


def anchor_ranging_potential(
    grid: Grid2D,
    anchor_position: np.ndarray,
    observed_distance: float,
    ranging: RangingModel,
    radio: RadioModel | None = None,
    blur_sigma: float = 0.0,
) -> np.ndarray:
    """Unary ``(K,)`` potential from a ranged anchor observation."""
    return ranging_potential_from_distances(
        grid.distances_to_point(anchor_position),
        observed_distance,
        ranging,
        radio,
        blur_sigma,
    )


def anchor_connectivity_potential(
    grid: Grid2D, anchor_position: np.ndarray, radio: RadioModel
) -> np.ndarray:
    """Unary potential from merely *hearing* an anchor (range-free)."""
    return _normalize_matrix(radio.p_detect(grid.distances_to_point(anchor_position)))


def negative_anchor_potential(
    grid: Grid2D, anchor_position: np.ndarray, radio: RadioModel
) -> np.ndarray:
    """Unary potential from *not* hearing an anchor: ``1 - p_detect``.

    The "negative evidence" component of pre-knowledge exploitation: a
    silent anchor pushes the belief out of its coverage disk.  Returned
    un-rescaled (values already in [0, 1]); may be all-zero-free but can
    zero out the entire grid only if the anchor covers the whole field,
    which callers should treat as model misspecification.
    """
    vals = 1.0 - radio.p_detect(grid.distances_to_point(anchor_position))
    if vals.max() <= 0:
        raise ValueError(
            "negative evidence eliminated every cell — anchor's radio "
            "range covers the entire grid"
        )
    return vals


#: Floor for per-cell log-likelihoods inside belief expectations: the log
#: of the smallest positive normal double.  Expectations weight cells by
#: belief mass, and ``0 · (-inf)`` would poison the sum with NaN; flooring
#: keeps impossible cells maximally penalized but finite.
_EXPECTED_LL_FLOOR = -745.0


def floored_loglik(
    ranging: RangingModel, observed, distances: np.ndarray
) -> np.ndarray:
    """``log p(observed | distances)`` floored at ``_EXPECTED_LL_FLOOR``.

    *observed* may be a scalar or any array broadcastable against
    *distances* (hypothesis scoring evaluates all links of one model in a
    single broadcast call).  NaN/±inf are mapped to the floor, so the
    result is safe inside belief-weighted expectations.
    """
    with np.errstate(all="ignore"):
        ll = ranging.log_likelihood(observed, distances)
    return np.maximum(
        np.nan_to_num(ll, nan=_EXPECTED_LL_FLOOR, neginf=_EXPECTED_LL_FLOOR),
        _EXPECTED_LL_FLOOR,
    )


def expected_anchor_loglik(
    ranging: RangingModel,
    observed_distance: float,
    distances: np.ndarray,
    belief: np.ndarray,
) -> float:
    """``E_b[log p(d_obs | d(x, anchor))]`` over a unary ``(K,)`` belief.

    The anchor-link term of the expected data log-likelihood used to score
    channel-parameter hypotheses (joint η estimation): each hypothesis is
    ranked by how well it explains the observations *under its own
    posterior beliefs*.  Log-likelihoods are floored (see
    ``_EXPECTED_LL_FLOOR``) so zero-belief × impossible-cell never NaNs.
    """
    ll = floored_loglik(ranging, observed_distance, distances)
    return float(np.asarray(belief, dtype=np.float64) @ ll)


def expected_pairwise_loglik(
    ranging: RangingModel,
    observed_distance: float,
    cell_distances: np.ndarray,
    belief_i: np.ndarray,
    belief_j: np.ndarray,
) -> float:
    """``E_{b_i, b_j}[log p(d_obs | d(x_i, x_j))]`` over a ``(K, K)`` field.

    The inter-unknown-link term of the expected data log-likelihood:
    ``b_iᵀ · L · b_j`` with ``L`` the floored log-likelihood evaluated on
    the pairwise cell-center distances (mean-field factorization of the
    pair belief, consistent with BP's per-node marginals).
    """
    ll = floored_loglik(ranging, observed_distance, cell_distances)
    bi = np.asarray(belief_i, dtype=np.float64)
    bj = np.asarray(belief_j, dtype=np.float64)
    return float(bi @ ll @ bj)


def pairwise_bearing_potential(
    grid: Grid2D,
    observed_ij: float,
    observed_ji: float,
    bearing_model,
) -> np.ndarray:
    """Oriented ``(K, K)`` AoA potential over cell pairs ``[x_i, x_j]``.

    *observed_ij* is the bearing node *i* measured toward *j*;
    *observed_ji* the reverse measurement.  Either may be NaN (missing).
    Note the result is **asymmetric** — the bearing from x_i to x_j is the
    reverse bearing ± π — so callers must transpose for the reverse
    message direction.
    """
    B = grid.pairwise_center_bearings()
    ll = np.zeros_like(B)
    any_obs = False
    if np.isfinite(observed_ij):
        ll = ll + bearing_model.log_likelihood(float(observed_ij), B)
        any_obs = True
    if np.isfinite(observed_ji):
        # bearing from x_j to x_i over the same [x_i, x_j] axes is B.T
        ll = ll + bearing_model.log_likelihood(float(observed_ji), B.T)
        any_obs = True
    if not any_obs:
        raise ValueError("both bearing observations are missing")
    return _normalize_matrix(np.exp(ll - ll.max()))


def anchor_bearing_potential(
    grid: Grid2D,
    anchor_position: np.ndarray,
    observed_from_node: float,
    observed_from_anchor: float,
    bearing_model,
) -> np.ndarray:
    """Unary ``(K,)`` AoA potential from a node–anchor link.

    *observed_from_node*: bearing the node measured toward the anchor;
    *observed_from_anchor*: bearing the anchor measured toward the node
    (each may be NaN).  A single anchor bearing confines the node to a
    ray — far stronger than the annulus a range gives.
    """
    to_anchor = grid.bearings_to_point(anchor_position)
    ll = np.zeros(grid.n_cells)
    any_obs = False
    if np.isfinite(observed_from_node):
        ll = ll + bearing_model.log_likelihood(float(observed_from_node), to_anchor)
        any_obs = True
    if np.isfinite(observed_from_anchor):
        from_anchor = np.arctan2(np.sin(to_anchor + np.pi), np.cos(to_anchor + np.pi))
        ll = ll + bearing_model.log_likelihood(
            float(observed_from_anchor), from_anchor
        )
        any_obs = True
    if not any_obs:
        raise ValueError("both bearing observations are missing")
    return _normalize_matrix(np.exp(ll - ll.max()))


class RangingPotentialCache:
    """Shared, truncated, sparse pairwise ranging potentials.

    Parameters
    ----------
    grid:
        The discretization (provides the ``(K, K)`` center distances).
    ranging:
        Likelihood model for observed distances.
    radio:
        Optional link model folded into the potential.
    quantum:
        Observed distances are rounded to multiples of *quantum* so edges
        share kernels.  Default: an eighth of a grid cell — well below the
        quantization noise the grid itself introduces.
    truncate:
        Entries below ``truncate × max`` are dropped to sparsify.  5e-4
        keeps >99.9 % of each row's mass for Gaussian-like kernels.
    blur_sigma:
        Grid-quantization marginalization passed through to
        :func:`pairwise_ranging_potential`.
    """

    def __init__(
        self,
        grid: Grid2D,
        ranging: RangingModel,
        radio: RadioModel | None = None,
        quantum: float | None = None,
        truncate: float = 5e-4,
        blur_sigma: float = 0.0,
    ) -> None:
        if not (0 <= truncate < 1):
            raise ValueError("truncate must lie in [0, 1)")
        self.grid = grid
        self.ranging = ranging
        self.radio = radio
        if quantum is None:
            quantum = min(grid.cell_width, grid.cell_height) / 8.0
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        if blur_sigma < 0:
            raise ValueError("blur_sigma must be non-negative")
        self.quantum = float(quantum)
        self.truncate = float(truncate)
        self.blur_sigma = float(blur_sigma)
        self._cache: dict[int, sparse.csr_matrix] = {}

    def _key(self, observed_distance: float) -> int:
        return int(round(float(observed_distance) / self.quantum))

    def get(self, observed_distance: float) -> sparse.csr_matrix:
        """Sparse ``(K, K)`` potential for an observed distance.

        The kernel is symmetric (it depends only on inter-cell distance),
        so callers can use it for either message direction.
        """
        if not np.isfinite(observed_distance) or observed_distance < 0:
            raise ValueError(
                f"observed distance must be finite and >= 0, got {observed_distance}"
            )
        key = self._key(observed_distance)
        mat = self._cache.get(key)
        if mat is None:
            dense = pairwise_ranging_potential(
                self.grid.pairwise_center_distances(),
                key * self.quantum,
                self.ranging,
                self.radio,
                blur_sigma=self.blur_sigma,
            )
            dense[dense < self.truncate] = 0.0
            mat = sparse.csr_matrix(dense)
            self._cache[key] = mat
        return mat

    @property
    def n_cached(self) -> int:
        return len(self._cache)

    @property
    def nbytes(self) -> int:
        """Approximate memory held by the cached sparse kernels."""
        return sum(
            m.data.nbytes + m.indices.nbytes + m.indptr.nbytes
            for m in self._cache.values()
        )


def _fingerprint(obj) -> tuple | None:
    """Hashable identity of a model object, from its scalar attributes.

    Two instances fingerprint equal iff they are the same class with the
    same scalar (and recursively fingerprintable) attributes — exactly the
    condition under which they produce identical potentials.  Returns
    ``None`` for objects that carry non-scalar state (arrays, callables),
    which the registry treats as uncacheable rather than guessing.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return ("scalar", obj)
    attrs = getattr(obj, "__dict__", None)
    if attrs is None:
        return None
    items = []
    for name in sorted(attrs):
        value = attrs[name]
        if isinstance(value, (bool, int, float, str, type(None))):
            items.append((name, value))
        else:
            nested = _fingerprint(value)
            if nested is None:
                return None
            items.append((name, nested))
    return (type(obj).__module__, type(obj).__qualname__, tuple(items))


class PotentialCacheRegistry:
    """Process-level store of potential caches shared across solver runs.

    Monte-Carlo sweeps (:func:`repro.parallel.run_trials` and the
    resilient variant) run hundreds of trials over the *same* grid
    geometry, ranging model, and radio — yet each
    :class:`~repro.core.bnloc.GridBPLocalizer` call used to rebuild its
    :class:`RangingPotentialCache` (and the grid's ``(K, K)`` center
    distance matrix) from scratch.  This registry keys those artifacts on
    ``(grid geometry, ranging model, radio model, blur_sigma)`` so every
    trial after the first inside a worker process reuses the warm kernels.

    Correctness: a cache entry is reused only when the fingerprint of all
    four key components matches exactly, and the cached objects are pure
    functions of that key — so a warm run is bit-identical to a cold one
    (asserted by ``tests/test_perf_cache.py``).  Models whose state cannot
    be fingerprinted (non-scalar attributes) bypass the registry and get a
    private cache, never a wrong one.

    The registry is bounded: at most *max_entries* ranging caches (and as
    many distance matrices) are kept, evicted least-recently-used.  Hits,
    misses, and resident bytes are available via :meth:`stats` and are
    surfaced as tracer counters/gauges (``cache_hits``, ``cache_misses``,
    ``cache_bytes``) by the call sites.
    """

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._ranging: "OrderedDict[tuple, RangingPotentialCache]" = OrderedDict()
        self._pairwise: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    @staticmethod
    def _grid_key(grid: Grid2D) -> tuple:
        return (grid.nx, grid.ny, float(grid.width), float(grid.height))

    def pairwise_distances(self, grid: Grid2D) -> np.ndarray:
        """Shared ``(K, K)`` cell-center distance matrix for *grid*.

        Also installs the matrix into *grid*'s own cache slot, so
        subsequent ``grid.pairwise_center_distances()`` calls hit it.
        """
        key = self._grid_key(grid)
        mat = self._pairwise.get(key)
        if mat is None:
            mat = grid.pairwise_center_distances()
            self._pairwise[key] = mat
            while len(self._pairwise) > self.max_entries:
                self._pairwise.popitem(last=False)
        else:
            self._pairwise.move_to_end(key)
            grid.use_shared_pairwise(mat)
        return mat

    def ranging_cache(
        self,
        grid: Grid2D,
        ranging: RangingModel,
        radio: RadioModel | None,
        blur_sigma: float,
    ) -> RangingPotentialCache:
        """A (possibly warm) :class:`RangingPotentialCache` for the key.

        On a fingerprint match the previously built cache — including all
        its quantized sparse kernels — is returned; otherwise a fresh one
        is built, registered (when fingerprintable), and returned.
        """
        rkey = _fingerprint(ranging)
        dkey = _fingerprint(radio)
        if rkey is None or (radio is not None and dkey is None):
            self.misses += 1
            return RangingPotentialCache(
                grid, ranging, radio, blur_sigma=blur_sigma
            )
        key = (self._grid_key(grid), rkey, dkey, float(blur_sigma))
        cache = self._ranging.get(key)
        if cache is not None:
            self.hits += 1
            self._ranging.move_to_end(key)
            self.pairwise_distances(grid)  # install into the caller's grid
            return cache
        self.misses += 1
        self.pairwise_distances(grid)  # share the distance matrix too
        cache = RangingPotentialCache(grid, ranging, radio, blur_sigma=blur_sigma)
        self._ranging[key] = cache
        while len(self._ranging) > self.max_entries:
            self._ranging.popitem(last=False)
        return cache

    # ------------------------------------------------------------------ #
    @property
    def nbytes(self) -> int:
        return sum(c.nbytes for c in self._ranging.values()) + sum(
            m.nbytes for m in self._pairwise.values()
        )

    def stats(self) -> dict:
        """JSON-safe snapshot: hits, misses, entry counts, resident bytes."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "ranging_entries": len(self._ranging),
            "pairwise_entries": len(self._pairwise),
            "bytes": self.nbytes,
        }

    def clear(self) -> None:
        self._ranging.clear()
        self._pairwise.clear()
        self.hits = 0
        self.misses = 0


#: process-level singleton; worker processes each grow their own copy
_SHARED_REGISTRY = PotentialCacheRegistry()


def shared_registry() -> PotentialCacheRegistry:
    """The process-level :class:`PotentialCacheRegistry` singleton."""
    return _SHARED_REGISTRY
