"""Concrete pre-knowledge priors.

* :class:`UniformPrior` — no pre-knowledge (the baseline the paper's method
  is compared against: same inference, uninformative prior).
* :class:`GaussianPrior` — all nodes near one known point.
* :class:`MixturePrior` — nodes near one of several known drop points.
* :class:`DeploymentPrior` — wraps any
  :class:`~repro.network.deployment.DeploymentModel`'s own density: the
  exactly-matched prior ("the operator knows the deployment process").
* :class:`PerNodePrior` — node-specific Gaussians around each node's
  intended position (e.g. planned grid placement) — the strongest form of
  pre-knowledge, and the one that can be deliberately *mis-specified* for
  the E8 prior-quality experiment.
* :class:`RegionPrior` — uniform over an arbitrary region mask (e.g. "nodes
  are somewhere in the C, not in the void").
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.network.deployment import DeploymentModel
from repro.priors.base import PositionPrior
from repro.utils.stablemath import logsumexp
from repro.utils.validation import check_positive

__all__ = [
    "UniformPrior",
    "GaussianPrior",
    "MixturePrior",
    "DeploymentPrior",
    "PerNodePrior",
    "RegionPrior",
]


class UniformPrior(PositionPrior):
    """Flat prior over the field — the "no pre-knowledge" reference."""

    def __init__(self, width: float = 1.0, height: float = 1.0) -> None:
        self.width = check_positive(width, "width")
        self.height = check_positive(height, "height")

    def log_density(self, node: int, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        inside = (
            (pts[:, 0] >= 0)
            & (pts[:, 0] <= self.width)
            & (pts[:, 1] >= 0)
            & (pts[:, 1] <= self.height)
        )
        return np.where(inside, 0.0, -np.inf)


class GaussianPrior(PositionPrior):
    """Isotropic Gaussian around a single known point (all nodes share it)."""

    def __init__(self, mean: np.ndarray, sigma: float) -> None:
        self.mean = np.asarray(mean, dtype=np.float64)
        if self.mean.shape != (2,):
            raise ValueError("mean must have shape (2,)")
        self.sigma = check_positive(sigma, "sigma")

    def log_density(self, node: int, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        d2 = ((pts - self.mean) ** 2).sum(axis=1)
        return -d2 / (2 * self.sigma**2)


class MixturePrior(PositionPrior):
    """Mixture of isotropic Gaussians around known drop points."""

    def __init__(
        self,
        centers: np.ndarray,
        sigma: float,
        weights: np.ndarray | None = None,
    ) -> None:
        self.centers = np.asarray(centers, dtype=np.float64)
        if self.centers.ndim != 2 or self.centers.shape[1] != 2 or not len(self.centers):
            raise ValueError("centers must have shape (k, 2) with k >= 1")
        self.sigma = check_positive(sigma, "sigma")
        if weights is None:
            weights = np.full(len(self.centers), 1.0 / len(self.centers))
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (len(self.centers),) or np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative, matching centers")
        self.weights = w / w.sum()

    def log_density(self, node: int, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        d2 = (
            (pts[:, None, 0] - self.centers[None, :, 0]) ** 2
            + (pts[:, None, 1] - self.centers[None, :, 1]) ** 2
        )
        z = np.log(self.weights)[None, :] - d2 / (2 * self.sigma**2)
        return logsumexp(z, axis=1)


class DeploymentPrior(PositionPrior):
    """The deployment model's own density as the prior (perfectly matched
    pre-knowledge: the operator knows how the network was deployed)."""

    def __init__(self, deployment: DeploymentModel) -> None:
        if not isinstance(deployment, DeploymentModel):
            raise TypeError("deployment must be a DeploymentModel")
        self.deployment = deployment

    def log_density(self, node: int, points: np.ndarray) -> np.ndarray:
        return self.deployment.log_density(points)


class PerNodePrior(PositionPrior):
    """Node-specific Gaussian pre-knowledge around intended positions.

    Parameters
    ----------
    intended:
        ``(n, 2)`` intended per-node positions (e.g. planned grid points),
        or a mapping ``{node: (x, y)}``.  Nodes without an entry fall back
        to *fallback* (default: improper flat prior).
    sigma:
        Trust in the pre-knowledge: small σ = confident operator.
    offset:
        Optional systematic error added to every intended position —
        the knob the E8 "wrong prior" experiment turns.
    """

    def __init__(
        self,
        intended: np.ndarray | Mapping[int, Sequence[float]],
        sigma: float,
        offset: Sequence[float] = (0.0, 0.0),
        fallback: PositionPrior | None = None,
    ) -> None:
        if isinstance(intended, Mapping):
            self._intended = {
                int(k): np.asarray(v, dtype=np.float64) for k, v in intended.items()
            }
        else:
            arr = np.asarray(intended, dtype=np.float64)
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise ValueError("intended must have shape (n, 2)")
            self._intended = {i: arr[i] for i in range(len(arr))}
        for v in self._intended.values():
            if v.shape != (2,):
                raise ValueError("each intended position must have shape (2,)")
        self.sigma = check_positive(sigma, "sigma")
        self.offset = np.asarray(offset, dtype=np.float64)
        if self.offset.shape != (2,):
            raise ValueError("offset must have shape (2,)")
        self.fallback = fallback

    def log_density(self, node: int, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        node = int(node)
        if node not in self._intended:
            if self.fallback is not None:
                return self.fallback.log_density(node, points)
            return np.zeros(len(pts))
        mean = self._intended[node] + self.offset
        d2 = ((pts - mean) ** 2).sum(axis=1)
        return -d2 / (2 * self.sigma**2)


class RegionPrior(PositionPrior):
    """Uniform over the region where ``contains(points)`` is True.

    *contains* is any vectorized predicate ``(m, 2) -> bool mask`` — e.g.
    :meth:`repro.network.deployment.CShapeDeployment.contains`.

    On a grid, the prior weight of a cell is the *fraction of the cell
    area* inside the region (estimated on a ``subsamples × subsamples``
    stencil), not a hard indicator at the cell center — otherwise cells
    straddling the region boundary would be wrongly zeroed and estimates
    near the boundary would be biased inward.
    """

    def __init__(
        self,
        contains: Callable[[np.ndarray], np.ndarray],
        subsamples: int = 3,
    ) -> None:
        if not callable(contains):
            raise TypeError("contains must be callable")
        if subsamples < 1:
            raise ValueError("subsamples must be >= 1")
        self.contains = contains
        self.subsamples = int(subsamples)

    def log_density(self, node: int, points: np.ndarray) -> np.ndarray:
        mask = np.asarray(self.contains(np.asarray(points, dtype=np.float64)))
        return np.where(mask, 0.0, -np.inf)

    def grid_weights(self, node: int, grid) -> np.ndarray:
        k = self.subsamples
        offs = (np.arange(k) + 0.5) / k - 0.5
        frac = np.zeros(grid.n_cells)
        for ox in offs:
            for oy in offs:
                pts = grid.centers + np.array(
                    [ox * grid.cell_width, oy * grid.cell_height]
                )
                frac += np.asarray(self.contains(pts), dtype=np.float64)
        total = frac.sum()
        if total <= 0:
            raise ValueError(
                f"prior for node {node} has zero mass on the whole grid"
            )
        return frac / total
