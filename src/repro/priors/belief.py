"""Beliefs as priors: closing the Bayesian loop.

A :class:`GridBeliefPrior` wraps per-node belief vectors over a source
grid so they can serve as the *prior* of a subsequent inference — the
mechanism behind sequential tracking (yesterday's posterior → today's
prior) and coarse-to-fine multi-resolution solving (coarse posterior →
fine prior).  Evaluation on a different grid resolution works by
nearest-cell lookup on the source grid, optionally smoothed by a Gaussian
diffusion kernel (used by the tracker as its motion model).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.priors.base import PositionPrior
from repro.utils.stablemath import safe_log

if TYPE_CHECKING:
    from repro.core.grid import Grid2D

__all__ = ["GridBeliefPrior", "diffusion_kernel"]

#: process-level cache of diffusion kernels, keyed on grid geometry and
#: sigma.  A kernel is a pure function of the key, so a cached kernel is
#: bit-identical to a freshly built one; bounded LRU like the potential
#: registry.  Sequential trackers and the streaming runtime rebuild a
#: GridBeliefPrior every step — without this the (K, K) kernel was
#: reconstructed each time.
_KERNEL_CACHE: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
_KERNEL_CACHE_MAX = 8


def diffusion_kernel(grid: "Grid2D", sigma: float) -> np.ndarray:
    """The column-normalized Gaussian motion kernel over *grid* (cached).

    ``kernel[:, j]`` is the distribution of next-step cells for mass
    currently in cell *j*: an isotropic Gaussian of scale *sigma*,
    truncated at ``4 sigma`` and renormalized, so diffusion conserves
    probability mass even at the field boundary (mass near an edge piles
    up against it instead of leaking out).
    """
    if sigma <= 0:
        raise ValueError("diffusion kernel requires sigma > 0")
    key = (grid.nx, grid.ny, float(grid.width), float(grid.height), float(sigma))
    kernel = _KERNEL_CACHE.get(key)
    if kernel is not None:
        _KERNEL_CACHE.move_to_end(key)
        return kernel
    D = grid.pairwise_center_distances()
    kernel = np.exp(-(D**2) / (2 * sigma**2))
    kernel[D > 4 * sigma] = 0.0
    kernel /= kernel.sum(axis=0)[None, :]
    _KERNEL_CACHE[key] = kernel
    while len(_KERNEL_CACHE) > _KERNEL_CACHE_MAX:
        _KERNEL_CACHE.popitem(last=False)
    return kernel


class GridBeliefPrior(PositionPrior):
    """Per-node priors given by belief vectors over a source grid.

    Parameters
    ----------
    grid:
        The grid the belief vectors are defined on.
    beliefs:
        ``{node_id: (K,) probability vector}``; nodes without an entry get
        a flat prior.
    diffusion_sigma:
        If positive, each belief is pre-convolved with an isotropic
        Gaussian of this σ (a bounded-displacement motion model, or a
        smoother for cross-resolution transfer).
    floor:
        Probability floor mixed in (relative to uniform) so the prior
        never hard-zeroes a cell that measurements might support — this
        keeps a wrong earlier belief recoverable.
    """

    def __init__(
        self,
        grid: "Grid2D",
        beliefs: Mapping[int, np.ndarray],
        diffusion_sigma: float = 0.0,
        floor: float = 1e-6,
    ) -> None:
        if diffusion_sigma < 0:
            raise ValueError("diffusion_sigma must be non-negative")
        if not (0 <= floor < 1):
            raise ValueError("floor must lie in [0, 1)")
        self.grid = grid
        self.diffusion_sigma = float(diffusion_sigma)
        self.floor = float(floor)
        kernel = None
        if self.diffusion_sigma > 0:
            kernel = diffusion_kernel(grid, self.diffusion_sigma)
        self.weights: dict[int, np.ndarray] = {}
        uniform = 1.0 / grid.n_cells
        for node, b in beliefs.items():
            w = np.asarray(b, dtype=np.float64)
            if w.shape != (grid.n_cells,):
                raise ValueError(
                    f"belief for node {node} has shape {w.shape}, "
                    f"expected ({grid.n_cells},)"
                )
            if w.sum() <= 0:
                raise ValueError(f"belief for node {node} has zero mass")
            w = w / w.sum()
            if kernel is not None:
                w = kernel @ w
                w = w / w.sum()
            if self.floor > 0:
                w = (1 - self.floor) * w + self.floor * uniform
            self.weights[int(node)] = w

    def log_density(self, node: int, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        w = self.weights.get(int(node))
        if w is None:
            return np.zeros(len(pts))
        cells = self.grid.cell_of(pts)
        return safe_log(w[cells])

    def grid_weights(self, node: int, grid: "Grid2D") -> np.ndarray:
        w = self.weights.get(int(node))
        if w is None:
            return np.full(grid.n_cells, 1.0 / grid.n_cells)
        if grid.n_cells == self.grid.n_cells and grid.nx == self.grid.nx:
            return w
        # Cross-resolution transfer: evaluate at the target cell centers.
        out = w[self.grid.cell_of(grid.centers)]
        total = out.sum()
        if total <= 0:  # pragma: no cover - floor prevents this
            return np.full(grid.n_cells, 1.0 / grid.n_cells)
        return out / total
