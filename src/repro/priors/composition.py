"""Prior composition.

Independent pieces of pre-knowledge combine by multiplying densities
(adding log-densities): e.g. a deployment density × a region restriction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.priors.base import PositionPrior

__all__ = ["ProductPrior", "combine"]


class ProductPrior(PositionPrior):
    """Product of component priors (sum of log-densities)."""

    def __init__(self, components: Sequence[PositionPrior]) -> None:
        components = list(components)
        if not components:
            raise ValueError("need at least one component prior")
        for c in components:
            if not isinstance(c, PositionPrior):
                raise TypeError(f"{type(c).__name__} is not a PositionPrior")
        self.components = components

    def log_density(self, node: int, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        total = np.zeros(len(pts))
        for c in self.components:
            total = total + c.log_density(node, pts)
        return total


def combine(*priors: PositionPrior) -> PositionPrior:
    """Combine priors by product; a single prior is returned unchanged."""
    if len(priors) == 1:
        return priors[0]
    return ProductPrior(priors)
