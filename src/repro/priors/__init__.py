"""Pre-knowledge priors over node positions.

The "pre-knowledge" of the paper title: whatever the operator knows about
where nodes are *before* any measurement — deployment patterns, per-node
intended drop points, restricted regions — expressed as a prior density
that the Bayesian-network localizer multiplies into each node's unary
potential.

Priors evaluate on a :class:`~repro.core.grid.Grid2D` (for the discrete BN
localizer) and pointwise (for particle methods), and compose by product.
"""

from repro.priors.base import PositionPrior
from repro.priors.deployment import (
    UniformPrior,
    GaussianPrior,
    MixturePrior,
    DeploymentPrior,
    PerNodePrior,
    RegionPrior,
)
from repro.priors.composition import ProductPrior, combine
from repro.priors.belief import GridBeliefPrior, diffusion_kernel

__all__ = [
    "GridBeliefPrior",
    "diffusion_kernel",
    "PositionPrior",
    "UniformPrior",
    "GaussianPrior",
    "MixturePrior",
    "DeploymentPrior",
    "PerNodePrior",
    "RegionPrior",
    "ProductPrior",
    "combine",
]
