"""Prior interface.

A :class:`PositionPrior` gives, for any node id, an unnormalized
log-density over candidate positions.  Priors may be node-specific
(per-node intended drop points) or shared (a deployment density); the
interface takes the node id so both fit one API.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from repro.utils.rng import RNGLike, as_generator

if TYPE_CHECKING:  # avoid a circular import with repro.core
    from repro.core.grid import Grid2D

__all__ = ["PositionPrior"]


class PositionPrior(ABC):
    """Unnormalized log-prior over 2-D positions, possibly per node."""

    @abstractmethod
    def log_density(self, node: int, points: np.ndarray) -> np.ndarray:
        """Log prior density of *node* at ``(m, 2)`` points (unnormalized;
        ``-inf`` outside the support)."""

    def grid_weights(self, node: int, grid: "Grid2D") -> np.ndarray:
        """Normalized prior probabilities over the grid cells of *node*.

        Default implementation evaluates :meth:`log_density` at cell
        centers and normalizes with the log-sum-exp shift.
        """
        logd = self.log_density(node, grid.centers)
        finite = np.isfinite(logd)
        if not finite.any():
            raise ValueError(
                f"prior for node {node} has zero mass on the whole grid"
            )
        w = np.zeros(grid.n_cells)
        w[finite] = np.exp(logd[finite] - logd[finite].max())
        return w / w.sum()

    def sample(self, node: int, n: int, grid: "Grid2D", rng: RNGLike = None) -> np.ndarray:
        """Draw *n* positions approximately from the prior.

        Default: sample grid cells by prior weight, then jitter uniformly
        within the cell — adequate for initializing particle methods.
        """
        gen = as_generator(rng)
        w = self.grid_weights(node, grid)
        cells = gen.choice(grid.n_cells, size=int(n), p=w)
        pts = grid.centers[cells].copy()
        pts[:, 0] += gen.uniform(-0.5, 0.5, size=n) * grid.cell_width
        pts[:, 1] += gen.uniform(-0.5, 0.5, size=n) * grid.cell_height
        return pts
