"""The asyncio localization service.

Request lifecycle::

    submit() ──► admission (bounded queue; full ⇒ shed + retry_after)
             ──► per-key micro-batch bucket (batch window / max_batch)
             ──► dispatch: expire check ─ breaker check ─ worker pool
             ──► resolve: ok | degraded (partial BP, fallback) — always

The invariant the whole module is built around: **every admitted request
gets exactly one response.**  Shedding happens only *before* admission;
after it, every path — deadline expiry, circuit breaker, worker crash
with retries exhausted, batch execution error, service shutdown, even an
internal dispatcher bug — resolves the request's future with a response
(possibly degraded, never lost).

Deadlines are cooperative end to end: the remaining budget at dispatch
travels into the worker as a :func:`repro.kernels.deadline_scope`, so BP
stops *between rounds* when the budget expires and the partial posterior
comes back flagged rather than discarded.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.breaker import BreakerRegistry
from repro.serve.metrics import ServiceMetrics
from repro.serve.types import (
    LocalizeRequest,
    LocalizeResponse,
    request_batch_key,
    widened_sigma,
)
from repro.serve.workers import BatchExecutionError, WorkerCrash, WorkerPool

__all__ = ["ServeConfig", "LocalizationService"]


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of the robustness envelope."""

    n_workers: int = 0              # 0 = in-process (tests, single-proc)
    queue_limit: int = 64           # admission bound; beyond ⇒ shed
    max_batch: int = 8              # micro-batch size cap
    batch_window_s: float = 0.01    # wait this long to fill a batch
    default_deadline_s: float | None = None
    exec_timeout_s: float = 60.0    # hard cap on one worker call
    max_batch_retries: int = 2      # crash retries before degrading
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 2.0
    probe_interval_s: float = 1.0
    probe_timeout_s: float = 2.0
    retry_after_s: float = 0.25     # backoff hint on shed responses

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_batch_retries < 0:
            raise ValueError("max_batch_retries must be >= 0")


@dataclass
class _Pending:
    """An admitted request waiting in (or moving through) the pipeline."""

    request: LocalizeRequest
    ms: object
    prior: object
    true_positions: object
    key: tuple
    future: asyncio.Future
    admitted_at: float
    deadline_at: float | None
    batch_size: int = 0

    def remaining(self, now: float) -> float | None:
        if self.deadline_at is None:
            return None
        return self.deadline_at - now


class LocalizationService:
    """Micro-batching localization service with a robustness envelope."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.clock = clock
        self.metrics = ServiceMetrics()
        self.breakers = BreakerRegistry(
            threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
            clock=clock,
        )
        self.pool = WorkerPool(
            self.config.n_workers,
            metrics=self.metrics,
            probe_timeout_s=self.config.probe_timeout_s,
        )
        self._buckets: dict[tuple, list[_Pending]] = {}
        self._flush_handles: dict[tuple, object] = {}
        self._batch_tasks: set[asyncio.Task] = set()
        self._probe_task: asyncio.Task | None = None
        self._exec_sem: asyncio.Semaphore | None = None
        self._depth = 0
        self.running = False

    # ------------------------------------------------------------------ #
    # lifecycle

    async def start(self) -> None:
        if self.running:
            return
        await self.pool.start()
        self._exec_sem = asyncio.Semaphore(max(1, self.config.n_workers))
        self.running = True
        if not self.pool.inline and self.config.probe_interval_s > 0:
            self._probe_task = asyncio.create_task(self._probe_loop())

    async def stop(self) -> None:
        """Stop admitting, flush everything in flight, release workers."""
        self.running = False
        for handle in self._flush_handles.values():
            handle.cancel()
        self._flush_handles.clear()
        # Queued-but-undispatched requests are shed (they were admitted,
        # so they still get a response — the shed kind).
        for bucket in self._buckets.values():
            for p in bucket:
                self._resolve(p, self._shed_response(p.request, "shutdown"))
        self._buckets.clear()
        if self._batch_tasks:
            await asyncio.gather(*self._batch_tasks, return_exceptions=True)
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except asyncio.CancelledError:
                pass
            self._probe_task = None
        await self.pool.stop()

    async def _probe_loop(self) -> None:
        while self.running:
            await asyncio.sleep(self.config.probe_interval_s)
            try:
                await self.pool.probe()
            except Exception:  # supervision must survive anything
                self.metrics.count("probe_errors")

    # ------------------------------------------------------------------ #
    # admission

    def submit(self, request: LocalizeRequest) -> asyncio.Future:
        """Admit (or shed) a request; returns a future of the response."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        now = self.clock()
        self.metrics.count("submitted")
        if not self.running:
            future.set_result(self._shed_response(request, "shutdown"))
            self.metrics.count("shed")
            return future
        if self._depth >= self.config.queue_limit:
            future.set_result(self._shed_response(request, "queue-full"))
            self.metrics.count("shed")
            return future
        try:
            ms, prior, true_positions = self._resolve_problem(request)
        except Exception as exc:
            future.set_result(
                LocalizeResponse(
                    request_id=request.request_id,
                    status="error",
                    reason="invalid-request",
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            self.metrics.count("invalid")
            return future
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.default_deadline_s
        )
        pending = _Pending(
            request=request,
            ms=ms,
            prior=prior,
            true_positions=true_positions,
            key=request_batch_key(request),
            future=future,
            admitted_at=now,
            deadline_at=None if deadline_s is None else now + deadline_s,
        )
        self._depth += 1
        self.metrics.gauge_max("max_queue_depth", self._depth)
        self._enqueue(pending)
        return future

    async def localize(self, request: LocalizeRequest) -> LocalizeResponse:
        """Submit and await — the convenience path for single callers."""
        return await self.submit(request)

    @staticmethod
    def _resolve_problem(request: LocalizeRequest):
        """Materialize (measurements, prior, true_positions) for a request."""
        if request.measurements is not None:
            if request.measurements.n_nodes < 1:
                raise ValueError("empty measurement set")
            return request.measurements, request.prior, None
        from repro.experiments.config import build_scenario

        network, ms, prior = build_scenario(request.scenario, seed=request.seed)
        if request.prior is not None:
            prior = request.prior
        return ms, prior, network.positions

    # ------------------------------------------------------------------ #
    # micro-batching

    def _enqueue(self, pending: _Pending) -> None:
        bucket = self._buckets.setdefault(pending.key, [])
        bucket.append(pending)
        if len(bucket) >= self.config.max_batch:
            self._flush(pending.key)
        elif pending.key not in self._flush_handles:
            loop = asyncio.get_running_loop()
            self._flush_handles[pending.key] = loop.call_later(
                self.config.batch_window_s, self._flush, pending.key
            )

    def _flush(self, key: tuple) -> None:
        handle = self._flush_handles.pop(key, None)
        if handle is not None:
            handle.cancel()
        bucket = self._buckets.get(key)
        if not bucket:
            return
        batch = bucket[: self.config.max_batch]
        del bucket[: self.config.max_batch]
        if not bucket:
            del self._buckets[key]
        else:
            # leftovers start a fresh window immediately
            loop = asyncio.get_running_loop()
            self._flush_handles[key] = loop.call_later(
                self.config.batch_window_s, self._flush, key
            )
        task = asyncio.ensure_future(self._run_batch_safe(key, batch))
        self._batch_tasks.add(task)
        task.add_done_callback(self._batch_tasks.discard)

    # ------------------------------------------------------------------ #
    # dispatch

    async def _run_batch_safe(self, key: tuple, batch: list[_Pending]) -> None:
        """The zero-lost wrapper: whatever breaks, every future resolves."""
        try:
            await self._run_batch(key, batch)
        except BaseException as exc:  # dispatcher bug — degrade, don't lose
            self.metrics.count("internal_errors")
            for p in batch:
                if not p.future.done():
                    self._resolve(
                        p,
                        self._fallback_response(
                            p, "internal-error",
                            error=f"{type(exc).__name__}: {exc}",
                        ),
                    )
            if isinstance(exc, asyncio.CancelledError):
                raise

    async def _run_batch(self, key: tuple, batch: list[_Pending]) -> None:
        now = self.clock()
        # 1. requests whose budget is already gone get instant fallbacks
        live: list[_Pending] = []
        for p in batch:
            rem = p.remaining(now)
            if rem is not None and rem <= 0:
                self.metrics.count("expired")
                self._resolve(p, self._fallback_response(p, "deadline-expired"))
            else:
                live.append(p)
        if not live:
            return
        # 2. a tripped breaker short-circuits this shape to fallbacks
        breaker = self.breakers.get(key)
        if not breaker.allow():
            self.metrics.count("breaker_short_circuits")
            for p in live:
                self._resolve(p, self._fallback_response(p, "breaker-open"))
            return
        for p in live:
            p.batch_size = len(live)
        self.metrics.observe_batch(len(live))
        items = [
            {
                "measurements": p.ms,
                "prior": p.prior,
                "config": p.request.config,
                **(
                    {"true_positions": p.true_positions}
                    if p.true_positions is not None
                    else {}
                ),
            }
            for p in live
        ]
        # 3. execute, retrying across worker crashes
        attempts = self.config.max_batch_retries + 1
        for attempt in range(attempts):
            start = self.clock()
            remains = [p.remaining(start) for p in live]
            finite = [r for r in remains if r is not None]
            deadline_s = min(finite) if finite else None
            if deadline_s is not None and deadline_s <= 0:
                # budget ran out while retrying
                for p in live:
                    if not p.future.done():
                        self.metrics.count("expired")
                        self._resolve(
                            p, self._fallback_response(p, "deadline-expired")
                        )
                return
            try:
                async with self._exec_sem:
                    payloads = await self.pool.run_batch(
                        items, deadline_s, self.config.exec_timeout_s
                    )
            except WorkerCrash as exc:
                self.metrics.count("worker_crashes")
                breaker.record_failure()
                if attempt + 1 < attempts:
                    continue
                for p in live:
                    self._resolve(
                        p,
                        self._fallback_response(
                            p, "crash-retries-exhausted", error=str(exc)
                        ),
                    )
                return
            except BatchExecutionError as exc:
                breaker.record_failure()
                for p in live:
                    self._resolve(
                        p,
                        self._fallback_response(
                            p, "execution-error", error=str(exc)
                        ),
                    )
                return
            breaker.record_success()
            solve_s = self.clock() - start
            for p, payload in zip(live, payloads):
                self._resolve(p, self._payload_response(p, payload, solve_s))
            return

    # ------------------------------------------------------------------ #
    # response construction

    def _resolve(self, pending: _Pending, response: LocalizeResponse) -> None:
        if pending.future.done():
            return
        now = self.clock()
        response.total_s = now - pending.admitted_at
        response.queue_s = max(0.0, response.total_s - response.solve_s)
        self._depth -= 1
        self.metrics.count(response.status)
        if response.degraded:
            self.metrics.count("degraded_total")
        self.metrics.observe_request(response.total_s, response.queue_s)
        pending.future.set_result(response)

    def _shed_response(
        self, request: LocalizeRequest, reason: str
    ) -> LocalizeResponse:
        return LocalizeResponse(
            request_id=request.request_id,
            status="shed",
            reason=reason,
            retry_after=self.config.retry_after_s,
        )

    def _payload_response(
        self, pending: _Pending, payload: dict, solve_s: float
    ) -> LocalizeResponse:
        if not payload.get("ok"):
            return self._fallback_response(
                pending, "solver-error", error=payload.get("error")
            )
        if payload["deadline_stop"]:
            self.metrics.count("deadline_stops")
            status, reason = "degraded", "deadline-mid-solve"
        elif payload["fallback_mask"].any():
            status, reason = "degraded", "solver-fallback"
        else:
            status, reason = "ok", None
        return LocalizeResponse(
            request_id=pending.request.request_id,
            status=status,
            reason=reason,
            estimates=payload["estimates"],
            localized_mask=payload["localized_mask"],
            fallback_mask=payload["fallback_mask"],
            uncertainty=payload["uncertainty"],
            converged=payload["converged"],
            n_iterations=payload["n_iterations"],
            batch_size=pending.batch_size,
            solve_s=solve_s,
            mean_error=payload.get("mean_error"),
        )

    def _fallback_response(
        self, pending: _Pending, reason: str, error: str | None = None
    ) -> LocalizeResponse:
        """Graceful degradation: a baseline answer instead of no answer.

        Anchors keep their known positions; every unknown gets the
        range-free fallback (heard-anchor centroid → prior mean → field
        center) with honestly widened uncertainty.
        """
        from repro.core.health import fallback_position

        ms = pending.ms
        n = ms.n_nodes
        estimates = np.full((n, 2), np.nan)
        estimates[ms.anchor_mask] = ms.anchor_positions
        fallback = np.zeros(n, dtype=bool)
        uncertainty = np.zeros(n)
        wide = widened_sigma(ms.width, ms.height)
        for u in ms.unknown_ids:
            u = int(u)
            estimates[u] = fallback_position(ms, u)
            fallback[u] = True
            uncertainty[u] = wide
        response = LocalizeResponse(
            request_id=pending.request.request_id,
            status="degraded",
            reason=reason,
            estimates=estimates,
            localized_mask=np.ones(n, dtype=bool),
            fallback_mask=fallback,
            uncertainty=uncertainty,
            batch_size=pending.batch_size,
            error=error,
        )
        if pending.true_positions is not None:
            unknown = ~ms.anchor_mask
            err = np.linalg.norm(
                estimates[unknown] - np.asarray(pending.true_positions)[unknown],
                axis=1,
            )
            response.mean_error = float(np.mean(err)) if len(err) else 0.0
        return response

    # ------------------------------------------------------------------ #
    # introspection

    @property
    def queue_depth(self) -> int:
        return self._depth

    def health(self) -> dict:
        workers = self.pool.snapshot()
        return {
            "status": "ok" if self.running else "stopped",
            "queue_depth": self._depth,
            "queue_limit": self.config.queue_limit,
            "workers": workers,
            "breakers": self.breakers.snapshot(),
        }

    def ready(self) -> bool:
        """Can this service usefully accept a request right now?"""
        if not self.running or self._depth >= self.config.queue_limit:
            return False
        if self.pool.inline:
            return True
        return self.pool.snapshot()["alive"] > 0

    def metrics_snapshot(self) -> dict:
        snap = self.metrics.snapshot(
            queue_depth=self._depth, workers=self.pool.snapshot()
        )
        snap["breakers"] = self.breakers.snapshot()
        return snap
