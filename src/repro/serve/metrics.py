"""Request-level service metrics.

Built on the :class:`repro.obs.Tracer` counter/gauge machinery the solver
already exports, plus a bounded latency reservoir for percentile
estimates (p50/p99 over the most recent ``window`` completed requests —
a sliding window, not all-time, so the numbers track current load).
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

from repro.obs import Tracer

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Thread-safe metrics sink shared by the event loop and executors."""

    def __init__(self, window: int = 2048) -> None:
        self.tracer = Tracer()
        self.tracer.annotate("component", "serve")
        self._lock = threading.Lock()
        self._latencies: deque = deque(maxlen=window)
        self._queue_waits: deque = deque(maxlen=window)

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.tracer.count(name, n)

    def gauge_max(self, name: str, value: float) -> None:
        with self._lock:
            self.tracer.gauge_max(name, value)

    def observe_request(self, total_s: float, queue_s: float) -> None:
        with self._lock:
            self._latencies.append(total_s)
            self._queue_waits.append(queue_s)

    def observe_batch(self, size: int) -> None:
        with self._lock:
            self.tracer.count("batches")
            self.tracer.count("batched_requests", size)
            self.tracer.gauge_max("max_batch_size", size)

    @staticmethod
    def _pct(values, q: float) -> float | None:
        if not values:
            return None
        return float(np.percentile(np.asarray(values), q))

    def snapshot(self, queue_depth: int = 0, workers: dict | None = None) -> dict:
        """JSON-safe state for the ``metrics`` endpoint and BENCH files."""
        with self._lock:
            counters = dict(self.tracer.counters)
            gauges = dict(self.tracer.gauges)
            lat = list(self._latencies)
            waits = list(self._queue_waits)
        batches = counters.get("batches", 0)
        batched = counters.get("batched_requests", 0)
        out = {
            "counters": counters,
            "queue_depth": queue_depth,
            "latency_ms": {
                "n": len(lat),
                "p50": self._pct(lat, 50),
                "p99": self._pct(lat, 99),
                "mean": float(np.mean(lat)) if lat else None,
            },
            "queue_wait_ms": {
                "p50": self._pct(waits, 50),
                "p99": self._pct(waits, 99),
            },
            "batch": {
                "count": batches,
                "mean_occupancy": (batched / batches) if batches else None,
                "max_size": gauges.get("max_batch_size"),
            },
        }
        for block in ("latency_ms", "queue_wait_ms"):
            out[block] = {
                k: (round(v * 1e3, 3) if isinstance(v, float) else v)
                for k, v in out[block].items()
            }
        if workers is not None:
            out["workers"] = workers
        return out
