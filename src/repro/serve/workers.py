"""Warm worker processes and the batch execution payload.

The service keeps a pool of long-lived worker processes (spawn context —
each imports numpy/scipy once and then serves many batches, so the
shared :func:`repro.kernels.shared_registry` potential caches stay warm
per process).  The parent talks to each worker over a duplex
:class:`multiprocessing.Pipe` with a three-op protocol::

    ("ping",)                 -> ("pong", pid)
    ("batch", items, deadline)-> ("ok", [payload, ...]) | ("err", traceback)
    ("stop",)                 -> worker exits

All blocking pipe I/O runs in the event loop's default thread-pool
executor, so a wedged or murdered worker never stalls the loop.  A
worker that times out, crashes, or closes its pipe raises
:class:`WorkerCrash` to the dispatcher — which kills it, spawns a warm
replacement (with jittered backoff so a crash loop cannot spin), and
retries the batch on another worker.  ``n_workers=0`` selects in-process
execution (one thread, no pipes) for deterministic fast tests.

:func:`execute_batch` is the *only* code that runs inside a worker; it
must stay importable at module level (spawn pickles it by reference) and
must never raise for per-item solver problems — each item's failure is
captured into its own payload so one poisoned request cannot take down
its batch-mates.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import traceback
import multiprocessing as mp

import numpy as np

__all__ = [
    "execute_batch",
    "WorkerCrash",
    "BatchExecutionError",
    "WorkerHandle",
    "WorkerPool",
]


class WorkerCrash(RuntimeError):
    """A worker died, hung, or closed its pipe mid-call (retryable)."""


class BatchExecutionError(RuntimeError):
    """The batch itself failed inside a healthy worker (not retryable)."""


# ---------------------------------------------------------------------- #
# in-worker execution


def _item_payload(result, ms, true_positions=None, include_beliefs=False) -> dict:
    """Condense a LocalizationResult into a pipe-friendly payload."""
    from repro.serve.types import widened_sigma

    n = ms.n_nodes
    uncertainty = np.full(n, np.nan)
    cov = result.extras.get("covariances")
    if cov is not None:
        tr = cov[:, 0, 0] + cov[:, 1, 1]
        good = np.isfinite(tr)
        uncertainty[good] = np.sqrt(np.maximum(tr[good], 0.0))
    fb = (
        result.fallback_mask
        if result.fallback_mask is not None
        else np.zeros(n, dtype=bool)
    )
    uncertainty[fb] = widened_sigma(ms.width, ms.height)
    uncertainty[ms.anchor_mask] = 0.0
    payload = {
        "ok": True,
        "estimates": result.estimates,
        "localized_mask": result.localized_mask,
        "fallback_mask": fb,
        "uncertainty": uncertainty,
        "converged": bool(result.converged),
        "n_iterations": int(result.n_iterations),
        "deadline_stop": bool(result.extras.get("deadline_stop", False)),
    }
    if true_positions is not None:
        unknown = ~ms.anchor_mask
        err = np.linalg.norm(
            result.estimates[unknown] - np.asarray(true_positions)[unknown],
            axis=1,
        )
        payload["mean_error"] = float(np.mean(err)) if len(err) else 0.0
    if include_beliefs:
        # Streaming trackers need the posterior itself back across the
        # pipe: the next epoch's prior is these beliefs motion-diffused.
        payload["beliefs"] = dict(result.extras.get("beliefs", {}))
    return payload


def execute_batch(items: list[dict], deadline_s: float | None = None) -> list[dict]:
    """Run one micro-batch of compatible localization problems.

    *items* are dicts with ``measurements``, ``prior`` (optional),
    ``config``, optional ``true_positions``, and optional
    ``include_beliefs`` (return the full posterior belief vectors in the
    payload — the streaming runtime's warm-start feed).  All items share a
    batch key, so their prepared problems stack; groups of more than one
    run the ``batched`` kernel backend, singletons the ``reference``
    backend (bit-identical for a single trial, without the stacking
    overhead).  The whole solve runs under a
    :func:`~repro.kernels.deadline_scope` of *deadline_s* seconds — BP
    stops cooperatively between rounds when the budget expires, and the
    partial posterior comes back flagged ``deadline_stop``.

    Per-item failures degrade to per-item ``{"ok": False}`` payloads:
    the batch is retried item-by-item so one broken request cannot sink
    its batch-mates.
    """
    from repro.core.bnloc import GridBPLocalizer, localize_batch
    from repro.kernels import deadline_scope

    backend = "batched" if len(items) > 1 else "reference"
    pairs = []
    for item in items:
        cfg = dataclasses.replace(item["config"], backend=backend)
        pairs.append(
            (
                GridBPLocalizer(prior=item.get("prior"), config=cfg),
                item["measurements"],
            )
        )
    with deadline_scope(seconds=deadline_s):
        try:
            results = localize_batch(pairs)
        except Exception:
            # Group-level failure: isolate the poisoned item(s) by
            # falling back to individual solves, capturing each error.
            results = []
            for loc, ms in pairs:
                solo = dataclasses.replace(loc.config, backend="reference")
                loc = GridBPLocalizer(prior=loc.prior, config=solo)
                try:
                    results.append(loc.localize(ms))
                except Exception as exc:
                    results.append(exc)
    out = []
    for (loc, ms), res, item in zip(pairs, results, items):
        if isinstance(res, Exception):
            out.append({
                "ok": False,
                "error": f"{type(res).__name__}: {res}",
            })
        else:
            out.append(
                _item_payload(
                    res,
                    ms,
                    item.get("true_positions"),
                    include_beliefs=bool(item.get("include_beliefs", False)),
                )
            )
    return out


def _worker_main(conn) -> None:
    """Entry point of a warm worker process."""
    import signal

    # The parent owns lifecycle; stray terminal interrupts must not kill
    # a worker mid-batch.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        op = msg[0]
        if op == "ping":
            conn.send(("pong", os.getpid()))
        elif op == "stop":
            break
        elif op == "batch":
            try:
                conn.send(("ok", execute_batch(*msg[1:])))
            except BaseException:
                conn.send(("err", traceback.format_exc()))
        else:  # pragma: no cover - protocol guard
            conn.send(("err", f"unknown op {op!r}"))
    conn.close()


def _pipe_call(conn, msg, timeout: float):
    """Blocking request/response over a worker pipe (runs in a thread)."""
    conn.send(msg)
    if not conn.poll(timeout):
        raise TimeoutError(f"worker reply timed out after {timeout:.1f}s")
    return conn.recv()


# ---------------------------------------------------------------------- #
# parent-side pool


class WorkerHandle:
    """One warm worker process plus its parent end of the pipe."""

    _ids = iter(range(1, 10**9))

    def __init__(self, ctx) -> None:
        self.id = next(WorkerHandle._ids)
        self.conn, child = mp.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main, args=(child,), daemon=True,
            name=f"repro-serve-worker-{self.id}",
        )
        self.process.start()
        child.close()
        self.batches = 0

    @property
    def pid(self) -> int | None:
        return self.process.pid

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    async def call(self, msg: tuple, timeout: float):
        """Send *msg* and await the reply without blocking the loop."""
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                None, _pipe_call, self.conn, msg, timeout
            )
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise WorkerCrash(
                f"worker {self.id} (pid {self.pid}) pipe failed: {exc!r}"
            ) from exc
        except TimeoutError as exc:
            raise WorkerCrash(
                f"worker {self.id} (pid {self.pid}) timed out"
            ) from exc

    def call_sync(self, msg: tuple, timeout: float):
        """Blocking variant of :meth:`call` for non-asyncio callers.

        Same crash translation: any pipe failure or timeout surfaces as
        :class:`WorkerCrash` so the caller can kill/replace/retry.  Used
        by the synchronous streaming runtime (:mod:`repro.stream`).
        """
        try:
            return _pipe_call(self.conn, msg, timeout)
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise WorkerCrash(
                f"worker {self.id} (pid {self.pid}) pipe failed: {exc!r}"
            ) from exc
        except TimeoutError as exc:
            raise WorkerCrash(
                f"worker {self.id} (pid {self.pid}) timed out"
            ) from exc

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)


class WorkerPool:
    """Fixed-size pool of warm workers with probe/replace supervision.

    ``n_workers=0`` degenerates to in-process execution: batches run via
    ``execute_batch`` on the default thread-pool executor — no pipes, no
    crash surface, deterministic.  Used by fast tests and single-process
    deployments.
    """

    def __init__(
        self,
        n_workers: int,
        metrics=None,
        probe_timeout_s: float = 2.0,
        replace_backoff_s: float = 0.05,
    ) -> None:
        if n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        self.n_workers = n_workers
        self.metrics = metrics
        self.probe_timeout_s = probe_timeout_s
        self.replace_backoff_s = replace_backoff_s
        self._ctx = mp.get_context("spawn")
        self._idle: asyncio.Queue = asyncio.Queue()
        self._workers: dict[int, WorkerHandle] = {}
        self.replacements = 0
        self._consecutive_failures = 0
        self._started = False

    @property
    def inline(self) -> bool:
        return self.n_workers == 0

    # ---------------------------------------------------------------- #
    async def start(self) -> None:
        if self._started:
            return
        self._started = True
        if self.inline:
            return
        loop = asyncio.get_running_loop()
        spawned = await asyncio.gather(
            *[loop.run_in_executor(None, WorkerHandle, self._ctx)
              for _ in range(self.n_workers)]
        )
        for handle in spawned:
            self._workers[handle.id] = handle
            self._idle.put_nowait(handle)

    async def stop(self) -> None:
        if not self._started or self.inline:
            self._started = False
            return
        self._started = False
        loop = asyncio.get_running_loop()
        for handle in list(self._workers.values()):
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        await asyncio.gather(
            *[loop.run_in_executor(None, h.kill) for h in self._workers.values()]
        )
        self._workers.clear()
        while not self._idle.empty():
            self._idle.get_nowait()

    # ---------------------------------------------------------------- #
    async def _replace(self, handle: WorkerHandle) -> None:
        """Kill a broken worker and spawn a warm replacement."""
        from repro.parallel.executor import _backoff

        self._workers.pop(handle.id, None)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, handle.kill)
        self.replacements += 1
        self._consecutive_failures += 1
        if self.metrics is not None:
            self.metrics.count("worker_replacements")
        # Jittered exponential backoff keeps a hard crash loop (e.g. a
        # worker that dies on import) from spinning the supervisor.
        delay = _backoff(
            self.replace_backoff_s,
            2.0,
            min(self._consecutive_failures - 1, 6),
            jitter=0.25,
            token=self.replacements,
        )
        if delay > 0:
            await asyncio.sleep(delay)
        fresh = await loop.run_in_executor(None, WorkerHandle, self._ctx)
        self._workers[fresh.id] = fresh
        self._idle.put_nowait(fresh)

    async def probe(self) -> int:
        """Ping every *idle* worker; replace the dead. Returns #replaced.

        Busy workers are implicitly probed by their in-flight call's
        timeout, so only the idle queue needs sweeping.
        """
        if self.inline or not self._started:
            return 0
        idle: list[WorkerHandle] = []
        while not self._idle.empty():
            idle.append(self._idle.get_nowait())
        replaced = 0
        for handle in idle:
            if not self._started:
                # stop() ran while probing; drop the handle, stop() owns it
                continue
            try:
                if not handle.alive:
                    raise WorkerCrash(f"worker {handle.id} exited "
                                      f"(code {handle.process.exitcode})")
                reply = await handle.call(("ping",), self.probe_timeout_s)
                if reply != ("pong", handle.pid):
                    raise WorkerCrash(f"worker {handle.id} bad pong {reply!r}")
                self._idle.put_nowait(handle)
            except WorkerCrash:
                replaced += 1
                await self._replace(handle)
        if self.metrics is not None:
            self.metrics.count("probes")
        return replaced

    # ---------------------------------------------------------------- #
    async def run_batch(
        self,
        items: list[dict],
        deadline_s: float | None,
        timeout: float,
    ) -> list[dict]:
        """Execute one batch on some worker; raises WorkerCrash /
        BatchExecutionError, never silently loses the batch."""
        if self.inline:
            loop = asyncio.get_running_loop()
            try:
                return await loop.run_in_executor(
                    None, execute_batch, items, deadline_s
                )
            except Exception as exc:
                raise BatchExecutionError(
                    f"{type(exc).__name__}: {exc}"
                ) from exc
        handle = await self._idle.get()
        try:
            if not handle.alive:
                raise WorkerCrash(
                    f"worker {handle.id} found dead "
                    f"(exit code {handle.process.exitcode})"
                )
            reply = await handle.call(("batch", items, deadline_s), timeout)
        except WorkerCrash:
            await self._replace(handle)
            raise
        handle.batches += 1
        self._consecutive_failures = 0
        self._idle.put_nowait(handle)
        if reply[0] == "ok":
            return reply[1]
        raise BatchExecutionError(str(reply[1]))

    def snapshot(self) -> dict:
        return {
            "n_workers": self.n_workers,
            "alive": sum(1 for h in self._workers.values() if h.alive),
            "idle": self._idle.qsize(),
            "replacements": self.replacements,
            "inline": self.inline,
        }
