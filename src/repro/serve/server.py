"""JSON-lines-over-TCP front end for :class:`LocalizationService`.

Pure stdlib (``asyncio.start_server``) — one JSON object per line in
each direction.  Ops::

    {"op": "localize", "id": "...", "measurements": {...} | "scenario":
     {...}, "seed": 0, "config": {...}, "deadline_s": 0.5}
    {"op": "health"} | {"op": "ready"} | {"op": "metrics"}

Lines on one connection are handled *concurrently* (one task per line)
and responses carry the request's ``id``, so a client may pipeline many
requests over a single connection; :class:`ServeClient` does exactly
that, matching responses back to callers by id.

A malformed line gets an ``{"status": "error"}`` reply rather than a
dropped connection — a confused client must not take down its own
in-flight requests.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json

from repro.core.bnloc import GridBPConfig
from repro.serve.service import LocalizationService, ServeConfig
from repro.serve.types import LocalizeRequest, LocalizeResponse

__all__ = ["LocalizationServer", "ServeClient"]

#: generous per-line cap — a 500-node measurement payload is ~100 KB
_STREAM_LIMIT = 16 * 1024 * 1024

_CONFIG_FIELDS = {f.name for f in dataclasses.fields(GridBPConfig)}


def _config_from_wire(data: dict | None) -> GridBPConfig:
    if not data:
        return GridBPConfig()
    unknown = set(data) - _CONFIG_FIELDS
    if unknown:
        raise ValueError(f"unknown config fields {sorted(unknown)}")
    return GridBPConfig(**data)


def _scenario_from_wire(data: dict):
    from repro.experiments.config import ScenarioConfig

    fields = {f.name for f in dataclasses.fields(ScenarioConfig)}
    unknown = set(data) - fields
    if unknown:
        raise ValueError(f"unknown scenario fields {sorted(unknown)}")
    if "pk_offset" in data:
        data = {**data, "pk_offset": tuple(data["pk_offset"])}
    return ScenarioConfig(**data)


def request_from_wire(data: dict) -> LocalizeRequest:
    """Decode one ``localize`` wire object into a request."""
    from repro.io import measurements_from_dict

    kwargs: dict = {
        "request_id": str(data.get("id", "")),
        "config": _config_from_wire(data.get("config")),
    }
    if data.get("deadline_s") is not None:
        kwargs["deadline_s"] = float(data["deadline_s"])
    if "measurements" in data:
        kwargs["measurements"] = measurements_from_dict(data["measurements"])
    elif "scenario" in data:
        kwargs["scenario"] = _scenario_from_wire(data["scenario"])
        kwargs["seed"] = int(data.get("seed", 0))
    else:
        raise ValueError("localize op needs measurements or scenario")
    return LocalizeRequest(**kwargs)


class LocalizationServer:
    """Serve a :class:`LocalizationService` on a TCP port."""

    def __init__(
        self,
        service: LocalizationService | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service if service is not None else LocalizationService()
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=_STREAM_LIMIT,
        )
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        lock = asyncio.Lock()  # serialize writes from concurrent line tasks
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, lock, {
                        "status": "error", "error": "line too long"})
                    break
                if not line:
                    break
                task = asyncio.ensure_future(
                    self._handle_line(line, writer, lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_line(self, line: bytes, writer, lock) -> None:
        rid = None
        try:
            data = json.loads(line)
            rid = data.get("id")
            op = data.get("op", "localize")
            if op == "localize":
                request = request_from_wire(data)
                response = await self.service.localize(request)
                out = response.to_dict()
            elif op == "health":
                out = {"op": "health", **self.service.health()}
            elif op == "ready":
                out = {"op": "ready", "ready": self.service.ready()}
            elif op == "metrics":
                out = {"op": "metrics", **self.service.metrics_snapshot()}
            else:
                raise ValueError(f"unknown op {op!r}")
        except Exception as exc:
            out = LocalizeResponse(
                request_id=str(rid or ""),
                status="error",
                reason="bad-request",
                error=f"{type(exc).__name__}: {exc}",
            ).to_dict()
        if rid is not None:
            out.setdefault("id", rid)
        await self._send(writer, lock, out)

    @staticmethod
    async def _send(writer, lock, obj: dict) -> None:
        payload = (json.dumps(obj) + "\n").encode()
        async with lock:
            try:
                writer.write(payload)
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; its requests already resolved


class ServeClient:
    """Pipelining JSON-lines client for :class:`LocalizationServer`.

    One TCP connection, many concurrent ``localize`` calls — responses
    are matched back to callers by the ``id`` field.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None
        self._pending: dict[str, asyncio.Future] = {}
        self._read_task: asyncio.Task | None = None
        self._counter = 0
        self._write_lock = asyncio.Lock()

    async def connect(self) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=_STREAM_LIMIT
        )
        self._read_task = asyncio.create_task(self._read_loop())
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except asyncio.CancelledError:
                pass
        for fut in self._pending.values():
            if not fut.done():
                fut.set_exception(ConnectionError("client closed"))
        self._pending.clear()

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                data = json.loads(line)
                fut = self._pending.pop(str(data.get("id", "")), None)
                if fut is not None and not fut.done():
                    fut.set_result(data)
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass
        finally:
            for fut in self._pending.values():
                if not fut.done():
                    fut.set_exception(ConnectionError("connection lost"))
            self._pending.clear()

    async def _call(self, obj: dict) -> dict:
        self._counter += 1
        rid = obj.setdefault("id", f"c{self._counter}")
        rid = str(rid)
        obj["id"] = rid
        if rid in self._pending:
            raise ValueError(f"duplicate in-flight request id {rid!r}")
        fut = asyncio.get_running_loop().create_future()
        self._pending[rid] = fut
        payload = (json.dumps(obj) + "\n").encode()
        async with self._write_lock:
            self._writer.write(payload)
            await self._writer.drain()
        return await fut

    async def localize(self, **wire) -> dict:
        """``localize`` with raw wire fields (measurements/scenario/...)."""
        return await self._call({"op": "localize", **wire})

    async def health(self) -> dict:
        return await self._call({"op": "health"})

    async def ready(self) -> bool:
        return bool((await self._call({"op": "ready"}))["ready"])

    async def metrics(self) -> dict:
        return await self._call({"op": "metrics"})
