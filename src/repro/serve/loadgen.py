"""Load generator for the localization service (the E18 driver).

Builds a deterministic stream of measurement-form requests client-side
(one synthetic scenario per request, seeded off the spec), optionally
degrades each through a :class:`~repro.faults.FaultPlan` — the faulted
lane of E18 — and replays them against a live server over one pipelined
:class:`~repro.serve.server.ServeClient` connection with bounded
concurrency.  Shed responses are retried after the server's
``retry_after`` hint, so the report distinguishes *final* sheds (the
client gave up) from transient backpressure.

The report's ``lost`` count is the acceptance gate: requests that never
got a terminal response.  A correct service keeps it at zero through
worker murder and fault injection alike.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.server import ServeClient

__all__ = ["LoadSpec", "LoadReport", "build_request_payloads", "run_load"]


@dataclass(frozen=True)
class LoadSpec:
    """What to throw at the server."""

    n_requests: int = 40
    concurrency: int = 8
    n_nodes: int = 25
    anchor_ratio: float = 0.24
    radio_range: float = 0.35
    noise_ratio: float = 0.1
    grid_size: int = 12
    max_iterations: int = 12
    deadline_s: float | None = None
    seed: int = 0
    fault_plan: object | None = None  # FaultPlan for the degraded lane
    max_shed_retries: int = 100

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")


@dataclass
class LoadReport:
    """Outcome of one load run (JSON-safe via :meth:`to_dict`)."""

    n_requests: int = 0
    wall_s: float = 0.0
    statuses: dict = field(default_factory=dict)
    degraded_reasons: dict = field(default_factory=dict)
    lost: int = 0
    shed_retries: int = 0
    latencies_s: list = field(default_factory=list)
    mean_error_ok: float | None = None
    mean_error_degraded: float | None = None

    @property
    def answered(self) -> int:
        return self.statuses.get("ok", 0) + self.statuses.get("degraded", 0)

    def to_dict(self) -> dict:
        lat = np.asarray(self.latencies_s) if self.latencies_s else None
        return {
            "n_requests": self.n_requests,
            "wall_s": round(self.wall_s, 4),
            "throughput_rps": (
                round(self.answered / self.wall_s, 3) if self.wall_s > 0 else None
            ),
            "statuses": dict(self.statuses),
            "degraded_reasons": dict(self.degraded_reasons),
            "answered": self.answered,
            "lost": self.lost,
            "shed_retries": self.shed_retries,
            "latency_ms": {
                "p50": round(float(np.percentile(lat, 50)) * 1e3, 3),
                "p99": round(float(np.percentile(lat, 99)) * 1e3, 3),
                "mean": round(float(lat.mean()) * 1e3, 3),
            }
            if lat is not None
            else None,
            "mean_error_ok": self.mean_error_ok,
            "mean_error_degraded": self.mean_error_degraded,
        }


def build_request_payloads(spec: LoadSpec) -> list[dict]:
    """Deterministic request stream: wire payload + true positions each.

    Scenario *i* is built from ``seed = spec.seed + i``; with a fault
    plan, request *i* is degraded under ``plan.seed + i`` so every
    request sees an independent (but reproducible) fault draw.
    """
    from repro.experiments.config import ScenarioConfig, build_scenario
    from repro.io import measurements_to_dict

    scen = ScenarioConfig(
        n_nodes=spec.n_nodes,
        anchor_ratio=spec.anchor_ratio,
        radio_range=spec.radio_range,
        noise_ratio=spec.noise_ratio,
    )
    config_wire = {
        "grid_size": spec.grid_size,
        "max_iterations": spec.max_iterations,
    }
    payloads = []
    for i in range(spec.n_requests):
        network, ms, _prior = build_scenario(scen, seed=spec.seed + i)
        if spec.fault_plan is not None:
            from repro.faults.inject import degrade_measurements

            plan = dataclasses.replace(
                spec.fault_plan, seed=spec.fault_plan.seed + i
            )
            ms, _log = degrade_measurements(ms, plan)
        wire: dict = {
            "measurements": measurements_to_dict(ms),
            "config": config_wire,
        }
        if spec.deadline_s is not None:
            wire["deadline_s"] = spec.deadline_s
        payloads.append(
            {
                "wire": wire,
                "true_positions": network.positions,
                "anchor_mask": ms.anchor_mask,
            }
        )
    return payloads


def _request_error(resp: dict, payload: dict) -> float | None:
    """Client-side mean localization error of a response, if computable."""
    est = resp.get("estimates")
    if est is None:
        return None
    est = np.asarray(
        [[np.nan if v is None else v for v in row] for row in est], dtype=float
    )
    unknown = ~payload["anchor_mask"]
    diff = est[unknown] - payload["true_positions"][unknown]
    err = np.linalg.norm(diff, axis=1)
    err = err[np.isfinite(err)]
    return float(err.mean()) if len(err) else None


async def run_load(
    host: str,
    port: int,
    spec: LoadSpec,
    payloads: list[dict] | None = None,
    mid_run_hook=None,
) -> LoadReport:
    """Replay the spec's request stream against a live server.

    *mid_run_hook*, if given, is an async callable invoked once after
    roughly half the requests have been **submitted** — E18 uses it to
    SIGKILL a worker while traffic is in flight.
    """
    if payloads is None:
        payloads = build_request_payloads(spec)
    report = LoadReport(n_requests=len(payloads))
    sem = asyncio.Semaphore(spec.concurrency)
    client = await ServeClient(host, port).connect()
    errors_ok: list[float] = []
    errors_degraded: list[float] = []
    hook_at = max(1, len(payloads) // 2)
    submitted = 0
    hook_task: asyncio.Task | None = None

    async def one(i: int, payload: dict) -> None:
        nonlocal submitted, hook_task
        async with sem:
            submitted += 1
            if mid_run_hook is not None and submitted == hook_at and hook_task is None:
                hook_task = asyncio.create_task(mid_run_hook())
            t0 = time.perf_counter()
            resp: dict | None = None
            for _retry in range(spec.max_shed_retries + 1):
                resp = await client.localize(**dict(payload["wire"]))
                if resp.get("status") != "shed":
                    break
                report.shed_retries += 1
                await asyncio.sleep(float(resp.get("retry_after") or 0.05))
            latency = time.perf_counter() - t0
            status = resp.get("status") if resp else None
            if status is None:
                report.lost += 1
                return
            report.statuses[status] = report.statuses.get(status, 0) + 1
            if status == "degraded":
                reason = resp.get("reason") or "unknown"
                report.degraded_reasons[reason] = (
                    report.degraded_reasons.get(reason, 0) + 1
                )
            if status in ("ok", "degraded"):
                report.latencies_s.append(latency)
                err = _request_error(resp, payload)
                if err is not None:
                    (errors_ok if status == "ok" else errors_degraded).append(err)
            elif status not in ("shed", "error"):
                report.lost += 1

    t_start = time.perf_counter()
    try:
        results = await asyncio.gather(
            *[one(i, p) for i, p in enumerate(payloads)],
            return_exceptions=True,
        )
        for res in results:
            if isinstance(res, BaseException):
                report.lost += 1
        if hook_task is not None:
            await hook_task
    finally:
        await client.close()
    report.wall_s = time.perf_counter() - t_start
    if errors_ok:
        report.mean_error_ok = round(float(np.mean(errors_ok)), 5)
    if errors_degraded:
        report.mean_error_degraded = round(float(np.mean(errors_degraded)), 5)
    return report
