"""Localization-as-a-service: fault-tolerant async serving runtime.

Micro-batches concurrent localization requests onto the batched kernel
backend through a pool of warm worker processes, inside a robustness
envelope: per-request deadlines with cooperative BP cancellation,
bounded admission with load shedding, per-shape circuit breakers, worker
health probes with crash replacement, and graceful degradation — every
admitted request gets an answer, possibly a flagged fallback, never
silence.
"""

from repro.serve.breaker import BreakerRegistry, CircuitBreaker
from repro.serve.loadgen import LoadReport, LoadSpec, run_load
from repro.serve.metrics import ServiceMetrics
from repro.serve.server import LocalizationServer, ServeClient
from repro.serve.service import LocalizationService, ServeConfig
from repro.serve.types import LocalizeRequest, LocalizeResponse
from repro.serve.workers import WorkerPool, execute_batch

__all__ = [
    "BreakerRegistry",
    "CircuitBreaker",
    "LoadReport",
    "LoadSpec",
    "LocalizationServer",
    "LocalizationService",
    "LocalizeRequest",
    "LocalizeResponse",
    "ServeClient",
    "ServeConfig",
    "ServiceMetrics",
    "WorkerPool",
    "execute_batch",
    "run_load",
]
