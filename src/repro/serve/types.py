"""Request/response model of the localization service.

A :class:`LocalizeRequest` carries one localization problem — either a
prebuilt :class:`~repro.measurement.MeasurementSet` (the normal service
path: measurements in, posterior out) or a
:class:`~repro.experiments.ScenarioConfig` plus seed (a server-side
synthetic build, used by demos) — together with the solver configuration
and an optional latency budget.

A :class:`LocalizeResponse` is *always* produced for an admitted request;
the service never loses one.  ``status`` tells the client what it got:

``ok``
    Full BP ran to its configured schedule; estimates and per-node
    uncertainty are the solver's real posterior outputs.
``degraded``
    The robustness envelope intervened — the deadline truncated BP
    between rounds (partial posterior), the per-shape circuit breaker
    was open, execution failed after retries, or the deadline expired
    before the solve could start (baseline fallback estimates with
    *widened* uncertainty).  ``reason`` says which; ``fallback_mask``
    marks nodes carrying fallback rather than posterior estimates.
``shed``
    Load shedding: the bounded admission queue was full (or the service
    is shutting down) and the request was rejected *before* admission.
    ``retry_after`` is the server's backoff hint in seconds.
``error``
    The request itself was invalid (malformed measurements, a prior that
    excludes every grid cell, …).  Retrying unchanged will fail again.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.core.bnloc import GridBPConfig

__all__ = [
    "LocalizeRequest",
    "LocalizeResponse",
    "request_batch_key",
    "widened_sigma",
]

#: response statuses, in decreasing order of answer quality
STATUSES = ("ok", "degraded", "shed", "error")


@dataclass
class LocalizeRequest:
    """One localization problem submitted to the service.

    Exactly one of *measurements* / *scenario* must be set.  *prior* is
    the pre-knowledge (``None`` = uniform); for scenario-form requests
    the server builds it from the scenario instead.  *deadline_s* is a
    relative latency budget measured from admission; ``None`` uses the
    service default (which may be unbounded).
    """

    measurements: object | None = None
    scenario: object | None = None
    seed: int = 0
    prior: object | None = None
    config: GridBPConfig = field(default_factory=GridBPConfig)
    deadline_s: float | None = None
    request_id: str = ""

    def __post_init__(self) -> None:
        if (self.measurements is None) == (self.scenario is None):
            raise ValueError(
                "exactly one of measurements / scenario must be provided"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        # The service owns kernel-backend selection (batched for groups,
        # reference for singletons); normalizing here keeps the batch key
        # independent of whatever the client happened to set.
        if self.config.backend != "reference":
            self.config = dataclasses.replace(self.config, backend="reference")

    @property
    def field_size(self) -> tuple[float, float]:
        if self.measurements is not None:
            return float(self.measurements.width), float(self.measurements.height)
        return 1.0, 1.0  # scenario builds live on the unit field


def request_batch_key(req: LocalizeRequest) -> tuple:
    """Micro-batch compatibility key of a request.

    Requests sharing this key prepare into kernel problems sharing
    :func:`repro.kernels.compatibility_key` — same grid shape/extent,
    same state count, equal config — so the service may run them as one
    stacked batch.  Computed without preparing anything: the key needs
    only the config and the field geometry.
    """
    from repro.core.grid import Grid2D
    from repro.kernels import config_key

    w, h = req.field_size
    grid = Grid2D(req.config.grid_size, req.config.grid_size, w, h)
    return config_key(grid, req.config)


def widened_sigma(width: float, height: float) -> float:
    """Honest per-node uncertainty of a fallback (non-posterior) estimate.

    The RMS radius of a uniform distribution over the field — the spread
    a client should assume when the service could not run inference.
    Always at least as wide as any real posterior the same field could
    produce.
    """
    return float(np.sqrt((width**2 + height**2) / 12.0))


@dataclass
class LocalizeResponse:
    """What the service returns for one admitted (or shed) request."""

    request_id: str
    status: str
    reason: str | None = None
    estimates: np.ndarray | None = None
    localized_mask: np.ndarray | None = None
    fallback_mask: np.ndarray | None = None
    uncertainty: np.ndarray | None = None
    degraded: bool = False
    converged: bool = False
    n_iterations: int = 0
    batch_size: int = 0
    queue_s: float = 0.0
    solve_s: float = 0.0
    total_s: float = 0.0
    retry_after: float | None = None
    error: str | None = None
    mean_error: float | None = None

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(f"unknown status {self.status!r}")
        self.degraded = self.degraded or self.status == "degraded"

    @property
    def answered(self) -> bool:
        """True when the response carries position estimates."""
        return self.estimates is not None

    def to_dict(self) -> dict:
        """JSON-safe wire form."""
        out = {
            "id": self.request_id,
            "status": self.status,
            "reason": self.reason,
            "degraded": bool(self.degraded),
            "converged": bool(self.converged),
            "n_iterations": int(self.n_iterations),
            "batch_size": int(self.batch_size),
            "queue_ms": round(self.queue_s * 1e3, 3),
            "solve_ms": round(self.solve_s * 1e3, 3),
            "total_ms": round(self.total_s * 1e3, 3),
        }
        if self.estimates is not None:
            out["estimates"] = np.where(
                np.isfinite(self.estimates), self.estimates, None
            ).tolist()
        if self.localized_mask is not None:
            out["localized_mask"] = self.localized_mask.astype(int).tolist()
        if self.fallback_mask is not None:
            out["fallback_mask"] = self.fallback_mask.astype(int).tolist()
        if self.uncertainty is not None:
            out["uncertainty"] = [
                None if not np.isfinite(u) else float(u) for u in self.uncertainty
            ]
        if self.retry_after is not None:
            out["retry_after"] = float(self.retry_after)
        if self.error is not None:
            out["error"] = self.error
        if self.mean_error is not None:
            out["mean_error"] = float(self.mean_error)
        return out
