"""Per-compatibility-key circuit breakers.

When a batch shape keeps failing (e.g. a grid size that exhausts worker
memory, or a config that reliably crashes a kernel), retrying every new
arrival of that shape burns worker time that healthy shapes need.  The
breaker trips after ``threshold`` consecutive failures of a key and
short-circuits further requests of that shape to the degraded path until
a cooldown passes; then a single probe batch (half-open) decides whether
to close it again.

Clocks are injectable so tests drive state transitions without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["CircuitBreaker", "BreakerRegistry"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass
class CircuitBreaker:
    """Three-state breaker guarding one batch shape."""

    threshold: int = 3
    cooldown_s: float = 5.0
    clock: object = time.monotonic
    state: str = field(default=CLOSED, init=False)
    failures: int = field(default=0, init=False)
    opened_at: float = field(default=0.0, init=False)
    trips: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")

    def allow(self) -> bool:
        """May a batch of this shape execute right now?

        An open breaker lets exactly one probe through once the cooldown
        has elapsed (transitioning to half-open); its outcome decides the
        next state.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.clock() - self.opened_at >= self.cooldown_s:
                self.state = HALF_OPEN
                return True
            return False
        # half-open: a probe is already in flight; hold the rest back
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.state = CLOSED

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == HALF_OPEN or self.failures >= self.threshold:
            if self.state != OPEN:
                self.trips += 1
            self.state = OPEN
            self.opened_at = self.clock()


class BreakerRegistry:
    """Lazy map of batch key → :class:`CircuitBreaker`."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.clock = clock
        self._breakers: dict = {}

    def get(self, key) -> CircuitBreaker:
        br = self._breakers.get(key)
        if br is None:
            br = self._breakers[key] = CircuitBreaker(
                threshold=self.threshold,
                cooldown_s=self.cooldown_s,
                clock=self.clock,
            )
        return br

    @property
    def total_trips(self) -> int:
        return sum(br.trips for br in self._breakers.values())

    def snapshot(self) -> dict:
        """JSON-safe view for the metrics endpoint."""
        return {
            "breakers": len(self._breakers),
            "open": sum(
                1 for br in self._breakers.values() if br.state != CLOSED
            ),
            "trips": self.total_trips,
        }
