"""Sequential localization of mobile networks.

* :class:`SequentialGridTracker` — the Bayesian network tracker: each time
  step's posterior, diffused through a bounded-speed motion kernel, becomes
  the next step's *pre-knowledge prior*.  This is the temporal face of the
  paper's idea: yesterday's inference is today's pre-knowledge.
* :class:`MCLTracker` — Monte-Carlo Localization (Hu & Evans 2004), the
  classic range-free particle baseline: predict within max speed, filter by
  anchor-connectivity constraints, resample.

Both consume a trajectory ``(T+1, n, 2)`` from :mod:`repro.mobility.models`
plus the static scenario pieces (radio, ranging, anchors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.bnloc import GridBPConfig, GridBPLocalizer
from repro.core.grid import Grid2D
from repro.measurement.measurements import MeasurementSet, observe
from repro.measurement.ranging import RangingModel
from repro.network.radio import RadioModel
from repro.network.topology import WSNetwork
from repro.priors.base import PositionPrior
from repro.priors.belief import GridBeliefPrior
from repro.utils.rng import RNGLike, as_generator

__all__ = ["TrackingResult", "SequentialGridTracker", "MCLTracker"]


@dataclass
class TrackingResult:
    """Per-step estimates for a mobile network.

    Attributes
    ----------
    estimates:
        ``(T+1, n, 2)`` estimated positions (NaN where unlocalized).
    localized:
        ``(T+1, n)`` boolean mask.
    method:
        Tracker name.
    extras:
        Tracker-specific payloads.  :class:`MCLTracker` stores a
        ``(T+1, n)`` ``"degraded"`` mask: True where the constraint
        filter failed every resample round and the reported estimate
        came from an unfiltered fallback cloud (coverage metrics should
        exclude those steps).
    """

    estimates: np.ndarray
    localized: np.ndarray
    method: str
    extras: dict = field(default_factory=dict)

    def errors(self, trajectory: np.ndarray) -> np.ndarray:
        """``(T+1, n)`` per-step per-node errors (NaN where unlocalized)."""
        traj = np.asarray(trajectory, dtype=np.float64)
        if traj.shape != self.estimates.shape:
            raise ValueError("trajectory shape mismatch")
        err = np.linalg.norm(self.estimates - traj, axis=2)
        err[~self.localized] = np.nan
        return err

    def mean_error_per_step(self, trajectory: np.ndarray, unknown_mask: np.ndarray) -> np.ndarray:
        err = self.errors(trajectory)[:, unknown_mask]
        with np.errstate(invalid="ignore"):
            return np.nanmean(err, axis=1)


class SequentialGridTracker:
    """Grid Bayesian tracker: posterior → motion diffusion → next prior.

    :meth:`track` consumes a whole trajectory; :meth:`step` is the
    per-epoch warm-start entry point the streaming runtime
    (:mod:`repro.stream`) drives — one measurement epoch in, the
    localization result plus the motion-diffused prior for the *next*
    epoch out.  Both paths share one long-lived
    :class:`~repro.core.bnloc.GridBPLocalizer` (so the shared potential
    cache stays warm across steps) and one cached diffusion kernel, and
    are bit-identical to rebuilding everything per step.

    Parameters
    ----------
    radio, ranging:
        Observation models applied at every step.
    motion_sigma:
        Std of the per-step displacement assumed by the motion kernel
        (the pre-knowledge about node dynamics).
    config:
        Grid BP settings reused each step.
    """

    def __init__(
        self,
        radio: RadioModel,
        ranging: RangingModel | None,
        motion_sigma: float = 0.05,
        config: GridBPConfig | None = None,
    ) -> None:
        if motion_sigma <= 0:
            raise ValueError("motion_sigma must be positive")
        self.radio = radio
        self.ranging = ranging
        self.motion_sigma = float(motion_sigma)
        self.config = config if config is not None else GridBPConfig(max_iterations=8)
        self._localizer = GridBPLocalizer(radio=self.radio, config=self.config)
        self._grid: Grid2D | None = None

    def grid_for(self, width: float, height: float) -> Grid2D:
        """The tracker's grid over a ``width × height`` field (reused
        across steps — identical geometry means identical cells)."""
        grid = self._grid
        if (
            grid is None
            or float(grid.width) != float(width)
            or float(grid.height) != float(height)
        ):
            grid = Grid2D(self.config.grid_size, self.config.grid_size, width, height)
            self._grid = grid
        return grid

    def diffuse(
        self, beliefs: Mapping[int, np.ndarray], width: float = 1.0, height: float = 1.0
    ) -> GridBeliefPrior:
        """Motion-diffuse per-node *beliefs* into the next step's prior."""
        return GridBeliefPrior(
            self.grid_for(width, height), beliefs, diffusion_sigma=self.motion_sigma
        )

    def step(
        self,
        measurements: MeasurementSet,
        prior: PositionPrior | None = None,
        rng: RNGLike = None,
    ):
        """Localize one measurement epoch warm-started from *prior*.

        Returns ``(result, next_prior)`` where *next_prior* is the
        posterior diffused through the motion kernel — ready to seed the
        following epoch.  ``prior=None`` is a cold start (uniform).  The
        solver instance (and with it the shared potential cache and the
        prepared-problem machinery) persists across calls, so repeated
        steps skip the per-step rebuild the original tracker paid; the
        results are bit-identical to constructing a fresh localizer per
        step (gated by ``tests/test_stream.py``).
        """
        loc = self._localizer
        loc.prior = prior
        try:
            result = loc.localize(measurements, rng)
        finally:
            loc.prior = None
        next_prior = self.diffuse(
            result.extras["beliefs"], measurements.width, measurements.height
        )
        return result, next_prior

    def track(
        self,
        trajectory: np.ndarray,
        anchor_mask: np.ndarray,
        width: float = 1.0,
        height: float = 1.0,
        rng: RNGLike = None,
    ) -> TrackingResult:
        traj = np.asarray(trajectory, dtype=np.float64)
        if traj.ndim != 3 or traj.shape[2] != 2:
            raise ValueError("trajectory must have shape (T+1, n, 2)")
        gen = as_generator(rng)
        anchor_mask = np.asarray(anchor_mask, dtype=bool)
        T1, n, _ = traj.shape

        estimates = np.full((T1, n, 2), np.nan)
        localized = np.zeros((T1, n), dtype=bool)
        prior: PositionPrior | None = None
        for t in range(T1):
            net = WSNetwork(
                positions=traj[t],
                anchor_mask=anchor_mask,
                adjacency=self.radio.adjacency(traj[t], gen),
                width=width,
                height=height,
                radio_range=self.radio.range_,
            )
            ms = observe(net, self.ranging, gen)
            res, prior = self.step(ms, prior, gen)
            estimates[t] = res.estimates
            localized[t] = res.localized_mask
        return TrackingResult(estimates, localized, "seq-grid-bp")


class MCLTracker:
    """Monte-Carlo Localization for mobile range-free networks.

    Per step and node: particles move by at most ``v_max`` (uniform in the
    disk), are filtered by the observed anchor constraints — within ``r``
    of every one-hop anchor, within ``2r`` of every two-hop anchor, outside
    ``r`` of every silent anchor (negative evidence, optional) — and are
    resampled until the cloud refills (bounded retries).

    Parameters
    ----------
    radio:
        Link model (its ``range_`` provides ``r``).
    v_max:
        Per-step maximum displacement assumed by prediction.
    n_particles:
        Cloud size per node.
    use_negative_evidence:
        Apply the silent-anchor exclusion constraint.
    max_resample_rounds:
        Prediction/filter retries per step before giving up and keeping
        the unfiltered predictions (rare, low-anchor corner case).
    """

    def __init__(
        self,
        radio: RadioModel,
        v_max: float = 0.08,
        n_particles: int = 100,
        use_negative_evidence: bool = True,
        max_resample_rounds: int = 20,
    ) -> None:
        if v_max <= 0:
            raise ValueError("v_max must be positive")
        if n_particles < 10:
            raise ValueError("n_particles must be >= 10")
        if max_resample_rounds < 1:
            raise ValueError("max_resample_rounds must be >= 1")
        self.radio = radio
        self.v_max = float(v_max)
        self.n_particles = int(n_particles)
        self.use_negative_evidence = bool(use_negative_evidence)
        self.max_resample_rounds = int(max_resample_rounds)

    # ------------------------------------------------------------------ #
    def _constraints_ok(
        self,
        pts: np.ndarray,
        one_hop: np.ndarray,
        two_hop: np.ndarray,
        silent: np.ndarray,
        r: float,
    ) -> np.ndarray:
        ok = np.ones(len(pts), dtype=bool)
        for a in one_hop:
            ok &= np.linalg.norm(pts - a, axis=1) <= r
        for a in two_hop:
            ok &= np.linalg.norm(pts - a, axis=1) <= 2 * r
        if self.use_negative_evidence:
            for a in silent:
                ok &= np.linalg.norm(pts - a, axis=1) > r
        return ok

    def track(
        self,
        trajectory: np.ndarray,
        anchor_mask: np.ndarray,
        width: float = 1.0,
        height: float = 1.0,
        rng: RNGLike = None,
    ) -> TrackingResult:
        traj = np.asarray(trajectory, dtype=np.float64)
        if traj.ndim != 3 or traj.shape[2] != 2:
            raise ValueError("trajectory must have shape (T+1, n, 2)")
        gen = as_generator(rng)
        anchor_mask = np.asarray(anchor_mask, dtype=bool)
        T1, n, _ = traj.shape
        r = self.radio.range_
        unknowns = np.flatnonzero(~anchor_mask)
        anchors = np.flatnonzero(anchor_mask)

        clouds = {
            int(u): np.column_stack(
                [
                    gen.uniform(0, width, size=self.n_particles),
                    gen.uniform(0, height, size=self.n_particles),
                ]
            )
            for u in unknowns
        }
        estimates = np.full((T1, n, 2), np.nan)
        localized = np.zeros((T1, n), dtype=bool)
        degraded = np.zeros((T1, n), dtype=bool)
        estimates[:, anchor_mask] = traj[:, anchor_mask]
        localized[:, anchor_mask] = True

        for t in range(T1):
            adj = self.radio.adjacency(traj[t], gen)
            for u in unknowns:
                u = int(u)
                heard = [a for a in anchors if adj[u, a]]
                two_hop = {
                    int(a)
                    for v in np.flatnonzero(adj[u])
                    if not anchor_mask[v]
                    for a in anchors
                    if adj[v, a] and not adj[u, a]
                }
                one_pos = traj[t][heard] if heard else np.zeros((0, 2))
                two_pos = (
                    traj[t][sorted(two_hop)] if two_hop else np.zeros((0, 2))
                )
                silent = [a for a in anchors if not adj[u, a]]
                sil_pos = traj[t][silent] if silent else np.zeros((0, 2))

                kept = np.zeros((0, 2))
                cloud = clouds[u]
                for _ in range(self.max_resample_rounds):
                    base = cloud[gen.integers(0, len(cloud), size=self.n_particles)]
                    if t > 0:
                        theta = gen.uniform(0, 2 * np.pi, size=self.n_particles)
                        rad = self.v_max * np.sqrt(
                            gen.uniform(0, 1, size=self.n_particles)
                        )
                        base = base + np.column_stack(
                            [rad * np.cos(theta), rad * np.sin(theta)]
                        )
                    np.clip(base[:, 0], 0, width, out=base[:, 0])
                    np.clip(base[:, 1], 0, height, out=base[:, 1])
                    ok = self._constraints_ok(base, one_pos, two_pos, sil_pos, r)
                    kept = np.concatenate([kept, base[ok]])
                    if len(kept) >= self.n_particles:
                        kept = kept[: self.n_particles]
                        break
                if len(kept) == 0:
                    # Constraints unsatisfiable from the current cloud
                    # (kidnapped-node case): re-seed from the constraint
                    # region around heard anchors, or keep predictions.
                    if len(one_pos):
                        center = one_pos.mean(axis=0)
                        kept = center + gen.uniform(
                            -r, r, size=(self.n_particles, 2)
                        )
                        # Re-seeded particles must stay in the deployment
                        # field, like the prediction path above — a node
                        # kidnapped near the boundary would otherwise get
                        # an out-of-field cloud (and estimate).
                        np.clip(kept[:, 0], 0, width, out=kept[:, 0])
                        np.clip(kept[:, 1], 0, height, out=kept[:, 1])
                        ok = self._constraints_ok(kept, one_pos, two_pos, sil_pos, r)
                        if ok.any():
                            kept = kept[ok]
                        else:
                            degraded[t, u] = True
                    else:
                        kept = cloud
                        degraded[t, u] = True
                if len(kept) < self.n_particles:
                    idx = gen.integers(0, len(kept), size=self.n_particles)
                    kept = kept[idx]
                clouds[u] = kept
                estimates[t, u] = kept.mean(axis=0)
                localized[t, u] = True
        result = TrackingResult(
            estimates, localized, "mcl", extras={"degraded": degraded}
        )
        self._maybe_audit(result, width, height)
        return result

    def _maybe_audit(
        self, result: TrackingResult, width: float, height: float
    ) -> None:
        # Env-toggle only (REPRO_AUDIT) — MCL has no config dataclass.
        from repro.audit.invariants import resolve_audit_mode

        mode = resolve_audit_mode(None)
        if mode is None:
            return
        from repro.audit.invariants import Auditor, AuditViolation

        auditor = Auditor(mode, solver=result.method)
        est = result.estimates[result.localized]
        if not np.isfinite(est).all():
            auditor.extend(
                [
                    AuditViolation(
                        "tracking-estimate-finite",
                        "localized tracking estimates contain non-finite values",
                        {},
                    )
                ]
            )
        elif len(est) and (
            (est[:, 0] < 0).any()
            or (est[:, 0] > width).any()
            or (est[:, 1] < 0).any()
            or (est[:, 1] > height).any()
        ):
            auditor.extend(
                [
                    AuditViolation(
                        "tracking-estimate-in-field",
                        "tracking estimates leave the deployment field",
                        {"width": width, "height": height},
                    )
                ]
            )
        auditor.finish()
