"""Mobility models: trajectories for mobile sensor networks.

Both models produce a ``(T, n, 2)`` array of positions over *T* discrete
time steps, bounded to the field.  Speeds are per-step displacements (the
simulator is time-unit agnostic).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.rng import RNGLike, as_generator
from repro.utils.validation import check_nonnegative, check_positive, check_positions

__all__ = ["MobilityModel", "RandomWaypointMobility", "RandomWalkMobility"]


class MobilityModel(ABC):
    """Base: generate bounded trajectories from initial positions."""

    def __init__(self, width: float = 1.0, height: float = 1.0) -> None:
        self.width = check_positive(width, "width")
        self.height = check_positive(height, "height")

    @abstractmethod
    def trajectory(
        self, initial: np.ndarray, n_steps: int, rng: RNGLike = None
    ) -> np.ndarray:
        """``(n_steps + 1, n, 2)`` positions; slice 0 is *initial*."""

    def _check(self, initial: np.ndarray, n_steps: int) -> np.ndarray:
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        return check_positions(initial, "initial")


class RandomWaypointMobility(MobilityModel):
    """Random waypoint: pick a destination, travel at a random speed,
    (optionally) pause, repeat.

    Parameters
    ----------
    speed_range:
        ``(v_min, v_max)`` per-step speeds, drawn per leg.
    pause_steps:
        Steps spent stationary on arrival.
    """

    def __init__(
        self,
        speed_range: tuple[float, float] = (0.02, 0.08),
        pause_steps: int = 0,
        width: float = 1.0,
        height: float = 1.0,
    ) -> None:
        super().__init__(width, height)
        v_min, v_max = float(speed_range[0]), float(speed_range[1])
        if not (0 < v_min <= v_max):
            raise ValueError("need 0 < v_min <= v_max")
        self.v_min, self.v_max = v_min, v_max
        if pause_steps < 0:
            raise ValueError("pause_steps must be >= 0")
        self.pause_steps = int(pause_steps)

    def trajectory(
        self, initial: np.ndarray, n_steps: int, rng: RNGLike = None
    ) -> np.ndarray:
        pos = self._check(initial, n_steps)
        gen = as_generator(rng)
        n = len(pos)
        out = np.empty((n_steps + 1, n, 2))
        out[0] = pos
        dest = gen.uniform(0, 1, size=(n, 2)) * [self.width, self.height]
        speed = gen.uniform(self.v_min, self.v_max, size=n)
        pause = np.zeros(n, dtype=int)
        cur = pos.copy()
        for t in range(1, n_steps + 1):
            vec = dest - cur
            dist = np.linalg.norm(vec, axis=1)
            arrived = dist <= speed
            moving = ~arrived & (pause == 0)
            step = np.zeros_like(cur)
            nz = moving & (dist > 0)
            step[nz] = vec[nz] / dist[nz, None] * speed[nz, None]
            cur = cur + step
            # Arrivals snap to the destination, then pause and re-target.
            cur[arrived & (pause == 0)] = dest[arrived & (pause == 0)]
            newly = arrived & (pause == 0)
            pause[newly] = self.pause_steps
            done_pausing = arrived & (pause > 0)
            pause[done_pausing] -= 1
            retarget = arrived & (pause == 0)
            k = int(retarget.sum())
            if k:
                dest[retarget] = gen.uniform(0, 1, size=(k, 2)) * [
                    self.width,
                    self.height,
                ]
                speed[retarget] = gen.uniform(self.v_min, self.v_max, size=k)
            out[t] = cur
        return out


class RandomWalkMobility(MobilityModel):
    """Gaussian random walk with reflection at the field boundary."""

    def __init__(
        self, step_sigma: float = 0.03, width: float = 1.0, height: float = 1.0
    ) -> None:
        super().__init__(width, height)
        self.step_sigma = check_positive(step_sigma, "step_sigma")

    def trajectory(
        self, initial: np.ndarray, n_steps: int, rng: RNGLike = None
    ) -> np.ndarray:
        pos = self._check(initial, n_steps)
        gen = as_generator(rng)
        n = len(pos)
        out = np.empty((n_steps + 1, n, 2))
        out[0] = pos
        cur = pos.copy()
        for t in range(1, n_steps + 1):
            cur = cur + gen.normal(0, self.step_sigma, size=(n, 2))
            # Reflect off the boundary (at most a few bounces per step).
            for axis, limit in ((0, self.width), (1, self.height)):
                over = cur[:, axis] > limit
                cur[over, axis] = 2 * limit - cur[over, axis]
                under = cur[:, axis] < 0
                cur[under, axis] = -cur[under, axis]
                np.clip(cur[:, axis], 0.0, limit, out=cur[:, axis])
            out[t] = cur
        return out
