"""Mobility substrate: movement models and sequential localization.

* :mod:`repro.mobility.models` — random-waypoint and random-walk
  trajectory generators.
* :mod:`repro.mobility.tracking` — sequential localizers for mobile
  networks: the grid Bayesian tracker whose *motion model is the
  pre-knowledge* (the temporal analogue of the paper's deployment priors),
  and the Monte-Carlo Localization baseline (Hu & Evans 2004).
"""

from repro.mobility.models import RandomWalkMobility, RandomWaypointMobility
from repro.mobility.tracking import MCLTracker, SequentialGridTracker, TrackingResult

__all__ = [
    "RandomWalkMobility",
    "RandomWaypointMobility",
    "MCLTracker",
    "SequentialGridTracker",
    "TrackingResult",
]
