"""Latent channel parameters: miscalibrated RSSI inversion and latent
LOS/NLOS indicators.

Two channel nuisance parameters poison RSSI likelihoods when treated as
fixed config (ROADMAP item 4, following Leng/Tay/Quek and Jin et al.):

* the **path-loss exponent** η.  RSSI hardware converts readings to
  distances with a *compiled-in* exponent η̂₀; if the deployment's true
  exponent η differs, the reported distance is a power-law distortion of
  the truth:

      ``log(d_obs/d0) = (η/η̂₀)·log(d/d0) − X·ln10/(10·η̂₀)``

  :class:`ChannelRSSIRanging` models exactly this chain — generation uses
  the model's own exponent as ground truth and inverts with
  ``inversion_exponent``; the likelihood evaluates any *hypothesis*
  exponent against observations known to be inverted with η̂₀.  A bank of
  these models over a small discrete η support is the measurement side of
  joint channel/position inference
  (:class:`repro.core.jointchannel.JointChannelLocalizer`).

* the **LOS/NLOS indicator** per link.  :class:`LatentNLOSRanging`
  extends :class:`repro.measurement.nlos.RobustRanging` — whose mixture
  likelihood *is* the indicator marginalized out of the pairwise
  potential — with the posterior responsibilities
  ``P(NLOS | d_obs, d)`` per link, so an EM loop can re-estimate the
  contamination fraction and callers can expose soft per-link verdicts.

Both models honour the library-wide likelihood tail contract (finite or
``-inf``, never NaN / ``+inf``).
"""

from __future__ import annotations

import numpy as np

from repro.measurement.nlos import RobustRanging
from repro.measurement.ranging import RangingModel, _symmetric_noise
from repro.measurement.rssi import PathLossModel
from repro.utils.rng import RNGLike, as_generator
from repro.utils.validation import check_positive

__all__ = ["ChannelRSSIRanging", "LatentNLOSRanging"]


class ChannelRSSIRanging(RangingModel):
    """RSSI ranging through an explicitly-modelled inversion exponent.

    Parameters
    ----------
    path_loss:
        Path-loss law whose ``path_loss_exponent`` this model treats as
        the exponent that *generated* the RSSI readings.  For a generative
        (scenario) instance that is the deployment's true η; for an
        inference instance it is the hypothesis η_m being scored.
    inversion_exponent:
        η̂₀ — the exponent the receiver used to convert RSSI to distance.
        This is a property of the *measurement pipeline*, known to
        inference (it is the radio's own constant), and shared by every
        hypothesis model over the same observations.  Defaults to
        ``path_loss.path_loss_exponent`` (a calibrated receiver).

    Notes
    -----
    When ``inversion_exponent == path_loss.path_loss_exponent`` the
    likelihood is bit-identical to :class:`RSSIRanging`'s log-normal, so
    a matched instance is a drop-in replacement.  When they differ the
    mean of ``log(d_obs/d0)`` is ``(η_m/η̂₀)·log(d/d0)`` — a slope error,
    not extra variance, which is why fixed-exponent miscalibration biases
    estimates instead of merely widening posteriors (benchmark E20).
    """

    def __init__(
        self,
        path_loss: PathLossModel | None = None,
        inversion_exponent: float | None = None,
    ) -> None:
        self.path_loss = path_loss if path_loss is not None else PathLossModel()
        if self.path_loss.shadowing_db <= 0:
            raise ValueError(
                "ChannelRSSIRanging needs shadowing_db > 0 "
                "(otherwise ranging is exact)"
            )
        if inversion_exponent is None:
            inversion_exponent = self.path_loss.path_loss_exponent
        self.inversion_exponent = check_positive(
            float(inversion_exponent), "inversion_exponent"
        )

    @property
    def log_sigma(self) -> float:
        """σ of ``log(d_obs)`` — set by the *inversion* exponent, since the
        shadowing noise is divided by η̂₀ on its way into distance space."""
        return (
            self.path_loss.shadowing_db
            * np.log(10.0)
            / (10.0 * self.inversion_exponent)
        )

    @property
    def log_slope(self) -> float:
        """Slope of ``E[log(d_obs/d0)]`` vs ``log(d/d0)``: η_generate / η̂₀."""
        return self.path_loss.path_loss_exponent / self.inversion_exponent

    def with_exponent(self, exponent: float) -> "ChannelRSSIRanging":
        """A hypothesis copy believing the data was generated with η =
        *exponent* (inversion exponent and all other parameters shared)."""
        import dataclasses

        return ChannelRSSIRanging(
            dataclasses.replace(self.path_loss, path_loss_exponent=exponent),
            inversion_exponent=self.inversion_exponent,
        )

    def observe(self, true_distances: np.ndarray, rng: RNGLike = None) -> np.ndarray:
        """Physical chain: distance → shadowed RSSI (true η) → inversion
        (η̂₀).  One shadowing draw per unordered pair for square inputs."""
        gen = as_generator(rng)
        d = np.maximum(
            np.asarray(true_distances, dtype=np.float64), self.path_loss.d0
        )
        shadow_db = _symmetric_noise(gen, d.shape, self.path_loss.shadowing_db)
        # (tx - rssi)/(10·η̂₀) = (η/η̂₀)·log10(d/d0) − X/(10·η̂₀)
        log10_obs = self.log_slope * np.log10(d / self.path_loss.d0) - (
            shadow_db / (10.0 * self.inversion_exponent)
        )
        return self.path_loss.d0 * 10.0**log10_obs

    def log_likelihood(
        self, observed: np.ndarray, candidate_distances: np.ndarray
    ) -> np.ndarray:
        obs = np.maximum(
            np.asarray(observed, dtype=np.float64), self.path_loss.d0
        )
        cand = np.maximum(
            np.asarray(candidate_distances, dtype=np.float64), self.path_loss.d0
        )
        # mean of log(d_obs): slope·log(cand) + (1−slope)·log(d0).  Written
        # this way so slope == 1.0 reduces bitwise to RSSIRanging's
        # (log(obs) − log(cand)) — matched instances are exact drop-ins.
        slope = self.log_slope
        mu = slope * np.log(cand) + (1.0 - slope) * np.log(self.path_loss.d0)
        z = (np.log(obs) - mu) / self.log_sigma
        return (
            -0.5 * z * z
            - np.log(self.log_sigma)
            - 0.5 * np.log(2 * np.pi)
            - np.log(obs)
        )

    def sigma_at(self, distances: np.ndarray) -> np.ndarray:
        # Delta method on the log-normal around the candidate distance.
        d = np.asarray(distances, dtype=np.float64)
        return d * self.log_sigma


class LatentNLOSRanging(RobustRanging):
    """NLOS-aware mixture with per-link latent-indicator responsibilities.

    The :class:`RobustRanging` mixture

        ``p(d_obs | d) = (1−ε)·p_los + ε·p_nlos``

    already *is* the discrete LOS/NLOS indicator marginalized inside the
    pairwise potential; ``log_likelihood``/``observe``/``sigma_at`` are
    inherited bit-identically.  This subclass adds what joint inference
    needs on top:

    * :meth:`responsibilities` — the posterior ``P(NLOS | d_obs, d)``,
      broadcast like a likelihood, for soft per-link verdicts and EM
      updates of ε;
    * :meth:`with_fraction` — an updated-ε copy sharing the base model,
      for the deployment-level M-step (per-link ε instances would defeat
      fingerprint-based potential-cache sharing).
    """

    def component_log_likelihoods(
        self, observed: np.ndarray, candidate_distances: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(log p_los, log p_nlos)`` — the two unweighted mixture terms."""
        obs = np.asarray(observed, dtype=np.float64)
        cand = np.asarray(candidate_distances, dtype=np.float64)
        ll_los = self.base.log_likelihood(obs, cand)
        ll_nlos = self._log_emg(obs - cand, self.base.sigma_at(cand))
        return np.asarray(ll_los, dtype=np.float64), np.asarray(
            ll_nlos, dtype=np.float64
        )

    def responsibilities(
        self, observed: np.ndarray, candidate_distances: np.ndarray
    ) -> np.ndarray:
        """Posterior NLOS probability ``P(NLOS | d_obs, d)`` per element.

        Computed as a logistic of the weighted log-likelihood gap, so it
        is tail-safe: where both components underflow to ``-inf`` the
        prior ε is returned (the data is uninformative there).
        """
        from scipy.special import expit

        ll_los, ll_nlos = self.component_log_likelihoods(
            observed, candidate_distances
        )
        a = np.log1p(-self.nlos_fraction) + ll_los
        b = np.log(self.nlos_fraction) + ll_nlos
        with np.errstate(invalid="ignore"):
            resp = expit(b - a)
        both_dead = np.isneginf(a) & np.isneginf(b)
        return np.where(both_dead, self.nlos_fraction, resp)

    def with_fraction(self, nlos_fraction: float) -> "LatentNLOSRanging":
        """An updated-ε copy sharing the base model and bias scale."""
        return LatentNLOSRanging(self.base, nlos_fraction, self.bias_mean)
