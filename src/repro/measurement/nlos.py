"""Non-line-of-sight (NLOS) contamination and robust likelihoods.

In real deployments a fraction of range measurements travel a reflected
path and arrive with a large *positive* bias.  Least-squares methods have
no defense; a Bayesian localizer simply swaps in a likelihood that models
the contamination.  This module provides both halves:

* :class:`NLOSRanging` — wraps any ranging model and contaminates a
  fraction of measurements with an exponential positive bias (the
  standard NLOS error model).
* :class:`RobustRanging` — a mixture likelihood
  ``(1 − ε)·p_los(d_obs | d) + ε·p_nlos(d_obs | d)`` where the NLOS
  component is the LOS density convolved with (approximated by a shifted,
  widened Gaussian) the exponential bias.  Using it as the inference model
  makes every Bayesian solver NLOS-robust with zero algorithm changes.
"""

from __future__ import annotations

import numpy as np

from repro.measurement.ranging import RangingModel
from repro.utils.rng import RNGLike, as_generator
from repro.utils.validation import check_positive, check_probability

__all__ = ["NLOSRanging", "RobustRanging"]


class NLOSRanging(RangingModel):
    """Contaminate a base ranging model with NLOS outliers.

    Parameters
    ----------
    base:
        The LOS ranging model (noise and likelihood for clean links).
    nlos_fraction:
        Probability that an (unordered) link is NLOS.
    bias_mean:
        Mean of the exponential positive bias added to NLOS measurements,
        in field units (typically a sizable fraction of the radio range).

    Notes
    -----
    ``log_likelihood`` delegates to the *base* model — i.e. this class
    models a system that is **unaware** of the contamination.  Pair it
    with :class:`RobustRanging` as the inference model to study
    aware-vs-unaware behaviour (benchmark E14).
    """

    def __init__(
        self,
        base: RangingModel,
        nlos_fraction: float = 0.2,
        bias_mean: float = 0.1,
    ) -> None:
        if not isinstance(base, RangingModel):
            raise TypeError("base must be a RangingModel")
        if not base.provides_distance:
            raise ValueError("base model must provide distances")
        self.base = base
        self.nlos_fraction = check_probability(nlos_fraction, "nlos_fraction")
        self.bias_mean = check_positive(bias_mean, "bias_mean")

    def observe(self, true_distances: np.ndarray, rng: RNGLike = None) -> np.ndarray:
        # RNG draw order is pinned for bit-reproducibility of seeded
        # scenarios: (1) the base model's own draws, (2) one full-shape
        # uniform matrix for the NLOS indicators, (3) one full-shape
        # exponential matrix for the biases.  Draws happen before any
        # symmetrization, so the stream consumed is shape-dependent only.
        gen = as_generator(rng)
        obs = self.base.observe(true_distances, gen)
        d = np.asarray(true_distances, dtype=np.float64)
        is_nlos = gen.uniform(size=d.shape) < self.nlos_fraction
        bias = gen.exponential(self.bias_mean, size=d.shape)
        if (
            d.ndim == 2
            and d.shape[0] == d.shape[1]
            and np.all(np.diagonal(d) == 0.0)
        ):
            # A square input with a zero diagonal is a pairwise distance
            # matrix: collapse to one draw per unordered pair.  A square
            # input with nonzero diagonal entries (e.g. a coincidentally
            # square batch of independent links) keeps per-entry draws —
            # previously it was silently symmetrized, corrupting half the
            # entries.
            is_nlos = np.triu(is_nlos, k=1)
            is_nlos = is_nlos | is_nlos.T
            bias = np.triu(bias, k=1)
            bias = bias + bias.T
        return obs + np.where(is_nlos, bias, 0.0)

    def log_likelihood(
        self, observed: np.ndarray, candidate_distances: np.ndarray
    ) -> np.ndarray:
        return self.base.log_likelihood(observed, candidate_distances)

    def sigma_at(self, distances: np.ndarray) -> np.ndarray:
        return self.base.sigma_at(distances)


class RobustRanging(RangingModel):
    """NLOS-aware mixture likelihood over a LOS base model.

    ``p(d_obs | d) = (1 − ε)·p_base(d_obs | d) + ε·p_nlos(d_obs | d)``

    The NLOS component is the exponentially-modified Gaussian (EMG): the
    exact convolution of a ``N(0, σ²)`` LOS error with an ``Exp(μ)``
    positive bias, with σ taken from ``base.sigma_at`` — exact when the
    base is Gaussian, a moment-matched approximation otherwise.

    This model is for *inference only*; :meth:`observe` delegates to the
    base model (generate contaminated data with :class:`NLOSRanging`).
    """

    def __init__(
        self,
        base: RangingModel,
        nlos_fraction: float = 0.2,
        bias_mean: float = 0.1,
    ) -> None:
        if not isinstance(base, RangingModel):
            raise TypeError("base must be a RangingModel")
        if not base.provides_distance:
            raise ValueError("base model must provide distances")
        self.base = base
        self.nlos_fraction = check_probability(nlos_fraction, "nlos_fraction")
        self.bias_mean = check_positive(bias_mean, "bias_mean")

    def observe(self, true_distances: np.ndarray, rng: RNGLike = None) -> np.ndarray:
        return self.base.observe(true_distances, rng)

    def _log_emg(self, err: np.ndarray, sigma: np.ndarray) -> np.ndarray:
        """Log density of ``N(0, σ²) + Exp(μ)`` at *err* (the EMG).

        The textbook form ``-log μ + σ²/(2μ²) - err/μ + log Φ(err/σ - σ/μ)``
        overflows for σ ≫ μ: the ``σ²/(2μ²)`` term exceeds the float range
        long before the density itself does, and the finite pieces cancel
        catastrophically.  Rewritten via ``Φ(z) = erfcx(-z/√2)·e^{-z²/2}/2``:

            ``log f = -log μ - err²/(2σ²) - log 2 + log erfcx((σ/μ - err/σ)/√2)``

        where every term is bounded by the density's own scale.  ``erfcx``
        itself overflows only for arguments below ≈ −26 (the deep right
        tail, where Φ ≈ 1); there the textbook form is safe *if* the
        quadratic term is evaluated as the product ``(σ/μ)·(σ/(2μ) - err/σ)``
        instead of a difference of two huge values.
        """
        from scipy.special import erfcx, log_ndtr

        mu = self.bias_mean
        sigma = np.maximum(sigma, 1e-9)
        err = np.asarray(err, dtype=np.float64)
        ratio = sigma / mu
        scaled = err / sigma
        arg = (ratio - scaled) / np.sqrt(2.0)
        with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
            primary = (
                -np.log(mu)
                - scaled**2 / 2.0
                - np.log(2.0)
                + np.log(erfcx(arg))
            )
            tail = (
                -np.log(mu)
                + ratio * (ratio / 2.0 - scaled)
                + log_ndtr(scaled - ratio)
            )
        return np.where(arg > -25.0, primary, tail)

    def log_likelihood(
        self, observed: np.ndarray, candidate_distances: np.ndarray
    ) -> np.ndarray:
        obs = np.asarray(observed, dtype=np.float64)
        cand = np.asarray(candidate_distances, dtype=np.float64)
        ll_los = self.base.log_likelihood(obs, cand)
        sigma = self.base.sigma_at(cand)
        ll_nlos = self._log_emg(obs - cand, sigma)
        # log-sum of the two mixture terms; np.logaddexp (unlike the
        # max-shift idiom) returns -inf, not NaN, when both components
        # underflow — candidates that far out are legitimately impossible
        # and a sampler's acceptance ratio must see them as such.
        a = np.log1p(-self.nlos_fraction) + ll_los
        b = np.log(self.nlos_fraction) + ll_nlos
        return np.logaddexp(a, b)

    def sigma_at(self, distances: np.ndarray) -> np.ndarray:
        base = self.base.sigma_at(distances)
        # total variance of the mixture (delta method on the Exp bias)
        extra = self.nlos_fraction * (
            self.bias_mean**2 * (2 - self.nlos_fraction)
        )
        return np.sqrt(base**2 + extra)
