"""Non-line-of-sight (NLOS) contamination and robust likelihoods.

In real deployments a fraction of range measurements travel a reflected
path and arrive with a large *positive* bias.  Least-squares methods have
no defense; a Bayesian localizer simply swaps in a likelihood that models
the contamination.  This module provides both halves:

* :class:`NLOSRanging` — wraps any ranging model and contaminates a
  fraction of measurements with an exponential positive bias (the
  standard NLOS error model).
* :class:`RobustRanging` — a mixture likelihood
  ``(1 − ε)·p_los(d_obs | d) + ε·p_nlos(d_obs | d)`` where the NLOS
  component is the LOS density convolved with (approximated by a shifted,
  widened Gaussian) the exponential bias.  Using it as the inference model
  makes every Bayesian solver NLOS-robust with zero algorithm changes.
"""

from __future__ import annotations

import numpy as np

from repro.measurement.ranging import RangingModel
from repro.utils.rng import RNGLike, as_generator
from repro.utils.validation import check_positive, check_probability

__all__ = ["NLOSRanging", "RobustRanging"]


class NLOSRanging(RangingModel):
    """Contaminate a base ranging model with NLOS outliers.

    Parameters
    ----------
    base:
        The LOS ranging model (noise and likelihood for clean links).
    nlos_fraction:
        Probability that an (unordered) link is NLOS.
    bias_mean:
        Mean of the exponential positive bias added to NLOS measurements,
        in field units (typically a sizable fraction of the radio range).

    Notes
    -----
    ``log_likelihood`` delegates to the *base* model — i.e. this class
    models a system that is **unaware** of the contamination.  Pair it
    with :class:`RobustRanging` as the inference model to study
    aware-vs-unaware behaviour (benchmark E14).
    """

    def __init__(
        self,
        base: RangingModel,
        nlos_fraction: float = 0.2,
        bias_mean: float = 0.1,
    ) -> None:
        if not isinstance(base, RangingModel):
            raise TypeError("base must be a RangingModel")
        if not base.provides_distance:
            raise ValueError("base model must provide distances")
        self.base = base
        self.nlos_fraction = check_probability(nlos_fraction, "nlos_fraction")
        self.bias_mean = check_positive(bias_mean, "bias_mean")

    def observe(self, true_distances: np.ndarray, rng: RNGLike = None) -> np.ndarray:
        gen = as_generator(rng)
        obs = self.base.observe(true_distances, gen)
        d = np.asarray(true_distances, dtype=np.float64)
        is_nlos = gen.uniform(size=d.shape) < self.nlos_fraction
        bias = gen.exponential(self.bias_mean, size=d.shape)
        if d.ndim == 2 and d.shape[0] == d.shape[1]:
            # one draw per unordered pair
            is_nlos = np.triu(is_nlos, k=1)
            is_nlos = is_nlos | is_nlos.T
            bias = np.triu(bias, k=1)
            bias = bias + bias.T
        return obs + np.where(is_nlos, bias, 0.0)

    def log_likelihood(
        self, observed: np.ndarray, candidate_distances: np.ndarray
    ) -> np.ndarray:
        return self.base.log_likelihood(observed, candidate_distances)

    def sigma_at(self, distances: np.ndarray) -> np.ndarray:
        return self.base.sigma_at(distances)


class RobustRanging(RangingModel):
    """NLOS-aware mixture likelihood over a LOS base model.

    ``p(d_obs | d) = (1 − ε)·p_base(d_obs | d) + ε·p_nlos(d_obs | d)``

    The NLOS component is the exponentially-modified Gaussian (EMG): the
    exact convolution of a ``N(0, σ²)`` LOS error with an ``Exp(μ)``
    positive bias, with σ taken from ``base.sigma_at`` — exact when the
    base is Gaussian, a moment-matched approximation otherwise.

    This model is for *inference only*; :meth:`observe` delegates to the
    base model (generate contaminated data with :class:`NLOSRanging`).
    """

    def __init__(
        self,
        base: RangingModel,
        nlos_fraction: float = 0.2,
        bias_mean: float = 0.1,
    ) -> None:
        if not isinstance(base, RangingModel):
            raise TypeError("base must be a RangingModel")
        if not base.provides_distance:
            raise ValueError("base model must provide distances")
        self.base = base
        self.nlos_fraction = check_probability(nlos_fraction, "nlos_fraction")
        self.bias_mean = check_positive(bias_mean, "bias_mean")

    def observe(self, true_distances: np.ndarray, rng: RNGLike = None) -> np.ndarray:
        return self.base.observe(true_distances, rng)

    def _log_emg(self, err: np.ndarray, sigma: np.ndarray) -> np.ndarray:
        """Log density of ``N(0, σ²) + Exp(μ)`` at *err* (the EMG)."""
        from scipy.stats import norm

        mu = self.bias_mean
        sigma = np.maximum(sigma, 1e-9)
        return (
            -np.log(mu)
            + (sigma**2) / (2 * mu**2)
            - err / mu
            + norm.logcdf(err / sigma - sigma / mu)
        )

    def log_likelihood(
        self, observed: np.ndarray, candidate_distances: np.ndarray
    ) -> np.ndarray:
        obs = np.asarray(observed, dtype=np.float64)
        cand = np.asarray(candidate_distances, dtype=np.float64)
        ll_los = self.base.log_likelihood(obs, cand)
        sigma = self.base.sigma_at(cand)
        ll_nlos = self._log_emg(obs - cand, sigma)
        # log-sum of the two mixture terms
        a = np.log1p(-self.nlos_fraction) + ll_los
        b = np.log(self.nlos_fraction) + ll_nlos
        hi = np.maximum(a, b)
        return hi + np.log(np.exp(a - hi) + np.exp(b - hi))

    def sigma_at(self, distances: np.ndarray) -> np.ndarray:
        base = self.base.sigma_at(distances)
        # total variance of the mixture (delta method on the Exp bias)
        extra = self.nlos_fraction * (
            self.bias_mean**2 * (2 - self.nlos_fraction)
        )
        return np.sqrt(base**2 + extra)
