"""Ranging (distance-observation) models.

Each model maps a matrix of *true* pairwise distances to *observed* noisy
distances for the connected pairs, and — crucially for Bayesian inference —
exposes the likelihood ``p(observed | true)`` so the localizer's pairwise
potentials match the generative noise exactly (or deliberately mismatch, for
robustness experiments).

Observed matrices are kept symmetric: one noise draw per unordered pair,
mirroring the common protocol of averaging the two directed measurements.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.measurement.rssi import PathLossModel
from repro.utils.rng import RNGLike, as_generator
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "RangingModel",
    "GaussianRanging",
    "ProportionalGaussianRanging",
    "TOARanging",
    "RSSIRanging",
    "ConnectivityOnly",
]


def _symmetric_noise(
    gen: np.random.Generator, shape: tuple[int, ...], scale: float | np.ndarray
) -> np.ndarray:
    """Gaussian noise, symmetric across the diagonal for square inputs."""
    noise = gen.normal(0.0, 1.0, size=shape) * scale
    if len(shape) == 2 and shape[0] == shape[1]:
        noise = np.triu(noise, k=1)
        noise = noise + noise.T
    return noise


class RangingModel(ABC):
    """Base class for pairwise distance observation models."""

    #: whether the model produces a numeric distance (False = binary only)
    provides_distance: bool = True

    @abstractmethod
    def observe(
        self, true_distances: np.ndarray, rng: RNGLike = None
    ) -> np.ndarray:
        """Sample observed distances for every entry of *true_distances*.

        Callers mask out non-links afterwards; sampling the full matrix
        keeps the code vectorized and the per-pair draws symmetric.
        """

    @abstractmethod
    def log_likelihood(
        self, observed: np.ndarray, candidate_distances: np.ndarray
    ) -> np.ndarray:
        """``log p(observed | true = candidate_distances)``, broadcast.

        *observed* is scalar or broadcastable against *candidate_distances*.
        """

    def sigma_at(self, distances: np.ndarray) -> np.ndarray:
        """Effective ranging σ at the given distances (for CRLB/weighting)."""
        raise NotImplementedError


class GaussianRanging(RangingModel):
    """Additive Gaussian noise with constant σ: ``d_obs = d + N(0, σ²)``.

    Observations are clipped at 0 for sampling; the likelihood ignores the
    clipping (negligible mass for σ ≪ d, the regime papers evaluate).
    """

    def __init__(self, sigma: float) -> None:
        self.sigma = check_positive(sigma, "sigma")

    def observe(self, true_distances: np.ndarray, rng: RNGLike = None) -> np.ndarray:
        gen = as_generator(rng)
        d = np.asarray(true_distances, dtype=np.float64)
        obs = d + _symmetric_noise(gen, d.shape, self.sigma)
        return np.maximum(obs, 0.0)

    def log_likelihood(
        self, observed: np.ndarray, candidate_distances: np.ndarray
    ) -> np.ndarray:
        obs = np.asarray(observed, dtype=np.float64)
        cand = np.asarray(candidate_distances, dtype=np.float64)
        z = (obs - cand) / self.sigma
        return -0.5 * z * z - np.log(self.sigma) - 0.5 * np.log(2 * np.pi)

    def sigma_at(self, distances: np.ndarray) -> np.ndarray:
        return np.full_like(
            np.asarray(distances, dtype=np.float64), self.sigma
        )


class ProportionalGaussianRanging(RangingModel):
    """Gaussian noise whose σ grows with distance: ``σ(d) = ratio·d + floor``.

    The standard "noise = x % of range" parameterization used when papers
    sweep ranging error (our reconstructed E3 axis).
    """

    def __init__(self, ratio: float, floor: float = 1e-4) -> None:
        self.ratio = check_nonnegative(ratio, "ratio")
        self.floor = check_positive(floor, "floor")

    def observe(self, true_distances: np.ndarray, rng: RNGLike = None) -> np.ndarray:
        gen = as_generator(rng)
        d = np.asarray(true_distances, dtype=np.float64)
        sigma = self.ratio * d + self.floor
        obs = d + _symmetric_noise(gen, d.shape, sigma)
        return np.maximum(obs, 0.0)

    def log_likelihood(
        self, observed: np.ndarray, candidate_distances: np.ndarray
    ) -> np.ndarray:
        obs = np.asarray(observed, dtype=np.float64)
        cand = np.maximum(np.asarray(candidate_distances, dtype=np.float64), 0.0)
        sigma = self.ratio * cand + self.floor
        z = (obs - cand) / sigma
        return -0.5 * z * z - np.log(sigma) - 0.5 * np.log(2 * np.pi)

    def sigma_at(self, distances: np.ndarray) -> np.ndarray:
        d = np.asarray(distances, dtype=np.float64)
        return self.ratio * d + self.floor


class TOARanging(RangingModel):
    """Time-of-arrival ranging: Gaussian timing jitter plus a positive
    processing-delay bias (exponential), the classic TOA error structure.

    ``d_obs = d + c·(t_jitter + t_delay)``, ``t_jitter ~ N(0, σ_t²)``,
    ``t_delay ~ Exp(λ)``.  The likelihood used for inference is the
    Gaussian-plus-mean-bias approximation (exact convolution is an
    exponentially-modified Gaussian; the approximation keeps potentials
    cheap and is standard practice).
    """

    def __init__(
        self,
        sigma_time: float,
        mean_delay: float = 0.0,
        speed: float = 1.0,
    ) -> None:
        self.sigma_time = check_positive(sigma_time, "sigma_time")
        self.mean_delay = check_nonnegative(mean_delay, "mean_delay")
        self.speed = check_positive(speed, "speed")

    @property
    def sigma_dist(self) -> float:
        return self.sigma_time * self.speed

    @property
    def bias_dist(self) -> float:
        return self.mean_delay * self.speed

    def observe(self, true_distances: np.ndarray, rng: RNGLike = None) -> np.ndarray:
        gen = as_generator(rng)
        d = np.asarray(true_distances, dtype=np.float64)
        jitter = _symmetric_noise(gen, d.shape, self.sigma_dist)
        if self.bias_dist > 0:
            delay = gen.exponential(self.bias_dist, size=d.shape)
            if d.ndim == 2 and d.shape[0] == d.shape[1]:
                delay = np.triu(delay, k=1)
                delay = delay + delay.T
        else:
            delay = 0.0
        return np.maximum(d + jitter + delay, 0.0)

    def log_likelihood(
        self, observed: np.ndarray, candidate_distances: np.ndarray
    ) -> np.ndarray:
        obs = np.asarray(observed, dtype=np.float64)
        cand = np.asarray(candidate_distances, dtype=np.float64)
        # Gaussian approximation: mean shifted by the expected delay, variance
        # inflated by the delay variance (Exp(λ): var = mean²).
        sigma2 = self.sigma_dist**2 + self.bias_dist**2
        sigma = np.sqrt(sigma2)
        z = (obs - cand - self.bias_dist) / sigma
        return -0.5 * z * z - np.log(sigma) - 0.5 * np.log(2 * np.pi)

    def sigma_at(self, distances: np.ndarray) -> np.ndarray:
        sigma = np.sqrt(self.sigma_dist**2 + self.bias_dist**2)
        return np.full_like(np.asarray(distances, dtype=np.float64), sigma)


class RSSIRanging(RangingModel):
    """RSSI-derived ranging: log-normal multiplicative distance error.

    Sampling goes through the physical chain (distance → shadowed RSSI →
    inverted distance); the likelihood is the exact log-normal implied by
    the path-loss model, evaluated in log-distance space.
    """

    def __init__(self, path_loss: PathLossModel | None = None) -> None:
        self.path_loss = path_loss if path_loss is not None else PathLossModel()
        if self.path_loss.shadowing_db <= 0:
            raise ValueError(
                "RSSIRanging needs shadowing_db > 0 (otherwise ranging is exact)"
            )

    @property
    def log_sigma(self) -> float:
        """σ of ``log(d_obs) - log(d)``."""
        return self.path_loss.range_error_factor_sigma()

    def observe(self, true_distances: np.ndarray, rng: RNGLike = None) -> np.ndarray:
        gen = as_generator(rng)
        d = np.maximum(
            np.asarray(true_distances, dtype=np.float64), self.path_loss.d0
        )
        log_noise = _symmetric_noise(gen, d.shape, self.log_sigma)
        return d * np.exp(log_noise)

    def log_likelihood(
        self, observed: np.ndarray, candidate_distances: np.ndarray
    ) -> np.ndarray:
        obs = np.maximum(
            np.asarray(observed, dtype=np.float64), self.path_loss.d0
        )
        cand = np.maximum(
            np.asarray(candidate_distances, dtype=np.float64), self.path_loss.d0
        )
        z = (np.log(obs) - np.log(cand)) / self.log_sigma
        # density of d_obs (log-normal): includes the 1/obs Jacobian, a
        # constant w.r.t. the candidate so harmless but kept for exactness.
        return (
            -0.5 * z * z
            - np.log(self.log_sigma)
            - 0.5 * np.log(2 * np.pi)
            - np.log(obs)
        )

    def sigma_at(self, distances: np.ndarray) -> np.ndarray:
        # First-order delta method: sd(d_obs) ≈ d · σ_log.
        d = np.asarray(distances, dtype=np.float64)
        return d * self.log_sigma


class ConnectivityOnly(RangingModel):
    """Range-free observation: only the link bit is available.

    ``observe`` returns the true distances untouched (callers never use
    them); the likelihood is flat, so all distance information must come
    from connectivity potentials and priors.  This is the model behind
    range-free methods (Centroid, DV-Hop) and the connectivity-only variant
    of the Bayesian localizer.
    """

    provides_distance = False

    def observe(self, true_distances: np.ndarray, rng: RNGLike = None) -> np.ndarray:
        return np.asarray(true_distances, dtype=np.float64).copy()

    def log_likelihood(
        self, observed: np.ndarray, candidate_distances: np.ndarray
    ) -> np.ndarray:
        cand = np.asarray(candidate_distances, dtype=np.float64)
        return np.zeros(np.broadcast_shapes(np.shape(observed), cand.shape))

    def sigma_at(self, distances: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(distances, dtype=np.float64), np.inf)
