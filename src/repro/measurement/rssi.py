"""Log-distance path-loss model and RSSI ⇄ distance conversion.

The standard narrowband model: received signal strength at distance *d*

``RSSI(d) = P_tx - PL(d0) - 10·η·log10(d/d0) + X``,  ``X ~ N(0, σ_dB²)``.

Inverting the mean curve gives a distance estimate whose error is
multiplicative (log-normal) — the realistic error structure RSSI ranging
exhibits, and the reason RSSI-ranged localization degrades with distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RNGLike, as_generator
from repro.utils.validation import check_positive

__all__ = ["PathLossModel", "rssi_from_distance", "distance_from_rssi"]


@dataclass(frozen=True)
class PathLossModel:
    """Parameters of the log-distance path-loss law.

    Attributes
    ----------
    tx_power_dbm:
        Transmit power plus reference path loss, i.e. the expected RSSI at
        the reference distance ``d0``.
    path_loss_exponent:
        η — 2 in free space, up to ~4 indoors.
    shadowing_db:
        Standard deviation of log-normal shadowing (dB).
    d0:
        Reference distance (same length unit as the field).
    """

    tx_power_dbm: float = -40.0
    path_loss_exponent: float = 3.0
    shadowing_db: float = 4.0
    d0: float = 0.01

    def __post_init__(self) -> None:
        check_positive(self.path_loss_exponent, "path_loss_exponent")
        check_positive(self.d0, "d0")
        if self.shadowing_db < 0:
            raise ValueError("shadowing_db must be non-negative")

    def mean_rssi(self, distances: np.ndarray) -> np.ndarray:
        """Expected RSSI (dBm) at the given distances."""
        d = np.maximum(np.asarray(distances, dtype=np.float64), self.d0)
        return self.tx_power_dbm - 10.0 * self.path_loss_exponent * np.log10(
            d / self.d0
        )

    def invert(self, rssi_dbm: np.ndarray) -> np.ndarray:
        """Maximum-likelihood distance given an RSSI sample (mean inversion).

        Clamped at ``d0``: the mean curve is flat below the reference
        distance (:meth:`mean_rssi` floors there), so readings above
        ``tx_power_dbm`` — which would naively invert to ``d < d0`` — map
        to ``d0``, keeping ``rssi → distance → rssi`` a fixed point on
        short links.
        """
        r = np.asarray(rssi_dbm, dtype=np.float64)
        d = self.d0 * 10.0 ** (
            (self.tx_power_dbm - r) / (10.0 * self.path_loss_exponent)
        )
        return np.maximum(d, self.d0)

    def range_error_factor_sigma(self) -> float:
        """σ of ``log(d_hat/d)`` implied by the shadowing (multiplicative error)."""
        return (
            self.shadowing_db
            * np.log(10.0)
            / (10.0 * self.path_loss_exponent)
        )


def rssi_from_distance(
    distances: np.ndarray,
    model: PathLossModel,
    rng: RNGLike = None,
) -> np.ndarray:
    """Sample shadowed RSSI readings at the given true distances."""
    gen = as_generator(rng)
    mean = model.mean_rssi(distances)
    if model.shadowing_db == 0.0:
        return mean
    return mean + gen.normal(0.0, model.shadowing_db, size=mean.shape)


def distance_from_rssi(rssi_dbm: np.ndarray, model: PathLossModel) -> np.ndarray:
    """Distance estimates from RSSI readings (mean-curve inversion)."""
    return model.invert(rssi_dbm)
