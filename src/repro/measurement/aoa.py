"""Angle-of-arrival (AoA) bearing measurements.

With an antenna array (and a compass for absolute orientation), a node can
measure the *bearing* of an incoming signal.  Bearings are complementary
to ranges: a single anchor bearing constrains the node to a ray instead of
an annulus, and two anchor bearings triangulate outright.

The noise model is the standard von Mises distribution on angles:

``p(θ_obs | θ) = exp(κ·cos(θ_obs − θ)) / (2π·I₀(κ))``

parameterizable either by the concentration κ or by an approximate
standard deviation in radians (``κ ≈ 1/σ²`` for small σ).
"""

from __future__ import annotations

import numpy as np
from scipy.special import i0e

from repro.utils.rng import RNGLike, as_generator
from repro.utils.validation import check_positive

__all__ = ["BearingModel", "wrap_angle", "true_bearings"]


def wrap_angle(theta: np.ndarray) -> np.ndarray:
    """Wrap angles into ``(-π, π]``."""
    t = np.asarray(theta, dtype=np.float64)
    return np.arctan2(np.sin(t), np.cos(t))


def true_bearings(positions: np.ndarray) -> np.ndarray:
    """``(n, n)`` matrix of bearings from node i to node j (radians)."""
    pts = np.asarray(positions, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError("positions must have shape (n, 2)")
    dx = pts[None, :, 0] - pts[:, None, 0]
    dy = pts[None, :, 1] - pts[:, None, 1]
    return np.arctan2(dy, dx)


class BearingModel:
    """Von Mises bearing noise.

    Parameters
    ----------
    sigma_rad:
        Approximate angular standard deviation (radians); converted to a
        von Mises concentration ``κ = 1/σ²``.  Typical array hardware:
        0.05–0.3 rad.
    """

    def __init__(self, sigma_rad: float) -> None:
        self.sigma_rad = check_positive(sigma_rad, "sigma_rad")
        self.kappa = 1.0 / self.sigma_rad**2

    def observe(self, bearings: np.ndarray, rng: RNGLike = None) -> np.ndarray:
        """Sample noisy bearings (independent per *directed* pair —
        each endpoint measures with its own hardware)."""
        gen = as_generator(rng)
        b = np.asarray(bearings, dtype=np.float64)
        noise = gen.vonmises(0.0, self.kappa, size=b.shape)
        return wrap_angle(b + noise)

    def log_likelihood(
        self, observed: float | np.ndarray, candidate_bearings: np.ndarray
    ) -> np.ndarray:
        """``log p(observed | true = candidate)`` for wrapped angles."""
        delta = np.asarray(observed, dtype=np.float64) - np.asarray(
            candidate_bearings, dtype=np.float64
        )
        # log I0(κ) computed stably via the exponentially-scaled i0e
        log_i0 = np.log(i0e(self.kappa)) + self.kappa
        return self.kappa * np.cos(delta) - np.log(2 * np.pi) - log_i0
