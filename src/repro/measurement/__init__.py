"""Measurement substrate: how nodes observe each other.

Ranging models turn true pairwise distances into noisy observed distances
(RSSI path-loss inversion, time-of-arrival, plain Gaussian), and
:class:`~repro.measurement.measurements.MeasurementSet` packages everything
a localizer is allowed to see: the adjacency, the observed ranges on links,
anchor identities/positions, and the noise model parameters.
"""

from repro.measurement.ranging import (
    RangingModel,
    GaussianRanging,
    ProportionalGaussianRanging,
    TOARanging,
    RSSIRanging,
    ConnectivityOnly,
)
from repro.measurement.nlos import NLOSRanging, RobustRanging
from repro.measurement.channel import ChannelRSSIRanging, LatentNLOSRanging
from repro.measurement.aoa import BearingModel, true_bearings, wrap_angle
from repro.measurement.rssi import (
    PathLossModel,
    rssi_from_distance,
    distance_from_rssi,
)
from repro.measurement.measurements import MeasurementSet, observe

__all__ = [
    "RangingModel",
    "GaussianRanging",
    "ProportionalGaussianRanging",
    "TOARanging",
    "RSSIRanging",
    "ConnectivityOnly",
    "NLOSRanging",
    "RobustRanging",
    "ChannelRSSIRanging",
    "LatentNLOSRanging",
    "BearingModel",
    "true_bearings",
    "wrap_angle",
    "PathLossModel",
    "rssi_from_distance",
    "distance_from_rssi",
    "MeasurementSet",
    "observe",
]
