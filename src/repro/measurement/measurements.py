"""The :class:`MeasurementSet`: everything a localizer is allowed to see.

Ground-truth positions live in :class:`~repro.network.topology.WSNetwork`
(for evaluation); a ``MeasurementSet`` is the *observable* slice — anchors,
adjacency, observed link distances, and the noise model — so localizer APIs
cannot accidentally peek at the truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.measurement.ranging import ConnectivityOnly, RangingModel
from repro.network.topology import WSNetwork
from repro.utils.geometry import pairwise_distances
from repro.utils.rng import RNGLike

__all__ = ["MeasurementSet", "observe"]


@dataclass
class MeasurementSet:
    """Observable data for one localization problem.

    Attributes
    ----------
    n_nodes:
        Total node count.
    anchor_mask:
        Which nodes are anchors.
    anchor_positions_full:
        ``(n, 2)`` array with anchor rows filled and NaN elsewhere.
    adjacency:
        Symmetric boolean link matrix.
    observed_distances:
        Symmetric matrix of observed link distances (NaN on non-links and
        for range-free models).
    ranging:
        The ranging model (gives the likelihood used by Bayesian methods).
    observed_bearings:
        Optional ``(n, n)`` matrix of angle-of-arrival measurements:
        entry ``[i, j]`` is the bearing node *i* measured toward node *j*
        (radians, NaN off links).  Directed — the two endpoints measure
        independently.
    bearing_model:
        The :class:`~repro.measurement.aoa.BearingModel` behind
        ``observed_bearings`` (None when AoA hardware is absent).
    radio_range, width, height:
        Scenario constants the algorithms may legitimately know.
    """

    anchor_mask: np.ndarray
    anchor_positions_full: np.ndarray
    adjacency: np.ndarray
    observed_distances: np.ndarray
    ranging: RangingModel
    radio_range: float
    width: float = 1.0
    height: float = 1.0
    observed_bearings: np.ndarray | None = None
    bearing_model: object | None = None

    def __post_init__(self) -> None:
        self.anchor_mask = np.asarray(self.anchor_mask, dtype=bool)
        n = len(self.anchor_mask)
        self.anchor_positions_full = np.asarray(
            self.anchor_positions_full, dtype=np.float64
        )
        if self.anchor_positions_full.shape != (n, 2):
            raise ValueError("anchor_positions_full must have shape (n, 2)")
        if np.isnan(self.anchor_positions_full[self.anchor_mask]).any():
            raise ValueError("anchor rows must be finite")
        self.adjacency = np.asarray(self.adjacency, dtype=bool)
        if self.adjacency.shape != (n, n):
            raise ValueError("adjacency shape mismatch")
        self.observed_distances = np.asarray(
            self.observed_distances, dtype=np.float64
        )
        if self.observed_distances.shape != (n, n):
            raise ValueError("observed_distances shape mismatch")
        if self.radio_range <= 0:
            raise ValueError("radio_range must be positive")
        if (self.observed_bearings is None) != (self.bearing_model is None):
            raise ValueError(
                "observed_bearings and bearing_model must be set together"
            )
        if self.observed_bearings is not None:
            self.observed_bearings = np.asarray(
                self.observed_bearings, dtype=np.float64
            )
            if self.observed_bearings.shape != (n, n):
                raise ValueError("observed_bearings shape mismatch")

    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        return len(self.anchor_mask)

    @property
    def anchor_ids(self) -> np.ndarray:
        return np.flatnonzero(self.anchor_mask)

    @property
    def unknown_ids(self) -> np.ndarray:
        return np.flatnonzero(~self.anchor_mask)

    @property
    def anchor_positions(self) -> np.ndarray:
        return self.anchor_positions_full[self.anchor_mask]

    @property
    def has_ranging(self) -> bool:
        return self.ranging.provides_distance

    @property
    def has_bearings(self) -> bool:
        return self.observed_bearings is not None

    def neighbors(self, i: int) -> np.ndarray:
        return np.flatnonzero(self.adjacency[i])

    def link_distance(self, i: int, j: int) -> float:
        """Observed distance on link ``(i, j)``; NaN for range-free models."""
        if not self.adjacency[i, j]:
            raise ValueError(f"nodes {i} and {j} are not connected")
        return float(self.observed_distances[i, j])

    def edges(self) -> np.ndarray:
        """``(m, 2)`` unordered connected pairs (i < j)."""
        iu, ju = np.nonzero(np.triu(self.adjacency, k=1))
        return np.column_stack([iu, ju])


def observe(
    network: WSNetwork,
    ranging: RangingModel | None = None,
    rng: RNGLike = None,
    bearings: "object | None" = None,
) -> MeasurementSet:
    """Generate the observable :class:`MeasurementSet` for *network*.

    Parameters
    ----------
    network:
        The ground-truth network snapshot.
    ranging:
        Ranging model; defaults to :class:`ConnectivityOnly` (range-free).
    rng:
        Randomness for the measurement noise (one stream drives ranging
        then bearings, so results are reproducible).
    bearings:
        Optional :class:`~repro.measurement.aoa.BearingModel`; when given,
        every directed link also carries an angle-of-arrival measurement.
    """
    from repro.utils.rng import as_generator

    gen = as_generator(rng)
    if ranging is None:
        ranging = ConnectivityOnly()
    true_dist = pairwise_distances(network.positions)
    if ranging.provides_distance:
        observed = ranging.observe(true_dist, gen)
        observed = np.where(network.adjacency, observed, np.nan)
    else:
        observed = np.full_like(true_dist, np.nan)
    observed_bearings = None
    if bearings is not None:
        from repro.measurement.aoa import true_bearings

        tb = true_bearings(network.positions)
        ob = bearings.observe(tb, gen)
        observed_bearings = np.where(network.adjacency, ob, np.nan)
    anchor_full = np.full((network.n_nodes, 2), np.nan)
    anchor_full[network.anchor_mask] = network.positions[network.anchor_mask]
    return MeasurementSet(
        anchor_mask=network.anchor_mask.copy(),
        anchor_positions_full=anchor_full,
        adjacency=network.adjacency.copy(),
        observed_distances=observed,
        ranging=ranging,
        radio_range=network.radio_range,
        width=network.width,
        height=network.height,
        observed_bearings=observed_bearings,
        bearing_model=bearings,
    )
