"""Declarative scenario configuration.

A :class:`ScenarioConfig` pins down everything random about one operating
point; :func:`build_scenario` turns it plus a seed into a concrete
``(network, measurements, pre_knowledge)`` triple.  Sweeps vary one field
via :meth:`ScenarioConfig.replace`.

Pre-knowledge model
-------------------
The operator's pre-knowledge is modeled as a noisy record of where each
node was meant to be placed: ``intended_i = true_i + N(0, pk_error²)``,
used as a per-node Gaussian prior with std ``pk_sigma``.  With
``pk_sigma = pk_error`` the prior is calibrated; experiment E8 decouples
them (and adds a systematic ``pk_offset``) to study mis-specified
pre-knowledge.  ``pk_error = None`` disables pre-knowledge entirely.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, replace as dc_replace

import numpy as np

from repro.measurement.channel import ChannelRSSIRanging
from repro.measurement.measurements import MeasurementSet, observe
from repro.measurement.nlos import NLOSRanging, RobustRanging
from repro.measurement.ranging import (
    ConnectivityOnly,
    GaussianRanging,
    ProportionalGaussianRanging,
    RangingModel,
    RSSIRanging,
    TOARanging,
)
from repro.measurement.rssi import PathLossModel
from repro.network.deployment import (
    CShapeDeployment,
    DeploymentModel,
    GaussianClusterDeployment,
    GridDeployment,
    UniformDeployment,
)
from repro.network.generator import NetworkConfig, generate_network
from repro.network.radio import (
    LogNormalShadowingRadio,
    QuasiUnitDiskRadio,
    RadioModel,
    UnitDiskRadio,
)
from repro.network.topology import WSNetwork
from repro.priors.base import PositionPrior
from repro.priors.deployment import PerNodePrior
from repro.utils.rng import RNGLike, spawn_generators

__all__ = [
    "ChannelConfig",
    "ScenarioConfig",
    "build_scenario",
    "make_pre_knowledge",
]

_DEPLOYMENTS = ("uniform", "grid", "cshape", "clusters")
_RADIOS = ("disk", "qudg", "lognormal")
_RANGINGS = ("gaussian", "proportional", "rssi", "toa", "none")


@dataclass(frozen=True)
class ChannelConfig:
    """RSSI channel-parameter knobs for ``ranging="rssi"`` scenarios.

    Separates the three roles a path-loss exponent plays (benchmark E20,
    the ``bn-pk-joint`` method):

    * ``path_loss_exponent`` — the deployment's **true** generative η;
    * ``assumed_exponent`` — η̂₀, the exponent the receiver *hardware*
      uses to invert RSSI into distance.  ``None`` means calibrated
      (η̂₀ = η); setting it miscalibrates the measurement pipeline, and
      the reported distances become a power-law distortion of the truth;
    * ``eta_support`` / ``em_iterations`` — the discrete hypothesis grid
      and outer-EM budget that joint inference
      (:class:`~repro.core.jointchannel.JointChannelLocalizer`) uses to
      *recover* η from the data.

    Attributes
    ----------
    path_loss_exponent:
        True generative η (2 free space … ~4 indoors).
    assumed_exponent:
        Receiver inversion exponent η̂₀; ``None`` = matched to the truth.
    shadowing_db:
        Log-normal shadowing std (dB).
    eta_support:
        Hypothesis support for joint estimation (``bn-pk-joint``).
    em_iterations:
        Outer EM rounds for joint estimation.
    """

    path_loss_exponent: float = 3.0
    assumed_exponent: float | None = None
    shadowing_db: float = 4.0
    eta_support: tuple[float, ...] = (2.0, 2.5, 3.0, 3.5, 4.0)
    em_iterations: int = 2

    def __post_init__(self) -> None:
        if self.path_loss_exponent <= 0:
            raise ValueError("path_loss_exponent must be positive")
        if self.assumed_exponent is not None and self.assumed_exponent <= 0:
            raise ValueError("assumed_exponent must be positive (or None)")
        if self.shadowing_db <= 0:
            raise ValueError("shadowing_db must be positive")
        support = tuple(float(e) for e in self.eta_support)
        if not support or any(e <= 0 for e in support):
            raise ValueError("eta_support must be non-empty and positive")
        object.__setattr__(self, "eta_support", support)
        if self.em_iterations < 1:
            raise ValueError("em_iterations must be >= 1")

    @property
    def inversion_exponent(self) -> float:
        """η̂₀ actually used by the receiver (resolves ``None``)."""
        return (
            self.assumed_exponent
            if self.assumed_exponent is not None
            else self.path_loss_exponent
        )

    def make_path_loss(self) -> PathLossModel:
        return PathLossModel(
            path_loss_exponent=self.path_loss_exponent,
            shadowing_db=self.shadowing_db,
        )

    def make_ranging(self) -> ChannelRSSIRanging:
        """The scenario's RSSI model: generates with the true η, inverts
        with η̂₀ — and, used as the inference model, *knows* the true η
        (the matched/oracle arm)."""
        return ChannelRSSIRanging(
            self.make_path_loss(),
            inversion_exponent=self.inversion_exponent,
        )

    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        d["eta_support"] = list(d["eta_support"])
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ChannelConfig":
        d = dict(d)
        d["eta_support"] = tuple(d.get("eta_support", cls.eta_support))
        return cls(**d)


@dataclass(frozen=True)
class ScenarioConfig:
    """One localization operating point.

    Attributes
    ----------
    n_nodes, anchor_ratio, radio_range:
        Network scale knobs (anchors are placed uniformly at random).
    deployment:
        ``uniform`` | ``grid`` | ``cshape`` | ``clusters``.
    radio:
        ``disk`` | ``qudg`` | ``lognormal``.
    ranging:
        ``gaussian`` (constant σ = ``noise_ratio·radio_range``),
        ``proportional`` (σ = ``noise_ratio·d``), ``rssi``, ``toa``, or
        ``none`` (range-free).
    noise_ratio:
        Ranging noise scale relative to range/distance (see above).
    nlos_fraction, nlos_bias_ratio:
        If ``nlos_fraction > 0``, that fraction of links is contaminated
        with an exponential positive bias of mean
        ``nlos_bias_ratio · radio_range`` (the E14 robustness axis).
    bearing_sigma:
        If set, every directed link also carries an angle-of-arrival
        measurement with this von Mises σ (radians) — the E15 fusion
        axis.  ``None`` = no AoA hardware.
    pk_error:
        Std of the operator's deployment-record error (None = no
        pre-knowledge available).
    pk_sigma:
        Prior std the inference *assumes*; defaults to ``pk_error``.
    pk_offset:
        Systematic bias added to the pre-knowledge record (E8).
    channel:
        Optional :class:`ChannelConfig` for ``ranging="rssi"``: true vs
        receiver-assumed path-loss exponent, shadowing, and the joint-
        estimation (``bn-pk-joint``) hypothesis support — the E20 axis.
        ``None`` keeps the legacy calibrated η = 3 RSSI model.
    """

    n_nodes: int = 100
    anchor_ratio: float = 0.1
    radio_range: float = 0.2
    deployment: str = "uniform"
    radio: str = "disk"
    ranging: str = "gaussian"
    noise_ratio: float = 0.1
    nlos_fraction: float = 0.0
    nlos_bias_ratio: float = 0.5
    bearing_sigma: float | None = None
    pk_error: float | None = 0.1
    pk_sigma: float | None = None
    pk_offset: tuple[float, float] = (0.0, 0.0)
    require_connected: bool = True
    channel: ChannelConfig | None = None

    def __post_init__(self) -> None:
        if self.deployment not in _DEPLOYMENTS:
            raise ValueError(f"unknown deployment {self.deployment!r}")
        if self.radio not in _RADIOS:
            raise ValueError(f"unknown radio {self.radio!r}")
        if self.ranging not in _RANGINGS:
            raise ValueError(f"unknown ranging {self.ranging!r}")
        if self.noise_ratio < 0:
            raise ValueError("noise_ratio must be non-negative")
        if not (0.0 <= self.nlos_fraction <= 1.0):
            raise ValueError("nlos_fraction must lie in [0, 1]")
        if self.nlos_fraction > 0 and self.ranging == "none":
            raise ValueError("NLOS contamination needs a ranged model")
        if self.nlos_bias_ratio <= 0:
            raise ValueError("nlos_bias_ratio must be positive")
        if self.bearing_sigma is not None and self.bearing_sigma <= 0:
            raise ValueError("bearing_sigma must be positive (or None)")
        if self.pk_error is not None and self.pk_error <= 0:
            raise ValueError("pk_error must be positive (or None)")
        if self.channel is not None and self.ranging != "rssi":
            raise ValueError("channel config needs ranging='rssi'")

    def replace(self, **changes) -> "ScenarioConfig":
        """A copy with the given fields changed (sweep helper)."""
        return dc_replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-safe export (audit manifests, checkpoint ledger headers)."""
        d = dataclasses.asdict(self)
        d["pk_offset"] = list(d["pk_offset"])
        if self.channel is not None:
            d["channel"] = self.channel.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ScenarioConfig":
        """Inverse of :meth:`to_dict` (tolerates pre-channel dicts)."""
        d = dict(d)
        d["pk_offset"] = tuple(d.get("pk_offset", (0.0, 0.0)))
        channel = d.get("channel")
        if channel is not None and not isinstance(channel, ChannelConfig):
            d["channel"] = ChannelConfig.from_dict(channel)
        return cls(**d)

    # ------------------------------------------------------------------ #
    def make_deployment(self) -> DeploymentModel:
        if self.deployment == "uniform":
            return UniformDeployment()
        if self.deployment == "grid":
            return GridDeployment(jitter=0.04)
        if self.deployment == "cshape":
            return CShapeDeployment()
        centers = np.array([[0.25, 0.25], [0.75, 0.25], [0.5, 0.75]])
        return GaussianClusterDeployment(centers, sigma=0.15)

    def make_radio(self) -> RadioModel:
        if self.radio == "disk":
            return UnitDiskRadio(self.radio_range)
        if self.radio == "qudg":
            return QuasiUnitDiskRadio(self.radio_range, alpha=0.75)
        return LogNormalShadowingRadio(self.radio_range, shadowing_db=4.0)

    def make_ranging(self) -> RangingModel:
        base = self._make_base_ranging()
        if self.nlos_fraction > 0:
            return NLOSRanging(
                base,
                nlos_fraction=self.nlos_fraction,
                bias_mean=self.nlos_bias_ratio * self.radio_range,
            )
        return base

    def _make_base_ranging(self) -> RangingModel:
        if self.ranging == "none":
            return ConnectivityOnly()
        if self.ranging == "gaussian":
            return GaussianRanging(max(self.noise_ratio * self.radio_range, 1e-4))
        if self.ranging == "proportional":
            return ProportionalGaussianRanging(self.noise_ratio)
        if self.ranging == "rssi":
            if self.channel is not None:
                return self.channel.make_ranging()
            return RSSIRanging(PathLossModel(shadowing_db=4.0))
        return TOARanging(
            sigma_time=max(self.noise_ratio * self.radio_range, 1e-4),
            mean_delay=0.2 * self.noise_ratio * self.radio_range,
        )

    def make_robust_ranging(self) -> RangingModel:
        """The NLOS-aware inference model matching :meth:`make_ranging`."""
        if self.nlos_fraction <= 0:
            return self._make_base_ranging()
        return RobustRanging(
            self._make_base_ranging(),
            nlos_fraction=self.nlos_fraction,
            bias_mean=self.nlos_bias_ratio * self.radio_range,
        )


def make_pre_knowledge(
    config: ScenarioConfig, network: WSNetwork, rng: RNGLike
) -> PositionPrior | None:
    """The operator's noisy deployment record as a per-node prior."""
    if config.pk_error is None:
        return None
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    intended = network.positions + gen.normal(
        0.0, config.pk_error, size=network.positions.shape
    )
    sigma = config.pk_sigma if config.pk_sigma is not None else config.pk_error
    return PerNodePrior(intended, sigma=sigma, offset=config.pk_offset)


def build_scenario(
    config: ScenarioConfig, seed: RNGLike
) -> tuple[WSNetwork, MeasurementSet, PositionPrior | None]:
    """Instantiate ``(network, measurements, pre_knowledge)`` for one trial.

    Three independent child streams drive topology, measurement noise, and
    the pre-knowledge record, so e.g. sweeping the noise never reshuffles
    the topology.
    """
    g_net, g_obs, g_pk = spawn_generators(seed, 3)
    net_cfg = NetworkConfig(
        n_nodes=config.n_nodes,
        anchor_ratio=config.anchor_ratio,
        deployment=config.make_deployment(),
        radio=config.make_radio(),
        require_connected=config.require_connected,
    )
    network = generate_network(net_cfg, g_net)
    bearings = None
    if config.bearing_sigma is not None:
        from repro.measurement.aoa import BearingModel

        bearings = BearingModel(config.bearing_sigma)
    measurements = observe(network, config.make_ranging(), g_obs, bearings=bearings)
    prior = make_pre_knowledge(config, network, g_pk)
    return network, measurements, prior
