"""Rendering sweep results as paper-style tables."""

from __future__ import annotations

from typing import Mapping

from repro.experiments.runner import MethodResult, SweepResult
from repro.utils.tables import format_series, format_table

__all__ = ["sweep_table", "methods_table"]


def sweep_table(
    sweep: SweepResult,
    stat: str = "mean_error_norm",
    title: str | None = None,
    precision: int = 3,
) -> str:
    """One row per swept value, one column per method (a figure's data)."""
    return format_series(
        sweep.x_name,
        sweep.x_values,
        sweep.series(stat),
        precision=precision,
        title=title,
    )


def methods_table(
    results: Mapping[str, MethodResult],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """One row per method with the headline statistics (a table's data)."""
    headers = [
        "method",
        "mean/r",
        "rmse/r",
        "coverage",
        "messages",
        "runtime_s",
    ]
    rows = [
        [
            name,
            r.mean_error_norm,
            r.rmse_norm,
            r.coverage,
            int(r.mean_messages),
            r.mean_runtime,
        ]
        for name, r in results.items()
    ]
    return format_table(headers, rows, precision=precision, title=title)
