"""Monte-Carlo evaluation of localization methods over scenarios.

The runner is deliberately simple and deterministic: one master seed per
sweep, child seeds per (parameter, trial) cell via ``SeedSequence.spawn``,
every method sees the *same* network and measurements within a trial.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.ckpt import (
    decode_value,
    encode_value,
    resolve_checkpoint,
    seed_fingerprint,
    trap_signals,
)

from repro.baselines import (
    CentroidLocalizer,
    DVHopLocalizer,
    MDSMAPLocalizer,
    MLELocalizer,
    MultilaterationLocalizer,
    WeightedCentroidLocalizer,
)
from repro.core.bnloc import GridBPConfig, GridBPLocalizer
from repro.core.nbp import NBPConfig, NBPLocalizer
from repro.core.result import Localizer
from repro.experiments.config import ScenarioConfig, build_scenario
from repro.metrics.error import ErrorSummary, summarize_errors
from repro.obs import NULL_TRACER, NullTracer
from repro.priors.base import PositionPrior
from repro.utils.rng import RNGLike, spawn_seeds

__all__ = [
    "MethodResult",
    "SweepResult",
    "standard_methods",
    "evaluate_methods",
    "evaluate_methods_parallel",
    "run_sweep",
]

#: a factory receives the trial's pre-knowledge prior (or None) and builds
#: a ready-to-run Localizer.
MethodFactory = Callable[[PositionPrior | None], Localizer]


def standard_methods(
    grid_size: int = 20,
    max_iterations: int = 15,
    nbp_particles: int = 150,
    include: Sequence[str] | None = None,
    backend: str = "reference",
    mcmc_samples: int = 150,
    joint_channel=None,
) -> dict[str, MethodFactory]:
    """The default method lineup used by the benchmarks.

    ``bn-pk`` is the paper's method (grid Bayesian network *with* the
    pre-knowledge prior); ``bn`` is the identical inference without it —
    the ablation that isolates the contribution of pre-knowledge.
    ``mcmc-pk``/``mcmc`` are the continuous-posterior sampler
    (:class:`~repro.core.mcmc.MCMCLocalizer`) with and without the prior.
    ``bn-pk-joint`` is grid BP with latent channel parameters
    (:class:`~repro.core.jointchannel.JointChannelLocalizer`): path-loss
    exponent and per-link LOS/NLOS indicators estimated jointly with the
    positions — applicable to RSSI-ranged scenarios only (elsewhere it
    raises, which the runner records as coverage 0).  *joint_channel*
    overrides its :class:`~repro.core.jointchannel.JointChannelConfig`
    (default: the standard η support on this grid size, batched backend).
    *backend* selects the grid-BP kernel backend
    (:mod:`repro.kernels`); all backends are bit-identical, so it is a
    performance knob, not a method variant.
    """
    from repro.core.jointchannel import JointChannelConfig, JointChannelLocalizer
    from repro.core.mcmc import MCMCConfig, MCMCLocalizer

    grid_cfg = GridBPConfig(
        grid_size=grid_size, max_iterations=max_iterations, backend=backend
    )
    nbp_cfg = NBPConfig(n_particles=nbp_particles, n_iterations=5)
    mcmc_cfg = MCMCConfig(
        n_samples=mcmc_samples,
        burn_in=max(mcmc_samples // 2, 10),
        step_scale=0.25,
    )
    joint_cfg = (
        joint_channel
        if joint_channel is not None
        else JointChannelConfig(
            grid=GridBPConfig(
                grid_size=grid_size,
                max_iterations=max_iterations,
                backend="batched",
            )
        )
    )
    all_methods: dict[str, MethodFactory] = {
        "bn-pk": lambda prior: GridBPLocalizer(prior=prior, config=grid_cfg),
        "bn": lambda prior: GridBPLocalizer(prior=None, config=grid_cfg),
        "bn-pk-joint": lambda prior: JointChannelLocalizer(
            prior=prior, config=joint_cfg
        ),
        "nbp-pk": lambda prior: NBPLocalizer(prior=prior, config=nbp_cfg),
        "nbp": lambda prior: NBPLocalizer(prior=None, config=nbp_cfg),
        "mcmc-pk": lambda prior: MCMCLocalizer(prior=prior, config=mcmc_cfg),
        "mcmc": lambda prior: MCMCLocalizer(prior=None, config=mcmc_cfg),
        "centroid": lambda prior: CentroidLocalizer(),
        "w-centroid": lambda prior: WeightedCentroidLocalizer(),
        "dv-hop": lambda prior: DVHopLocalizer(),
        "mds-map": lambda prior: MDSMAPLocalizer(),
        "multilat": lambda prior: MultilaterationLocalizer(),
        "mle": lambda prior: MLELocalizer(),
    }
    if include is None:
        return all_methods
    unknown = set(include) - set(all_methods)
    if unknown:
        raise ValueError(f"unknown methods {sorted(unknown)}")
    return {k: all_methods[k] for k in include}


@dataclass
class MethodResult:
    """Aggregate of one method over the trials of one scenario point."""

    method: str
    summaries: list[ErrorSummary] = field(default_factory=list)
    messages: list[int] = field(default_factory=list)
    runtimes: list[float] = field(default_factory=list)

    @property
    def mean_error(self) -> float:
        return float(np.nanmean([s.mean for s in self.summaries]))

    @property
    def mean_error_norm(self) -> float:
        return float(np.nanmean([s.mean_norm for s in self.summaries]))

    @property
    def rmse_norm(self) -> float:
        return float(np.nanmean([s.rmse_norm for s in self.summaries]))

    @property
    def coverage(self) -> float:
        return float(np.nanmean([s.coverage for s in self.summaries]))

    @property
    def mean_messages(self) -> float:
        return float(np.mean(self.messages)) if self.messages else 0.0

    @property
    def mean_runtime(self) -> float:
        return float(np.mean(self.runtimes)) if self.runtimes else 0.0


def _run_one_trial(
    config: ScenarioConfig,
    methods: Mapping[str, MethodFactory],
    trial_seed,
    tracer: NullTracer = NULL_TRACER,
) -> dict[str, tuple[ErrorSummary, int, float]]:
    """Evaluate every method on one scenario draw (shared by the serial
    and multiprocess paths)."""
    s_build, s_run = trial_seed.spawn(2)
    with tracer.timer("build_scenario"):
        network, measurements, prior = build_scenario(config, s_build)
    unknown = ~network.anchor_mask
    out: dict[str, tuple[ErrorSummary, int, float]] = {}
    for name, factory in methods.items():
        loc = factory(prior)
        t0 = time.perf_counter()
        try:
            with tracer.timer(name):
                result = loc.localize(measurements, np.random.default_rng(s_run))
        except ValueError:
            # Method inapplicable to this observation type (e.g. MLE on
            # range-free data): record nothing, visible as coverage 0.
            out[name] = (
                summarize_errors(
                    np.full(network.n_nodes, np.nan),
                    network.radio_range,
                    unknown,
                ),
                0,
                0.0,
            )
            continue
        elapsed = time.perf_counter() - t0
        errors = result.errors(network.positions)
        if tracer.enabled:
            tracer.count(f"trials[{name}]")
            tracer.count(f"messages[{name}]", result.messages_sent)
        out[name] = (
            summarize_errors(errors, network.radio_range, unknown),
            result.messages_sent,
            elapsed,
        )
    return out


def _run_trial_block(
    config: ScenarioConfig,
    methods: Mapping[str, MethodFactory],
    trial_seeds,
    tracer: NullTracer = NULL_TRACER,
) -> list[dict[str, tuple[ErrorSummary, int, float]]]:
    """Evaluate every method on a block of scenario draws, batching the
    grid-BP methods across the block.

    Seed discipline is exactly :func:`_run_one_trial`'s (one ``spawn(2)``
    per trial), so results are bit-identical to running the trials one by
    one — the batch only changes the execution strategy: compatible
    grid-BP trials run as stacked kernel passes via
    :func:`repro.core.bnloc.localize_batch`; other methods (and any trial
    a batch cannot serve) run per-trial.  Per-trial ``runtimes`` of a
    batched method are the block wall-clock divided evenly across its
    trials (total time stays meaningful, per-trial spread does not
    survive batching).
    """
    from repro.core.bnloc import localize_batch

    scenarios = []
    for ts in trial_seeds:
        s_build, s_run = ts.spawn(2)
        with tracer.timer("build_scenario"):
            network, measurements, prior = build_scenario(config, s_build)
        scenarios.append((network, measurements, prior, s_run))
    out: list[dict[str, tuple[ErrorSummary, int, float]]] = [
        {} for _ in scenarios
    ]
    for name, factory in methods.items():
        locs = [factory(prior) for (_n, _m, prior, _s) in scenarios]
        results = None
        elapsed = 0.0
        if len(locs) > 1 and all(isinstance(l, GridBPLocalizer) for l in locs):
            t0 = time.perf_counter()
            try:
                with tracer.timer(name):
                    results = localize_batch(
                        [
                            (loc, ms)
                            for loc, (_n, ms, _p, _s) in zip(locs, scenarios)
                        ]
                    )
            except ValueError:
                # Method inapplicable to (at least) one trial's observation
                # type: drop to the per-trial path below, which records the
                # NaN summary for exactly the failing trials.
                results = None
            else:
                elapsed = (time.perf_counter() - t0) / len(locs)
        if results is not None:
            for k, (result, (network, _m, _p, _s)) in enumerate(
                zip(results, scenarios)
            ):
                unknown = ~network.anchor_mask
                errors = result.errors(network.positions)
                if tracer.enabled:
                    tracer.count(f"trials[{name}]")
                    tracer.count(f"messages[{name}]", result.messages_sent)
                out[k][name] = (
                    summarize_errors(errors, network.radio_range, unknown),
                    result.messages_sent,
                    elapsed,
                )
            continue
        for k, (network, measurements, prior, s_run) in enumerate(scenarios):
            unknown = ~network.anchor_mask
            t0 = time.perf_counter()
            try:
                with tracer.timer(name):
                    result = locs[k].localize(
                        measurements, np.random.default_rng(s_run)
                    )
            except ValueError:
                out[k][name] = (
                    summarize_errors(
                        np.full(network.n_nodes, np.nan),
                        network.radio_range,
                        unknown,
                    ),
                    0,
                    0.0,
                )
                continue
            trial_elapsed = time.perf_counter() - t0
            errors = result.errors(network.positions)
            if tracer.enabled:
                tracer.count(f"trials[{name}]")
                tracer.count(f"messages[{name}]", result.messages_sent)
            out[k][name] = (
                summarize_errors(errors, network.radio_range, unknown),
                result.messages_sent,
                trial_elapsed,
            )
    return out


def _collect(
    per_trial: list[dict[str, tuple[ErrorSummary, int, float]]],
    names,
) -> dict[str, MethodResult]:
    out = {name: MethodResult(name) for name in names}
    for trial in per_trial:
        for name, (summary, messages, runtime) in trial.items():
            out[name].summaries.append(summary)
            out[name].messages.append(messages)
            out[name].runtimes.append(runtime)
    return out


def _json_safe(value):
    """Plain-Python view of sweep values / kwargs for ledger headers."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def _evaluate_meta(config, names, n_trials, seed, kind, extra) -> dict:
    meta = {
        "kind": kind,
        "config": config.to_dict(),
        "methods": list(names),
        "n_trials": int(n_trials),
        "seed": seed_fingerprint(seed),
        "total_cells": int(n_trials),
    }
    if extra:
        meta.update(extra)
    return meta


def _replay_trial(ck, i: int, names) -> dict | None:
    """Decode trial *i* from the ledger, or ``None`` if it must run.

    A replayed record missing a requested method reruns the whole trial:
    every method draws from a fresh ``default_rng(s_run)``, so the rerun
    is still bit-identical for the methods that were present.
    """
    if ck is None:
        return None
    payload = ck.get(f"trial:{i}")
    if payload is None:
        return None
    trial = decode_value(payload["result"])
    if not set(names) <= set(trial):
        return None
    return {name: trial[name] for name in names}


def evaluate_methods(
    config: ScenarioConfig,
    methods: Mapping[str, MethodFactory],
    n_trials: int,
    seed: RNGLike = 0,
    tracer: NullTracer | None = None,
    checkpoint=None,
    checkpoint_meta: dict | None = None,
    batch_trials: int | None = None,
) -> dict[str, MethodResult]:
    """Run every method on *n_trials* independent scenario draws.

    An attached :class:`~repro.obs.Tracer` times the whole evaluation
    (``"evaluate"``) with per-method child timers, and counts trials and
    messages per method.

    ``batch_trials=<block size>`` runs trials in blocks, stacking the
    grid-BP methods across each block (:func:`_run_trial_block`) — same
    per-trial seed streams, bit-identical summaries and message counts,
    per-trial ``runtimes`` amortized over the block.  Combine with
    ``backend="batched"`` in :func:`standard_methods` for the stacked
    kernel; checkpoint ledgers record per trial either way, so batched
    and unbatched runs resume each other bit-identically.

    With ``checkpoint=<ledger path>`` (or a :class:`~repro.ckpt.Checkpoint`
    / :class:`~repro.ckpt.CheckpointScope`), each finished trial is durably
    appended to a write-ahead ledger; restarting the identical call skips
    the recorded trials and produces bit-identical ``MethodResult``
    summaries and message counts (``runtimes`` are wall-clock and reflect
    the original runs).  The master seed must be reproducible (int or
    ``SeedSequence``).  *checkpoint_meta* adds extra keys to a fresh
    ledger header (e.g. method kwargs for ``repro resume``).
    """
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    if batch_trials is not None and batch_trials < 1:
        raise ValueError(f"batch_trials must be >= 1, got {batch_trials}")
    tracer = tracer if tracer is not None else NULL_TRACER
    names = list(methods)
    ck = None
    owned = False
    if checkpoint is not None:
        ck, owned = resolve_checkpoint(
            checkpoint,
            lambda: _evaluate_meta(
                config, names, n_trials, seed, "evaluate", checkpoint_meta
            ),
        )
    trap = trap_signals() if ck is not None else contextlib.nullcontext()
    try:
        with tracer.timer("evaluate"), trap:
            seeds_list = list(spawn_seeds(seed, n_trials))
            per_trial: list = [None] * n_trials
            pending: list[int] = []
            for i in range(n_trials):
                per_trial[i] = _replay_trial(ck, i, names)
                if per_trial[i] is None:
                    pending.append(i)
            if batch_trials is None or batch_trials == 1:
                for i in pending:
                    trial = _run_one_trial(config, methods, seeds_list[i], tracer)
                    if ck is not None:
                        ck.record(f"trial:{i}", {"result": encode_value(trial)})
                    per_trial[i] = trial
            else:
                for b0 in range(0, len(pending), batch_trials):
                    block = pending[b0 : b0 + batch_trials]
                    trials = _run_trial_block(
                        config, methods, [seeds_list[i] for i in block], tracer
                    )
                    for i, trial in zip(block, trials):
                        if ck is not None:
                            ck.record(f"trial:{i}", {"result": encode_value(trial)})
                        per_trial[i] = trial
    finally:
        if ck is not None:
            ck.emit_counters(tracer)
            if owned:
                ck.close()
    return _collect(per_trial, methods)


def _parallel_worker(args) -> dict:
    """Module-level worker (picklable) for :func:`evaluate_methods_parallel`."""
    config, method_names, std_kwargs, seed_int = args
    methods = standard_methods(include=method_names, **std_kwargs)
    return _run_one_trial(config, methods, np.random.SeedSequence(seed_int))


def evaluate_methods_parallel(
    config: ScenarioConfig,
    method_names: Sequence[str],
    n_trials: int,
    seed: RNGLike = 0,
    n_workers: int = 2,
    grid_size: int = 20,
    max_iterations: int = 15,
    nbp_particles: int = 150,
    backend: str = "reference",
    mcmc_samples: int = 150,
    tracer: NullTracer | None = None,
    checkpoint=None,
    checkpoint_meta: dict | None = None,
) -> dict[str, MethodResult]:
    """Multiprocess variant of :func:`evaluate_methods`.

    Restricted to :func:`standard_methods` names (factories must be
    reconstructable inside worker processes).  Trials carry independent
    spawned integer seeds, so the result is identical for any
    ``n_workers`` (scheduling order cannot matter) and reproducible from
    the master seed.  A *tracer* times the batch from the coordinating
    process only; workers run untraced (tracers do not cross process
    boundaries — have the trial function export and return
    ``Tracer.snapshot()`` dicts and combine them with
    :func:`repro.obs.merge_traces` for per-worker telemetry).

    With ``checkpoint=``, finished trials are durably recorded the moment
    each one completes (``apply_async`` per trial instead of one blocking
    ``map``), so a killed run resumes from the last fsync'd record with
    any worker count.  The ledger kind is ``"evaluate-parallel"``: trial
    seed streams differ from :func:`evaluate_methods`, so the two entry
    points never silently resume each other's ledgers.  On any
    interruption — including a trapped SIGTERM — the pool is terminated
    and joined rather than orphaned.
    """
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    tracer = tracer if tracer is not None else NULL_TRACER
    std_kwargs = {
        "grid_size": grid_size,
        "max_iterations": max_iterations,
        "nbp_particles": nbp_particles,
        "backend": backend,
        "mcmc_samples": mcmc_samples,
    }
    names = list(method_names)
    standard_methods(include=names, **std_kwargs)  # validate early
    from repro.utils.rng import child_seed_ints

    seeds = child_seed_ints(seed, n_trials)
    args = [(config, names, std_kwargs, s) for s in seeds]

    ck = None
    owned = False
    if checkpoint is not None:
        extra = {"method_kwargs": dict(std_kwargs)}
        extra.update(checkpoint_meta or {})
        ck, owned = resolve_checkpoint(
            checkpoint,
            lambda: _evaluate_meta(
                config, names, n_trials, seed, "evaluate-parallel", extra
            ),
        )
    per_trial: list = [None] * n_trials
    pending = list(range(n_trials))
    if ck is not None:
        pending = []
        for i in range(n_trials):
            trial = _replay_trial(ck, i, names)
            if trial is None:
                pending.append(i)
            else:
                per_trial[i] = trial

    def _record(i: int, trial: dict) -> None:
        if ck is not None:
            ck.record(f"trial:{i}", {"result": encode_value(trial)})

    trap = trap_signals() if ck is not None else contextlib.nullcontext()
    try:
        with tracer.timer("evaluate_parallel"), trap:
            if n_workers == 1:
                for i in pending:
                    per_trial[i] = _parallel_worker(args[i])
                    _record(i, per_trial[i])
            elif pending:
                import multiprocessing as mp

                from repro.parallel.executor import pool_map_interruptible

                ctx = mp.get_context("spawn")
                pool = ctx.Pool(processes=n_workers)
                try:
                    if ck is None:
                        out = pool_map_interruptible(
                            pool, _parallel_worker, [args[i] for i in pending]
                        )
                        for i, trial in zip(pending, out):
                            per_trial[i] = trial
                    else:
                        # One async task per trial so every completion can
                        # be recorded durably as soon as it lands.
                        handles = {
                            i: pool.apply_async(_parallel_worker, (args[i],))
                            for i in pending
                        }
                        remaining = set(pending)
                        while remaining:
                            progressed = False
                            for i in sorted(remaining):
                                if handles[i].ready():
                                    per_trial[i] = handles[i].get()
                                    _record(i, per_trial[i])
                                    remaining.discard(i)
                                    progressed = True
                            if not progressed:
                                time.sleep(0.02)
                    pool.close()
                    pool.join()
                except BaseException:
                    # KeyboardInterrupt (possibly a trapped SIGTERM), a
                    # worker exception, or a CheckpointAbort: kill the
                    # workers instead of orphaning them.
                    pool.terminate()
                    pool.join()
                    raise
    finally:
        if ck is not None:
            ck.emit_counters(tracer)
            if owned:
                ck.close()
    if tracer.enabled:
        tracer.count("trials", n_trials)
        tracer.annotate("n_workers", n_workers)
    return _collect(per_trial, names)


@dataclass
class SweepResult:
    """A one-dimensional parameter sweep: x values × methods."""

    x_name: str
    x_values: list
    points: list[dict[str, MethodResult]]

    def series(self, stat: str = "mean_error_norm") -> dict[str, list[float]]:
        """Per-method curves of the given :class:`MethodResult` property."""
        methods = list(self.points[0].keys())
        return {
            m: [getattr(pt[m], stat) for pt in self.points] for m in methods
        }

    def best_method_at(self, i: int, stat: str = "mean_error_norm") -> str:
        pt = self.points[i]
        return min(pt, key=lambda m: getattr(pt[m], stat))


def _sweep_meta(base, param, values, names, n_trials, seed, extra) -> dict:
    meta = {
        "kind": "sweep",
        "config": base.to_dict(),
        "param": param,
        "values": _json_safe(list(values)),
        "methods": list(names),
        "n_trials": int(n_trials),
        "seed": seed_fingerprint(seed),
        "total_cells": int(len(values) * n_trials),
    }
    if extra:
        meta.update(extra)
    return meta


def run_sweep(
    base: ScenarioConfig,
    param: str,
    values: Sequence,
    methods: Mapping[str, MethodFactory],
    n_trials: int,
    seed: RNGLike = 0,
    checkpoint=None,
    checkpoint_meta: dict | None = None,
    batch_trials: int | None = None,
) -> SweepResult:
    """Sweep one :class:`ScenarioConfig` field across *values*.

    Each parameter point gets an independent spawned seed block, so the
    curve is stable under adding/removing points.  *batch_trials* is
    forwarded to :func:`evaluate_methods` (trial batching within each
    parameter point; bit-identical, checkpoint-compatible).

    With ``checkpoint=<ledger path>``, the sweep owns one write-ahead
    ledger and hands every parameter point a key-scoped view
    (``pt0:trial:0``, …), so a killed sweep resumes mid-curve: finished
    (point, trial) cells replay from the ledger, the rest run on their
    original spawned seed blocks, and the resulting :class:`SweepResult`
    is bit-identical to an uninterrupted run (wall-clock ``runtimes``
    excepted).  Resuming a finished ledger re-runs nothing.
    """
    names = list(methods)
    ck = None
    owned = False
    if checkpoint is not None:
        ck, owned = resolve_checkpoint(
            checkpoint,
            lambda: _sweep_meta(
                base, param, values, names, n_trials, seed, checkpoint_meta
            ),
        )
    blocks = spawn_seeds(seed, len(values))
    points = []
    trap = trap_signals() if ck is not None else contextlib.nullcontext()
    try:
        with trap:
            for j, (value, block) in enumerate(zip(values, blocks)):
                cfg = base.replace(**{param: value})
                points.append(
                    evaluate_methods(
                        cfg,
                        methods,
                        n_trials,
                        block,
                        checkpoint=None if ck is None else ck.scoped(f"pt{j}"),
                        batch_trials=batch_trials,
                    )
                )
    finally:
        if ck is not None and owned:
            ck.close()
    return SweepResult(param, list(values), points)
