"""Monte-Carlo evaluation of localization methods over scenarios.

The runner is deliberately simple and deterministic: one master seed per
sweep, child seeds per (parameter, trial) cell via ``SeedSequence.spawn``,
every method sees the *same* network and measurements within a trial.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.baselines import (
    CentroidLocalizer,
    DVHopLocalizer,
    MDSMAPLocalizer,
    MLELocalizer,
    MultilaterationLocalizer,
    WeightedCentroidLocalizer,
)
from repro.core.bnloc import GridBPConfig, GridBPLocalizer
from repro.core.nbp import NBPConfig, NBPLocalizer
from repro.core.result import Localizer
from repro.experiments.config import ScenarioConfig, build_scenario
from repro.metrics.error import ErrorSummary, summarize_errors
from repro.obs import NULL_TRACER, NullTracer
from repro.priors.base import PositionPrior
from repro.utils.rng import RNGLike, spawn_seeds

__all__ = [
    "MethodResult",
    "SweepResult",
    "standard_methods",
    "evaluate_methods",
    "evaluate_methods_parallel",
    "run_sweep",
]

#: a factory receives the trial's pre-knowledge prior (or None) and builds
#: a ready-to-run Localizer.
MethodFactory = Callable[[PositionPrior | None], Localizer]


def standard_methods(
    grid_size: int = 20,
    max_iterations: int = 15,
    nbp_particles: int = 150,
    include: Sequence[str] | None = None,
) -> dict[str, MethodFactory]:
    """The default method lineup used by the benchmarks.

    ``bn-pk`` is the paper's method (grid Bayesian network *with* the
    pre-knowledge prior); ``bn`` is the identical inference without it —
    the ablation that isolates the contribution of pre-knowledge.
    """
    grid_cfg = GridBPConfig(grid_size=grid_size, max_iterations=max_iterations)
    nbp_cfg = NBPConfig(n_particles=nbp_particles, n_iterations=5)
    all_methods: dict[str, MethodFactory] = {
        "bn-pk": lambda prior: GridBPLocalizer(prior=prior, config=grid_cfg),
        "bn": lambda prior: GridBPLocalizer(prior=None, config=grid_cfg),
        "nbp-pk": lambda prior: NBPLocalizer(prior=prior, config=nbp_cfg),
        "nbp": lambda prior: NBPLocalizer(prior=None, config=nbp_cfg),
        "centroid": lambda prior: CentroidLocalizer(),
        "w-centroid": lambda prior: WeightedCentroidLocalizer(),
        "dv-hop": lambda prior: DVHopLocalizer(),
        "mds-map": lambda prior: MDSMAPLocalizer(),
        "multilat": lambda prior: MultilaterationLocalizer(),
        "mle": lambda prior: MLELocalizer(),
    }
    if include is None:
        return all_methods
    unknown = set(include) - set(all_methods)
    if unknown:
        raise ValueError(f"unknown methods {sorted(unknown)}")
    return {k: all_methods[k] for k in include}


@dataclass
class MethodResult:
    """Aggregate of one method over the trials of one scenario point."""

    method: str
    summaries: list[ErrorSummary] = field(default_factory=list)
    messages: list[int] = field(default_factory=list)
    runtimes: list[float] = field(default_factory=list)

    @property
    def mean_error(self) -> float:
        return float(np.nanmean([s.mean for s in self.summaries]))

    @property
    def mean_error_norm(self) -> float:
        return float(np.nanmean([s.mean_norm for s in self.summaries]))

    @property
    def rmse_norm(self) -> float:
        return float(np.nanmean([s.rmse_norm for s in self.summaries]))

    @property
    def coverage(self) -> float:
        return float(np.nanmean([s.coverage for s in self.summaries]))

    @property
    def mean_messages(self) -> float:
        return float(np.mean(self.messages)) if self.messages else 0.0

    @property
    def mean_runtime(self) -> float:
        return float(np.mean(self.runtimes)) if self.runtimes else 0.0


def _run_one_trial(
    config: ScenarioConfig,
    methods: Mapping[str, MethodFactory],
    trial_seed,
    tracer: NullTracer = NULL_TRACER,
) -> dict[str, tuple[ErrorSummary, int, float]]:
    """Evaluate every method on one scenario draw (shared by the serial
    and multiprocess paths)."""
    s_build, s_run = trial_seed.spawn(2)
    with tracer.timer("build_scenario"):
        network, measurements, prior = build_scenario(config, s_build)
    unknown = ~network.anchor_mask
    out: dict[str, tuple[ErrorSummary, int, float]] = {}
    for name, factory in methods.items():
        loc = factory(prior)
        t0 = time.perf_counter()
        try:
            with tracer.timer(name):
                result = loc.localize(measurements, np.random.default_rng(s_run))
        except ValueError:
            # Method inapplicable to this observation type (e.g. MLE on
            # range-free data): record nothing, visible as coverage 0.
            out[name] = (
                summarize_errors(
                    np.full(network.n_nodes, np.nan),
                    network.radio_range,
                    unknown,
                ),
                0,
                0.0,
            )
            continue
        elapsed = time.perf_counter() - t0
        errors = result.errors(network.positions)
        if tracer.enabled:
            tracer.count(f"trials[{name}]")
            tracer.count(f"messages[{name}]", result.messages_sent)
        out[name] = (
            summarize_errors(errors, network.radio_range, unknown),
            result.messages_sent,
            elapsed,
        )
    return out


def _collect(
    per_trial: list[dict[str, tuple[ErrorSummary, int, float]]],
    names,
) -> dict[str, MethodResult]:
    out = {name: MethodResult(name) for name in names}
    for trial in per_trial:
        for name, (summary, messages, runtime) in trial.items():
            out[name].summaries.append(summary)
            out[name].messages.append(messages)
            out[name].runtimes.append(runtime)
    return out


def evaluate_methods(
    config: ScenarioConfig,
    methods: Mapping[str, MethodFactory],
    n_trials: int,
    seed: RNGLike = 0,
    tracer: NullTracer | None = None,
) -> dict[str, MethodResult]:
    """Run every method on *n_trials* independent scenario draws.

    An attached :class:`~repro.obs.Tracer` times the whole evaluation
    (``"evaluate"``) with per-method child timers, and counts trials and
    messages per method.
    """
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.timer("evaluate"):
        per_trial = [
            _run_one_trial(config, methods, trial_seed, tracer)
            for trial_seed in spawn_seeds(seed, n_trials)
        ]
    return _collect(per_trial, methods)


def _parallel_worker(args) -> dict:
    """Module-level worker (picklable) for :func:`evaluate_methods_parallel`."""
    config, method_names, std_kwargs, seed_int = args
    methods = standard_methods(include=method_names, **std_kwargs)
    return _run_one_trial(config, methods, np.random.SeedSequence(seed_int))


def evaluate_methods_parallel(
    config: ScenarioConfig,
    method_names: Sequence[str],
    n_trials: int,
    seed: RNGLike = 0,
    n_workers: int = 2,
    grid_size: int = 20,
    max_iterations: int = 15,
    nbp_particles: int = 150,
    tracer: NullTracer | None = None,
) -> dict[str, MethodResult]:
    """Multiprocess variant of :func:`evaluate_methods`.

    Restricted to :func:`standard_methods` names (factories must be
    reconstructable inside worker processes).  Trials carry independent
    spawned integer seeds, so the result is identical for any
    ``n_workers`` (scheduling order cannot matter) and reproducible from
    the master seed.  A *tracer* times the batch from the coordinating
    process only; workers run untraced (tracers do not cross process
    boundaries — have the trial function export and return
    ``Tracer.snapshot()`` dicts and combine them with
    :func:`repro.obs.merge_traces` for per-worker telemetry).
    """
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    tracer = tracer if tracer is not None else NULL_TRACER
    std_kwargs = {
        "grid_size": grid_size,
        "max_iterations": max_iterations,
        "nbp_particles": nbp_particles,
    }
    names = list(method_names)
    standard_methods(include=names, **std_kwargs)  # validate early
    from repro.utils.rng import child_seed_ints

    seeds = child_seed_ints(seed, n_trials)
    args = [(config, names, std_kwargs, s) for s in seeds]
    with tracer.timer("evaluate_parallel"):
        if n_workers == 1:
            per_trial = [_parallel_worker(a) for a in args]
        else:
            import multiprocessing as mp

            ctx = mp.get_context("spawn")
            with ctx.Pool(processes=n_workers) as pool:
                per_trial = pool.map(_parallel_worker, args)
    if tracer.enabled:
        tracer.count("trials", n_trials)
        tracer.annotate("n_workers", n_workers)
    return _collect(per_trial, names)


@dataclass
class SweepResult:
    """A one-dimensional parameter sweep: x values × methods."""

    x_name: str
    x_values: list
    points: list[dict[str, MethodResult]]

    def series(self, stat: str = "mean_error_norm") -> dict[str, list[float]]:
        """Per-method curves of the given :class:`MethodResult` property."""
        methods = list(self.points[0].keys())
        return {
            m: [getattr(pt[m], stat) for pt in self.points] for m in methods
        }

    def best_method_at(self, i: int, stat: str = "mean_error_norm") -> str:
        pt = self.points[i]
        return min(pt, key=lambda m: getattr(pt[m], stat))


def run_sweep(
    base: ScenarioConfig,
    param: str,
    values: Sequence,
    methods: Mapping[str, MethodFactory],
    n_trials: int,
    seed: RNGLike = 0,
) -> SweepResult:
    """Sweep one :class:`ScenarioConfig` field across *values*.

    Each parameter point gets an independent spawned seed block, so the
    curve is stable under adding/removing points.
    """
    blocks = spawn_seeds(seed, len(values))
    points = []
    for value, block in zip(values, blocks):
        cfg = base.replace(**{param: value})
        points.append(evaluate_methods(cfg, methods, n_trials, block))
    return SweepResult(param, list(values), points)
