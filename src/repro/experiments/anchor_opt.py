"""Anchor-placement optimization via the cooperative CRLB.

Where should the (expensive, GPS-equipped) anchors go?  The Cramér–Rao
bound gives a measurement-model-aware answer: greedily promote the node
whose promotion most reduces the network's mean position-error bound.
This uses only the deployment geometry and the noise model — no
localization runs — so it is a *planning* tool: run it on the intended
deployment before installing hardware.

A Bayesian variant regularizes the Fisher information with a weak prior so
the bound stays finite while fewer than three anchors are placed (and so
under-constrained nodes don't dominate the objective).
"""

from __future__ import annotations

import numpy as np

from repro.measurement.ranging import RangingModel
from repro.metrics.crlb import cooperative_crlb
from repro.network.topology import WSNetwork
from repro.utils.rng import RNGLike, as_generator

__all__ = ["greedy_crlb_anchors", "mean_crlb"]


def mean_crlb(
    network: WSNetwork,
    ranging: RangingModel,
    prior_sigma: float = 0.5,
) -> float:
    """Mean RMS-error bound over unknown nodes (prior-regularized)."""
    b = cooperative_crlb(network, ranging, prior_sigma=prior_sigma)
    unknown = ~network.anchor_mask
    return float(np.nanmean(b[unknown]))


def greedy_crlb_anchors(
    positions: np.ndarray,
    adjacency: np.ndarray,
    n_anchors: int,
    ranging: RangingModel,
    radio_range: float,
    prior_sigma: float = 0.5,
    candidates: np.ndarray | None = None,
    rng: RNGLike = None,
    width: float = 1.0,
    height: float = 1.0,
) -> np.ndarray:
    """Greedily choose *n_anchors* nodes minimizing the mean CRLB.

    Parameters
    ----------
    positions, adjacency:
        The (planned) deployment geometry and connectivity.
    n_anchors:
        Anchors to place (≥ 1; ≥ 3 for a fully-determined 2-D problem).
    ranging:
        Noise model whose information the bound counts.
    radio_range:
        Nominal range (stored in the evaluation networks).
    prior_sigma:
        Weak positional prior (field-scale) keeping the bound finite
        during the first placements.
    candidates:
        Optional index array restricting which nodes may become anchors
        (e.g. only perimeter-accessible ones).
    rng:
        Tie-breaking randomness (bounds can tie on symmetric layouts).

    Returns
    -------
    numpy.ndarray
        Boolean anchor mask of length *n*.
    """
    pos = np.asarray(positions, dtype=np.float64)
    n = len(pos)
    if not (1 <= n_anchors < n):
        raise ValueError(f"n_anchors must lie in [1, {n}), got {n_anchors}")
    adjacency = np.asarray(adjacency, dtype=bool)
    if adjacency.shape != (n, n):
        raise ValueError("adjacency shape mismatch")
    if candidates is None:
        cand = list(range(n))
    else:
        cand = [int(c) for c in np.asarray(candidates).ravel()]
        if any(not (0 <= c < n) for c in cand):
            raise ValueError("candidate index out of range")
        if len(cand) < n_anchors:
            raise ValueError("fewer candidates than anchors requested")
    gen = as_generator(rng)

    mask = np.zeros(n, dtype=bool)
    remaining = set(cand)
    for _ in range(n_anchors):
        best_score = np.inf
        best_nodes: list[int] = []
        for c in remaining:
            mask[c] = True
            net = WSNetwork(
                positions=pos,
                anchor_mask=mask.copy(),
                adjacency=adjacency,
                width=width,
                height=height,
                radio_range=radio_range,
            )
            score = mean_crlb(net, ranging, prior_sigma)
            mask[c] = False
            if score < best_score - 1e-12:
                best_score = score
                best_nodes = [c]
            elif abs(score - best_score) <= 1e-12:
                best_nodes.append(c)
        choice = best_nodes[int(gen.integers(len(best_nodes)))]
        mask[choice] = True
        remaining.discard(choice)
    return mask
