"""Experiment harness: declarative scenarios, Monte-Carlo sweeps, reports.

This package drives every benchmark in ``benchmarks/``: a scenario config
describes one operating point (deployment, radio, ranging, anchors,
pre-knowledge), the runner evaluates a set of methods over independent
trials, and the report module prints paper-style series tables.
"""

from repro.experiments.config import (
    ChannelConfig,
    ScenarioConfig,
    build_scenario,
    make_pre_knowledge,
)
from repro.experiments.runner import (
    MethodResult,
    SweepResult,
    evaluate_methods,
    evaluate_methods_parallel,
    run_sweep,
    standard_methods,
)
from repro.experiments.report import sweep_table, methods_table
from repro.experiments.anchor_opt import greedy_crlb_anchors, mean_crlb

__all__ = [
    "ChannelConfig",
    "ScenarioConfig",
    "build_scenario",
    "make_pre_knowledge",
    "MethodResult",
    "SweepResult",
    "evaluate_methods",
    "evaluate_methods_parallel",
    "run_sweep",
    "standard_methods",
    "sweep_table",
    "greedy_crlb_anchors",
    "mean_crlb",
    "methods_table",
]
