"""Directed discrete Bayesian networks.

:class:`BayesianNetwork` holds a DAG of :class:`~repro.bayesnet.cpd.TabularCPD`
objects, supports ancestral (forward) sampling, joint evaluation, conversion
to the factor list consumed by exact/approximate inference, and brute-force
enumeration (the ground truth the test suite validates every other inference
engine against).
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence

import numpy as np

from repro.bayesnet.cpd import TabularCPD
from repro.bayesnet.factor import DiscreteFactor
from repro.utils.rng import RNGLike, as_generator

__all__ = ["BayesianNetwork"]


class BayesianNetwork:
    """A Bayesian network assembled from CPDs.

    The network structure is implied by each CPD's evidence list; adding a
    CPD whose parents are not (eventually) defined, or that creates a
    directed cycle, fails at :meth:`validate` / first use.
    """

    def __init__(self, cpds: Sequence[TabularCPD] = ()) -> None:
        self._cpds: dict = {}
        for cpd in cpds:
            self.add_cpd(cpd)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_cpd(self, cpd: TabularCPD) -> None:
        if cpd.variable in self._cpds:
            raise ValueError(f"duplicate CPD for variable {cpd.variable!r}")
        self._cpds[cpd.variable] = cpd

    @property
    def variables(self) -> tuple:
        return tuple(self._cpds)

    def cpd(self, variable) -> TabularCPD:
        return self._cpds[variable]

    def cardinality(self, variable) -> int:
        return self._cpds[variable].cardinality

    def parents(self, variable) -> tuple:
        return self._cpds[variable].evidence

    def validate(self) -> None:
        """Check all parents exist with consistent cardinalities, and DAG-ness."""
        for var, cpd in self._cpds.items():
            for parent, card in zip(cpd.evidence, cpd.evidence_cards):
                if parent not in self._cpds:
                    raise ValueError(
                        f"CPD for {var!r} references undefined parent {parent!r}"
                    )
                if self._cpds[parent].cardinality != card:
                    raise ValueError(
                        f"cardinality mismatch for parent {parent!r} of {var!r}"
                    )
        self.topological_order()  # raises on cycles

    def topological_order(self) -> list:
        """Parents-before-children ordering (raises on directed cycles)."""
        order: list = []
        seen: set = set()
        in_progress: set = set()

        def visit(v) -> None:
            if v in seen:
                return
            if v in in_progress:
                raise ValueError(f"directed cycle involving {v!r}")
            in_progress.add(v)
            for p in self._cpds[v].evidence:
                if p in self._cpds:
                    visit(p)
            in_progress.discard(v)
            seen.add(v)
            order.append(v)

        for v in self._cpds:
            visit(v)
        return order

    # ------------------------------------------------------------------ #
    # probability
    # ------------------------------------------------------------------ #
    def to_factors(self) -> list[DiscreteFactor]:
        """One factor per CPD — the product is the joint distribution."""
        self.validate()
        return [cpd.to_factor() for cpd in self._cpds.values()]

    def joint_probability(self, assignment: Mapping) -> float:
        """``P(X = assignment)`` for a full assignment."""
        self.validate()
        p = 1.0
        for var, cpd in self._cpds.items():
            idx = (int(assignment[var]), *(int(assignment[e]) for e in cpd.evidence))
            p *= float(cpd.table[idx])
        return p

    def brute_force_marginal(
        self, variable, evidence: Mapping | None = None
    ) -> DiscreteFactor:
        """Exact posterior marginal by full enumeration (test oracle).

        Exponential in network size; only for validation on small models.
        """
        self.validate()
        evidence = dict(evidence or {})
        if variable in evidence:
            raise ValueError("query variable cannot also be evidence")
        variables = self.variables
        cards = [self.cardinality(v) for v in variables]
        out = np.zeros(self.cardinality(variable))
        free = [v for v in variables if v not in evidence]
        free_cards = [self.cardinality(v) for v in free]
        for states in itertools.product(*(range(c) for c in free_cards)):
            assignment = dict(zip(free, states))
            assignment.update(evidence)
            out[assignment[variable]] += self.joint_probability(assignment)
        total = out.sum()
        if total <= 0:
            raise ValueError("evidence has zero probability")
        return DiscreteFactor((variable,), (self.cardinality(variable),), out / total)

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def sample(self, n: int, rng: RNGLike = None) -> list[dict]:
        """Draw *n* joint samples by ancestral sampling."""
        self.validate()
        gen = as_generator(rng)
        order = self.topological_order()
        samples = []
        for _ in range(int(n)):
            state: dict = {}
            for v in order:
                state[v] = self._cpds[v].sample(state, gen)
            samples.append(state)
        return samples
