"""Sum-product / max-product belief propagation on factor graphs.

Synchronous (flooding) message passing with optional damping:

* On tree-structured graphs BP converges in ≤ diameter iterations and is
  exact — the test suite checks it against variable elimination.
* On loopy graphs it is the standard approximation; messages are damped
  (``new = λ·new + (1-λ)·old``) and iteration stops when the max absolute
  message change falls below ``tol``.

Messages are kept normalized for numerical stability.  This engine is
deliberately general (any discrete factor graph); the localization core
builds a *specialized* vectorized BP for its grid model, and the tests
cross-check the two on shared instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bayesnet.factor import DiscreteFactor
from repro.bayesnet.graph import FactorGraph
from repro.obs import NULL_TRACER, NullTracer

__all__ = ["BeliefPropagation", "BPResult"]


@dataclass
class BPResult:
    """Outcome of a BP run.

    Attributes
    ----------
    beliefs:
        ``{variable: posterior numpy vector}`` (normalized).
    converged:
        Whether the message residual dropped below tolerance.
    n_iterations:
        Iterations actually executed.
    residuals:
        Max message change per iteration (convergence trace).
    n_repairs:
        Messages that came out non-finite (degenerate factors, corrupted
        inputs) and were repaired to uniform so the run could continue;
        0 on numerically healthy runs.
    """

    beliefs: dict
    converged: bool
    n_iterations: int
    residuals: list[float] = field(default_factory=list)
    n_repairs: int = 0

    def belief(self, variable) -> np.ndarray:
        return self.beliefs[variable]

    def map_states(self) -> dict:
        """Per-variable argmax of the final beliefs."""
        return {v: int(np.argmax(b)) for v, b in self.beliefs.items()}


class BeliefPropagation:
    """Sum-product (or max-product) BP over a :class:`FactorGraph`."""

    def __init__(
        self,
        graph: FactorGraph,
        max_iterations: int = 50,
        tol: float = 1e-6,
        damping: float = 0.0,
        max_product: bool = False,
        tracer: NullTracer | None = None,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not (0.0 <= damping < 1.0):
            raise ValueError("damping must lie in [0, 1)")
        if tol <= 0:
            raise ValueError("tol must be positive")
        self.graph = graph
        self.max_iterations = int(max_iterations)
        self.tol = float(tol)
        self.damping = float(damping)
        self.max_product = bool(max_product)
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------ #
    def run(self, evidence: dict | None = None) -> BPResult:
        """Run BP, optionally conditioning on ``{variable: state}`` evidence.

        When a :class:`~repro.obs.Tracer` is attached, each iteration
        records its message residual and directed-message count; the run
        itself is timed under ``"bp"``.
        """
        with self.tracer.timer("bp"):
            return self._run_traced(evidence, self.tracer)

    def _run_traced(self, evidence: dict | None, tracer: NullTracer) -> BPResult:
        graph = self.graph
        if evidence:
            factors = [f.reduce(evidence) if set(f.variables) & set(evidence)
                       and not set(f.variables) <= set(evidence) else f
                       for f in graph.factors
                       if not set(f.variables) <= set(evidence)]
            if not factors:
                raise ValueError("evidence observes every variable")
            graph = FactorGraph(factors)

        cards = graph.cardinalities
        # Message containers keyed by directed edge.
        var_to_fac: dict = {}
        fac_to_var: dict = {}
        for fi, f in enumerate(graph.factors):
            for v in f.variables:
                var_to_fac[(v, fi)] = np.full(cards[v], 1.0 / cards[v])
                fac_to_var[(fi, v)] = np.full(cards[v], 1.0 / cards[v])

        residuals: list[float] = []
        converged = False
        n_iter = 0
        n_repairs = 0

        def _repaired(msg: np.ndarray, card: int) -> np.ndarray:
            """Uniform replacement for a non-finite message (health guard)."""
            nonlocal n_repairs
            if np.isfinite(msg).all():
                return msg
            n_repairs += 1
            return np.full(card, 1.0 / card)

        for n_iter in range(1, self.max_iterations + 1):
            max_delta = 0.0

            # factor -> variable messages
            new_ftv: dict = {}
            for fi, f in enumerate(graph.factors):
                scope = f.variables
                for v in scope:
                    work = f.values
                    # Multiply in messages from all other variables.
                    for j, u in enumerate(scope):
                        if u == v:
                            continue
                        shape = [1] * len(scope)
                        shape[j] = cards[u]
                        work = work * var_to_fac[(u, fi)].reshape(shape)
                    axis = tuple(j for j, u in enumerate(scope) if u != v)
                    if axis:
                        if self.max_product:
                            msg = work.max(axis=axis)
                        else:
                            msg = work.sum(axis=axis)
                    else:
                        msg = work
                    total = msg.sum()
                    msg = msg / total if total > 0 else np.full(cards[v], 1.0 / cards[v])
                    msg = _repaired(msg, cards[v])
                    if self.damping > 0:
                        msg = (1 - self.damping) * msg + self.damping * fac_to_var[(fi, v)]
                        msg = msg / msg.sum()
                    max_delta = max(
                        max_delta, float(np.abs(msg - fac_to_var[(fi, v)]).max())
                    )
                    new_ftv[(fi, v)] = msg
            fac_to_var = new_ftv

            # variable -> factor messages
            new_vtf: dict = {}
            for v in graph.variables:
                neigh = graph.variable_neighbors(v)
                incoming = np.stack([fac_to_var[(fi, v)] for fi in neigh])
                # Product of all incoming except self, via log-space prefix
                # trick avoided for clarity: direct divide with clipping.
                prod_all = incoming.prod(axis=0)
                for k, fi in enumerate(neigh):
                    if len(neigh) == 1:
                        msg = np.full(cards[v], 1.0 / cards[v])
                    else:
                        with np.errstate(divide="ignore", invalid="ignore"):
                            msg = prod_all / incoming[k]
                        bad = ~np.isfinite(msg)
                        if bad.any():
                            # Recompute excluded product exactly where needed.
                            others = np.delete(incoming, k, axis=0)
                            msg = others.prod(axis=0)
                        total = msg.sum()
                        msg = (
                            msg / total
                            if total > 0
                            else np.full(cards[v], 1.0 / cards[v])
                        )
                        msg = _repaired(msg, cards[v])
                    max_delta = max(
                        max_delta, float(np.abs(msg - var_to_fac[(v, fi)]).max())
                    )
                    new_vtf[(v, fi)] = msg
            var_to_fac = new_vtf

            residuals.append(max_delta)
            if tracer.enabled:
                round_msgs = len(fac_to_var) + len(var_to_fac)
                tracer.iteration(
                    residual=max_delta,
                    messages=round_msgs,
                    messages_cum=n_iter * round_msgs,
                )
            if max_delta < self.tol:
                converged = True
                break

        beliefs: dict = {}
        for v in graph.variables:
            incoming = np.stack(
                [fac_to_var[(fi, v)] for fi in graph.variable_neighbors(v)]
            )
            b = incoming.prod(axis=0)
            total = b.sum()
            b = b / total if total > 0 else np.full(cards[v], 1.0 / cards[v])
            beliefs[v] = _repaired(b, cards[v])
        if evidence:
            for v, s in evidence.items():
                if v in self.graph.cardinalities:
                    b = np.zeros(self.graph.cardinalities[v])
                    b[int(s)] = 1.0
                    beliefs[v] = b
        if tracer.enabled:
            tracer.annotate("method", "factor-graph-bp")
            tracer.annotate("converged", bool(converged))
            tracer.count("runs")
            tracer.count("bp_iterations", n_iter)
            tracer.count("messages", n_iter * (len(fac_to_var) + len(var_to_fac)))
            if n_repairs:
                tracer.count("message_repairs", n_repairs)
        return BPResult(
            beliefs=beliefs,
            converged=converged,
            n_iterations=n_iter,
            residuals=residuals,
            n_repairs=n_repairs,
        )
