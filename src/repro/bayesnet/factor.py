"""Dense discrete factors and their algebra.

A :class:`DiscreteFactor` is a non-negative tensor over a tuple of named
categorical variables.  All operations are pure (return new factors) and
vectorized: a product aligns both operands onto the union scope with NumPy
broadcasting rather than looping over assignments.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["DiscreteFactor"]


class DiscreteFactor:
    """A factor φ(X₁, …, Xₖ) over discrete variables.

    Parameters
    ----------
    variables:
        Ordered variable names (hashables; strings or ints in practice).
    cardinalities:
        Number of states per variable, same order as *variables*.
    values:
        Array broadcastable to ``tuple(cardinalities)``; must be
        non-negative and finite.
    """

    __slots__ = ("variables", "values")

    def __init__(
        self,
        variables: Sequence,
        cardinalities: Sequence[int],
        values: np.ndarray,
    ) -> None:
        variables = tuple(variables)
        if len(set(variables)) != len(variables):
            raise ValueError(f"duplicate variables in scope: {variables}")
        cards = tuple(int(c) for c in cardinalities)
        if len(cards) != len(variables):
            raise ValueError("cardinalities must match variables")
        if any(c <= 0 for c in cards):
            raise ValueError(f"cardinalities must be positive, got {cards}")
        vals = np.asarray(values, dtype=np.float64)
        try:
            vals = np.broadcast_to(vals, cards).copy() if vals.shape != cards else vals.copy()
        except ValueError as exc:
            raise ValueError(
                f"values of shape {vals.shape} do not fit cardinalities {cards}"
            ) from exc
        if not np.all(np.isfinite(vals)):
            raise ValueError("factor values must be finite")
        if np.any(vals < 0):
            raise ValueError("factor values must be non-negative")
        self.variables: tuple = variables
        self.values: np.ndarray = vals

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def cardinalities(self) -> tuple[int, ...]:
        return self.values.shape

    def cardinality(self, variable) -> int:
        return self.values.shape[self.variables.index(variable)]

    def scope(self) -> set:
        return set(self.variables)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        scope = ", ".join(f"{v}:{c}" for v, c in zip(self.variables, self.cardinalities))
        return f"DiscreteFactor({scope})"

    def copy(self) -> "DiscreteFactor":
        return DiscreteFactor(self.variables, self.cardinalities, self.values)

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #
    def _aligned(self, union_vars: tuple) -> np.ndarray:
        """View of ``values`` expanded/transposed onto *union_vars* axes."""
        perm = [self.variables.index(v) for v in union_vars if v in self.variables]
        arr = self.values.transpose(perm)
        shape = [
            self.cardinality(v) if v in self.variables else 1 for v in union_vars
        ]
        return arr.reshape(shape)

    def product(self, other: "DiscreteFactor") -> "DiscreteFactor":
        """Factor product φ·ψ over the union scope."""
        if not isinstance(other, DiscreteFactor):
            raise TypeError("can only multiply by another DiscreteFactor")
        union = self.variables + tuple(
            v for v in other.variables if v not in self.variables
        )
        for v in other.variables:
            if v in self.variables and other.cardinality(v) != self.cardinality(v):
                raise ValueError(
                    f"cardinality mismatch for {v!r}: "
                    f"{self.cardinality(v)} vs {other.cardinality(v)}"
                )
        vals = self._aligned(union) * other._aligned(union)
        cards = [
            self.cardinality(v) if v in self.variables else other.cardinality(v)
            for v in union
        ]
        return DiscreteFactor(union, cards, vals)

    def __mul__(self, other: "DiscreteFactor") -> "DiscreteFactor":
        return self.product(other)

    def marginalize(self, variables: Iterable) -> "DiscreteFactor":
        """Sum out the given variables."""
        drop = set(variables)
        missing = drop - self.scope()
        if missing:
            raise ValueError(f"cannot marginalize absent variables {missing}")
        keep = tuple(v for v in self.variables if v not in drop)
        if not keep:
            raise ValueError("cannot marginalize out every variable")
        axes = tuple(i for i, v in enumerate(self.variables) if v in drop)
        vals = self.values.sum(axis=axes)
        cards = [self.cardinality(v) for v in keep]
        return DiscreteFactor(keep, cards, vals)

    def maximize(self, variables: Iterable) -> "DiscreteFactor":
        """Max out the given variables (max-product algebra)."""
        drop = set(variables)
        missing = drop - self.scope()
        if missing:
            raise ValueError(f"cannot maximize absent variables {missing}")
        keep = tuple(v for v in self.variables if v not in drop)
        if not keep:
            raise ValueError("cannot maximize out every variable")
        axes = tuple(i for i, v in enumerate(self.variables) if v in drop)
        vals = self.values.max(axis=axes)
        cards = [self.cardinality(v) for v in keep]
        return DiscreteFactor(keep, cards, vals)

    def reduce(self, evidence: Mapping) -> "DiscreteFactor":
        """Condition on ``{variable: state_index}`` evidence.

        Evidence variables not in scope are ignored (convenient when
        broadcasting one evidence dict over many factors); reducing away
        the full scope is an error — use :meth:`value_at` for that.
        """
        relevant = {v: s for v, s in evidence.items() if v in self.variables}
        if not relevant:
            return self.copy()
        keep = tuple(v for v in self.variables if v not in relevant)
        if not keep:
            raise ValueError(
                "evidence covers the whole scope; use value_at() instead"
            )
        index = []
        for v in self.variables:
            if v in relevant:
                s = int(relevant[v])
                if not (0 <= s < self.cardinality(v)):
                    raise ValueError(
                        f"state {s} out of range for {v!r} "
                        f"(cardinality {self.cardinality(v)})"
                    )
                index.append(s)
            else:
                index.append(slice(None))
        vals = self.values[tuple(index)]
        cards = [self.cardinality(v) for v in keep]
        return DiscreteFactor(keep, cards, vals)

    def value_at(self, assignment: Mapping) -> float:
        """φ evaluated at a full assignment ``{variable: state_index}``."""
        try:
            idx = tuple(int(assignment[v]) for v in self.variables)
        except KeyError as exc:
            raise ValueError(f"assignment missing variable {exc}") from exc
        return float(self.values[idx])

    def normalize(self) -> "DiscreteFactor":
        """Rescale to sum 1 (a joint distribution over the scope)."""
        total = self.values.sum()
        if total <= 0:
            raise ValueError("cannot normalize a factor with zero mass")
        return DiscreteFactor(self.variables, self.cardinalities, self.values / total)

    def argmax(self) -> dict:
        """Assignment ``{variable: state}`` of the single largest entry."""
        flat = int(np.argmax(self.values))
        idx = np.unravel_index(flat, self.values.shape)
        return {v: int(i) for v, i in zip(self.variables, idx)}

    # ------------------------------------------------------------------ #
    # comparison helpers (for tests)
    # ------------------------------------------------------------------ #
    def same_distribution(self, other: "DiscreteFactor", atol: float = 1e-9) -> bool:
        """True if both normalize to the same distribution over the same scope."""
        if self.scope() != other.scope():
            return False
        perm = [other.variables.index(v) for v in self.variables]
        a = self.normalize().values
        b = other.normalize().values.transpose(perm)
        return bool(np.allclose(a, b, atol=atol))
