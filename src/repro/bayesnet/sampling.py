"""Approximate inference by sampling.

Completes the Bayesian-network engine with the two standard Monte-Carlo
inference routines:

* :func:`likelihood_weighting` — forward (ancestral) sampling with
  evidence clamped and samples weighted by the evidence likelihood.
  Unbiased, embarrassingly parallel, struggles with improbable evidence.
* :func:`gibbs_sampling` — Markov-chain sampling from the full
  conditionals (each variable given its Markov blanket).  Handles
  improbable evidence, needs burn-in, requires positive conditionals to
  be ergodic.

Both return the same :class:`~repro.bayesnet.factor.DiscreteFactor`
posterior-marginal type as the exact engines and are validated against
brute-force enumeration in the test suite.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.bayesnet.discrete_bn import BayesianNetwork
from repro.bayesnet.factor import DiscreteFactor
from repro.utils.rng import RNGLike, as_generator
from repro.utils.stablemath import softmax_from_log

__all__ = ["likelihood_weighting", "gibbs_sampling"]


def likelihood_weighting(
    bn: BayesianNetwork,
    query,
    evidence: Mapping | None = None,
    n_samples: int = 2000,
    rng: RNGLike = None,
) -> DiscreteFactor:
    """Estimate ``P(query | evidence)`` by likelihood weighting.

    Parameters
    ----------
    bn:
        The model.
    query:
        A single query variable.
    evidence:
        ``{variable: state}`` observations (clamped during sampling).
    n_samples:
        Number of weighted samples.

    Raises
    ------
    ValueError
        If every sample has zero weight (evidence impossible under the
        model) or the query is observed.
    """
    bn.validate()
    evidence = dict(evidence or {})
    if query in evidence:
        raise ValueError("query variable cannot be evidence")
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    gen = as_generator(rng)
    order = bn.topological_order()
    card = bn.cardinality(query)
    counts = np.zeros(card)
    for _ in range(int(n_samples)):
        state: dict = {}
        weight = 1.0
        for v in order:
            cpd = bn.cpd(v)
            if v in evidence:
                s = int(evidence[v])
                idx = (s, *(int(state[p]) for p in cpd.evidence))
                weight *= float(cpd.table[idx])
                state[v] = s
            else:
                state[v] = cpd.sample(state, gen)
        counts[state[query]] += weight
    total = counts.sum()
    if total <= 0:
        raise ValueError("all samples had zero weight; evidence impossible?")
    return DiscreteFactor((query,), (card,), counts / total)


def gibbs_sampling(
    bn: BayesianNetwork,
    query,
    evidence: Mapping | None = None,
    n_samples: int = 2000,
    burn_in: int = 200,
    rng: RNGLike = None,
) -> DiscreteFactor:
    """Estimate ``P(query | evidence)`` by Gibbs sampling.

    Each sweep resamples every free variable from its full conditional
    (proportional to its CPD times its children's CPDs).  The first
    *burn_in* sweeps are discarded.
    """
    bn.validate()
    evidence = dict(evidence or {})
    if query in evidence:
        raise ValueError("query variable cannot be evidence")
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    if burn_in < 0:
        raise ValueError("burn_in must be non-negative")
    gen = as_generator(rng)

    free = [v for v in bn.variables if v not in evidence]
    if not free:
        raise ValueError("evidence observes every variable")
    children: dict = {v: [] for v in bn.variables}
    for v in bn.variables:
        for p in bn.parents(v):
            children[p].append(v)

    # Initialize: evidence clamped, free variables by ancestral sampling.
    state: dict = {}
    for v in bn.topological_order():
        if v in evidence:
            state[v] = int(evidence[v])
        else:
            state[v] = bn.cpd(v).sample(state, gen)

    def resample(v) -> int:
        card = bn.cardinality(v)
        logp = np.zeros(card)
        cpd = bn.cpd(v)
        parent_idx = tuple(int(state[p]) for p in cpd.evidence)
        with np.errstate(divide="ignore"):
            logp += np.log(cpd.table[(slice(None), *parent_idx)])
            for c in children[v]:
                ccpd = bn.cpd(c)
                for s in range(card):
                    idx = (
                        int(state[c]),
                        *(
                            s if p == v else int(state[p])
                            for p in ccpd.evidence
                        ),
                    )
                    logp[s] += np.log(ccpd.table[idx])
        try:
            p = softmax_from_log(logp)
        except ValueError:
            raise ValueError(
                f"Gibbs conditional for {v!r} has zero mass everywhere "
                "(deterministic CPDs break ergodicity)"
            ) from None
        return int(gen.choice(card, p=p))

    card = bn.cardinality(query)
    counts = np.zeros(card)
    for sweep in range(int(burn_in) + int(n_samples)):
        for v in free:
            state[v] = resample(v)
        if sweep >= burn_in:
            counts[state[query]] += 1.0
    return DiscreteFactor((query,), (card,), counts / counts.sum())
