"""Exact inference by variable elimination.

Implements sum-product variable elimination over a factor list with
heuristic orderings (min-fill, min-degree).  This is the exact-inference
workhorse for small models and the reference result BP is tested against on
trees.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.bayesnet.factor import DiscreteFactor

__all__ = ["variable_elimination", "min_fill_order", "min_degree_order"]


def _interaction_graph(factors: Sequence[DiscreteFactor]) -> dict:
    """Undirected variable-adjacency induced by shared factor scopes."""
    adj: dict = {}
    for f in factors:
        for v in f.variables:
            adj.setdefault(v, set())
        for v in f.variables:
            adj[v].update(set(f.variables) - {v})
    return adj


def min_degree_order(
    factors: Sequence[DiscreteFactor], variables: Iterable
) -> list:
    """Order *variables* by repeatedly eliminating the lowest-degree one."""
    adj = _interaction_graph(factors)
    remaining = set(variables)
    unknown = remaining - set(adj)
    if unknown:
        raise ValueError(f"variables not in any factor: {unknown}")
    order = []
    while remaining:
        v = min(remaining, key=lambda u: (len(adj[u] & remaining), str(u)))
        order.append(v)
        neigh = adj[v] & remaining
        for a in neigh:
            adj[a].update(neigh - {a})
            adj[a].discard(v)
        remaining.discard(v)
    return order


def min_fill_order(factors: Sequence[DiscreteFactor], variables: Iterable) -> list:
    """Order *variables* by the min-fill heuristic (fewest edges added)."""
    adj = _interaction_graph(factors)
    remaining = set(variables)
    unknown = remaining - set(adj)
    if unknown:
        raise ValueError(f"variables not in any factor: {unknown}")

    def fill_count(v) -> int:
        neigh = list(adj[v] & (remaining | (set(adj) - remaining)))
        # Count missing edges among neighbours still in the graph.
        cnt = 0
        for i in range(len(neigh)):
            for j in range(i + 1, len(neigh)):
                if neigh[j] not in adj[neigh[i]]:
                    cnt += 1
        return cnt

    order = []
    while remaining:
        v = min(remaining, key=lambda u: (fill_count(u), str(u)))
        order.append(v)
        neigh = adj[v]
        for a in list(neigh):
            adj[a].update(neigh - {a})
            adj[a].discard(v)
        del adj[v]
        remaining.discard(v)
    return order


def variable_elimination(
    factors: Sequence[DiscreteFactor],
    query: Sequence,
    evidence: Mapping | None = None,
    order: Sequence | None = None,
    normalize: bool = True,
) -> DiscreteFactor:
    """Compute ``P(query | evidence)`` (or the unnormalized joint).

    Parameters
    ----------
    factors:
        The model as a factor list (their product is the unnormalized joint).
    query:
        Variables to keep (returned factor's scope, in this order).
    evidence:
        ``{variable: state_index}`` observations, reduced into every factor
        before elimination.
    order:
        Optional explicit elimination order for the non-query variables;
        defaults to min-fill.
    normalize:
        Return a proper conditional distribution (default) or raw products.
    """
    if not factors:
        raise ValueError("need at least one factor")
    query = tuple(query)
    if len(set(query)) != len(query):
        raise ValueError("duplicate query variables")
    evidence = dict(evidence or {})
    overlap = set(query) & set(evidence)
    if overlap:
        raise ValueError(f"query variables also in evidence: {overlap}")

    reduced: list[DiscreteFactor] = []
    constant = 1.0  # product of fully-observed factors (pure scale)
    for f in factors:
        if set(f.variables) <= set(evidence):
            constant *= f.value_at({v: evidence[v] for v in f.variables})
            continue
        reduced.append(f.reduce(evidence))
    if not reduced:
        raise ValueError("evidence observes every variable; nothing to query")

    all_vars = set().union(*(f.scope() for f in reduced))
    missing = set(query) - all_vars
    if missing:
        raise ValueError(f"query variables not in model: {missing}")
    to_eliminate = all_vars - set(query)
    if order is None:
        elim_order = min_fill_order(reduced, to_eliminate)
    else:
        elim_order = list(order)
        if set(elim_order) != to_eliminate:
            raise ValueError(
                "order must cover exactly the non-query, non-evidence variables"
            )

    work = list(reduced)
    for v in elim_order:
        bucket = [f for f in work if v in f.variables]
        work = [f for f in work if v not in f.variables]
        if not bucket:
            continue
        prod = bucket[0]
        for f in bucket[1:]:
            prod = prod.product(f)
        work.append(prod.marginalize([v]))

    result = work[0]
    for f in work[1:]:
        result = result.product(f)
    # Arrange scope in the requested query order.
    if result.variables != query:
        perm = [result.variables.index(v) for v in query]
        result = DiscreteFactor(
            query,
            [result.cardinalities[i] for i in perm],
            result.values.transpose(perm),
        )
    if normalize:
        return result.normalize()
    if constant != 1.0:
        result = DiscreteFactor(
            result.variables, result.cardinalities, result.values * constant
        )
    return result
