"""Junction-tree (clique-tree) exact inference.

Construction follows the classic recipe: triangulate the interaction graph
by simulating min-fill variable elimination, collect the elimination
cliques, drop non-maximal ones, connect cliques by a maximum-weight
spanning tree on separator sizes (which yields the running-intersection
property), assign each factor to one containing clique, and calibrate with
a two-pass sum-product sweep.  After calibration every clique holds the
exact (unnormalized) marginal over its scope.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.bayesnet.elimination import min_fill_order
from repro.bayesnet.factor import DiscreteFactor

__all__ = ["JunctionTree"]


class JunctionTree:
    """Exact inference via clique-tree calibration.

    Parameters
    ----------
    factors:
        Model factors; their product is the unnormalized joint.  The
        interaction graph must be connected (one model, one tree).
    """

    def __init__(self, factors: Sequence[DiscreteFactor]) -> None:
        if not factors:
            raise ValueError("need at least one factor")
        self.factors = list(factors)
        self.cardinalities: dict = {}
        for f in self.factors:
            for v in f.variables:
                card = f.cardinality(v)
                if self.cardinalities.setdefault(v, card) != card:
                    raise ValueError(f"inconsistent cardinality for {v!r}")
        self._build()
        self._calibrated: list[DiscreteFactor] | None = None
        self._calibrated_evidence: dict | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        variables = list(self.cardinalities)
        order = min_fill_order(self.factors, variables)

        # Simulate elimination to collect cliques.
        adj: dict = {v: set() for v in variables}
        for f in self.factors:
            for v in f.variables:
                adj[v].update(set(f.variables) - {v})
        cliques: list[frozenset] = []
        eliminated: set = set()
        for v in order:
            neigh = adj[v] - eliminated
            clique = frozenset(neigh | {v})
            cliques.append(clique)
            for a in neigh:
                adj[a].update(neigh - {a})
            eliminated.add(v)

        # Keep maximal cliques only.
        maximal: list[frozenset] = []
        for c in sorted(cliques, key=len, reverse=True):
            if not any(c <= m for m in maximal):
                maximal.append(c)
        self.cliques: list[frozenset] = maximal

        # Maximum-weight spanning tree over separator sizes (Prim).
        k = len(self.cliques)
        self.edges: list[tuple[int, int, frozenset]] = []
        if k > 1:
            in_tree = {0}
            while len(in_tree) < k:
                best = None
                for i in in_tree:
                    for j in range(k):
                        if j in in_tree:
                            continue
                        sep = self.cliques[i] & self.cliques[j]
                        w = len(sep)
                        if best is None or w > best[0]:
                            best = (w, i, j, sep)
                if best is None or best[0] == 0:
                    raise ValueError(
                        "interaction graph is disconnected; build one "
                        "JunctionTree per connected component"
                    )
                _, i, j, sep = best
                self.edges.append((i, j, sep))
                in_tree.add(j)

        # Assign each factor to one clique containing its scope.
        self._assignments: list[list[DiscreteFactor]] = [[] for _ in self.cliques]
        for f in self.factors:
            for ci, c in enumerate(self.cliques):
                if set(f.variables) <= c:
                    self._assignments[ci].append(f)
                    break
            else:  # pragma: no cover - construction guarantees a home
                raise RuntimeError(f"no clique contains factor scope {f.variables}")

    # ------------------------------------------------------------------ #
    # calibration
    # ------------------------------------------------------------------ #
    def calibrate(self, evidence: Mapping | None = None) -> None:
        """Two-pass sum-product calibration (optionally with evidence).

        Evidence is applied by zeroing inconsistent clique entries, which
        keeps all clique scopes intact and the tree structure unchanged.
        """
        evidence = dict(evidence or {})
        for v, s in evidence.items():
            if v not in self.cardinalities:
                raise ValueError(f"unknown evidence variable {v!r}")
            if not (0 <= int(s) < self.cardinalities[v]):
                raise ValueError(f"evidence state {s} out of range for {v!r}")

        pots: list[DiscreteFactor] = []
        for c, assigned in zip(self.cliques, self._assignments):
            scope = sorted(c, key=str)
            cards = [self.cardinalities[v] for v in scope]
            pot = DiscreteFactor(scope, cards, np.ones(cards))
            for f in assigned:
                pot = pot.product(f)
            for v, s in evidence.items():
                if v in pot.variables:
                    mask_shape = [1] * len(pot.variables)
                    ax = pot.variables.index(v)
                    mask_shape[ax] = pot.cardinality(v)
                    mask = np.zeros(mask_shape)
                    idx = [0] * len(pot.variables)
                    idx[ax] = int(s)
                    mask[tuple(idx)] = 1.0
                    pot = DiscreteFactor(
                        pot.variables, pot.cardinalities, pot.values * mask
                    )
            pots.append(pot)

        k = len(self.cliques)
        if k == 1:
            self._calibrated = pots
            self._calibrated_evidence = evidence
            return

        # Tree adjacency.
        neighbors: dict[int, list[tuple[int, frozenset]]] = {
            i: [] for i in range(k)
        }
        for i, j, sep in self.edges:
            neighbors[i].append((j, sep))
            neighbors[j].append((i, sep))

        messages: dict[tuple[int, int], DiscreteFactor] = {}

        def send(src: int, dst: int, sep: frozenset) -> DiscreteFactor:
            pot = pots[src]
            for (nb, nsep) in neighbors[src]:
                if nb != dst and (nb, src) in messages:
                    pot = pot.product(messages[(nb, src)])
            drop = set(pot.variables) - sep
            msg = pot.marginalize(drop) if drop else pot
            total = msg.values.sum()
            if total > 0:
                msg = DiscreteFactor(msg.variables, msg.cardinalities, msg.values / total)
            return msg

        # Upward pass (leaves to root 0) then downward: do a DFS ordering.
        visited = {0}
        stack = [0]
        parent: dict[int, tuple[int, frozenset] | None] = {0: None}
        dfs: list[int] = []
        while stack:
            u = stack.pop()
            dfs.append(u)
            for (nb, sep) in neighbors[u]:
                if nb not in visited:
                    visited.add(nb)
                    parent[nb] = (u, sep)
                    stack.append(nb)
        # Upward: children before parents.
        for u in reversed(dfs):
            if parent[u] is not None:
                p, sep = parent[u]
                messages[(u, p)] = send(u, p, sep)
        # Downward: parents before children.
        for u in dfs:
            if parent[u] is not None:
                p, sep = parent[u]
                messages[(p, u)] = send(p, u, sep)

        calibrated = []
        for i in range(k):
            pot = pots[i]
            for (nb, sep) in neighbors[i]:
                pot = pot.product(messages[(nb, i)])
            calibrated.append(pot)
        self._calibrated = calibrated
        self._calibrated_evidence = evidence

    def query(self, variable, evidence: Mapping | None = None) -> DiscreteFactor:
        """Exact posterior marginal ``P(variable | evidence)``."""
        evidence = dict(evidence or {})
        if variable in evidence:
            raise ValueError("query variable cannot be evidence")
        if self._calibrated is None or self._calibrated_evidence != evidence:
            self.calibrate(evidence)
        assert self._calibrated is not None
        for pot in self._calibrated:
            if variable in pot.variables:
                drop = set(pot.variables) - {variable}
                marg = pot.marginalize(drop) if drop else pot
                return marg.normalize()
        raise ValueError(f"variable {variable!r} not in model")
