"""A from-scratch discrete Bayesian-network / factor-graph engine.

This subpackage is the probabilistic substrate the paper's method runs on
(a pgmpy substitute, since no external PGM library is available offline):

* :class:`~repro.bayesnet.factor.DiscreteFactor` — dense tabular factors
  with product / marginalize / maximize / reduce / normalize algebra.
* :class:`~repro.bayesnet.cpd.TabularCPD` — conditional probability tables.
* :class:`~repro.bayesnet.discrete_bn.BayesianNetwork` — a DAG of CPDs with
  ancestral sampling and conversion to a factor list.
* :func:`~repro.bayesnet.elimination.variable_elimination` — exact inference
  with min-fill / min-degree orderings.
* :class:`~repro.bayesnet.graph.FactorGraph` and
  :class:`~repro.bayesnet.beliefprop.BeliefPropagation` — sum-product /
  max-product message passing: exact on trees, loopy with damping and
  convergence monitoring on cyclic graphs.
* :class:`~repro.bayesnet.junction.JunctionTree` — clique-tree calibration
  for exact inference on small loopy models.

Everything is validated in the test suite against brute-force enumeration.
"""

from repro.bayesnet.factor import DiscreteFactor
from repro.bayesnet.cpd import TabularCPD
from repro.bayesnet.discrete_bn import BayesianNetwork
from repro.bayesnet.elimination import variable_elimination, min_fill_order
from repro.bayesnet.graph import FactorGraph
from repro.bayesnet.beliefprop import BeliefPropagation, BPResult
from repro.bayesnet.junction import JunctionTree
from repro.bayesnet.sampling import gibbs_sampling, likelihood_weighting

__all__ = [
    "DiscreteFactor",
    "TabularCPD",
    "BayesianNetwork",
    "variable_elimination",
    "min_fill_order",
    "FactorGraph",
    "BeliefPropagation",
    "BPResult",
    "JunctionTree",
    "likelihood_weighting",
    "gibbs_sampling",
]
