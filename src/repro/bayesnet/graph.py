"""Bipartite factor graphs.

A :class:`FactorGraph` connects variable nodes to the factors whose scope
contains them.  It is the data structure belief propagation runs on, and it
knows whether it is a tree (BP exact) or loopy (BP approximate).
"""

from __future__ import annotations

from typing import Sequence

from repro.bayesnet.factor import DiscreteFactor

__all__ = ["FactorGraph"]


class FactorGraph:
    """Bipartite variable–factor graph built from a factor list."""

    def __init__(self, factors: Sequence[DiscreteFactor]) -> None:
        if not factors:
            raise ValueError("factor graph needs at least one factor")
        self.factors: list[DiscreteFactor] = list(factors)
        self.cardinalities: dict = {}
        self.var_to_factors: dict = {}
        for fi, f in enumerate(self.factors):
            for v in f.variables:
                card = f.cardinality(v)
                if self.cardinalities.setdefault(v, card) != card:
                    raise ValueError(
                        f"inconsistent cardinality for {v!r}: "
                        f"{self.cardinalities[v]} vs {card}"
                    )
                self.var_to_factors.setdefault(v, []).append(fi)

    @property
    def variables(self) -> tuple:
        return tuple(self.cardinalities)

    def factor_neighbors(self, factor_index: int) -> tuple:
        """Variables in a factor's scope."""
        return self.factors[factor_index].variables

    def variable_neighbors(self, variable) -> list[int]:
        """Indices of factors containing *variable*."""
        return self.var_to_factors[variable]

    def n_edges(self) -> int:
        return sum(len(f.variables) for f in self.factors)

    def is_tree(self) -> bool:
        """True iff the bipartite graph is acyclic and connected components
        each form trees (|edges| = |vars| + |factors| - |components|)."""
        # Union-find over variable and factor nodes.
        parent: dict = {}

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for v in self.variables:
            parent[("v", v)] = ("v", v)
        for fi in range(len(self.factors)):
            parent[("f", fi)] = ("f", fi)
        edges = 0
        for fi, f in enumerate(self.factors):
            for v in f.variables:
                edges += 1
                ra, rb = find(("f", fi)), find(("v", v))
                if ra == rb:
                    return False  # cycle found
                parent[ra] = rb
        return True

    def components(self) -> list[set]:
        """Connected components as sets of variables."""
        seen: set = set()
        out: list[set] = []
        for start in self.variables:
            if start in seen:
                continue
            comp = {start}
            stack = [start]
            while stack:
                v = stack.pop()
                for fi in self.var_to_factors[v]:
                    for u in self.factors[fi].variables:
                        if u not in comp:
                            comp.add(u)
                            stack.append(u)
            seen |= comp
            out.append(comp)
        return out
