"""Tabular conditional probability distributions.

A :class:`TabularCPD` stores ``P(child | parents)`` with the child as the
*first* axis, mirroring pgmpy's convention: ``table[s, p1, p2, ...]`` is the
probability of child state *s* given parent states ``p1, p2, …``.  Each
column (fixed parent assignment) must sum to 1.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bayesnet.factor import DiscreteFactor

__all__ = ["TabularCPD"]


class TabularCPD:
    """``P(variable | evidence_variables)`` as a dense table."""

    def __init__(
        self,
        variable,
        cardinality: int,
        table: np.ndarray,
        evidence: Sequence = (),
        evidence_cards: Sequence[int] = (),
        atol: float = 1e-8,
    ) -> None:
        self.variable = variable
        self.cardinality = int(cardinality)
        self.evidence = tuple(evidence)
        self.evidence_cards = tuple(int(c) for c in evidence_cards)
        if len(self.evidence) != len(self.evidence_cards):
            raise ValueError("evidence and evidence_cards must align")
        if self.variable in self.evidence:
            raise ValueError("variable cannot be its own parent")
        expected = (self.cardinality, *self.evidence_cards)
        tab = np.asarray(table, dtype=np.float64)
        if tab.shape != expected:
            raise ValueError(
                f"table shape {tab.shape} does not match expected {expected}"
            )
        if np.any(tab < 0) or not np.all(np.isfinite(tab)):
            raise ValueError("probabilities must be finite and non-negative")
        sums = tab.sum(axis=0)
        if not np.allclose(sums, 1.0, atol=atol):
            raise ValueError(
                "each conditional distribution must sum to 1 "
                f"(max deviation {np.abs(sums - 1).max():.3g})"
            )
        self.table = tab

    @classmethod
    def uniform(cls, variable, cardinality: int) -> "TabularCPD":
        """A parentless uniform prior."""
        return cls(variable, cardinality, np.full(cardinality, 1.0 / cardinality))

    @classmethod
    def from_prior(cls, variable, probabilities: np.ndarray) -> "TabularCPD":
        """A parentless prior from an explicit probability vector."""
        p = np.asarray(probabilities, dtype=np.float64)
        return cls(variable, len(p), p)

    def to_factor(self) -> DiscreteFactor:
        """The CPD as a factor over ``(variable, *evidence)``."""
        return DiscreteFactor(
            (self.variable, *self.evidence),
            (self.cardinality, *self.evidence_cards),
            self.table,
        )

    def sample(self, parent_states: dict, rng: np.random.Generator) -> int:
        """Draw a child state given parent states ``{parent: state}``."""
        idx = tuple(int(parent_states[p]) for p in self.evidence)
        probs = self.table[(slice(None), *idx)]
        return int(rng.choice(self.cardinality, p=probs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.evidence:
            cond = ", ".join(map(str, self.evidence))
            return f"TabularCPD(P({self.variable} | {cond}))"
        return f"TabularCPD(P({self.variable}))"
