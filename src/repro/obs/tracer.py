"""Solver instrumentation: counters, wall-clock timers, iteration records.

Message-passing localizers are characterized by their convergence curves —
per-iteration message residuals, how many beliefs still move, how many
messages (and bytes) the distributed execution would have spent.  The
:class:`Tracer` collects exactly that, plus named counters, peak-value
gauges, and a stack of nested wall-clock timers, and exports everything as
one JSON-safe dict (see :meth:`Tracer.snapshot`).

Design rules
------------
* **Opt-in and overhead-free by default.**  Every instrumented call site
  holds a :class:`NullTracer` (the module singleton :data:`NULL_TRACER`)
  unless the caller passes a real :class:`Tracer`; the null methods are
  empty and the hot paths additionally guard any non-trivial bookkeeping
  behind ``tracer.enabled``.
* **Observation only.**  A tracer never feeds back into the computation,
  so attaching one cannot change results: beliefs are bit-identical with
  and without tracing (the golden-trace tests assert this).
* **Deterministic export.**  Everything except wall-clock timings is a
  pure function of the inputs and the seed; :meth:`Tracer.snapshot` with
  ``include_timings=False`` drops the only non-reproducible part, which is
  what the golden-trace regression suite snapshots.
"""

from __future__ import annotations

import json
import time
from typing import Callable

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "NullTracer",
    "Tracer",
    "NULL_TRACER",
]

#: bumped whenever the exported dict layout changes incompatibly
TRACE_SCHEMA_VERSION = 1

#: scalar types allowed in iteration records and annotations (JSON-safe)
_SCALAR_TYPES = (bool, int, float, str, type(None))


class _NullTimer:
    """Reusable no-op context manager (one shared instance, zero alloc)."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class NullTracer:
    """Do-nothing tracer — the default at every instrumented call site.

    Implements the full tracer interface as empty methods so solver code
    never branches on ``tracer is None``.  Anything costlier than a method
    call (e.g. computing per-iteration beliefs just to count changes) must
    additionally be guarded by ``if tracer.enabled:``.
    """

    #: call sites guard non-trivial bookkeeping behind this flag
    enabled = False

    __slots__ = ()

    def count(self, name: str, n: int | float = 1) -> None:
        """Add *n* to counter *name* (no-op)."""

    def gauge_max(self, name: str, value: int | float) -> None:
        """Record *value* into peak-gauge *name* if it is a new max (no-op)."""

    def annotate(self, name: str, value) -> None:
        """Attach scalar metadata (no-op)."""

    def timer(self, name: str):
        """Context manager timing a (possibly nested) phase (no-op)."""
        return _NULL_TIMER

    def iteration(self, **fields) -> None:
        """Append one per-iteration record (no-op)."""

    def snapshot(self, include_timings: bool = True):
        """Exported trace dict; ``None`` for the null tracer."""
        return None


#: module-level singleton used as the default tracer everywhere
NULL_TRACER = NullTracer()


class _Timer:
    """Context manager created by :meth:`Tracer.timer`.

    Accumulates elapsed wall time under a ``/``-joined path built from the
    tracer's timer stack, so nested phases naturally satisfy
    ``parent.seconds >= sum(child.seconds)`` (up to timer resolution).
    """

    __slots__ = ("_tracer", "_name", "_path", "_t0")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_Timer":
        tracer = self._tracer
        self._path = "/".join(tracer._timer_stack + [self._name])
        tracer._timer_stack.append(self._name)
        self._t0 = tracer._clock()
        return self

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        elapsed = tracer._clock() - self._t0
        popped = tracer._timer_stack.pop()
        if popped != self._name:  # pragma: no cover - misuse guard
            raise RuntimeError(
                f"timer stack corrupted: exited {self._name!r}, "
                f"expected {popped!r}"
            )
        entry = tracer.timers.setdefault(self._path, {"seconds": 0.0, "calls": 0})
        entry["seconds"] += elapsed
        entry["calls"] += 1
        return False


class Tracer(NullTracer):
    """Collects counters, peak gauges, timers, and per-iteration records.

    Parameters
    ----------
    clock:
        Monotonic time source for the timers (default
        :func:`time.perf_counter`); injectable for deterministic tests.

    Attributes
    ----------
    counters:
        ``{name: total}`` — monotone accumulating sums.
    gauges:
        ``{name: peak}`` — running maxima (e.g. largest factor built).
    meta:
        ``{name: scalar}`` annotations (method name, grid size, …); a
        repeated :meth:`annotate` overwrites, so with several runs on one
        tracer the last run wins.
    iterations:
        List of per-iteration dicts, auto-numbered 1-based via the
        ``"iteration"`` key unless the caller provides one.
    timers:
        ``{path: {"seconds": float, "calls": int}}`` keyed by the nested
        ``/``-joined phase path.
    """

    enabled = True

    __slots__ = ("counters", "gauges", "meta", "iterations", "timers",
                 "_clock", "_timer_stack")

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.counters: dict[str, int | float] = {}
        self.gauges: dict[str, int | float] = {}
        self.meta: dict[str, object] = {}
        self.iterations: list[dict] = []
        self.timers: dict[str, dict] = {}
        self._clock = clock
        self._timer_stack: list[str] = []

    # ------------------------------------------------------------------ #
    def count(self, name: str, n: int | float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge_max(self, name: str, value: int | float) -> None:
        if name not in self.gauges or value > self.gauges[name]:
            self.gauges[name] = value

    def annotate(self, name: str, value) -> None:
        if not isinstance(value, _SCALAR_TYPES):
            raise TypeError(
                f"annotation {name!r} must be a JSON scalar, "
                f"got {type(value).__name__}"
            )
        self.meta[name] = value

    def timer(self, name: str) -> _Timer:
        return _Timer(self, name)

    def iteration(self, **fields) -> None:
        record: dict = {"iteration": len(self.iterations) + 1}
        for key, value in fields.items():
            if not isinstance(value, _SCALAR_TYPES):
                raise TypeError(
                    f"iteration field {key!r} must be a JSON scalar, "
                    f"got {type(value).__name__}"
                )
            record[key] = value
        self.iterations.append(record)

    # ------------------------------------------------------------------ #
    def snapshot(self, include_timings: bool = True) -> dict:
        """Deep-copied, JSON-serializable export of everything collected.

        With ``include_timings=False`` the (non-deterministic) wall-clock
        section is omitted; the remainder is a pure function of inputs and
        seed, suitable for golden-file comparison.
        """
        out: dict = {
            "schema_version": TRACE_SCHEMA_VERSION,
            "meta": dict(self.meta),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "iterations": [dict(r) for r in self.iterations],
        }
        if include_timings:
            out["timers"] = {k: dict(v) for k, v in self.timers.items()}
        return out

    def to_json(self, include_timings: bool = True, indent: int | None = None) -> str:
        """The snapshot as a JSON string (sorted keys — stable output)."""
        return json.dumps(
            self.snapshot(include_timings), sort_keys=True, indent=indent
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer(counters={len(self.counters)}, "
            f"iterations={len(self.iterations)}, timers={len(self.timers)})"
        )
