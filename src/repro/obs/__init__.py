"""Observability: convergence traces, counters, and timers for the solvers.

Attach a :class:`Tracer` to any message-passing localizer to capture its
convergence trajectory (per-iteration message residual, beliefs-changed
count, messages/bytes spent) together with named counters, peak gauges,
and nested wall-clock timers::

    from repro import CooperativeLocalizer, Tracer

    tracer = Tracer()
    loc = CooperativeLocalizer("grid-bp", tracer=tracer)
    result = loc.run(net, ranging, rng=0)
    result.telemetry            # JSON-safe trace dict (= tracer.snapshot())

The default is the no-op :data:`NULL_TRACER`, which keeps the hot paths
untouched and the results bit-identical to untraced runs.  ``python -m
repro trace`` prints the same information from the command line.
"""

from repro.obs.report import (
    format_trace_table,
    merge_traces,
    reservoir_summary,
    trace_summary,
)
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    Tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TRACE_SCHEMA_VERSION",
    "format_trace_table",
    "trace_summary",
    "merge_traces",
    "reservoir_summary",
]
