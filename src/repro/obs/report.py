"""Rendering and aggregation of exported traces.

Operates on the plain dicts produced by
:meth:`repro.obs.tracer.Tracer.snapshot` (not on live tracers), so traces
that crossed a process boundary — e.g. returned by pool workers — are
first-class citizens.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.utils.tables import format_table

__all__ = [
    "format_trace_table",
    "trace_summary",
    "merge_traces",
    "reservoir_summary",
]


def reservoir_summary(values) -> dict:
    """JSON-safe percentile block for a bounded sample reservoir.

    The common shape every metrics surface exports (serve latencies,
    stream staleness): sample count, p50/p99, and mean — ``None`` when
    the reservoir is empty so the block stays JSON-clean.
    """
    import numpy as np

    vals = list(values)
    if not vals:
        return {"n": 0, "p50": None, "p99": None, "mean": None}
    arr = np.asarray(vals, dtype=np.float64)
    return {
        "n": len(vals),
        "p50": float(np.percentile(arr, 50)),
        "p99": float(np.percentile(arr, 99)),
        "mean": float(arr.mean()),
    }

#: iteration-record keys shown as table columns, in display order
_ITERATION_COLUMNS = (
    "iteration",
    "residual",
    "beliefs_changed",
    "messages",
    "messages_cum",
    "bytes_cum",
)


def _require_trace(trace: Mapping) -> None:
    if not isinstance(trace, Mapping):
        raise TypeError(
            "expected a trace dict (Tracer.snapshot()); did you pass a "
            "NullTracer snapshot (None) or a live Tracer?"
        )


def format_trace_table(trace: Mapping, *, precision: int = 6) -> str:
    """Aligned per-iteration table of a trace dict.

    Columns are the intersection of :data:`_ITERATION_COLUMNS` with the
    keys actually present (solvers record slightly different fields);
    unknown extra keys are appended alphabetically.
    """
    _require_trace(trace)
    iterations = trace.get("iterations", [])
    if not iterations:
        return "(no iteration records)"
    present: set = set()
    for rec in iterations:
        present.update(rec)
    headers = [c for c in _ITERATION_COLUMNS if c in present]
    headers += sorted(present - set(_ITERATION_COLUMNS))
    rows = [[rec.get(h, "") for h in headers] for rec in iterations]
    method = trace.get("meta", {}).get("method")
    title = f"trace: {method}" if method else None
    return format_table(headers, rows, precision=precision, title=title)


def trace_summary(trace: Mapping) -> str:
    """Multi-line summary: meta, counters, peak gauges, and timers."""
    _require_trace(trace)
    lines: list[str] = []
    meta = trace.get("meta", {})
    if meta:
        lines.append("meta:")
        lines += [f"  {k} = {meta[k]}" for k in sorted(meta)]
    counters = trace.get("counters", {})
    if counters:
        lines.append("counters:")
        lines += [f"  {k} = {counters[k]}" for k in sorted(counters)]
    gauges = trace.get("gauges", {})
    if gauges:
        lines.append("peaks:")
        lines += [f"  {k} = {gauges[k]}" for k in sorted(gauges)]
    timers = trace.get("timers", {})
    if timers:
        lines.append("timers:")
        for path in sorted(timers):
            t = timers[path]
            lines.append(
                f"  {path}: {t['seconds'] * 1e3:.2f} ms over {t['calls']} call(s)"
            )
    if not lines:
        return "(empty trace)"
    return "\n".join(lines)


def merge_traces(traces: Iterable[Mapping]) -> dict:
    """Aggregate trace dicts from independent runs (e.g. pool workers).

    Counters and timer totals/calls are summed, gauges take the maximum,
    and ``n_iterations_total`` counts all iteration records; the
    per-iteration records themselves are *not* concatenated (they describe
    different runs, not one convergence curve).  Meta keys are kept only
    where all traces agree — disagreeing keys are dropped, so e.g. a
    shared method name survives while per-run seeds do not.
    """
    merged: dict = {
        "schema_version": None,
        "meta": {},
        "counters": {},
        "gauges": {},
        "timers": {},
        "n_runs": 0,
        "n_iterations_total": 0,
    }
    first = True
    for trace in traces:
        _require_trace(trace)
        merged["n_runs"] += 1
        version = trace.get("schema_version")
        if merged["schema_version"] is None:
            merged["schema_version"] = version
        elif version != merged["schema_version"]:
            raise ValueError(
                f"cannot merge traces with schema versions "
                f"{merged['schema_version']} and {version}"
            )
        for name, value in trace.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in trace.get("gauges", {}).items():
            if name not in merged["gauges"] or value > merged["gauges"][name]:
                merged["gauges"][name] = value
        for path, entry in trace.get("timers", {}).items():
            slot = merged["timers"].setdefault(path, {"seconds": 0.0, "calls": 0})
            slot["seconds"] += entry["seconds"]
            slot["calls"] += entry["calls"]
        merged["n_iterations_total"] += len(trace.get("iterations", []))
        meta = trace.get("meta", {})
        if first:
            merged["meta"] = dict(meta)
            first = False
        else:
            merged["meta"] = {
                k: v for k, v in merged["meta"].items()
                if k in meta and meta[k] == v
            }
    if merged["n_runs"] == 0:
        raise ValueError("merge_traces needs at least one trace")
    return merged
