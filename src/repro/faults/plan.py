"""Declarative, seeded fault plans.

A :class:`FaultPlan` pins down *everything* that goes wrong in one
robustness experiment: message-level faults applied per BP round by the
distributed simulator (drops, corruption, delays, node crashes and churn)
and measurement-level faults applied once to a :class:`MeasurementSet`
before any solver runs (dead anchors, lost links, outlier range bursts).

Plans are frozen dataclasses, so a sweep can :func:`dataclasses.replace`
one field at a time, and fully seeded: the same plan and seed produce the
same fault sequence no matter which solver consumes it, how many worker
processes run, or in which order messages happen to be enumerated — every
random draw comes from a ``SeedSequence(plan.seed, spawn_key=...)`` stream
keyed by fault domain (and round index for message faults).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FaultPlan", "NodeOutage"]

#: spawn-key namespaces for the per-domain fault streams
_KEY_MESSAGES = 0
_KEY_MEASUREMENTS = 1
_KEY_OUTAGES = 2


@dataclass(frozen=True)
class NodeOutage:
    """One node's downtime window (rounds are 1-based, *end* exclusive).

    ``end_round=None`` is a permanent crash; a finite window models churn
    (the node rejoins with its stale mailbox, as a rebooted device would).
    """

    node: int
    start_round: int = 1
    end_round: int | None = None

    def __post_init__(self) -> None:
        if self.start_round < 1:
            raise ValueError("start_round must be >= 1")
        if self.end_round is not None and self.end_round <= self.start_round:
            raise ValueError("end_round must be > start_round (or None)")

    def down_at(self, round_index: int) -> bool:
        if round_index < self.start_round:
            return False
        return self.end_round is None or round_index < self.end_round


def _check_rate(value: float, name: str) -> None:
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded schedule of injected faults.

    Message-level fields (consumed per-round by
    :class:`~repro.parallel.messaging.DistributedBPSimulator` through a
    :class:`~repro.faults.inject.MessageFaultInjector`):

    Attributes
    ----------
    seed:
        Master seed of every fault stream (independent of the scenario and
        solver seeds, so faults can be varied without reshuffling the
        network).
    message_drop_rate:
        Probability that a belief message is lost in transit; the receiver
        keeps last round's value (stale mailbox).
    message_corrupt_rate:
        Probability that a delivered message is corrupted: entries are
        multiplied by log-normal noise of scale *corrupt_sigma* and
        renormalized — still a valid distribution, but wrong.
    corrupt_sigma:
        Log-scale of the corruption noise.
    message_delay_rate:
        Probability a message is delayed by 1..*max_delay_rounds* rounds
        instead of arriving this round.
    max_delay_rounds:
        Upper bound on the delay drawn for a delayed message.
    node_outages:
        Explicit crash/churn windows (:class:`NodeOutage`).
    node_crash_rate:
        Additionally, each unknown node crashes permanently with this
        probability, at a round drawn uniformly from
        ``[1, crash_horizon]``.
    crash_horizon:
        Horizon of the random crash schedule.

    Measurement-level fields (consumed once by
    :func:`~repro.faults.inject.degrade_measurements` — the path the
    centralized solvers and baselines share):

    Attributes
    ----------
    anchor_failure_rate:
        Each anchor dies with this probability: demoted to an ordinary
        unknown node with its radio silenced (all links removed).
    failed_anchors:
        Anchors that deterministically die (node ids), on top of the rate.
    link_loss_rate:
        Each link is permanently removed with this probability (symmetric).
    outlier_fraction:
        Fraction of surviving ranged links hit by an outlier burst: a
        positive bias of ``outlier_bias_ratio × radio_range`` (an NLOS
        reflection or a glitching ranging front-end).
    outlier_bias_ratio:
        Outlier bias in units of the radio range.
    """

    seed: int = 0
    # -- message-level --------------------------------------------------
    message_drop_rate: float = 0.0
    message_corrupt_rate: float = 0.0
    corrupt_sigma: float = 1.0
    message_delay_rate: float = 0.0
    max_delay_rounds: int = 2
    node_outages: tuple[NodeOutage, ...] = field(default_factory=tuple)
    node_crash_rate: float = 0.0
    crash_horizon: int = 8
    # -- measurement-level ----------------------------------------------
    anchor_failure_rate: float = 0.0
    failed_anchors: tuple[int, ...] = field(default_factory=tuple)
    link_loss_rate: float = 0.0
    outlier_fraction: float = 0.0
    outlier_bias_ratio: float = 1.0

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        _check_rate(self.message_drop_rate, "message_drop_rate")
        _check_rate(self.message_corrupt_rate, "message_corrupt_rate")
        _check_rate(self.message_delay_rate, "message_delay_rate")
        _check_rate(self.node_crash_rate, "node_crash_rate")
        _check_rate(self.anchor_failure_rate, "anchor_failure_rate")
        _check_rate(self.link_loss_rate, "link_loss_rate")
        _check_rate(self.outlier_fraction, "outlier_fraction")
        if self.corrupt_sigma < 0:
            raise ValueError("corrupt_sigma must be non-negative")
        if self.max_delay_rounds < 1:
            raise ValueError("max_delay_rounds must be >= 1")
        if self.crash_horizon < 1:
            raise ValueError("crash_horizon must be >= 1")
        if self.outlier_bias_ratio <= 0:
            raise ValueError("outlier_bias_ratio must be positive")
        outages = tuple(self.node_outages)
        if not all(isinstance(o, NodeOutage) for o in outages):
            raise TypeError("node_outages must contain NodeOutage entries")
        object.__setattr__(self, "node_outages", outages)
        object.__setattr__(self, "failed_anchors", tuple(int(a) for a in self.failed_anchors))

    # ------------------------------------------------------------------ #
    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: injection becomes a guaranteed no-op and every
        solver output is bit-identical to running without faults at all."""
        return cls()

    @classmethod
    def message_loss(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """Pure message-loss plan — the E17 robustness axis."""
        return cls(seed=seed, message_drop_rate=rate)

    # ------------------------------------------------------------------ #
    @property
    def affects_messages(self) -> bool:
        return (
            self.message_drop_rate > 0
            or self.message_corrupt_rate > 0
            or self.message_delay_rate > 0
            or bool(self.node_outages)
            or self.node_crash_rate > 0
        )

    @property
    def affects_measurements(self) -> bool:
        return (
            self.anchor_failure_rate > 0
            or bool(self.failed_anchors)
            or self.link_loss_rate > 0
            or self.outlier_fraction > 0
        )

    @property
    def enabled(self) -> bool:
        return self.affects_messages or self.affects_measurements

    # ------------------------------------------------------------------ #
    def round_stream(self, round_index: int) -> np.random.Generator:
        """The message-fault stream of one round (independent per round,
        so replaying round *r* never depends on how round *r−1* drew)."""
        return np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(_KEY_MESSAGES, round_index))
        )

    def measurement_stream(self) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(_KEY_MEASUREMENTS,))
        )

    def outage_stream(self) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(_KEY_OUTAGES,))
        )

    def resolve_outages(self, node_ids) -> tuple[NodeOutage, ...]:
        """Explicit outages plus the random crash schedule over *node_ids*.

        Deterministic in the plan seed and the (sorted) node-id list;
        nodes already covered by an explicit outage draw no random crash.
        """
        out = list(self.node_outages)
        if self.node_crash_rate > 0:
            explicit = {o.node for o in out}
            gen = self.outage_stream()
            for node in sorted(int(n) for n in node_ids):
                u = float(gen.random())
                start = int(gen.integers(1, self.crash_horizon + 1))
                if node in explicit:
                    continue
                if u < self.node_crash_rate:
                    out.append(NodeOutage(node=node, start_round=start))
        return tuple(out)
