"""Fault injection and graceful degradation.

Real WSN deployments lose messages, crash nodes, and return outlier
ranges; this package makes those failure modes *first-class, seeded
experiment inputs* instead of accidents:

* :class:`FaultPlan` / :class:`NodeOutage` — a frozen, fully seeded fault
  schedule (message drop/corruption/delay, node crash & churn, anchor
  failure, link loss, measurement-outlier bursts).
* :class:`MessageFaultInjector` — applies the plan round-by-round inside
  :class:`~repro.parallel.messaging.DistributedBPSimulator`.
* :func:`degrade_measurements` — applies the plan once to a
  :class:`~repro.measurement.measurements.MeasurementSet` for the
  centralized solvers and baselines.
* :class:`FaultLog` — the structured record of everything injected.

``FaultPlan.none()`` is the identity: every consumer checks it up front
and falls back to the exact unfaulted code path, so results stay
bit-identical to pre-fault behavior (asserted by the golden-trace tests).
"""

from repro.faults.inject import MessageFaultInjector, degrade_measurements
from repro.faults.log import FaultLog
from repro.faults.plan import FaultPlan, NodeOutage

__all__ = [
    "FaultPlan",
    "NodeOutage",
    "FaultLog",
    "MessageFaultInjector",
    "degrade_measurements",
]
