"""Fault injectors: per-round message faults and one-shot measurement faults.

Two entry points, one per execution model:

* :class:`MessageFaultInjector` — plugs into the synchronous round loop of
  :class:`~repro.parallel.messaging.DistributedBPSimulator`: given the
  round's computed messages (in a deterministic order), it decides which
  are dropped, corrupted, or delayed, and which senders/receivers are down.
* :func:`degrade_measurements` — produces a degraded copy of a
  :class:`~repro.measurement.measurements.MeasurementSet` (dead anchors,
  lost links, outlier range bursts) for the centralized solvers and
  baselines, which never see individual messages.

Both are pure functions of the :class:`~repro.faults.plan.FaultPlan` seed
and the (deterministically ordered) inputs, so the same plan reproduces
the same faults across runs, solvers, and worker counts.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.faults.log import FaultLog
from repro.faults.plan import FaultPlan
from repro.measurement.measurements import MeasurementSet
from repro.obs import NULL_TRACER, NullTracer

__all__ = ["MessageFaultInjector", "degrade_measurements"]


class MessageFaultInjector:
    """Applies one :class:`FaultPlan`'s message-level faults round by round.

    Parameters
    ----------
    plan:
        The fault schedule.  An empty plan makes every method a no-op.
    tracer:
        Optional :class:`~repro.obs.Tracer`; fault events are mirrored
        into ``faults.*`` counters so they appear in solver telemetry.
    """

    def __init__(self, plan: FaultPlan, tracer: NullTracer | None = None) -> None:
        self.plan = plan
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.log = FaultLog()
        self._outages: tuple = ()
        #: messages in flight: (due_round, src, dst, message)
        self._delayed: list[tuple[int, int, int, np.ndarray]] = []

    # ------------------------------------------------------------------ #
    def resolve_outages(self, node_ids) -> None:
        """Fix the crash/churn schedule for this run's node population."""
        self._outages = self.plan.resolve_outages(node_ids)

    def node_down(self, node: int, round_index: int) -> bool:
        return any(
            o.node == node and o.down_at(round_index) for o in self._outages
        )

    def nodes_down(self, round_index: int) -> set[int]:
        return {o.node for o in self._outages if o.down_at(round_index)}

    @property
    def n_in_flight(self) -> int:
        """Delayed messages queued but not yet delivered (convergence must
        wait for these to flush)."""
        return len(self._delayed)

    # ------------------------------------------------------------------ #
    def process_round(
        self,
        round_index: int,
        messages: list[tuple[int, int, np.ndarray]],
    ) -> tuple[list[tuple[int, int, np.ndarray]], dict]:
        """Filter one round's ``(src, dst, message)`` list.

        *messages* must come in a deterministic order (the simulator
        enumerates agents and their neighbor maps in insertion order,
        which is fixed by the measurement set).  Returns the delivered
        list — delayed arrivals from earlier rounds first, then this
        round's survivors — plus the round's fault-event record.
        """
        plan = self.plan
        gen = plan.round_stream(round_index)
        down = self.nodes_down(round_index)

        delivered: list[tuple[int, int, np.ndarray]] = []
        arrived_late = 0
        expired = 0
        still_delayed: list[tuple[int, int, int, np.ndarray]] = []
        for due, src, dst, msg in self._delayed:
            if due > round_index:
                still_delayed.append((due, src, dst, msg))
            elif dst in down:
                # Receiver is off at delivery time; the message evaporates —
                # counted, so delayed = late + expired + in-flight always
                # balances (the audit conservation check relies on it).
                expired += 1
            else:
                delivered.append((src, dst, msg))
                arrived_late += 1
        self._delayed = still_delayed

        dropped = corrupted = delayed = suppressed = 0
        for src, dst, msg in messages:
            if src in down:
                suppressed += 1
                continue
            if dst in down:
                dropped += 1
                continue
            if plan.message_drop_rate > 0 and gen.random() < plan.message_drop_rate:
                dropped += 1
                continue
            if (
                plan.message_corrupt_rate > 0
                and gen.random() < plan.message_corrupt_rate
            ):
                msg = self._corrupt(msg, gen)
                corrupted += 1
            if plan.message_delay_rate > 0 and gen.random() < plan.message_delay_rate:
                lag = int(gen.integers(1, plan.max_delay_rounds + 1))
                self._delayed.append((round_index + lag, src, dst, msg))
                delayed += 1
                continue
            delivered.append((src, dst, msg))

        record = self.log.record_round(
            round_index,
            messages_dropped=dropped,
            messages_corrupted=corrupted,
            messages_delayed=delayed,
            messages_arrived_late=arrived_late,
            messages_delayed_expired=expired,
            sender_down=suppressed,
        )
        if self.tracer.enabled:
            for name in (
                "messages_dropped",
                "messages_corrupted",
                "messages_delayed",
                "sender_down",
            ):
                if record.get(name):
                    self.tracer.count(f"faults.{name}", record[name])
        return delivered, record

    def finalize(self) -> int:
        """Close the books at end of run: messages still sitting in the
        delay queue never arrived anywhere.  Without this they simply
        vanish from the accounting; recording them as
        ``messages_in_flight_at_end`` keeps the delay ledger conserved
        (``delayed == arrived_late + expired + in_flight``).  Idempotent —
        repeat calls add nothing.  Returns the in-flight count.
        """
        n = len(self._delayed)
        if n and "messages_in_flight_at_end" not in self.log.counters:
            self.log.count("messages_in_flight_at_end", n)
            if self.tracer.enabled:
                self.tracer.count("faults.messages_in_flight_at_end", n)
        return n

    def _corrupt(self, msg: np.ndarray, gen: np.random.Generator) -> np.ndarray:
        """Multiplicative log-normal corruption, renormalized — the message
        stays a valid distribution so the receiver cannot detect it."""
        noisy = msg * np.exp(gen.normal(0.0, self.plan.corrupt_sigma, size=msg.shape))
        total = noisy.sum()
        if not np.isfinite(total) or total <= 0:
            return np.full_like(msg, 1.0 / len(msg))
        return noisy / total


# ---------------------------------------------------------------------- #
def degrade_measurements(
    ms: MeasurementSet,
    plan: FaultPlan,
    tracer: NullTracer | None = None,
    include_crashes: bool = True,
) -> tuple[MeasurementSet, FaultLog]:
    """A degraded copy of *ms* under the plan's measurement-level faults.

    Applied in a fixed order — anchor failures, node crashes, link loss,
    outlier bursts — each drawing from the plan's measurement stream over
    deterministically sorted ids, so the degradation is reproducible and
    independent of the consuming solver.

    * **Anchor failure** demotes the anchor to an ordinary unknown node
      and silences its radio (all links removed) — the network loses both
      the reference position and the connectivity.
    * **Node crash** silences an unknown node's radio; the node stays in
      the problem (its belief degrades to prior-only).
    * **Link loss** removes surviving links symmetrically.
    * **Outlier burst** adds a positive bias of
      ``outlier_bias_ratio × radio_range`` to a fraction of surviving
      ranged links (both directions — the link itself is bad).

    Returns the new measurement set plus a :class:`FaultLog` of what was
    injected.  With a plan that has no measurement-level faults the input
    is returned unchanged (same object).

    ``include_crashes=False`` skips the static node-crash silencing — the
    distributed simulator passes this because it plays the same outages
    *dynamically*, round by round, through its message injector.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    log = FaultLog()
    has_crashes = include_crashes and (
        plan.node_crash_rate > 0 or bool(plan.node_outages)
    )
    if not plan.affects_measurements and not has_crashes:
        return ms, log

    gen = plan.measurement_stream()
    anchor_mask = ms.anchor_mask.copy()
    anchor_positions = ms.anchor_positions_full.copy()
    adjacency = ms.adjacency.copy()
    observed = ms.observed_distances.copy()
    bearings = (
        ms.observed_bearings.copy() if ms.observed_bearings is not None else None
    )

    def silence(node: int) -> None:
        adjacency[node, :] = False
        adjacency[:, node] = False
        observed[node, :] = np.nan
        observed[:, node] = np.nan
        if bearings is not None:
            bearings[node, :] = np.nan
            bearings[:, node] = np.nan

    # Anchor failures: explicit ids plus the seeded rate.
    failed = set(plan.failed_anchors)
    for a in sorted(int(a) for a in ms.anchor_ids):
        if plan.anchor_failure_rate > 0 and gen.random() < plan.anchor_failure_rate:
            failed.add(a)
    for a in sorted(failed):
        if not ms.anchor_mask[a]:
            raise ValueError(f"failed_anchors contains non-anchor node {a}")
        anchor_mask[a] = False
        anchor_positions[a] = np.nan
        silence(a)
    log.count("anchors_failed", len(failed))

    # Permanent node crashes (measurement-level view of the churn plan).
    if has_crashes:
        crashed = sorted(
            {o.node for o in plan.resolve_outages(sorted(int(u) for u in ms.unknown_ids))}
        )
        for node in crashed:
            silence(node)
        log.count("nodes_crashed", len(crashed))

    # Link loss over the surviving edges.
    if plan.link_loss_rate > 0:
        lost = 0
        iu, ju = np.nonzero(np.triu(adjacency, k=1))
        for i, j in zip(iu.tolist(), ju.tolist()):
            if gen.random() < plan.link_loss_rate:
                adjacency[i, j] = adjacency[j, i] = False
                observed[i, j] = observed[j, i] = np.nan
                if bearings is not None:
                    bearings[i, j] = bearings[j, i] = np.nan
                lost += 1
        log.count("links_lost", lost)

    # Outlier bursts on surviving ranged links.
    if plan.outlier_fraction > 0 and ms.has_ranging:
        bias = plan.outlier_bias_ratio * ms.radio_range
        hit = 0
        iu, ju = np.nonzero(np.triu(adjacency, k=1))
        for i, j in zip(iu.tolist(), ju.tolist()):
            if gen.random() < plan.outlier_fraction and np.isfinite(observed[i, j]):
                observed[i, j] += bias
                observed[j, i] += bias
                hit += 1
        log.count("outlier_links", hit)

    if tracer.enabled:
        for name, n in log.counters.items():
            tracer.count(f"faults.{name}", n)

    degraded = dataclasses.replace(
        ms,
        anchor_mask=anchor_mask,
        anchor_positions_full=anchor_positions,
        adjacency=adjacency,
        observed_distances=observed,
        observed_bearings=bearings,
    )
    return degraded, log
