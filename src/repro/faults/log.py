"""Structured accounting of every injected fault and degradation decision.

A :class:`FaultLog` is filled by the injectors while an experiment runs
and exported as one JSON-safe dict, mirroring the style of
:meth:`repro.obs.Tracer.snapshot` so fault reports can ride along in
``LocalizationResult.extras`` and saved trace files.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FaultLog"]


@dataclass
class FaultLog:
    """Counters plus per-round event records of one faulted run.

    Attributes
    ----------
    counters:
        ``{event: total}`` — monotone sums over the whole run (messages
        dropped / corrupted / delayed, nodes down, anchors failed, links
        lost, outlier links, ...).
    rounds:
        One dict per simulator round that saw at least one fault event
        (all-quiet rounds are omitted to keep reports small).
    """

    counters: dict[str, int] = field(default_factory=dict)
    rounds: list[dict] = field(default_factory=list)

    def count(self, name: str, n: int = 1) -> None:
        if n:
            self.counters[name] = self.counters.get(name, 0) + int(n)

    def record_round(self, round_index: int, **events: int) -> dict:
        """Accumulate one round's event counts (and keep the record)."""
        nonzero = {k: int(v) for k, v in events.items() if v}
        for name, n in nonzero.items():
            self.count(name, n)
        record = {"round": int(round_index), **nonzero}
        if nonzero:
            self.rounds.append(record)
        return record

    @property
    def total_events(self) -> int:
        return sum(self.counters.values())

    def to_dict(self) -> dict:
        """JSON-serializable export."""
        return {
            "counters": dict(self.counters),
            "rounds": [dict(r) for r in self.rounds],
            "total_events": self.total_events,
        }

    def summary(self) -> str:
        """One-line human-readable digest (for CLI output)."""
        if not self.counters:
            return "no faults injected"
        parts = [f"{name}={n}" for name, n in sorted(self.counters.items())]
        return ", ".join(parts)
