"""Robustness sweep: localization error versus message-loss rate (E17).

One shared driver behind the ``repro faults`` CLI subcommand and the
``benchmarks/test_e17_fault_tolerance.py`` experiment: for every loss rate
it rebuilds the same seeded scenarios, runs the Bayesian-network method
through the *distributed* simulator with a pure message-loss
:class:`~repro.faults.FaultPlan`, and runs the centralized baselines on
the equivalent one-shot degradation (every link independently lost with
the same probability via :func:`~repro.faults.degrade_measurements` —
a one-shot method has no retransmission, so a lost exchange is a lost
link).

Everything is seeded: scenario seeds come from the master seed exactly as
in :func:`repro.parallel.run_trials`, fault seeds from the trial seeds, so
the sweep is reproducible across runs and machines.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.core.bnloc import GridBPConfig
from repro.experiments.config import ScenarioConfig, build_scenario
from repro.faults.inject import degrade_measurements
from repro.faults.plan import FaultPlan
from repro.utils.rng import child_seed_ints, spawn_seeds

__all__ = ["RobustnessPoint", "run_robustness_sweep", "robustness_table"]

#: baselines every sweep can request (resolved lazily to avoid cycles)
_BASELINES = ("centroid", "w-centroid", "dv-hop", "mds-map")


@dataclass
class RobustnessPoint:
    """One (loss rate, method) cell of the sweep."""

    loss_rate: float
    method: str
    median_errors: list[float] = field(default_factory=list)
    coverages: list[float] = field(default_factory=list)
    fault_events: int = 0
    fallback_nodes: int = 0
    converged: int = 0

    @property
    def median_error(self) -> float:
        """Median over trials of the per-trial median error / r."""
        return float(np.median(self.median_errors))

    @property
    def coverage(self) -> float:
        return float(np.mean(self.coverages))


def _baseline(method: str):
    from repro.baselines import (
        CentroidLocalizer,
        DVHopLocalizer,
        MDSMAPLocalizer,
        WeightedCentroidLocalizer,
    )

    return {
        "centroid": CentroidLocalizer,
        "w-centroid": WeightedCentroidLocalizer,
        "dv-hop": DVHopLocalizer,
        "mds-map": MDSMAPLocalizer,
    }[method]()


def _trial_error(result, network) -> tuple[float, float]:
    """(median error / r over localized unknowns, unknown coverage)."""
    unknown = ~network.anchor_mask
    errs = result.errors(network.positions)[unknown]
    localized = np.isfinite(errs)
    cov = float(localized.mean()) if unknown.any() else 1.0
    med = (
        float(np.median(errs[localized])) / network.radio_range
        if localized.any()
        else float("nan")
    )
    return med, cov


def run_robustness_sweep(
    scenario: ScenarioConfig,
    loss_rates,
    methods=("bn-pk", "centroid", "dv-hop"),
    n_trials: int = 3,
    seed: int = 0,
    grid_size: int = 16,
    max_iterations: int = 12,
) -> list[RobustnessPoint]:
    """Error vs message-loss rate for the BN method and chosen baselines.

    ``bn-pk`` runs in the distributed simulator under
    ``FaultPlan.message_loss(rate)`` (per-round drops, stale mailboxes);
    every baseline runs on the measurement set degraded with
    ``link_loss_rate=rate`` — the same Bernoulli loss, applied the only
    way a one-shot centralized method can experience it.
    """
    rates = [float(r) for r in loss_rates]
    for r in rates:
        if not (0.0 <= r <= 1.0):
            raise ValueError(f"loss rates must lie in [0, 1], got {r}")
    unknown = [m for m in methods if m != "bn-pk" and m not in _BASELINES]
    if unknown:
        raise ValueError(
            f"unknown methods {unknown}; choose from "
            f"{('bn-pk',) + _BASELINES}"
        )
    cfg = GridBPConfig(grid_size=grid_size, max_iterations=max_iterations)
    trial_seeds = spawn_seeds(seed, n_trials)
    fault_seeds = child_seed_ints(seed, n_trials)

    points = [RobustnessPoint(rate, m) for rate in rates for m in methods]
    by_key = {(p.loss_rate, p.method): p for p in points}

    for t, trial_seed in enumerate(trial_seeds):
        s_build, s_run = trial_seed.spawn(2)
        network, ms, prior = build_scenario(scenario, s_build)
        run_seed = int(s_run.generate_state(1)[0])
        for rate in rates:
            for method in methods:
                p = by_key[(rate, method)]
                if method == "bn-pk":
                    from repro.parallel.messaging import DistributedBPSimulator

                    plan = (
                        FaultPlan.message_loss(rate, seed=fault_seeds[t])
                        if rate > 0
                        else FaultPlan.none()
                    )
                    sim = DistributedBPSimulator(
                        prior=prior, config=cfg, faults=plan
                    )
                    result, _ = sim.run(ms)
                    flog = result.extras.get("fault_log") or {}
                    msgs = flog.get("messages") or {}
                    p.fault_events += int(msgs.get("total_events", 0))
                    if result.fallback_mask is not None:
                        p.fallback_nodes += int(result.fallback_mask.sum())
                else:
                    plan = FaultPlan(seed=fault_seeds[t], link_loss_rate=rate)
                    dms, flog = degrade_measurements(ms, plan)
                    result = _baseline(method).localize(
                        dms, np.random.default_rng(run_seed)
                    )
                    p.fault_events += int(flog.total_events)
                p.converged += int(result.converged)
                med, cov = _trial_error(result, network)
                p.median_errors.append(med)
                p.coverages.append(cov)
    return points


def robustness_table(points: list[RobustnessPoint], title: str = "") -> str:
    """Plain-text table of the sweep, one row per (rate, method)."""
    lines: list[str] = []
    if title:
        lines.append(title)
    header = (
        f"{'loss':>6}  {'method':<12} {'median err/r':>12}  "
        f"{'coverage':>8}  {'faults':>7}  {'fallbacks':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for p in sorted(points, key=lambda q: (q.loss_rate, q.method)):
        med = p.median_error
        med_s = f"{med:.3f}" if np.isfinite(med) else "n/a"
        lines.append(
            f"{p.loss_rate:>6.2f}  {p.method:<12} {med_s:>12}  "
            f"{p.coverage:>8.2f}  {p.fault_events:>7d}  {p.fallback_nodes:>9d}"
        )
    return "\n".join(lines)
