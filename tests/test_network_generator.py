"""Unit tests for repro.network.generator."""

import numpy as np
import pytest

from repro.network.deployment import UniformDeployment
from repro.network.generator import NetworkConfig, generate_network, select_anchors
from repro.network.radio import UnitDiskRadio


class TestNetworkConfig:
    def test_defaults(self):
        cfg = NetworkConfig()
        assert cfg.n_nodes == 100
        assert cfg.n_anchors == 10

    def test_minimum_three_anchors(self):
        cfg = NetworkConfig(n_nodes=20, anchor_ratio=0.05)
        assert cfg.n_anchors == 3

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            NetworkConfig(n_nodes=2)
        with pytest.raises(ValueError):
            NetworkConfig(anchor_ratio=0.0)
        with pytest.raises(ValueError):
            NetworkConfig(anchor_placement="corner")


class TestSelectAnchors:
    POS = np.random.default_rng(0).uniform(size=(50, 2))

    def test_random_count(self):
        mask = select_anchors(self.POS, 7, "random", rng=0)
        assert mask.sum() == 7

    def test_perimeter_prefers_edges(self):
        mask = select_anchors(self.POS, 10, "perimeter", rng=0)
        edge_dist = np.minimum.reduce(
            [self.POS[:, 0], 1 - self.POS[:, 0], self.POS[:, 1], 1 - self.POS[:, 1]]
        )
        assert edge_dist[mask].mean() < edge_dist[~mask].mean()

    def test_spread_is_dispersed(self):
        mask = select_anchors(self.POS, 8, "spread", rng=0)
        chosen = self.POS[mask]
        rand_mask = select_anchors(self.POS, 8, "random", rng=1)
        from repro.utils.geometry import pairwise_distances

        def min_sep(p):
            d = pairwise_distances(p)
            return d[np.triu_indices(len(p), 1)].min()

        assert min_sep(chosen) >= min_sep(self.POS[rand_mask]) - 1e-9

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            select_anchors(self.POS, 0, "random")
        with pytest.raises(ValueError):
            select_anchors(self.POS, 50, "random")

    def test_reproducible(self):
        a = select_anchors(self.POS, 5, "random", rng=9)
        b = select_anchors(self.POS, 5, "random", rng=9)
        np.testing.assert_array_equal(a, b)


class TestGenerateNetwork:
    def test_basic_generation(self):
        cfg = NetworkConfig(n_nodes=60, anchor_ratio=0.1)
        net = generate_network(cfg, rng=0)
        assert net.n_nodes == 60
        assert net.n_anchors == 6
        assert net.radio_range == pytest.approx(0.2)

    def test_reproducible(self):
        cfg = NetworkConfig(n_nodes=40)
        a = generate_network(cfg, rng=3)
        b = generate_network(cfg, rng=3)
        np.testing.assert_array_equal(a.positions, b.positions)
        np.testing.assert_array_equal(a.adjacency, b.adjacency)
        np.testing.assert_array_equal(a.anchor_mask, b.anchor_mask)

    def test_require_connected(self):
        cfg = NetworkConfig(
            n_nodes=80,
            anchor_ratio=0.1,
            radio=UnitDiskRadio(0.25),
            require_connected=True,
        )
        net = generate_network(cfg, rng=1)
        assert net.is_connected()

    def test_require_connected_failure(self):
        cfg = NetworkConfig(
            n_nodes=30,
            anchor_ratio=0.1,
            radio=UnitDiskRadio(0.01),
            require_connected=True,
            max_redraws=3,
        )
        with pytest.raises(RuntimeError):
            generate_network(cfg, rng=0)

    def test_custom_field_dimensions(self):
        cfg = NetworkConfig(
            n_nodes=30, deployment=UniformDeployment(width=2.0, height=0.5)
        )
        net = generate_network(cfg, rng=0)
        assert net.width == 2.0 and net.height == 0.5
        assert (net.positions[:, 0] <= 2.0).all()
        assert (net.positions[:, 1] <= 0.5).all()
